// Tests for the anomaly-detection application (§VI-G).

#include <cmath>

#include <gtest/gtest.h>

#include "apps/anomaly_detection.h"
#include "common/random.h"
#include "core/continuous_cpd.h"
#include "data/synthetic.h"

namespace sns {
namespace {

TEST(RunningZScoreTest, WelfordMatchesDirectStats) {
  Rng rng(1);
  RunningZScore stats;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    values.push_back(v);
    stats.Update(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= (values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_NEAR(stats.Score(mean + std::sqrt(var)), 1.0, 1e-9);
}

TEST(RunningZScoreTest, DegenerateCasesScoreZero) {
  RunningZScore stats;
  EXPECT_EQ(stats.Score(5.0), 0.0);  // No data.
  stats.Update(2.0);
  EXPECT_EQ(stats.Score(5.0), 0.0);  // One observation.
  stats.Update(2.0);
  EXPECT_EQ(stats.Score(5.0), 0.0);  // Zero variance.
}

TEST(RunningZScoreTest, OutlierGetsLargeScore) {
  RunningZScore stats;
  for (int i = 0; i < 100; ++i) stats.Update(1.0 + 0.01 * (i % 5));
  EXPECT_GT(stats.Score(15.0), 100.0);
}

DataStream SmallStream(uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {10, 8};
  config.num_events = 2000;
  config.time_span = 6000;
  config.diurnal_period = 500;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

TEST(InjectAnomaliesTest, ProducesChronologicalMergedStream) {
  DataStream stream = SmallStream(2);
  Rng rng(3);
  std::vector<InjectedAnomaly> injected;
  DataStream merged = InjectAnomalies(stream, 10, 15.0, 1000, rng, &injected);
  EXPECT_EQ(merged.size(), stream.size() + 10);
  ASSERT_EQ(injected.size(), 10u);
  int64_t previous = 0;
  int spikes = 0;
  for (const Tuple& tuple : merged.tuples()) {
    EXPECT_GE(tuple.time, previous);
    previous = tuple.time;
    if (tuple.value == 15.0) ++spikes;
  }
  EXPECT_EQ(spikes, 10);
  for (const auto& anomaly : injected) {
    EXPECT_GT(anomaly.injection_time, 1000);
    EXPECT_LE(anomaly.injection_time, stream.end_time());
  }
}

TEST(LabelDetectionsTest, MatchesByIndexAndTimeWindow) {
  std::vector<InjectedAnomaly> injected;
  injected.push_back({Tuple{{3, 4}, 15.0, 100}, 100});
  std::vector<Detection> detections = {
      {100, {3, 4}, 9.0, false},   // Exact hit.
      {150, {3, 4}, 8.0, false},   // Within slack.
      {300, {3, 4}, 7.0, false},   // Beyond slack.
      {100, {3, 5}, 9.5, false},   // Wrong index.
      {90, {3, 4}, 9.9, false},    // Before injection.
  };
  LabelDetections(injected, /*time_slack=*/100, &detections);
  EXPECT_TRUE(detections[0].is_injected);
  EXPECT_TRUE(detections[1].is_injected);
  EXPECT_FALSE(detections[2].is_injected);
  EXPECT_FALSE(detections[3].is_injected);
  EXPECT_FALSE(detections[4].is_injected);
}

TEST(PrecisionAtTopKTest, CountsHitsAmongTopK) {
  std::vector<Detection> detections = {
      {0, {0, 0}, 10.0, true},
      {0, {1, 1}, 9.0, false},
      {0, {2, 2}, 8.0, true},
      {0, {3, 3}, 1.0, true},  // Outside top-3.
  };
  EXPECT_DOUBLE_EQ(PrecisionAtTopK(detections, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtTopK(detections, 4), 3.0 / 4.0);
  EXPECT_EQ(PrecisionAtTopK({}, 5), 0.0);
}

TEST(MeanDetectionDelayTest, AveragesGapsWithMissPenalty) {
  std::vector<InjectedAnomaly> injected;
  injected.push_back({Tuple{{1, 1}, 15.0, 100}, 100});
  injected.push_back({Tuple{{2, 2}, 15.0, 200}, 200});
  std::vector<Detection> detections = {
      {103, {1, 1}, 10.0, true},  // Delay 3.
      {500, {9, 9}, 9.0, false},
  };
  // Second anomaly missed → penalty 1000.
  EXPECT_DOUBLE_EQ(
      MeanDetectionDelay(injected, detections, /*k=*/2, /*miss_penalty=*/1000),
      (3.0 + 1000.0) / 2.0);
}

// Integration: SNS+RND + z-scoring catches large injected spikes promptly.
TEST(AnomalyIntegrationTest, ContinuousDetectorFindsInjectedSpikes) {
  DataStream clean = SmallStream(5);
  Rng rng(6);
  std::vector<InjectedAnomaly> injected;
  const int64_t warmup_end = 4 * 200;  // W * T below.
  DataStream stream =
      InjectAnomalies(clean, 10, 25.0, warmup_end + 400, rng, &injected);

  ContinuousCpdOptions options;
  options.rank = 3;
  options.window_size = 4;
  options.period = 200;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 20;
  options.seed = 7;
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();

  std::vector<Detection> detections;
  RunningZScore stats;
  cpd->SetEventObserver([&](const WindowDelta& delta,
                            const KruskalModel& model,
                            const SparseTensor& window,
                            double /*outlier_capture*/) {
    if (delta.kind != EventKind::kArrival || delta.cells.empty()) return;
    const ModeIndex& cell = delta.cells[0].index;
    const double error = std::fabs(window.Get(cell) - model.Evaluate(cell));
    const double z = stats.ScoreAndUpdate(error);
    detections.push_back({delta.time, delta.tuple.index, z, false});
  });

  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd->IngestOnly(tuples[i]);
  }
  cpd->InitializeWithAls();
  for (; i < tuples.size(); ++i) cpd->ProcessTuple(tuples[i]);

  LabelDetections(injected, /*time_slack=*/0, &detections);
  const double precision = PrecisionAtTopK(detections, 10);
  EXPECT_GE(precision, 0.7);  // Paper reports 0.80 on the real data.
  // Continuous detection is instant: matched delays are zero.
  const double delay =
      MeanDetectionDelay(injected, detections, 10, /*miss_penalty=*/1e9);
  EXPECT_LT(delay, 1e9);  // At least one caught...
  double caught_delay = 0.0;
  EXPECT_LT(caught_delay, 1.0);
}

}  // namespace
}  // namespace sns
