// Storage-engine tests for the flat entry pool behind SparseTensor:
//   - a randomized differential test driving thousands of Add / Set /
//     erase-to-zero / slice-iterate / degree operations against a naive
//     std::map reference model,
//   - a window-churn test asserting no near-zero residue or bucket leak
//     after full slide-expiry cycles,
//   - a regression guard pinning the hash-lookup count of slice iteration
//     and MttkrpRow at zero (the pre-refactor code re-hashed per entry).

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/continuous_window.h"
#include "tensor/kruskal.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_tensor.h"

namespace sns {
namespace {

ModeIndex RandomIndex(const std::vector<int64_t>& dims, Rng& rng) {
  ModeIndex index;
  for (int64_t dim : dims) {
    index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
  }
  return index;
}

using ReferenceModel = std::map<std::string, std::pair<ModeIndex, double>>;

// Deep equality between the tensor and the reference: nnz, point lookups,
// per-(mode, index) degrees, slice contents (with values), pool iteration,
// and the Frobenius norm.
void ExpectMatchesReference(const SparseTensor& x,
                            const ReferenceModel& reference,
                            const std::vector<int64_t>& dims) {
  ASSERT_EQ(x.nnz(), static_cast<int64_t>(reference.size()));
  double norm_sq = 0.0;
  for (const auto& [key, entry] : reference) {
    EXPECT_DOUBLE_EQ(x.Get(entry.first), entry.second) << key;
    norm_sq += entry.second * entry.second;
  }
  EXPECT_NEAR(x.FrobeniusNormSquared(), norm_sq, 1e-9 * (1.0 + norm_sq));

  int64_t visited = 0;
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    ++visited;
    auto it = reference.find(index.ToString());
    ASSERT_NE(it, reference.end()) << index.ToString();
    EXPECT_DOUBLE_EQ(value, it->second.second) << index.ToString();
  });
  EXPECT_EQ(visited, x.nnz());

  for (int m = 0; m < static_cast<int>(dims.size()); ++m) {
    for (int64_t i = 0; i < dims[static_cast<size_t>(m)]; ++i) {
      int64_t expected_degree = 0;
      for (const auto& [key, entry] : reference) {
        if (entry.first[m] == i) ++expected_degree;
      }
      ASSERT_EQ(x.Degree(m, i), expected_degree)
          << "mode " << m << " index " << i;
      int64_t seen = 0;
      for (const auto slice_entry : x.Slice(m, i)) {
        ++seen;
        ASSERT_EQ(slice_entry.coords[m], i);
        auto it = reference.find(slice_entry.coords.ToString());
        ASSERT_NE(it, reference.end()) << slice_entry.coords.ToString();
        EXPECT_DOUBLE_EQ(slice_entry.value, it->second.second);
      }
      EXPECT_EQ(seen, expected_degree);
    }
  }
}

// 10k randomized storage operations (inserts, in-place updates, exact
// erase-to-zero, Set-to-zero, occasional Clear) diffed against the naive
// reference model. Exercises pool swap-erase, hash backshift deletion, and
// table growth across many load factors.
TEST(EntryPoolStorageTest, DifferentialAgainstMapReference) {
  Rng rng(0xd1ff);
  const std::vector<int64_t> dims = {6, 5, 4};
  SparseTensor x(dims);
  ReferenceModel reference;

  auto apply_reference = [&](const ModeIndex& index, double value) {
    if (std::fabs(value) < SparseTensor::kZeroEpsilon) {
      reference.erase(index.ToString());
    } else {
      reference[index.ToString()] = {index, value};
    }
  };

  for (int step = 0; step < 10000; ++step) {
    const ModeIndex index = RandomIndex(dims, rng);
    const uint64_t op = rng.NextUint64(10);
    if (op < 5) {
      // Add a random (possibly negative, possibly zero) delta.
      const double delta = static_cast<double>(rng.UniformInt(-2, 2));
      const double result = x.Add(index, delta);
      auto it = reference.find(index.ToString());
      const double before = it == reference.end() ? 0.0 : it->second.second;
      apply_reference(index, before + delta);
      EXPECT_DOUBLE_EQ(result, x.Get(index));
    } else if (op < 7) {
      // Exact erase-to-zero of an existing cell (the window's
      // add-then-subtract pattern).
      auto it = reference.find(index.ToString());
      const double before = it == reference.end() ? 0.0 : it->second.second;
      EXPECT_DOUBLE_EQ(x.Add(index, -before), 0.0);
      apply_reference(index, 0.0);
      EXPECT_EQ(x.Get(index), 0.0);
    } else if (op < 9) {
      const double value =
          op == 7 ? 0.0 : rng.UniformDouble(-3.0, 3.0);
      x.Set(index, value);
      apply_reference(index, value);
    } else if (rng.NextUint64(200) == 0) {
      x.Clear();
      reference.clear();
    }

    // Light invariants every step; deep diff periodically.
    ASSERT_EQ(x.nnz(), static_cast<int64_t>(reference.size()));
    if (step % 500 == 499) ExpectMatchesReference(x, reference, dims);
  }
  ExpectMatchesReference(x, reference, dims);
}

// The reserve hint must be semantics-free: a pre-sized tensor behaves
// identically to an unsized one under the same operation stream.
TEST(EntryPoolStorageTest, ReserveHintDoesNotChangeBehavior) {
  const std::vector<int64_t> dims = {8, 7, 3};
  SparseTensor plain(dims);
  SparseTensor reserved(dims, /*expected_nnz=*/4096);
  Rng rng(77);
  for (int step = 0; step < 2000; ++step) {
    const ModeIndex index = RandomIndex(dims, rng);
    const double delta = static_cast<double>(rng.UniformInt(-2, 2));
    EXPECT_DOUBLE_EQ(plain.Add(index, delta), reserved.Add(index, delta));
  }
  ASSERT_EQ(plain.nnz(), reserved.nnz());
  plain.ForEachNonzero([&](const ModeIndex& index, double value) {
    EXPECT_DOUBLE_EQ(reserved.Get(index), value);
  });
}

// Full window churn: ingest several window spans of tuples, drain every
// scheduled slide and expiry, and require the storage to come back exactly
// empty — no near-zero residue entries, no stale bucket ids in any mode.
TEST(EntryPoolStorageTest, WindowChurnLeavesNoResidue) {
  const std::vector<int64_t> mode_dims = {9, 6};
  const int window_size = 4;
  const int64_t period = 10;
  ContinuousTensorWindow window(mode_dims, window_size, period);
  Rng rng(0xc4u);

  int64_t now = 0;
  for (int t = 0; t < 500; ++t) {
    now += static_cast<int64_t>(rng.NextUint64(4));
    Tuple tuple;
    tuple.index = RandomIndex(mode_dims, rng);
    // Fractional values stress the epsilon-erase path.
    tuple.value = rng.UniformDouble(-2.0, 2.0);
    tuple.time = now;
    window.AdvanceTo(now);
    window.Ingest(tuple);
  }
  // Drain past the last expiry: every tuple has fully slid out.
  while (window.HasScheduled()) window.PopScheduled();

  const SparseTensor& x = window.tensor();
  EXPECT_EQ(x.nnz(), 0);
  EXPECT_EQ(x.FrobeniusNormSquared(), 0.0);
  EXPECT_EQ(x.MaxAbsValue(), 0.0);
  for (int m = 0; m < x.num_modes(); ++m) {
    for (int64_t i = 0; i < x.dim(m); ++i) {
      EXPECT_EQ(x.Degree(m, i), 0) << "bucket leak at mode " << m
                                   << " index " << i;
      EXPECT_TRUE(x.Slice(m, i).empty());
    }
  }
}

// Regression guard for the MttkrpRow re-hash bug: slice iteration carries
// values straight out of the pool, so running MttkrpRow over every slice of
// every mode must perform ZERO coordinate-hash lookups. The pre-refactor
// code called x.Get(index) per slice entry, which would trip this.
TEST(EntryPoolStorageTest, MttkrpRowPerformsNoHashLookups) {
  Rng rng(0x517e);
  const std::vector<int64_t> dims = {12, 9, 7};
  const int64_t rank = 5;
  KruskalModel model = KruskalModel::Random(dims, rank, rng);
  SparseTensor x(dims);
  for (int step = 0; step < 300; ++step) {
    x.Set(RandomIndex(dims, rng), rng.Normal());
  }

  const uint64_t lookups_before = x.hash_lookup_count();
  std::vector<double> row(static_cast<size_t>(PaddedRank(rank)));
  for (int mode = 0; mode < 3; ++mode) {
    for (int64_t i = 0; i < dims[static_cast<size_t>(mode)]; ++i) {
      MttkrpRow(x, model.factors(), mode, i, row.data());
    }
  }
  // Full-tensor iteration is hash-free too.
  double sum = 0.0;
  x.ForEachNonzero([&](const ModeIndex&, double value) { sum += value; });
  for (int mode = 0; mode < 3; ++mode) {
    for (int64_t i = 0; i < dims[static_cast<size_t>(mode)]; ++i) {
      for (const auto entry : x.Slice(mode, i)) sum += entry.value;
    }
  }
  EXPECT_NE(sum, -1.0);  // Keep the loops observable.
  EXPECT_EQ(x.hash_lookup_count(), lookups_before)
      << "slice/pool iteration must not touch the coordinate hash index";
}

}  // namespace
}  // namespace sns
