// Compile-and-run check of the umbrella header: the snippet from README.md
// must work against "slicenstitch.h" alone.

#include "slicenstitch.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sns {
namespace {

TEST(PublicApiTest, ReadmeFlowCompilesAndRuns) {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;

  auto engine = ContinuousCpd::Create({6, 5}, options);
  ASSERT_TRUE(engine.ok());
  ContinuousCpd cpd = std::move(engine).value();

  SyntheticStreamConfig stream_config;
  stream_config.mode_dims = {6, 5};
  stream_config.num_events = 500;
  stream_config.time_span = 6 * 3 * 30;
  stream_config.diurnal_period = 90;
  auto stream = GenerateSyntheticStream(stream_config);
  ASSERT_TRUE(stream.ok());

  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  const auto& tuples = stream.value().tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  for (; i < tuples.size(); ++i) cpd.ProcessTuple(tuples[i]);

  EXPECT_TRUE(std::isfinite(cpd.Fitness()));
  EXPECT_GT(cpd.events_processed(), 0);
  EXPECT_EQ(cpd.model().num_modes(), 3);

  // Dataset presets and the anomaly toolkit are reachable too.
  EXPECT_EQ(AllDatasetPresets().size(), 4u);
  RunningZScore stats;
  stats.Update(1.0);
  stats.Update(2.0);
  EXPECT_TRUE(std::isfinite(stats.Score(3.0)));
}

}  // namespace
}  // namespace sns
