// Compile-and-run coverage of the public surface: everything here works
// against "slicenstitch.h" alone — the service facade (SnsService /
// StreamHandle), its typed queries, batched ingestion, sink fan-out, and
// Status error paths.

#include "slicenstitch.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace sns {
namespace {

ContinuousCpdOptions SmallOptions() {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  return options;
}

DataStream SmallStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

/// Splits a stream at the warm-up boundary W·T.
std::pair<std::span<const Tuple>, std::span<const Tuple>> SplitWarmup(
    const DataStream& stream, const ContinuousCpdOptions& options) {
  const std::span<const Tuple> tuples(stream.tuples());
  const int64_t warmup_end =
      static_cast<int64_t>(options.window_size) * options.period;
  const size_t i =
      static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  return {tuples.subspan(0, i), tuples.subspan(i)};
}

// --- Service lifecycle ----------------------------------------------------

TEST(SnsServiceTest, LifecycleCreateFindRemove) {
  SnsService service;
  EXPECT_TRUE(service.empty());

  auto created = service.CreateStream("taxi", {6, 5}, SmallOptions());
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value()->name(), "taxi");
  EXPECT_EQ(service.stream_count(), 1);
  EXPECT_EQ(service.Find("taxi"), created.value());
  EXPECT_EQ(service.Find("unknown"), nullptr);

  // Duplicate names are rejected without touching the pool.
  auto duplicate = service.CreateStream("taxi", {9, 9}, SmallOptions());
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.stream_count(), 1);
  EXPECT_EQ(service.Find("taxi")->mode_dims(), (std::vector<int64_t>{6, 5}));

  // Invalid schema/options surface the engine's validation.
  EXPECT_FALSE(service.CreateStream("bad", {}, SmallOptions()).ok());
  ContinuousCpdOptions bad_options = SmallOptions();
  bad_options.rank = 0;
  EXPECT_FALSE(service.CreateStream("bad", {4, 4}, bad_options).ok());
  EXPECT_FALSE(service.CreateStream("", {4, 4}, SmallOptions()).ok());
  EXPECT_EQ(service.stream_count(), 1);

  ASSERT_TRUE(service.CreateStream("crime", {4, 4}, SmallOptions()).ok());
  EXPECT_EQ(service.StreamNames(),
            (std::vector<std::string>{"crime", "taxi"}));

  EXPECT_TRUE(service.Remove("taxi").ok());
  EXPECT_EQ(service.Remove("taxi").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stream_count(), 1);
}

TEST(SnsServiceTest, HandlePointersStableAcrossPoolMutation) {
  SnsService service;
  StreamHandle* first =
      service.CreateStream("a", {4, 4}, SmallOptions()).value();
  ASSERT_TRUE(first->Warmup(std::vector<Tuple>{{{1, 1}, 1.0, 3}}).ok());
  for (char name = 'b'; name <= 'j'; ++name) {
    ASSERT_TRUE(
        service.CreateStream(std::string(1, name), {4, 4}, SmallOptions())
            .ok());
  }
  ASSERT_TRUE(service.Remove("b").ok());
  // "a"'s handle survived nine inserts and a removal.
  EXPECT_EQ(service.Find("a"), first);
  EXPECT_EQ(first->Stats().window_nnz, 1);
}

TEST(SnsServiceTest, MoveKeepsHandlePointersValid) {
  // The header documents handle-address stability; pin it across service
  // moves: the registry lives behind a stable heap allocation, so moving
  // the service moves ownership, never the handles.
  SnsService original;
  StreamHandle* taxi =
      original.CreateStream("taxi", {6, 5}, SmallOptions()).value();
  StreamHandle* crime =
      original.CreateStream("crime", {4, 4}, SmallOptions()).value();
  ASSERT_TRUE(taxi->Warmup(std::vector<Tuple>{{{1, 1}, 2.0, 3}}).ok());

  SnsService moved(std::move(original));  // Move-construct.
  EXPECT_EQ(moved.Find("taxi"), taxi);
  EXPECT_EQ(moved.Find("crime"), crime);
  EXPECT_EQ(taxi->Stats().window_nnz, 1);  // State came along untouched.
  // The moved-from service degrades to a valid empty pool.
  EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(original.Find("taxi"), nullptr);

  SnsService assigned;
  ASSERT_TRUE(assigned.CreateStream("old", {4, 4}, SmallOptions()).ok());
  assigned = std::move(moved);  // Move-assign over an existing pool.
  EXPECT_EQ(assigned.Find("old"), nullptr);  // The old pool is gone...
  EXPECT_EQ(assigned.Find("taxi"), taxi);    // ...the moved one intact.
  EXPECT_EQ(assigned.stream_count(), 2);
  // The handle stays fully usable through its old pointer.
  ASSERT_TRUE(taxi->Initialize().ok());
  ASSERT_TRUE(taxi->Ingest(Tuple{{2, 2}, 1.0, 95}).ok());
  EXPECT_EQ(taxi->Stats().last_time, 95);
}

// --- Multi-stream routing -------------------------------------------------

TEST(SnsServiceTest, RoutesIngestionByStreamId) {
  SnsService service;
  ASSERT_TRUE(service.CreateStream("left", {6, 5}, SmallOptions()).ok());
  ASSERT_TRUE(service.CreateStream("right", {6, 5}, SmallOptions()).ok());

  const DataStream left_stream = SmallStream(400, 1);
  const DataStream right_stream = SmallStream(150, 2);
  const auto [left_warm, left_live] =
      SplitWarmup(left_stream, SmallOptions());
  const auto [right_warm, right_live] =
      SplitWarmup(right_stream, SmallOptions());

  ASSERT_TRUE(service.Warmup("left", left_warm).ok());
  ASSERT_TRUE(service.Warmup("right", right_warm).ok());
  ASSERT_TRUE(service.Initialize("left").ok());
  ASSERT_TRUE(service.Initialize("right").ok());
  ASSERT_TRUE(service.Ingest("left", left_live).ok());
  ASSERT_TRUE(service.Ingest("right", right_live).ok());

  // Unknown ids are NotFound; each stream saw exactly its own tuples.
  EXPECT_EQ(service.Ingest("middle", left_live).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Warmup("middle", left_warm).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Initialize("middle").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.AdvanceTo("middle", 99).code(), StatusCode::kNotFound);

  const StreamStats left_stats = service.Find("left")->Stats();
  const StreamStats right_stats = service.Find("right")->Stats();
  EXPECT_GT(left_stats.events_processed, right_stats.events_processed);
  EXPECT_EQ(left_stats.last_time, left_stream.end_time());
  EXPECT_EQ(right_stats.last_time, right_stream.end_time());

  // Flush every window past its span: all streams drain to empty.
  const int64_t horizon =
      std::max(left_stream.end_time(), right_stream.end_time()) + 10 * 30;
  EXPECT_TRUE(service.AdvanceAllTo(horizon).ok());
  EXPECT_EQ(service.Find("left")->Stats().window_nnz, 0);
  EXPECT_EQ(service.Find("right")->Stats().window_nnz, 0);
}

// --- Batch vs per-tuple equivalence ---------------------------------------

TEST(StreamHandleTest, BatchIngestBitwiseEqualsPerTuple) {
  const ContinuousCpdOptions options = SmallOptions();
  const DataStream stream = SmallStream(600, 3);
  const auto [warm, live] = SplitWarmup(stream, options);

  StreamHandle per_tuple =
      StreamHandle::Create("a", {6, 5}, options).value();
  StreamHandle batched = StreamHandle::Create("b", {6, 5}, options).value();
  ASSERT_TRUE(per_tuple.Warmup(warm).ok());
  ASSERT_TRUE(batched.Warmup(warm).ok());
  ASSERT_TRUE(per_tuple.Initialize().ok());
  ASSERT_TRUE(batched.Initialize().ok());

  for (const Tuple& tuple : live) {
    ASSERT_TRUE(per_tuple.Ingest(tuple).ok());
  }
  // Mixed batch sizes, including empty spans.
  size_t i = 0;
  const size_t sizes[] = {1, 16, 0, 7, 256, 3};
  size_t next_size = 0;
  while (i < live.size()) {
    const size_t n = std::min(sizes[next_size % std::size(sizes)],
                              live.size() - i);
    next_size++;
    ASSERT_TRUE(batched.Ingest(live.subspan(i, n)).ok());
    i += n;
  }

  ASSERT_EQ(per_tuple.Stats().events_processed,
            batched.Stats().events_processed);
  for (int mode = 0; mode < per_tuple.num_modes(); ++mode) {
    const int64_t rows =
        mode + 1 == per_tuple.num_modes()
            ? per_tuple.window_size()
            : per_tuple.mode_dims()[static_cast<size_t>(mode)];
    for (int64_t row = 0; row < rows; ++row) {
      const FactorRowView a = per_tuple.FactorRow(mode, row).value();
      const FactorRowView b = batched.FactorRow(mode, row).value();
      for (int64_t r = 0; r < a.rank(); ++r) {
        ASSERT_EQ(a[r], b[r])  // Bitwise: identical event order + arithmetic.
            << "mode " << mode << " row " << row << " component " << r;
      }
    }
  }
  EXPECT_EQ(per_tuple.RunningFitness(), batched.RunningFitness());
}

// --- Sink fan-out ---------------------------------------------------------

class CountingSink : public EventSink {
 public:
  void OnStreamEvent(const StreamEvent& event) override {
    ++events;
    if (event.kind() == EventKind::kArrival) ++arrivals;
    last_error = event.AbsError();
    last_observed = event.ObservedValue();
  }

  int events = 0;
  int arrivals = 0;
  double last_error = -1.0;
  double last_observed = 0.0;
};

TEST(StreamHandleTest, SinksFanOutAndDetach) {
  const ContinuousCpdOptions options = SmallOptions();
  const DataStream stream = SmallStream(300, 4);
  const auto [warm, live] = SplitWarmup(stream, options);

  StreamHandle handle = StreamHandle::Create("s", {6, 5}, options).value();
  CountingSink first;
  CountingSink second;
  ASSERT_TRUE(handle.AddSink(&first).ok());
  ASSERT_TRUE(handle.AddSink(&second).ok());
  // Error paths: null and duplicate sinks, removing an unknown sink.
  EXPECT_EQ(handle.AddSink(nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(handle.AddSink(&first).code(), StatusCode::kFailedPrecondition);
  CountingSink detached;
  EXPECT_EQ(handle.RemoveSink(&detached).code(), StatusCode::kNotFound);

  ASSERT_TRUE(handle.Warmup(warm).ok());
  ASSERT_TRUE(handle.Initialize().ok());
  const size_t half = live.size() / 2;
  ASSERT_TRUE(handle.Ingest(live.subspan(0, half)).ok());

  // Both sinks saw every event (arrivals + slides + expiries).
  EXPECT_GT(first.events, 0);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.arrivals, static_cast<int>(half));
  EXPECT_GE(first.last_error, 0.0);

  // After detaching one sink, only the other keeps counting.
  ASSERT_TRUE(handle.RemoveSink(&first).ok());
  const int frozen = first.events;
  ASSERT_TRUE(handle.Ingest(live.subspan(half)).ok());
  EXPECT_EQ(first.events, frozen);
  EXPECT_GT(second.events, frozen);
}

// --- Typed queries --------------------------------------------------------

TEST(StreamHandleTest, TypedQueriesAndErrorPaths) {
  const ContinuousCpdOptions options = SmallOptions();
  const DataStream stream = SmallStream(500, 5);
  const auto [warm, live] = SplitWarmup(stream, options);

  StreamHandle handle = StreamHandle::Create("q", {6, 5}, options).value();
  ASSERT_TRUE(handle.Warmup(warm).ok());
  ASSERT_TRUE(handle.Initialize().ok());
  ASSERT_TRUE(handle.Ingest(live).ok());

  // Reconstruct: finite everywhere in range, Status outside.
  const double reconstructed = handle.Reconstruct({2, 3, 1}).value();
  EXPECT_TRUE(std::isfinite(reconstructed));
  EXPECT_EQ(handle.Reconstruct({2, 3}).status().code(),
            StatusCode::kInvalidArgument);  // Missing time index.
  EXPECT_EQ(handle.Reconstruct({6, 0, 0}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(handle.Reconstruct({0, 0, 3}).status().code(),
            StatusCode::kOutOfRange);  // Time slice >= W.

  // ComponentActivity has rank entries.
  const std::vector<double> activity = handle.ComponentActivity().value();
  ASSERT_EQ(activity.size(), 4u);

  // TopK: sorted scores, k clamped to the mode size, consistent with the
  // activity weights.
  const std::vector<TopEntry> top = handle.TopK(0, 3).value();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
  EXPECT_EQ(handle.TopK(0, 100).value().size(), 6u);
  {
    const FactorRowView row =
        handle.FactorRow(0, top[0].index).value();
    double expected = 0.0;
    for (int64_t r = 0; r < row.rank(); ++r) {
      expected += row[r] * activity[static_cast<size_t>(r)];
    }
    EXPECT_NEAR(top[0].score, expected, 1e-12);
  }
  EXPECT_EQ(handle.TopK(2, 3).status().code(),
            StatusCode::kInvalidArgument);  // Time mode not addressable.
  EXPECT_EQ(handle.TopK(0, 0).status().code(), StatusCode::kInvalidArgument);

  // TopKForComponent ranks by raw loading of one component.
  const std::vector<TopEntry> pattern =
      handle.TopKForComponent(1, 2, 2).value();
  ASSERT_EQ(pattern.size(), 2u);
  EXPECT_GE(pattern[0].score, pattern[1].score);
  EXPECT_EQ(handle.TopKForComponent(1, 99, 2).status().code(),
            StatusCode::kOutOfRange);

  // FactorRow bounds.
  EXPECT_EQ(handle.FactorRow(0, 6).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(handle.FactorRow(7, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Time mode rows are the window slices.
  EXPECT_TRUE(handle.FactorRow(2, handle.window_size() - 1).ok());

  // Fitness pair: the running estimate tracks the exact rescan.
  EXPECT_TRUE(std::isfinite(handle.ExactFitness()));
  EXPECT_TRUE(std::isfinite(handle.RunningFitness()));
}

// --- Ingestion error paths ------------------------------------------------

TEST(StreamHandleTest, IngestionStatusErrorPaths) {
  const ContinuousCpdOptions options = SmallOptions();
  StreamHandle handle = StreamHandle::Create("e", {6, 5}, options).value();

  // Live ingestion before Initialize is a FailedPrecondition.
  EXPECT_EQ(handle.Ingest(Tuple{{1, 1}, 1.0, 5}).code(),
            StatusCode::kFailedPrecondition);

  // Batch validation is atomic: a bad tuple mid-batch rejects everything.
  const std::vector<Tuple> bad_arity = {{{1, 1}, 1.0, 1}, {{1}, 1.0, 2}};
  EXPECT_EQ(handle.Warmup(bad_arity).code(), StatusCode::kInvalidArgument);
  const std::vector<Tuple> bad_range = {{{1, 1}, 1.0, 1}, {{1, 9}, 1.0, 2}};
  EXPECT_EQ(handle.Warmup(bad_range).code(), StatusCode::kInvalidArgument);
  const std::vector<Tuple> bad_order = {{{1, 1}, 1.0, 9}, {{1, 1}, 1.0, 2}};
  EXPECT_EQ(handle.Warmup(bad_order).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.Stats().window_nnz, 0);  // Nothing was applied.

  ASSERT_TRUE(handle.Warmup(std::vector<Tuple>{{{1, 1}, 1.0, 5}}).ok());
  ASSERT_TRUE(handle.Initialize().ok());

  // Double initialization and post-initialization warm-up are rejected.
  EXPECT_EQ(handle.Initialize().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.Warmup(std::vector<Tuple>{{{1, 1}, 1.0, 6}}).code(),
            StatusCode::kFailedPrecondition);

  // Chronology is enforced across calls, and time cannot regress.
  ASSERT_TRUE(handle.Ingest(Tuple{{2, 2}, 1.0, 50}).ok());
  EXPECT_EQ(handle.Ingest(Tuple{{2, 2}, 1.0, 49}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.AdvanceTo(10).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(handle.AdvanceTo(50).ok());

  // An empty batch is a no-op success.
  EXPECT_TRUE(handle.Ingest(std::span<const Tuple>()).ok());
}

// --- Umbrella-header reachability (the original README-flow check) --------

TEST(PublicApiTest, UmbrellaHeaderReachesToolkitAndPresets) {
  EXPECT_EQ(AllDatasetPresets().size(), 4u);
  RunningZScore stats;
  stats.Update(1.0);
  stats.Update(2.0);
  EXPECT_TRUE(std::isfinite(stats.Score(3.0)));
  // Engine options + variant names remain reachable.
  EXPECT_EQ(VariantName(SnsVariant::kRndPlus), "SNS+RND");
  EXPECT_TRUE(SmallOptions().Validate().ok());
}

TEST(PublicApiDeathTest, VariantNameFailsLoudlyOnOutOfRangeValues) {
  // An enum value cast from a bad integer must crash at the name lookup,
  // not flow onward as "SNS-?" (mirrors MakeUpdater's contract).
  EXPECT_DEATH(VariantName(static_cast<SnsVariant>(99)),
               "unhandled SnsVariant");
}

}  // namespace
}  // namespace sns
