// 4-mode (Ride-Austin-shaped) integration tests: every updater and baseline
// must handle tensors beyond order 3 — the paper's fourth dataset is
// (source, destination, color, time).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/periodic_runner.h"
#include "common/random.h"
#include "core/als.h"
#include "core/continuous_cpd.h"
#include "data/synthetic.h"
#include "experiments/harness.h"

namespace sns {
namespace {

DatasetSpec FourModeSpec() {
  DatasetSpec spec;
  spec.name = "mini-austin";
  spec.paper_name = "Mini Austin";
  spec.engine.rank = 3;
  spec.engine.window_size = 3;
  spec.engine.period = 60;
  spec.engine.sample_threshold = 10;
  spec.engine.clip_bound = 100.0;
  spec.engine.init.max_iterations = 20;
  spec.engine.seed = 3;
  spec.stream.mode_dims = {7, 6, 4};
  spec.stream.num_events = 2500;
  spec.stream.time_span = (1 + kLiveWindows) * 3 * 60;
  spec.stream.latent_rank = 3;
  spec.stream.diurnal_period = 360;
  spec.stream.seed = 33;
  return spec;
}

class FourModeVariantTest : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(FourModeVariantTest, TracksFourModeStream) {
  DatasetSpec spec = FourModeSpec();
  auto stream = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream.ok());
  RunResult result = RunContinuous(spec, stream.value(), GetParam());
  ASSERT_FALSE(result.fitness_curve.empty());
  for (const FitnessSample& sample : result.fitness_curve) {
    ASSERT_TRUE(std::isfinite(sample.fitness)) << VariantName(GetParam());
  }
  // The stable variants must hold positive fitness in the late phase.
  if (GetParam() == SnsVariant::kMat || GetParam() == SnsVariant::kVecPlus ||
      GetParam() == SnsVariant::kRndPlus) {
    EXPECT_GT(result.MeanFitness(0.3), 0.0) << VariantName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FourModeVariantTest,
    ::testing::Values(SnsVariant::kMat, SnsVariant::kVec, SnsVariant::kRnd,
                      SnsVariant::kVecPlus, SnsVariant::kRndPlus),
    [](const auto& info) {
      std::string out;
      for (char c : VariantName(info.param)) {
        if (c == '+') {
          out += "Plus";
        } else if (std::isalnum(static_cast<unsigned char>(c))) {
          out += c;
        }
      }
      return out;
    });

TEST(FourModeBaselineTest, BaselinesRunOnFourModes) {
  DatasetSpec spec = FourModeSpec();
  auto stream = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream.ok());
  for (const char* name : {"ALS", "OnlineSCP", "CP-stream", "NeCPD(1)"}) {
    RunResult result =
        RunPeriodic(spec, stream.value(), MakeBaseline(name, spec));
    ASSERT_FALSE(result.fitness_curve.empty()) << name;
    for (const FitnessSample& sample : result.fitness_curve) {
      ASSERT_TRUE(std::isfinite(sample.fitness)) << name;
    }
  }
}

TEST(FourModeGramTest, GramsConsistentAfterFourModeRun) {
  DatasetSpec spec = FourModeSpec();
  auto stream_or = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream_or.ok());
  const DataStream& stream = stream_or.value();

  ContinuousCpdOptions options = spec.engine;
  options.variant = SnsVariant::kRndPlus;
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();

  const int64_t warmup_end = spec.WarmupEndTime();
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    cpd->IngestOnly(stream.tuples()[i]);
  }
  cpd->InitializeWithAls();
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
  }

  for (int m = 0; m < cpd->model().num_modes(); ++m) {
    Matrix expected =
        MultiplyTransposeA(cpd->model().factor(m), cpd->model().factor(m));
    EXPECT_LT(
        MaxAbsDiff(cpd->state().grams[static_cast<size_t>(m)], expected),
        1e-6)
        << "mode " << m;
  }
}

}  // namespace
}  // namespace sns
