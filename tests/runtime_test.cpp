// Coverage of the asynchronous sharded service runtime: mailbox semantics,
// completion tickets, multi-threaded producers under both backpressure
// policies, sequence-token query consistency, the drain/shutdown lifecycle,
// and the differential guarantee that factor state after N events is
// bitwise identical between synchronous (shards = 0) and sharded
// (shards >= 1) execution. This file is the one the ThreadSanitizer CI job
// runs — every cross-thread handoff in src/runtime/ is exercised here.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "slicenstitch.h"

namespace sns {
namespace {

ContinuousCpdOptions SmallEngineOptions() {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  return options;
}

DataStream SmallStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

/// Splits a stream at the warm-up boundary W·T.
std::pair<std::span<const Tuple>, std::span<const Tuple>> SplitWarmup(
    const DataStream& stream, const ContinuousCpdOptions& options) {
  const std::span<const Tuple> tuples(stream.tuples());
  const int64_t warmup_end =
      static_cast<int64_t>(options.window_size) * options.period;
  const size_t i =
      static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  return {tuples.subspan(0, i), tuples.subspan(i)};
}

// --- Runtime primitives ---------------------------------------------------

TEST(MailboxTest, FifoOrderAndCapacity) {
  Mailbox mailbox(2);
  std::vector<int> ran;
  EXPECT_EQ(mailbox.Push([&] { ran.push_back(1); }, /*block=*/false),
            Mailbox::PushResult::kOk);
  EXPECT_EQ(mailbox.Push([&] { ran.push_back(2); }, /*block=*/false),
            Mailbox::PushResult::kOk);
  // At capacity: a non-blocking push is refused without enqueueing.
  EXPECT_EQ(mailbox.Push([&] { ran.push_back(3); }, /*block=*/false),
            Mailbox::PushResult::kFull);
  EXPECT_EQ(mailbox.size(), 2);

  Task task;
  ASSERT_TRUE(mailbox.Pop(task));
  task();
  mailbox.TaskDone();
  ASSERT_TRUE(mailbox.Pop(task));
  task();
  mailbox.TaskDone();
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));  // FIFO.

  mailbox.WaitIdle();  // Quiescent: returns immediately.
  mailbox.Close();
  EXPECT_EQ(mailbox.Push([] {}, /*block=*/true),
            Mailbox::PushResult::kClosed);
  EXPECT_FALSE(mailbox.Pop(task));  // Closed and drained.
}

TEST(MailboxTest, BlockingPushWaitsForRoom) {
  Mailbox mailbox(1);
  ASSERT_EQ(mailbox.Push([] {}, /*block=*/false), Mailbox::PushResult::kOk);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    // Full mailbox: this push must block until the consumer pops.
    EXPECT_EQ(mailbox.Push([] {}, /*block=*/true), Mailbox::PushResult::kOk);
    pushed.store(true);
  });

  Task task;
  ASSERT_TRUE(mailbox.Pop(task));
  task();
  mailbox.TaskDone();
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(mailbox.Pop(task));
  task();
  mailbox.TaskDone();
  mailbox.WaitIdle();
  mailbox.Close();
}

TEST(TicketTest, CompletedAndEmptyTickets) {
  const Ticket empty;
  EXPECT_FALSE(empty.valid());

  const Ticket done = Ticket::Completed(Status::ResourceExhausted("full"));
  EXPECT_TRUE(done.valid());
  EXPECT_TRUE(done.done());
  EXPECT_EQ(done.Wait().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(done.sequence(), 0u);  // Never enqueued.
}

TEST(ServiceOptionsTest, ValidateAndPolicyNames) {
  ServiceOptions options;
  EXPECT_TRUE(options.Validate().ok());  // shards = 0 inline default.
  options.shards = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.shards = 2;
  options.max_queue_depth = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(SnsService::Create(options).ok());
  options.max_queue_depth = 8;
  EXPECT_TRUE(SnsService::Create(options).ok());

  EXPECT_STREQ(BackpressurePolicyName(BackpressurePolicy::kBlock), "block");
  EXPECT_STREQ(BackpressurePolicyName(BackpressurePolicy::kReject),
               "reject");
}

// --- The ticketed surface at shards = 0 (inline degenerate case) ----------

TEST(RuntimeTest, InlineServiceRunsTicketedSurfaceSynchronously) {
  SnsService service;  // shards = 0.
  EXPECT_EQ(service.shards(), 0);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // Warmup + Initialize were ticketed ops too (sequence 1 and 2).
  const uint64_t base = service.AppliedSequence("s").value();
  EXPECT_EQ(base, 2u);

  const Ticket first =
      service.IngestAsync("s", std::vector<Tuple>{{{2, 2}, 1.0, 95}});
  ASSERT_TRUE(first.valid());
  EXPECT_TRUE(first.done());  // Inline: applied before the call returned.
  EXPECT_TRUE(first.Wait().ok());
  EXPECT_EQ(first.sequence(), base + 1);

  const Ticket second = service.AdvanceToAsync("s", 120);
  EXPECT_TRUE(second.done());
  EXPECT_TRUE(second.Wait().ok());
  EXPECT_EQ(second.sequence(), base + 2);
  EXPECT_EQ(service.AppliedSequence("s").value(), base + 2);

  // Unknown streams complete immediately with NotFound, consuming no seq.
  const Ticket unknown = service.IngestAsync("x", std::vector<Tuple>{});
  EXPECT_TRUE(unknown.done());
  EXPECT_EQ(unknown.Wait().code(), StatusCode::kNotFound);
  EXPECT_EQ(unknown.sequence(), 0u);

  // Shutdown fences mutations exactly like the sharded configuration;
  // queries keep answering. Drain stays a no-op.
  service.Drain();
  service.Shutdown();
  const Ticket refused =
      service.IngestAsync("s", std::vector<Tuple>{{{3, 3}, 1.0, 130}});
  ASSERT_TRUE(refused.done());
  EXPECT_EQ(refused.Wait().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(refused.sequence(), 0u);
  EXPECT_EQ(service.AdvanceTo("s", 140).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stats("s").value().last_time, 120);
}

// --- Validation errors travel through tickets -----------------------------

TEST(RuntimeTest, AsyncValidationErrorsCarriedByTickets) {
  ServiceOptions runtime;
  runtime.shards = 1;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());

  // Live ingestion before Initialize fails — at application time, on the
  // shard, with the status surfaced through the ticket.
  const Ticket early =
      service.IngestAsync("s", std::vector<Tuple>{{{1, 1}, 1.0, 5}});
  EXPECT_EQ(early.Wait().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // An out-of-range coordinate is hostile input: admission control refuses
  // it before a token is issued (kInvalidArgument, nothing enqueued).
  const Ticket bad_range =
      service.IngestAsync("s", std::vector<Tuple>{{{9, 1}, 1.0, 95}});
  EXPECT_EQ(bad_range.Wait().code(), StatusCode::kInvalidArgument);
  // The failed batches were atomic no-ops: a good batch still applies.
  EXPECT_TRUE(service
                  .IngestAsync("s", std::vector<Tuple>{{{2, 2}, 1.0, 95}})
                  .Wait()
                  .ok());
  EXPECT_EQ(service.Stats("s").value().last_time, 95);
}

// --- Multi-threaded producers into one stream under kBlock ----------------

TEST(RuntimeTest, MultiProducerSingleStreamBlockingBackpressure) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 64;

  ServiceOptions runtime;
  runtime.shards = 1;
  runtime.backpressure = BackpressurePolicy::kBlock;
  runtime.max_queue_depth = 4;  // Tiny queue: pushes really do block.
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  // Prime the clock to the storm's timestamp so the slide/expiry events of
  // the 10 → 100 jump land here, and the storm itself is pure arrivals.
  ASSERT_TRUE(service.Ingest("s", Tuple{{0, 0}, 1.0, 100}).ok());
  const int64_t base_events = service.Stats("s").value().events_processed;
  const uint64_t base_seq = service.AppliedSequence("s").value();

  // All producers ingest at one constant timestamp, so every interleaving
  // is chronologically valid and every ticket must succeed.
  std::vector<std::vector<Ticket>> tickets(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &tickets, p] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        tickets[static_cast<size_t>(p)].push_back(service.IngestAsync(
            "s", std::vector<Tuple>{
                     {{p % 4, b % 4}, 1.0, 100}}));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  service.Drain();

  std::vector<uint64_t> sequences;
  for (const auto& produced : tickets) {
    for (const Ticket& ticket : produced) {
      ASSERT_TRUE(ticket.done());  // Drained with producers paused.
      EXPECT_TRUE(ticket.Wait().ok()) << ticket.Wait().ToString();
      sequences.push_back(ticket.sequence());
    }
  }
  // Sequence tokens are exactly base+1..base+N: every accepted operation
  // got a unique slot in the stream's total order.
  std::sort(sequences.begin(), sequences.end());
  ASSERT_EQ(sequences.size(),
            static_cast<size_t>(kProducers * kBatchesPerProducer));
  for (size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], base_seq + i + 1);
  }
  EXPECT_EQ(service.AppliedSequence("s").value(), sequences.back());
  // Nothing was lost: one arrival event per single-tuple batch (and no
  // slides — the whole storm shares one timestamp).
  EXPECT_EQ(service.Stats("s").value().events_processed,
            base_events +
                static_cast<int64_t>(kProducers * kBatchesPerProducer));
}

// --- kReject observable via ticket status ---------------------------------

TEST(RuntimeTest, RejectBackpressureObservableViaTicketStatus) {
  ServiceOptions runtime;
  runtime.shards = 1;
  runtime.backpressure = BackpressurePolicy::kReject;
  runtime.max_queue_depth = 1;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  // Prime the clock to the test's timestamp so the accepted batch below is
  // exactly one arrival event on top of this baseline.
  ASSERT_TRUE(service.Ingest("s", Tuple{{1, 2}, 1.0, 95}).ok());
  const int64_t base_events = service.Stats("s").value().events_processed;
  const uint64_t base_seq = service.AppliedSequence("s").value();

  // Wedge the shard: a query hop whose callback blocks until released, run
  // from a helper thread (the hop itself is a blocking request/reply).
  std::promise<void> entered;
  std::promise<void> release;
  std::future<void> release_future = release.get_future();
  std::thread blocker([&] {
    const StatusOr<int> hop =
        service.Query("s", [&](const StreamHandle&) {
          entered.set_value();
          release_future.wait();
          return 1;
        });
    EXPECT_TRUE(hop.ok());
  });
  entered.get_future().wait();  // The shard is now busy, its queue empty.

  // First batch occupies the single queue slot; the second is refused
  // immediately — no blocking — with the rejection visible on the ticket.
  const Ticket accepted =
      service.IngestAsync("s", std::vector<Tuple>{{{2, 2}, 1.0, 95}});
  EXPECT_FALSE(accepted.done());
  const Ticket rejected =
      service.IngestAsync("s", std::vector<Tuple>{{{3, 3}, 1.0, 95}});
  ASSERT_TRUE(rejected.done());
  EXPECT_EQ(rejected.Wait().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.sequence(), 0u);  // Never entered the stream's order.

  release.set_value();
  blocker.join();
  service.Drain();
  EXPECT_TRUE(accepted.Wait().ok());
  EXPECT_EQ(accepted.sequence(), base_seq + 1);
  // Only the accepted batch was applied; the next ingest takes the very
  // next sequence — the rejected operation left no hole in the order.
  EXPECT_EQ(service.Stats("s").value().events_processed, base_events + 1);
  const Ticket next =
      service.IngestAsync("s", std::vector<Tuple>{{{1, 2}, 1.0, 95}});
  EXPECT_TRUE(next.Wait().ok());
  EXPECT_EQ(next.sequence(), base_seq + 2);
}

// --- Query-after-ticket consistency ---------------------------------------

TEST(RuntimeTest, QueriesObserveEveryTicketIssuedBeforeThem) {
  ServiceOptions runtime;
  runtime.shards = 2;
  SnsService service(runtime);
  const ContinuousCpdOptions options = SmallEngineOptions();
  const DataStream stream = SmallStream(500, 11);
  const auto [warm, live] = SplitWarmup(stream, options);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, options).ok());
  ASSERT_TRUE(service.Warmup("s", warm).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // Issue a ticket, then query WITHOUT waiting on it: the query rides the
  // same FIFO mailbox, so it must observe the batch the ticket covers.
  size_t i = 0;
  uint64_t last_sequence = 0;
  while (i < live.size()) {
    const size_t n = std::min<size_t>(17, live.size() - i);
    const std::span<const Tuple> batch = live.subspan(i, n);
    const Ticket ticket = service.IngestAsync("s", batch);
    const StreamStats stats = service.Stats("s").value();
    EXPECT_GE(stats.last_time, batch.back().time);
    // The ticket's operation executed before the query hop returned.
    EXPECT_TRUE(ticket.done());
    EXPECT_TRUE(ticket.Wait().ok());
    EXPECT_GE(service.AppliedSequence("s").value(), ticket.sequence());
    last_sequence = ticket.sequence();
    i += n;
  }
  EXPECT_EQ(last_sequence, service.AppliedSequence("s").value());
}

// --- Drain / Shutdown lifecycle -------------------------------------------

TEST(RuntimeTest, DrainFlushesAndShutdownStopsMutations) {
  ServiceOptions runtime;
  runtime.shards = 2;
  SnsService service(runtime);
  const ContinuousCpdOptions options = SmallEngineOptions();
  const DataStream stream = SmallStream(300, 12);
  const auto [warm, live] = SplitWarmup(stream, options);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(service.CreateStream(name, {6, 5}, options).ok());
    ASSERT_TRUE(service.Warmup(name, warm).ok());
    ASSERT_TRUE(service.Initialize(name).ok());
  }

  std::vector<Ticket> tickets;
  for (const char* name : {"a", "b", "c"}) {
    for (size_t i = 0; i < live.size(); i += 50) {
      tickets.push_back(service.IngestAsync(
          name, live.subspan(i, std::min<size_t>(50, live.size() - i))));
    }
  }
  service.Drain();
  for (const Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.done());
    EXPECT_TRUE(ticket.Wait().ok());
  }

  service.Shutdown();
  // Mutations are refused from now on...
  const Ticket refused =
      service.IngestAsync("a", std::vector<Tuple>{{{1, 1}, 1.0, 9999}});
  ASSERT_TRUE(refused.done());
  EXPECT_EQ(refused.Wait().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.AdvanceTo("a", 9999).code(),
            StatusCode::kFailedPrecondition);
  // ...but queries still answer, executed inline (the threads are gone).
  const StreamStats stats = service.Stats("a").value();
  EXPECT_EQ(stats.last_time, stream.end_time());
  EXPECT_GT(stats.events_processed, 0);
  service.Shutdown();  // Idempotent.
  service.Drain();     // No-op after shutdown.
}

// --- Differential: sharded execution is bitwise identical to inline -------

/// Full factor state of one stream, read through a shard-safe query hop.
std::vector<double> FactorState(SnsService& service,
                                const std::string& name) {
  return service
      .Query(name,
             [](const StreamHandle& handle) {
               std::vector<double> out;
               for (int mode = 0; mode < handle.num_modes(); ++mode) {
                 const int64_t rows =
                     mode + 1 == handle.num_modes()
                         ? handle.window_size()
                         : handle.mode_dims()[static_cast<size_t>(mode)];
                 for (int64_t row = 0; row < rows; ++row) {
                   const FactorRowView view =
                       handle.FactorRow(mode, row).value();
                   out.insert(out.end(), view.begin(), view.end());
                 }
               }
               return out;
             })
      .value();
}

TEST(RuntimeTest, FactorStateBitwiseIdenticalAcrossShardCounts) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  const std::vector<std::string> names = {"u", "v", "w"};
  std::vector<DataStream> streams;
  for (uint64_t seed = 21; seed < 24; ++seed) {
    streams.push_back(SmallStream(600, seed));
  }

  // The same three streams and the same interleaved batch schedule, run at
  // shards = 0 (inline), 1 (all streams one worker), and 4 (more shards
  // than streams). Per-stream event order is pinned by shard assignment,
  // so every factor value must match bitwise.
  std::vector<std::vector<std::vector<double>>> states;  // [config][stream]
  std::vector<std::vector<int64_t>> events;              // [config][stream]
  for (const int shards : {0, 1, 4}) {
    ServiceOptions runtime;
    runtime.shards = shards;
    SnsService service(runtime);
    std::vector<std::span<const Tuple>> lives;
    for (size_t s = 0; s < names.size(); ++s) {
      const auto [warm, live] = SplitWarmup(streams[s], options);
      ASSERT_TRUE(service.CreateStream(names[s], {6, 5}, options).ok());
      ASSERT_TRUE(service.Warmup(names[s], warm).ok());
      ASSERT_TRUE(service.Initialize(names[s]).ok());
      lives.push_back(live);
    }
    // Interleave: stream-round-robin batches of rotating sizes, async.
    std::vector<size_t> offsets(names.size(), 0);
    std::vector<Ticket> tickets;
    const size_t sizes[] = {1, 16, 7, 33};
    size_t next_size = 0;
    bool any = true;
    while (any) {
      any = false;
      for (size_t s = 0; s < names.size(); ++s) {
        if (offsets[s] >= lives[s].size()) continue;
        const size_t n = std::min(sizes[next_size++ % 4],
                                  lives[s].size() - offsets[s]);
        tickets.push_back(
            service.IngestAsync(names[s], lives[s].subspan(offsets[s], n)));
        offsets[s] += n;
        any = true;
      }
    }
    service.Drain();
    for (const Ticket& ticket : tickets) {
      ASSERT_TRUE(ticket.Wait().ok());
    }
    states.emplace_back();
    events.emplace_back();
    for (const std::string& name : names) {
      states.back().push_back(FactorState(service, name));
      events.back().push_back(
          service.Stats(name).value().events_processed);
    }
  }

  for (size_t config = 1; config < states.size(); ++config) {
    for (size_t s = 0; s < names.size(); ++s) {
      EXPECT_EQ(events[config][s], events[0][s]);
      ASSERT_EQ(states[config][s].size(), states[0][s].size());
      for (size_t i = 0; i < states[0][s].size(); ++i) {
        // Bitwise: identical event order + identical arithmetic.
        ASSERT_EQ(states[config][s][i], states[0][s][i])
            << "config " << config << " stream " << names[s] << " entry "
            << i;
      }
    }
  }
}

// --- Stream removal under a live runtime ----------------------------------

TEST(RuntimeTest, RemoveDrainsOwningShardFirst) {
  ServiceOptions runtime;
  runtime.shards = 2;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("gone", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("gone", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("gone").ok());
  std::vector<Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(service.IngestAsync(
        "gone", std::vector<Tuple>{{{i % 4, i % 4}, 1.0, 95 + i}}));
  }
  // Remove flushes the owning shard before destroying the handle — every
  // accepted ticket completes with its real status, none dangles.
  ASSERT_TRUE(service.Remove("gone").ok());
  for (const Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.done());
    EXPECT_TRUE(ticket.Wait().ok());
  }
  EXPECT_EQ(service.Ingest("gone", Tuple{{1, 1}, 1.0, 200}).code(),
            StatusCode::kNotFound);
}

// --- Ticket deadlines -----------------------------------------------------

TEST(DeadlineTest, MailboxBlockingPushHonorsDeadline) {
  Mailbox mailbox(1);
  ASSERT_EQ(mailbox.Push([] {}, /*block=*/false), Mailbox::PushResult::kOk);
  // Full queue, nobody draining: a deadline-bounded blocking push times out
  // instead of wedging the producer forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(mailbox.Push([] {}, /*block=*/true, deadline),
            Mailbox::PushResult::kTimedOut);
  EXPECT_EQ(mailbox.size(), 1);  // Nothing was enqueued.
}

TEST(DeadlineTest, TicketWaitForTimesOutWithoutCancelling) {
  ServiceOptions runtime;
  runtime.shards = 1;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // Wedge the shard so the enqueued ingest cannot complete yet.
  std::promise<void> entered;
  std::promise<void> release;
  std::future<void> release_future = release.get_future();
  std::thread blocker([&] {
    const StatusOr<int> hop = service.Query("s", [&](const StreamHandle&) {
      entered.set_value();
      release_future.wait();
      return 1;
    });
    EXPECT_TRUE(hop.ok());
  });
  entered.get_future().wait();

  const Ticket pending =
      service.IngestAsync("s", std::vector<Tuple>{{{2, 2}, 1.0, 95}});
  ASSERT_FALSE(pending.done());
  // A timed-out WaitFor reports kDeadlineExceeded but does NOT cancel the
  // operation — the accepted token is already part of the stream's order.
  EXPECT_EQ(pending.WaitFor(std::chrono::milliseconds(10)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(pending.done());

  release.set_value();
  blocker.join();
  EXPECT_TRUE(pending.Wait().ok());  // The op itself landed fine.
  EXPECT_TRUE(pending.WaitFor(std::chrono::milliseconds(1)).ok());
}

// The deadline acceptance test: a wedged shard with a full queue yields
// kDeadlineExceeded within the deadline bound — no token consumed, nothing
// enqueued — and the stream resumes uncorrupted once the wedge clears.
TEST(DeadlineTest, WedgedShardYieldsDeadlineExceededWithoutCorruption) {
  ServiceOptions runtime;
  runtime.shards = 1;
  runtime.backpressure = BackpressurePolicy::kBlock;
  runtime.max_queue_depth = 1;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(service.Ingest("s", Tuple{{1, 2}, 1.0, 95}).ok());
  const uint64_t base_seq = service.AppliedSequence("s").value();

  // Wedge the shard, then fill its single queue slot.
  std::promise<void> entered;
  std::promise<void> release;
  std::future<void> release_future = release.get_future();
  std::thread blocker([&] {
    const StatusOr<int> hop = service.Query("s", [&](const StreamHandle&) {
      entered.set_value();
      release_future.wait();
      return 1;
    });
    EXPECT_TRUE(hop.ok());
  });
  entered.get_future().wait();
  const Ticket accepted =
      service.IngestAsync("s", std::vector<Tuple>{{{2, 2}, 1.0, 96}});
  EXPECT_FALSE(accepted.done());

  // Under kBlock this push would wedge the producer with the shard; the
  // deadline bounds it. The refusal must arrive within (a generous
  // multiple of) the deadline, carry the typed code, and consume no token.
  const auto t0 = std::chrono::steady_clock::now();
  const Ticket timed_out = service.IngestAsync(
      "s", std::vector<Tuple>{{{3, 3}, 1.0, 97}},
      std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(timed_out.done());
  EXPECT_EQ(timed_out.Wait().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(timed_out.sequence(), 0u);  // Never entered the stream's order.
  EXPECT_GE(elapsed, std::chrono::milliseconds(50));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  // AdvanceToAsync honors the same bound.
  EXPECT_EQ(service
                .AdvanceToAsync("s", 98, std::chrono::milliseconds(10))
                .Wait()
                .code(),
            StatusCode::kDeadlineExceeded);

  // Unwedge: the accepted work lands, and the stream is uncorrupted — the
  // timed-out submissions left no gap in the token sequence.
  release.set_value();
  blocker.join();
  ASSERT_TRUE(accepted.Wait().ok());
  EXPECT_EQ(service.AppliedSequence("s").value(), base_seq + 1);
  EXPECT_TRUE(service
                  .IngestAsync("s", std::vector<Tuple>{{{3, 3}, 1.0, 99}},
                               std::chrono::milliseconds(1000))
                  .Wait()
                  .ok());
  EXPECT_EQ(service.Stats("s").value().last_time, 99);
}

TEST(DeadlineTest, DeadlineIrrelevantWhenTheShardKeepsUp) {
  ServiceOptions runtime;
  runtime.shards = 2;
  SnsService service(runtime);
  ASSERT_TRUE(
      service.CreateStream("s", {4, 4}, SmallEngineOptions()).ok());
  ASSERT_TRUE(
      service.Warmup("s", std::vector<Tuple>{{{1, 1}, 1.0, 10}}).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  std::vector<Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(service.IngestAsync(
        "s", std::vector<Tuple>{{{i % 4, i % 4}, 1.0, 95 + i}},
        std::chrono::milliseconds(5000)));
  }
  for (Ticket& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());
}

}  // namespace
}  // namespace sns
