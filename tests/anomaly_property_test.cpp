// Randomized property tests for the anomaly-detection metrics: labeling,
// precision@k, and detection delay must agree with brute-force definitions
// on arbitrary scenarios.

#include <algorithm>

#include <gtest/gtest.h>

#include "apps/anomaly_detection.h"
#include "common/random.h"

namespace sns {
namespace {

struct Scenario {
  std::vector<InjectedAnomaly> injected;
  std::vector<Detection> detections;
};

Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario scenario;
  const int num_injected = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < num_injected; ++i) {
    Tuple tuple{{static_cast<int32_t>(rng.UniformInt(0, 3)),
                 static_cast<int32_t>(rng.UniformInt(0, 3))},
                10.0, rng.UniformInt(100, 500)};
    scenario.injected.push_back({tuple, tuple.time});
  }
  const int num_detections = static_cast<int>(rng.UniformInt(0, 40));
  for (int i = 0; i < num_detections; ++i) {
    scenario.detections.push_back(
        {rng.UniformInt(50, 600),
         {static_cast<int32_t>(rng.UniformInt(0, 3)),
          static_cast<int32_t>(rng.UniformInt(0, 3))},
         rng.UniformDouble(0.0, 20.0),
         false});
  }
  return scenario;
}

class AnomalyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnomalyPropertyTest, LabelingMatchesBruteForce) {
  Scenario scenario = RandomScenario(GetParam());
  const int64_t slack = 50;
  LabelDetections(scenario.injected, slack, &scenario.detections);
  for (const Detection& detection : scenario.detections) {
    bool expected = false;
    for (const InjectedAnomaly& anomaly : scenario.injected) {
      if (anomaly.tuple.index == detection.index &&
          detection.event_time >= anomaly.injection_time &&
          detection.event_time <= anomaly.injection_time + slack) {
        expected = true;
      }
    }
    EXPECT_EQ(detection.is_injected, expected);
  }
}

TEST_P(AnomalyPropertyTest, PrecisionMatchesBruteForceTopK) {
  Scenario scenario = RandomScenario(GetParam() + 1000);
  LabelDetections(scenario.injected, 50, &scenario.detections);
  const int k = 5;
  // Brute force: sort by z descending, count hits in the first k.
  std::vector<Detection> sorted = scenario.detections;
  std::sort(sorted.begin(), sorted.end(),
            [](const Detection& a, const Detection& b) {
              return a.z_score > b.z_score;
            });
  int hits = 0;
  for (size_t i = 0; i < sorted.size() && i < static_cast<size_t>(k); ++i) {
    hits += sorted[i].is_injected ? 1 : 0;
  }
  EXPECT_DOUBLE_EQ(PrecisionAtTopK(scenario.detections, k),
                   static_cast<double>(hits) / k);
}

TEST_P(AnomalyPropertyTest, DelayIsBoundedByPenaltyAndNonNegative) {
  Scenario scenario = RandomScenario(GetParam() + 2000);
  LabelDetections(scenario.injected, 50, &scenario.detections);
  const double penalty = 777.0;
  const double delay =
      MeanDetectionDelay(scenario.injected, scenario.detections, 10, penalty);
  EXPECT_GE(delay, 0.0);
  EXPECT_LE(delay, penalty);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnomalyPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace sns
