// Unit and property tests for the dense linear algebra substrate.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/gram_solve.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/pseudo_inverse.h"
#include "linalg/symmetric_eigen.h"

namespace sns {
namespace {

Matrix RandomSpd(int64_t n, Rng& rng, double ridge = 0.5) {
  Matrix b = Matrix::RandomNormal(n, n, rng);
  Matrix spd = MultiplyTransposeA(b, b);
  for (int64_t i = 0; i < n; ++i) spd(i, i) += ridge;
  return spd;
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, IdentityAndFrobenius) {
  Matrix id = Matrix::Identity(4);
  EXPECT_DOUBLE_EQ(id.FrobeniusNorm(), 2.0);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(2, 1), 0.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;  b(0, 1) = 8;
  b(1, 0) = 9;  b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyTransposeAMatchesExplicitTranspose) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(6, 3, rng);
  Matrix b = Matrix::RandomNormal(6, 4, rng);
  Matrix expected = Multiply(a.Transposed(), b);
  Matrix actual = MultiplyTransposeA(a, b);
  EXPECT_LT(MaxAbsDiff(expected, actual), 1e-12);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(6);
  Matrix a = Matrix::RandomNormal(5, 7, rng);
  EXPECT_LT(MaxAbsDiff(a, a.Transposed().Transposed()), 1e-15);
}

TEST(MatrixTest, HadamardElementwise) {
  Rng rng(8);
  Matrix a = Matrix::RandomNormal(4, 4, rng);
  Matrix b = Matrix::RandomNormal(4, 4, rng);
  Matrix h = Hadamard(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(h(i, j), a(i, j) * b(i, j));
    }
  }
}

// The Gram identity the SliceNStitch derivation leans on (Eq. 8):
// (A ⊙ B)'(A ⊙ B) = (A'A) ∗ (B'B).
TEST(MatrixTest, KhatriRaoGramIdentity) {
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(5, 3, rng);
  Matrix b = Matrix::RandomNormal(4, 3, rng);
  Matrix kr = KhatriRao(a, b);
  ASSERT_EQ(kr.rows(), 20);
  Matrix lhs = MultiplyTransposeA(kr, kr);
  Matrix rhs = Hadamard(MultiplyTransposeA(a, a), MultiplyTransposeA(b, b));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-10);
}

TEST(MatrixTest, KhatriRaoRowLayout) {
  // Row (i*K + k) of A ⊙ B must equal A(i,:) ∗ B(k,:).
  Rng rng(10);
  Matrix a = Matrix::RandomNormal(3, 2, rng);
  Matrix b = Matrix::RandomNormal(2, 2, rng);
  Matrix kr = KhatriRao(a, b);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t k = 0; k < 2; ++k) {
      for (int64_t r = 0; r < 2; ++r) {
        EXPECT_DOUBLE_EQ(kr(i * 2 + k, r), a(i, r) * b(k, r));
      }
    }
  }
}

TEST(MatrixTest, AddSubtractScale) {
  Rng rng(11);
  Matrix a = Matrix::RandomNormal(3, 3, rng);
  Matrix b = Matrix::RandomNormal(3, 3, rng);
  EXPECT_LT(MaxAbsDiff(Subtract(Add(a, b), b), a), 1e-12);
  EXPECT_LT(MaxAbsDiff(Scale(a, 2.0), Add(a, a)), 1e-12);
}

TEST(MatrixTest, RowTimesMatrix) {
  Rng rng(12);
  Matrix m = Matrix::RandomNormal(3, 4, rng);
  const double row[3] = {1.0, -2.0, 0.5};
  double out[4];
  RowTimesMatrix(row, m, out);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out[j], row[0] * m(0, j) + row[1] * m(1, j) + row[2] * m(2, j),
                1e-12);
  }
}

TEST(CholeskyTest, ReconstructsFactorization) {
  Rng rng(13);
  Matrix a = RandomSpd(6, rng);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& lower = chol.value().lower();
  Matrix recon = Multiply(lower, lower.Transposed());
  EXPECT_LT(MaxAbsDiff(recon, a), 1e-9);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Rng rng(14);
  Matrix a = RandomSpd(5, rng);
  std::vector<double> x_true = {1, -2, 3, 0.5, -0.25};
  std::vector<double> b(5, 0.0);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 5; ++j) b[i] += a(i, j) * x_true[j];
  }
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  std::vector<double> x = chol.value().Solve(b);
  for (int64_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CholeskyTest, MatrixSolve) {
  Rng rng(15);
  Matrix a = RandomSpd(4, rng);
  Matrix x_true = Matrix::RandomNormal(4, 3, rng);
  Matrix b = Multiply(a, x_true);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_LT(MaxAbsDiff(chol.value().Solve(b), x_true), 1e-9);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::Identity(3);
  a(2, 2) = -1.0;
  EXPECT_FALSE(Cholesky::Factorize(a).ok());
}

TEST(SymmetricEigenTest, DiagonalizesKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 2.0;
  SymmetricEigen eig = DecomposeSymmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, ReconstructsRandomSymmetric) {
  Rng rng(16);
  Matrix b = Matrix::RandomNormal(8, 8, rng);
  Matrix a = Add(b, b.Transposed());  // symmetric, possibly indefinite
  SymmetricEigen eig = DecomposeSymmetric(a);
  // V diag(values) V' == A.
  Matrix d(8, 8);
  for (int64_t i = 0; i < 8; ++i) d(i, i) = eig.values[i];
  Matrix recon = Multiply(Multiply(eig.vectors, d), eig.vectors.Transposed());
  EXPECT_LT(MaxAbsDiff(recon, a), 1e-8);
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  Rng rng(17);
  Matrix a = RandomSpd(7, rng);
  SymmetricEigen eig = DecomposeSymmetric(a);
  Matrix vtv = MultiplyTransposeA(eig.vectors, eig.vectors);
  EXPECT_LT(MaxAbsDiff(vtv, Matrix::Identity(7)), 1e-9);
}

TEST(PseudoInverseTest, InvertsFullRankSpd) {
  Rng rng(18);
  Matrix a = RandomSpd(6, rng);
  Matrix pinv = PseudoInverseSymmetric(a);
  EXPECT_LT(MaxAbsDiff(Multiply(a, pinv), Matrix::Identity(6)), 1e-8);
}

// All four Moore–Penrose conditions on a singular symmetric matrix.
TEST(PseudoInverseTest, MoorePenroseConditionsOnSingularMatrix) {
  Rng rng(19);
  Matrix b = Matrix::RandomNormal(3, 6, rng);  // rank <= 3
  Matrix a = MultiplyTransposeA(b, b);         // 6x6 singular PSD
  Matrix p = PseudoInverseSymmetric(a);
  Matrix apa = Multiply(Multiply(a, p), a);
  Matrix pap = Multiply(Multiply(p, a), p);
  Matrix ap = Multiply(a, p);
  Matrix pa = Multiply(p, a);
  EXPECT_LT(MaxAbsDiff(apa, a), 1e-7);
  EXPECT_LT(MaxAbsDiff(pap, p), 1e-7);
  EXPECT_LT(MaxAbsDiff(ap, ap.Transposed()), 1e-8);
  EXPECT_LT(MaxAbsDiff(pa, pa.Transposed()), 1e-8);
}

TEST(PseudoInverseTest, ZeroMatrixHasZeroPinv) {
  Matrix zero(4, 4);
  Matrix p = PseudoInverseSymmetric(zero);
  EXPECT_EQ(p.MaxAbs(), 0.0);
}

TEST(PseudoInverseTest, SolveRowSystemMatchesLeastSquares) {
  Rng rng(20);
  Matrix h = RandomSpd(5, rng);
  Matrix h_pinv = PseudoInverseSymmetric(h);
  std::vector<double> b = {1, 2, 3, 4, 5};
  std::vector<double> x(5);
  SolveRowSystem(h_pinv, b.data(), x.data());
  // x H should give back b for a full-rank H.
  std::vector<double> recon(5, 0.0);
  for (int64_t j = 0; j < 5; ++j) {
    for (int64_t i = 0; i < 5; ++i) recon[j] += x[i] * h(i, j);
  }
  for (int64_t j = 0; j < 5; ++j) EXPECT_NEAR(recon[j], b[j], 1e-8);
}

// Parameterized sweep: pinv agrees with Cholesky-based solve on random SPD
// systems across sizes.
class PinvVsCholeskyTest : public ::testing::TestWithParam<int> {};

TEST_P(PinvVsCholeskyTest, AgreesWithCholeskySolve) {
  const int n = GetParam();
  Rng rng(100 + n);
  Matrix h = RandomSpd(n, rng, 1.0);
  Matrix h_pinv = PseudoInverseSymmetric(h);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.Normal();
  auto chol = Cholesky::Factorize(h);
  ASSERT_TRUE(chol.ok());
  std::vector<double> x_chol = chol.value().Solve(b);
  std::vector<double> x_pinv(n);
  SolveRowSystem(h_pinv, b.data(), x_pinv.data());  // H symmetric: same sol.
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x_pinv[i], x_chol[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PinvVsCholeskyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 20, 32));

// --- In-place hot-path kernels ---------------------------------------------

TEST(InPlaceKernelsTest, HadamardIntoMatchesHadamard) {
  Rng rng(41);
  Matrix a = Matrix::RandomNormal(4, 3, rng);
  Matrix b = Matrix::RandomNormal(4, 3, rng);
  Matrix expected = Hadamard(a, b);
  Matrix out(4, 3);
  HadamardInto(a, b, out);
  EXPECT_EQ(MaxAbsDiff(out, expected), 0.0);
  // Aliasing out with an input is allowed.
  HadamardInto(a, b, a);
  EXPECT_EQ(MaxAbsDiff(a, expected), 0.0);
}

TEST(InPlaceKernelsTest, HadamardAccumulateMatchesHadamard) {
  Rng rng(42);
  Matrix a = Matrix::RandomNormal(3, 3, rng);
  Matrix b = Matrix::RandomNormal(3, 3, rng);
  Matrix expected = Hadamard(a, b);
  HadamardAccumulate(a, b);
  EXPECT_EQ(MaxAbsDiff(a, expected), 0.0);
}

TEST(InPlaceKernelsTest, AddOuterProduct) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 2.0;
  // Padded contract: u and v span m.stride() doubles, padding at 0.0.
  const double u[4] = {2.0, -1.0, 0.0, 0.0};
  const double v[4] = {3.0, 4.0, 0.0, 0.0};
  AddOuterProduct(m, u, v);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0 + 6.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0 - 4.0);
}

TEST(InPlaceKernelsTest, MultiplyTransposeAIntoMatchesAllocatingForm) {
  Rng rng(43);
  Matrix a = Matrix::RandomNormal(6, 4, rng);
  Matrix b = Matrix::RandomNormal(6, 3, rng);
  Matrix expected = MultiplyTransposeA(a, b);
  Matrix out(4, 3);
  out.Fill(99.0);  // Must be fully overwritten.
  MultiplyTransposeAInto(a, b, out);
  EXPECT_EQ(MaxAbsDiff(out, expected), 0.0);
}

TEST(InPlaceKernelsTest, CholeskyFactorizeIntoAndSolveInPlace) {
  Rng rng(44);
  Matrix h = RandomSpd(5, rng, 1.0);
  auto chol = Cholesky::Factorize(h);
  ASSERT_TRUE(chol.ok());
  Matrix lower(5, 5);
  lower.Fill(7.0);  // Stale garbage that must not leak into the solve.
  ASSERT_TRUE(CholeskyFactorizeInto(h, lower));
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) b[i] = rng.Normal();
  std::vector<double> expected = chol.value().Solve(b);
  std::vector<double> x(b);
  CholeskySolveInPlace(lower, x.data());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(x[i], expected[i]);
}

TEST(InPlaceKernelsTest, CholeskyFactorizeIntoRejectsIndefinite) {
  Matrix a = Matrix::Identity(3);
  a(2, 2) = -1.0;
  Matrix lower(3, 3);
  EXPECT_FALSE(CholeskyFactorizeInto(a, lower));
}

TEST(InPlaceKernelsTest, GramSolverReuseMatchesOneShotSolve) {
  Rng rng(45);
  Matrix h = RandomSpd(4, rng, 1.0);
  GramSolver solver;
  solver.Factorize(h);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> b(4), expected(4), x(4);
    for (int i = 0; i < 4; ++i) b[i] = rng.Normal();
    SolveRowAgainstGram(h, b.data(), expected.data());
    solver.Solve(b.data(), x.data());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(x[i], expected[i]);
  }
}

}  // namespace
}  // namespace sns
