// Durability coverage: serializable RNG state, storage-layout-faithful
// tensor serialization, the versioned checkpoint envelope, the write-ahead
// event journal, and the central contract — restore(checkpoint) + replay of
// the journal suffix is BITWISE identical to uninterrupted execution, for
// every updater variant, shard count, and checkpoint position. Fault
// injection (truncation, bit flips, torn records, version skew) pins the
// failure taxonomy: recovery either succeeds exactly or fails with a typed
// Status — never a crash, never a silently wrong state.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "slicenstitch.h"
#include "tensor/sparse_tensor.h"

namespace sns {
namespace {

namespace fs = std::filesystem;

ContinuousCpdOptions SmallEngineOptions(
    SnsVariant variant,
    FactorPrecision precision = FactorPrecision::kFloat64) {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = variant;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  options.factor_precision = precision;
  return options;
}

DataStream SmallStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

/// Splits a stream at the warm-up boundary W·T.
std::pair<std::span<const Tuple>, std::span<const Tuple>> SplitWarmup(
    const DataStream& stream, const ContinuousCpdOptions& options) {
  const std::span<const Tuple> tuples(stream.tuples());
  const int64_t warmup_end =
      static_cast<int64_t>(options.window_size) * options.period;
  const size_t i = static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  return {tuples.subspan(0, i), tuples.subspan(i)};
}

SnsService MakeService(int shards) {
  ServiceOptions options;
  options.shards = shards;
  return SnsService(options);
}

/// Fresh scratch directory (removed if a previous run left it behind).
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/sns_durability_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::string CheckpointBytes(SnsService& service, const std::string& name) {
  serial::StringSink sink;
  const Status status = service.Checkpoint(name, sink);
  SNS_CHECK(status.ok());
  return sink.TakeData();
}

// --- RNG state (satellite: serializable generator state) -------------------

TEST(RngStateTest, SaveRestoreContinuesIdenticalDrawSequence) {
  Rng original(0xfeedULL);
  // Warm the generator and leave a cached Box–Muller deviate pending, the
  // subtle half of the state.
  for (int i = 0; i < 17; ++i) original.UniformDouble();
  original.Normal();

  const RngState snapshot = original.SaveState();
  Rng resumed(1);  // Different seed: everything must come from the snapshot.
  resumed.RestoreState(snapshot);
  EXPECT_EQ(resumed.SaveState(), snapshot);

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.Next(), resumed.Next());
    EXPECT_EQ(original.Normal(), resumed.Normal());
    EXPECT_EQ(original.UniformInt(0, 1000), resumed.UniformInt(0, 1000));
  }
  EXPECT_EQ(original.SaveState(), resumed.SaveState());
}

TEST(RngStateTest, CachedNormalIsPartOfTheState) {
  Rng rng(42);
  rng.Normal();  // First call caches the second Box–Muller deviate.
  const RngState with_cache = rng.SaveState();
  EXPECT_TRUE(with_cache.has_cached_normal);

  Rng resumed(42);
  resumed.RestoreState(with_cache);
  EXPECT_EQ(rng.Normal(), resumed.Normal());  // Consumes the cache.
  EXPECT_FALSE(rng.SaveState().has_cached_normal);
}

// --- SparseTensor layout fidelity -----------------------------------------

TEST(SparseTensorSerialTest, RoundTripPreservesStorageLayoutBitwise) {
  SparseTensor tensor({4, 3, 2});
  Rng rng(7);
  // Scramble the internal layout: interleave inserts and removals so pool
  // order, free-list reuse, and bucket order all diverge from insertion
  // order.
  std::vector<ModeIndex> inserted;
  for (int i = 0; i < 40; ++i) {
    ModeIndex index({static_cast<int32_t>(rng.UniformInt(0, 3)),
                     static_cast<int32_t>(rng.UniformInt(0, 2)),
                     static_cast<int32_t>(rng.UniformInt(0, 1))});
    tensor.Add(index, rng.UniformDouble(0.5, 2.0));
    inserted.push_back(index);
    if (i % 5 == 4) {
      const ModeIndex& victim = inserted[static_cast<size_t>(i / 2)];
      tensor.Add(victim, -tensor.Get(victim));  // Remove.
    }
  }
  ASSERT_GT(tensor.nnz(), 0);

  serial::StringSink sink;
  serial::Writer w(sink);
  tensor.SerializeTo(w);
  ASSERT_TRUE(w.status().ok());
  const std::string first = sink.TakeData();

  SparseTensor restored({4, 3, 2});
  serial::StringSource source(first);
  serial::Reader r(source);
  ASSERT_TRUE(restored.RestoreFrom(r).ok());
  EXPECT_EQ(restored.nnz(), tensor.nnz());

  // Byte-identical re-serialization == identical storage layout, which is
  // what makes post-restore accumulation orders (and thus trajectories)
  // bitwise equal.
  serial::StringSink sink2;
  serial::Writer w2(sink2);
  restored.SerializeTo(w2);
  ASSERT_TRUE(w2.status().ok());
  EXPECT_EQ(sink2.data(), first);
}

TEST(SparseTensorSerialTest, RestoreRejectsShapeMismatch) {
  SparseTensor tensor({4, 3, 2});
  tensor.Add(ModeIndex({1, 1, 1}), 2.0);
  serial::StringSink sink;
  serial::Writer w(sink);
  tensor.SerializeTo(w);

  SparseTensor wrong_shape({4, 3, 3});
  serial::StringSource source(sink.data());
  serial::Reader r(source);
  const Status status = wrong_shape.RestoreFrom(r);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

// --- Standalone StreamHandle checkpoints ----------------------------------

TEST(StreamCheckpointTest, RestoredHandleReserializesToIdenticalBytes) {
  const ContinuousCpdOptions options =
      SmallEngineOptions(SnsVariant::kRndPlus);
  const DataStream stream = SmallStream(120, 11);
  const auto [warmup, live] = SplitWarmup(stream, options);

  auto handle = StreamHandle::Create("solo", {6, 5}, options);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle.value().Warmup(warmup).ok());
  ASSERT_TRUE(handle.value().Initialize().ok());
  ASSERT_TRUE(handle.value().Ingest(live.subspan(0, live.size() / 2)).ok());

  serial::StringSink sink;
  ASSERT_TRUE(handle.value().Checkpoint(sink).ok());
  const std::string first = sink.TakeData();

  serial::StringSource source(first);
  auto restored = StreamHandle::Restore(source);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().name(), "solo");
  EXPECT_TRUE(restored.value().initialized());

  serial::StringSink sink2;
  ASSERT_TRUE(restored.value().Checkpoint(sink2).ok());
  EXPECT_EQ(sink2.data(), first);
}

TEST(StreamCheckpointTest, RestoredHandleContinuesBitwiseIdentically) {
  const ContinuousCpdOptions options = SmallEngineOptions(SnsVariant::kRnd);
  const DataStream stream = SmallStream(140, 12);
  const auto [warmup, live] = SplitWarmup(stream, options);
  const size_t half = live.size() / 2;

  auto original = StreamHandle::Create("s", {6, 5}, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original.value().Warmup(warmup).ok());
  ASSERT_TRUE(original.value().Initialize().ok());
  ASSERT_TRUE(original.value().Ingest(live.subspan(0, half)).ok());

  serial::StringSink mid;
  ASSERT_TRUE(original.value().Checkpoint(mid).ok());
  serial::StringSource source(mid.data());
  auto restored = StreamHandle::Restore(source);
  ASSERT_TRUE(restored.ok());

  // Both process the identical suffix; every factor value, the running
  // fitness estimate, and the full serialized state must stay bitwise equal.
  ASSERT_TRUE(original.value().Ingest(live.subspan(half)).ok());
  ASSERT_TRUE(restored.value().Ingest(live.subspan(half)).ok());
  EXPECT_EQ(original.value().RunningFitness(),
            restored.value().RunningFitness());

  serial::StringSink end_a;
  serial::StringSink end_b;
  ASSERT_TRUE(original.value().Checkpoint(end_a).ok());
  ASSERT_TRUE(restored.value().Checkpoint(end_b).ok());
  EXPECT_EQ(end_a.data(), end_b.data());
}

// --- Checkpoint fault injection -------------------------------------------

std::string MakeValidCheckpoint() {
  const ContinuousCpdOptions options =
      SmallEngineOptions(SnsVariant::kVecPlus);
  const DataStream stream = SmallStream(100, 13);
  const auto [warmup, live] = SplitWarmup(stream, options);
  auto handle = StreamHandle::Create("fi", {6, 5}, options);
  SNS_CHECK(handle.ok());
  SNS_CHECK(handle.value().Warmup(warmup).ok());
  SNS_CHECK(handle.value().Initialize().ok());
  SNS_CHECK(handle.value().Ingest(live.subspan(0, 30)).ok());
  serial::StringSink sink;
  SNS_CHECK(handle.value().Checkpoint(sink).ok());
  return sink.TakeData();
}

Status TryRestore(const std::string& bytes) {
  serial::StringSource source(bytes);
  auto restored = StreamHandle::Restore(source);
  return restored.ok() ? Status::OK() : restored.status();
}

TEST(CheckpointFaultInjectionTest, TruncationsFailTypedNeverCrash) {
  const std::string valid = MakeValidCheckpoint();
  ASSERT_TRUE(TryRestore(valid).ok());
  // Every prefix, sampled densely near the envelope fields and sparsely
  // through the payload, must fail with a typed status.
  for (size_t cut = 0; cut < valid.size();
       cut += (cut < 64 ? 1 : valid.size() / 37 + 1)) {
    const Status status = TryRestore(valid.substr(0, cut));
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes restored";
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "prefix " << cut << ": " << status.ToString();
  }
}

TEST(CheckpointFaultInjectionTest, PayloadBitFlipsAreDataLoss) {
  const std::string valid = MakeValidCheckpoint();
  // Payload starts after magic+version+size (16 bytes); flip a sample of
  // bytes across it, including the embedded sequence token.
  for (size_t pos = 16; pos < valid.size() - 4; pos += valid.size() / 53 + 1) {
    std::string corrupt = valid;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    const Status status = TryRestore(corrupt);
    EXPECT_FALSE(status.ok()) << "flip at " << pos << " restored";
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "flip at " << pos << ": " << status.ToString();
  }
}

TEST(CheckpointFaultInjectionTest, ImplausiblePayloadSizeFailsTyped) {
  const std::string valid = MakeValidCheckpoint();
  // The u64 payload_size field sits at offset 8 (after magic + version).
  // Just under the 4 GiB plausibility cap: the chunked payload read runs off
  // the source's actual end and fails kDataLoss without ever attempting one
  // multi-GiB allocation.
  std::string under_cap = valid;
  const uint64_t huge = (1ull << 32) - 1;
  std::memcpy(under_cap.data() + 8, &huge, sizeof(huge));
  EXPECT_EQ(TryRestore(under_cap).code(), StatusCode::kDataLoss);

  // Past the cap: rejected before any payload byte is read.
  std::string over_cap = valid;
  const uint64_t absurd = 1ull << 33;
  std::memcpy(over_cap.data() + 8, &absurd, sizeof(absurd));
  EXPECT_EQ(TryRestore(over_cap).code(), StatusCode::kDataLoss);
}

TEST(CheckpointFaultInjectionTest, MagicAndVersionSkewAreTyped) {
  const std::string valid = MakeValidCheckpoint();
  std::string bad_magic = valid;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xFF);
  EXPECT_EQ(TryRestore(bad_magic).code(), StatusCode::kInvalidArgument);

  // Version 2 (the loss-extension generation) is also readable by this
  // build; the first unknown generation is 3.
  std::string newer_version = valid;
  newer_version[4] = static_cast<char>(3);
  EXPECT_EQ(TryRestore(newer_version).code(),
            StatusCode::kFailedPrecondition);
}

// --- Journal unit behavior ------------------------------------------------

std::vector<Tuple> TinyTuples(int64_t time, int count) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < count; ++i) {
    Tuple tuple;
    tuple.index = ModeIndex({i % 3, i % 2});
    tuple.value = 1.0 + i;
    tuple.time = time;
    tuples.push_back(tuple);
  }
  return tuples;
}

TEST(JournalTest, AppendReplayRoundTrip) {
  const std::string dir = FreshDir("journal_roundtrip");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(1, durability::JournalOpType::kWarmup, 0,
                             TinyTuples(5, 3))
                    .ok());
    ASSERT_TRUE(writer.value()
                    ->Append(2, durability::JournalOpType::kInitialize, 0, {})
                    .ok());
    ASSERT_TRUE(writer.value()
                    ->Append(3, durability::JournalOpType::kIngest, 0,
                             TinyTuples(9, 2))
                    .ok());
    ASSERT_TRUE(writer.value()
                    ->Append(4, durability::JournalOpType::kAdvanceTo, 77, {})
                    .ok());
  }
  std::vector<durability::JournalRecord> seen;
  auto stats = durability::ReplayJournal(
      dir, /*after_sequence=*/0, [&seen](const durability::JournalRecord& r) {
        seen.push_back(r);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_seen, 4u);
  EXPECT_EQ(stats.value().records_applied, 4u);
  EXPECT_EQ(stats.value().last_sequence, 4u);
  EXPECT_FALSE(stats.value().torn_tail);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].op, durability::JournalOpType::kWarmup);
  EXPECT_EQ(seen[0].tuples.size(), 3u);
  EXPECT_EQ(seen[0].tuples[1].value, 2.0);
  EXPECT_EQ(seen[3].time, 77);

  // Replaying after a checkpoint at sequence 2 skips the prefix.
  auto suffix = durability::ReplayJournal(
      dir, /*after_sequence=*/2,
      [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(suffix.ok());
  EXPECT_EQ(suffix.value().records_seen, 4u);
  EXPECT_EQ(suffix.value().records_applied, 2u);
}

TEST(JournalTest, RotatesSegmentsAndReplaysAcrossThem) {
  const std::string dir = FreshDir("journal_rotation");
  durability::JournalOptions options;
  options.max_segment_bytes = 128;  // Tiny: force frequent rotation.
  {
    auto writer = durability::JournalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 20; ++seq) {
      ASSERT_TRUE(writer.value()
                      ->Append(seq, durability::JournalOpType::kIngest, 0,
                               TinyTuples(static_cast<int64_t>(seq), 2))
                      .ok());
    }
    EXPECT_GT(writer.value()->segments_opened(), 1);
  }
  size_t segment_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segment_files;
  }
  EXPECT_GT(segment_files, 1u);

  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_applied, 20u);
  EXPECT_EQ(stats.value().last_sequence, 20u);
}

TEST(JournalTest, FreshWriterNeverAppendsToExistingSegments) {
  const std::string dir = FreshDir("journal_fresh_segment");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(1, durability::JournalOpType::kIngest, 0,
                             TinyTuples(1, 1))
                    .ok());
  }
  {
    // A second Open (e.g. after recovery) starts a new numbered segment.
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(2, durability::JournalOpType::kIngest, 0,
                             TinyTuples(2, 1))
                    .ok());
  }
  size_t segment_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segment_files;
  }
  EXPECT_EQ(segment_files, 2u);
  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_applied, 2u);
}

std::vector<std::string> SortedSegmentPaths(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void TruncateFile(const std::string& path, int64_t drop_bytes) {
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - static_cast<uintmax_t>(drop_bytes));
}

TEST(JournalFaultInjectionTest, TornTailIsCleanlyDiscarded) {
  const std::string dir = FreshDir("journal_torn_tail");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      ASSERT_TRUE(writer.value()
                      ->Append(seq, durability::JournalOpType::kIngest, 0,
                               TinyTuples(static_cast<int64_t>(seq), 2))
                      .ok());
    }
  }
  // Tear the final record: drop a few bytes off the only (= last) segment.
  TruncateFile(SortedSegmentPaths(dir).back(), 3);
  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().records_applied, 4u);
  EXPECT_EQ(stats.value().last_sequence, 4u);
}

TEST(JournalFaultInjectionTest, TornTailIsTruncatedSoRecoveryIsRepeatable) {
  const std::string dir = FreshDir("journal_torn_repeat");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      ASSERT_TRUE(writer.value()
                      ->Append(seq, durability::JournalOpType::kIngest, 0,
                               TinyTuples(static_cast<int64_t>(seq), 2))
                      .ok());
    }
  }
  const std::string segment = SortedSegmentPaths(dir).back();
  TruncateFile(segment, 3);
  const auto torn_size = fs::file_size(segment);

  // First replay discards the torn record AND truncates it from disk.
  auto first = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().torn_tail);
  EXPECT_EQ(first.value().records_applied, 4u);
  EXPECT_LT(fs::file_size(segment), torn_size);

  // A recovered service re-attaches: a NEW writer opens a fresh segment
  // after the (now clean) torn one and continues the token sequence.
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(5, durability::JournalOpType::kIngest, 0,
                             TinyTuples(5, 2))
                    .ok());
  }
  // Before the repair existed, this second replay hit the buried torn
  // record in a non-last segment and failed kDataLoss forever.
  auto second = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().torn_tail);
  EXPECT_EQ(second.value().records_applied, 5u);
  EXPECT_EQ(second.value().last_sequence, 5u);
}

TEST(JournalFaultInjectionTest, TornSegmentHeaderIsRemovedFromDisk) {
  const std::string dir = FreshDir("journal_torn_header");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(1, durability::JournalOpType::kIngest, 0,
                             TinyTuples(1, 1))
                    .ok());
  }
  {
    // A writer that dies during segment creation leaves a partial header
    // (and, by the write-ahead contract, no acknowledged record).
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
  }
  TruncateFile(SortedSegmentPaths(dir).back(), 7);  // 12-byte header → 5.

  auto first = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().torn_tail);
  EXPECT_EQ(first.value().records_applied, 1u);
  EXPECT_EQ(SortedSegmentPaths(dir).size(), 1u);  // Torn segment removed.

  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(2, durability::JournalOpType::kIngest, 0,
                             TinyTuples(2, 1))
                    .ok());
  }
  auto second = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().torn_tail);
  EXPECT_EQ(second.value().records_applied, 2u);
}

TEST(JournalFaultInjectionTest, TruncationBeforeTheEndIsDataLoss) {
  const std::string dir = FreshDir("journal_mid_truncate");
  durability::JournalOptions options;
  options.max_segment_bytes = 128;
  {
    auto writer = durability::JournalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 12; ++seq) {
      ASSERT_TRUE(writer.value()
                      ->Append(seq, durability::JournalOpType::kIngest, 0,
                               TinyTuples(static_cast<int64_t>(seq), 2))
                      .ok());
    }
    ASSERT_GT(writer.value()->segments_opened(), 1);
  }
  // A short read in a NON-final segment means acknowledged records after it
  // are gone — loss, not a torn tail.
  TruncateFile(SortedSegmentPaths(dir).front(), 5);
  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

TEST(JournalFaultInjectionTest, FlippedRecordByteIsDataLoss) {
  const std::string dir = FreshDir("journal_bit_flip");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(writer.value()
                      ->Append(seq, durability::JournalOpType::kIngest, 0,
                               TinyTuples(static_cast<int64_t>(seq), 2))
                      .ok());
    }
  }
  const std::string path = SortedSegmentPaths(dir).front();
  auto contents = serial::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string data = std::move(contents).value();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  ASSERT_TRUE(serial::WriteStringToFile(path, data).ok());

  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

TEST(JournalFaultInjectionTest, NewerFormatVersionIsFailedPrecondition) {
  const std::string dir = FreshDir("journal_version_skew");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(1, durability::JournalOpType::kIngest, 0,
                             TinyTuples(1, 1))
                    .ok());
  }
  const std::string path = SortedSegmentPaths(dir).front();
  auto contents = serial::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string data = std::move(contents).value();
  data[8] = static_cast<char>(data[8] + 1);  // Version field after u64 magic.
  ASSERT_TRUE(serial::WriteStringToFile(path, data).ok());

  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JournalFaultInjectionTest, SequenceGapIsDataLoss) {
  const std::string dir = FreshDir("journal_seq_gap");
  {
    auto writer = durability::JournalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()
                    ->Append(1, durability::JournalOpType::kIngest, 0,
                             TinyTuples(1, 1))
                    .ok());
    ASSERT_TRUE(writer.value()
                    ->Append(3, durability::JournalOpType::kIngest, 0,
                             TinyTuples(3, 1))
                    .ok());
  }
  auto stats = durability::ReplayJournal(
      dir, 0, [](const durability::JournalRecord&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

// --- The central differential: recovery == uninterrupted ------------------

struct ProtocolInput {
  ContinuousCpdOptions options;
  std::span<const Tuple> warmup;
  std::vector<std::span<const Tuple>> batches;
  int64_t horizon = 0;
};

ProtocolInput MakeProtocol(const DataStream& stream,
                           const ContinuousCpdOptions& options) {
  ProtocolInput input;
  input.options = options;
  const auto [warmup, live] = SplitWarmup(stream, options);
  input.warmup = warmup;
  for (size_t i = 0; i < live.size(); i += 3) {
    input.batches.push_back(live.subspan(i, std::min<size_t>(3, live.size() - i)));
  }
  input.horizon = stream.tuples().back().time + options.period;
  return input;
}

/// Uninterrupted reference: the full protocol with no journal, final state
/// as checkpoint bytes.
std::string RunUninterrupted(const ProtocolInput& input, int shards) {
  SnsService service = MakeService(shards);
  SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
  SNS_CHECK(service.Warmup("s", input.warmup).ok());
  SNS_CHECK(service.Initialize("s").ok());
  for (const auto& batch : input.batches) {
    SNS_CHECK(service.Ingest("s", batch).ok());
  }
  SNS_CHECK(service.AdvanceTo("s", input.horizon).ok());
  return CheckpointBytes(service, "s");
}

enum class Interrupt { kBeforeWarmup, kMidBatches, kAfterBatches };

/// Journaled run checkpointed at `interrupt`, "crashed" at the end, then
/// recovered into a fresh service from checkpoint + journal suffix. Returns
/// the recovered service's final checkpoint bytes.
std::string RunRecovered(const ProtocolInput& input, int shards,
                         Interrupt interrupt, const std::string& dir) {
  fs::remove_all(dir);
  std::string saved;
  {
    SnsService service = MakeService(shards);
    SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
    SNS_CHECK(service.EnableJournal("s", dir).ok());
    if (interrupt == Interrupt::kBeforeWarmup) {
      saved = CheckpointBytes(service, "s");
    }
    SNS_CHECK(service.Warmup("s", input.warmup).ok());
    SNS_CHECK(service.Initialize("s").ok());
    for (size_t i = 0; i < input.batches.size(); ++i) {
      SNS_CHECK(service.Ingest("s", input.batches[i]).ok());
      if (interrupt == Interrupt::kMidBatches &&
          i + 1 == input.batches.size() / 2) {
        saved = CheckpointBytes(service, "s");
      }
    }
    if (interrupt == Interrupt::kAfterBatches) {
      saved = CheckpointBytes(service, "s");
    }
    SNS_CHECK(service.AdvanceTo("s", input.horizon).ok());
  }  // "Crash": the service dies; checkpoint + journal survive.

  SnsService recovered = MakeService(shards);
  serial::StringSource source(saved);
  auto report = durability::RecoverStream(recovered, source, dir);
  SNS_CHECK(report.ok());
  SNS_CHECK(!report.value().torn_tail);
  return CheckpointBytes(recovered, "s");
}

TEST(RecoveryDifferentialTest, AllVariantsShardsAndInterruptPoints) {
  const DataStream stream = SmallStream(130, 21);
  const SnsVariant variants[] = {SnsVariant::kMat, SnsVariant::kVec,
                                 SnsVariant::kRnd, SnsVariant::kVecPlus,
                                 SnsVariant::kRndPlus};
  const Interrupt interrupts[] = {Interrupt::kBeforeWarmup,
                                  Interrupt::kMidBatches,
                                  Interrupt::kAfterBatches};
  for (SnsVariant variant : variants) {
    const ProtocolInput input =
        MakeProtocol(stream, SmallEngineOptions(variant));
    // The trajectory is shard-invariant (pinned streams), so one reference
    // run serves every shard count.
    const std::string reference = RunUninterrupted(input, /*shards=*/0);
    for (int shards : {0, 1, 4}) {
      for (Interrupt interrupt : interrupts) {
        const std::string recovered = RunRecovered(
            input, shards, interrupt, FreshDir("differential"));
        EXPECT_EQ(recovered, reference)
            << VariantName(variant) << " shards=" << shards
            << " interrupt=" << static_cast<int>(interrupt);
      }
    }
  }
}

TEST(RecoveryDifferentialTest, MixedPrecisionRecoversBitwise) {
  const DataStream stream = SmallStream(110, 23);
  const ProtocolInput input = MakeProtocol(
      stream, SmallEngineOptions(SnsVariant::kRndPlus,
                                 FactorPrecision::kFloat32Accum64));
  const std::string reference = RunUninterrupted(input, 0);
  for (Interrupt interrupt :
       {Interrupt::kBeforeWarmup, Interrupt::kMidBatches}) {
    const std::string recovered =
        RunRecovered(input, /*shards=*/1, interrupt, FreshDir("mixed"));
    EXPECT_EQ(recovered, reference)
        << "interrupt=" << static_cast<int>(interrupt);
  }
}

TEST(RecoveryDifferentialTest, ReportAccountsForReplayAndMirroredFailures) {
  const DataStream stream = SmallStream(100, 29);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  const std::string dir = FreshDir("report");
  std::string saved;
  std::string final_bytes;
  uint64_t saved_seq = 0;
  uint64_t final_seq = 0;
  {
    SnsService service = MakeService(1);
    SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
    SNS_CHECK(service.EnableJournal("s", dir).ok());
    SNS_CHECK(service.Warmup("s", input.warmup).ok());
    SNS_CHECK(service.Initialize("s").ok());
    SNS_CHECK(service.Ingest("s", input.batches[0]).ok());
    saved = CheckpointBytes(service, "s");
    saved_seq = service.AppliedSequence("s").value();
    // A request the stream rejects (time regression): it consumes a token,
    // lands in the journal, and must fail identically on replay.
    Tuple regressed = input.batches[1].front();
    regressed.time = 0;
    EXPECT_EQ(service.Ingest("s", regressed).code(),
              StatusCode::kFailedPrecondition);
    SNS_CHECK(service.Ingest("s", input.batches[1]).ok());
    final_bytes = CheckpointBytes(service, "s");
    final_seq = service.AppliedSequence("s").value();
  }
  SnsService recovered = MakeService(1);
  serial::StringSource source(saved);
  auto report = durability::RecoverStream(recovered, source, dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().checkpoint_sequence, saved_seq);
  EXPECT_EQ(report.value().last_sequence, final_seq);
  EXPECT_EQ(report.value().records_replayed, final_seq - saved_seq);
  EXPECT_EQ(report.value().mirrored_failures, 1u);
  EXPECT_EQ(CheckpointBytes(recovered, "s"), final_bytes);
}

TEST(RecoveryDifferentialTest, TornTailRecoveryThenReattachThenRecoverAgain) {
  // The examples/durable_service.cpp loop: crash with a torn tail, recover,
  // re-attach the journal, continue, crash again, recover again. The second
  // recovery only works because the first one truncated the torn record —
  // otherwise it sits buried in a non-last segment as permanent kDataLoss.
  const DataStream stream = SmallStream(120, 47);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVecPlus));
  const std::string dir = FreshDir("torn_reattach");
  const size_t half = input.batches.size() / 2;
  ASSERT_GE(half, 2u);
  std::string saved;
  {
    SnsService service = MakeService(1);
    SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
    SNS_CHECK(service.EnableJournal("s", dir).ok());
    SNS_CHECK(service.Warmup("s", input.warmup).ok());
    SNS_CHECK(service.Initialize("s").ok());
    saved = CheckpointBytes(service, "s");
    for (size_t i = 0; i < half; ++i) {
      SNS_CHECK(service.Ingest("s", input.batches[i]).ok());
    }
  }  // Crash #1...
  // ...mid-write of the final record: its batch was never acknowledged.
  TruncateFile(SortedSegmentPaths(dir).back(), 3);

  std::string continued;
  {
    SnsService service = MakeService(1);
    serial::StringSource source(saved);
    auto report = durability::RecoverStream(service, source, dir);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().torn_tail);
    // Re-attach and resume the feed from the torn (lost) batch onward.
    ASSERT_TRUE(service.EnableJournal("s", dir).ok());
    for (size_t i = half - 1; i < input.batches.size(); ++i) {
      ASSERT_TRUE(service.Ingest("s", input.batches[i]).ok());
    }
    continued = CheckpointBytes(service, "s");
  }  // Crash #2, this time with a clean tail.

  SnsService recovered = MakeService(1);
  serial::StringSource source(saved);
  auto report = durability::RecoverStream(recovered, source, dir);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().torn_tail);
  EXPECT_EQ(CheckpointBytes(recovered, "s"), continued);
}

// --- Service lifecycle interactions ---------------------------------------

TEST(ServiceDurabilityTest, CheckpointDuringAsyncIngestIsASequencePoint) {
  const DataStream stream = SmallStream(130, 31);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kRndPlus));

  SnsService service = MakeService(2);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // Fire every batch asynchronously, checkpoint in the middle of the
  // barrage WITHOUT draining, then let the rest land.
  std::vector<Ticket> tickets;
  serial::StringSink sink;
  Status checkpoint_status = Status::OK();
  for (size_t i = 0; i < input.batches.size(); ++i) {
    tickets.push_back(service.IngestAsync("s", input.batches[i]));
    if (i == input.batches.size() / 2) {
      checkpoint_status = service.Checkpoint("s", sink);
    }
  }
  for (Ticket& ticket : tickets) ASSERT_TRUE(ticket.Wait().ok());
  ASSERT_TRUE(checkpoint_status.ok());

  // The checkpoint reflects a prefix of the ticketed operations: restore it
  // and verify it matches a clean run of exactly that many batches.
  serial::StringSource source(sink.data());
  SnsService restored_service = MakeService(0);
  ASSERT_TRUE(restored_service.Restore(source).ok());
  const uint64_t seq = restored_service.AppliedSequence("s").value();
  ASSERT_GE(seq, 2u);  // Warmup + Initialize.
  const uint64_t batches_included = seq - 2;
  ASSERT_LE(batches_included, input.batches.size());

  SnsService reference = MakeService(0);
  ASSERT_TRUE(reference.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(reference.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(reference.Initialize("s").ok());
  for (uint64_t i = 0; i < batches_included; ++i) {
    ASSERT_TRUE(reference.Ingest("s", input.batches[i]).ok());
  }
  EXPECT_EQ(sink.data(), CheckpointBytes(reference, "s"));
}

TEST(ServiceDurabilityTest, DurabilityCallsAfterShutdownFailTyped) {
  const DataStream stream = SmallStream(90, 37);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(1);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  const std::string valid = CheckpointBytes(service, "s");

  service.Shutdown();

  serial::StringSink sink;
  EXPECT_EQ(service.Checkpoint("s", sink).code(),
            StatusCode::kFailedPrecondition);
  serial::StringSource source(valid);
  EXPECT_EQ(service.Restore(source).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.EnableJournal("s", FreshDir("post_shutdown")).code(),
            StatusCode::kFailedPrecondition);
  // AdvanceAllTo degrades to an OK no-op, not a crash.
  EXPECT_TRUE(service.AdvanceAllTo(input.horizon).ok());
}

TEST(ServiceDurabilityTest, AdvanceAllToSurfacesJournalAppendFailure) {
  const DataStream stream = SmallStream(90, 53);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  const std::string dir = FreshDir("advance_all_journal_fail");
  durability::JournalOptions journal_options;
  journal_options.max_segment_bytes = 1;  // Every append rotates.
  ASSERT_TRUE(service.EnableJournal("s", dir, journal_options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(service.Ingest("s", input.batches[0]).ok());

  // Replace the journal directory with a plain file: the next append's
  // segment rotation fails. AdvanceAllTo must surface that as a typed
  // error, not abort the process.
  fs::remove_all(dir);
  ASSERT_TRUE(serial::WriteStringToFile(dir, "not a directory").ok());
  const Status status = service.AdvanceAllTo(input.horizon);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The failed append poisoned the stream; later mutations fail kDataLoss.
  EXPECT_EQ(service.Ingest("s", input.batches[1]).code(),
            StatusCode::kDataLoss);
}

TEST(ServiceDurabilityTest, RestoreRejectsDuplicateName) {
  const DataStream stream = SmallStream(90, 41);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  const std::string bytes = CheckpointBytes(service, "s");

  serial::StringSource source(bytes);
  EXPECT_EQ(service.Restore(source).status().code(),
            StatusCode::kFailedPrecondition);

  // A fresh service accepts it; the restored stream resumes its token.
  SnsService other = MakeService(0);
  serial::StringSource source2(bytes);
  auto restored = other.Restore(source2);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(other.AppliedSequence("s").value(),
            service.AppliedSequence("s").value());
}

TEST(ServiceDurabilityTest, EnableJournalTwiceFails) {
  const DataStream stream = SmallStream(90, 43);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  const std::string dir = FreshDir("twice");
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  EXPECT_EQ(service.EnableJournal("s", dir).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.EnableJournal("missing", dir).code(),
            StatusCode::kNotFound);
}

// --- Self-healing: quarantine + auto-recovery ------------------------------
// Faults are injected deterministically (common/failpoint.h), so the error
// paths below are ordinary unit tests: a journal append that fails
// mid-barrage, a torn write, a fault that never clears.

/// Every test starts and ends with a disarmed failpoint registry, so an
/// armed fault can never leak across tests.
class SelfHealingTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

/// Instant, reproducible recovery timing: no real sleeping, fixed jitter,
/// and (optionally) a recorded backoff schedule.
RecoveryPolicy TestPolicy(std::vector<int64_t>* backoffs = nullptr) {
  RecoveryPolicy policy;
  policy.jitter_seed = 7;
  policy.sleep_fn = [backoffs](int64_t backoff_ms) {
    if (backoffs != nullptr) backoffs->push_back(backoff_ms);
  };
  return policy;
}

std::string ReadFileBytes(const std::string& path) {
  auto source = serial::FileSource::Open(path);
  SNS_CHECK(source.ok());
  std::string bytes;
  char chunk[4096];
  for (;;) {
    auto n = source.value().ReadSome(chunk, sizeof chunk);
    SNS_CHECK(n.ok());
    if (n.value() == 0) break;
    bytes.append(chunk, n.value());
  }
  return bytes;
}

// THE acceptance differential: inject a journal-append failure in the
// middle of an async barrage; the stream quarantines, auto-recovers on its
// owning shard, re-appends, and every ticket still lands OK — and the
// resumed factor state is bitwise identical to the uninterrupted run, for
// inline, one-shard, and multi-shard services.
TEST_F(SelfHealingTest, InjectedAppendFailureHealsBitwise) {
  const DataStream stream = SmallStream(120, 61);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVecPlus));
  const std::string reference = RunUninterrupted(input, /*shards=*/0);
  for (int shards : {0, 1, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::string dir = FreshDir("heal_" + std::to_string(shards));
    const std::string ckpt = dir + ".ckpt";
    fs::remove(ckpt);
    SnsService service = MakeService(shards);
    ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
    ASSERT_TRUE(service.EnableJournal("s", dir).ok());
    ASSERT_TRUE(service.CheckpointToFile("s", ckpt).ok());
    ASSERT_TRUE(service.EnableAutoRecovery("s", ckpt, TestPolicy()).ok());
    ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
    ASSERT_TRUE(service.Initialize("s").ok());

    std::vector<Ticket> tickets;
    for (size_t i = 0; i < input.batches.size(); ++i) {
      if (i == input.batches.size() / 2) {
        ASSERT_TRUE(failpoint::Arm("journal.append", "once").ok());
      }
      tickets.push_back(service.IngestAsync("s", input.batches[i]));
    }
    for (Ticket& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());
    ASSERT_TRUE(service.AdvanceTo("s", input.horizon).ok());

    const StreamHealthInfo health = service.Health("s").value();
    EXPECT_EQ(health.health, StreamHealth::kHealthy);
    EXPECT_EQ(health.quarantine_count, 1u);
    EXPECT_EQ(health.recovery_attempts, 1u);
    EXPECT_EQ(health.recoveries_completed, 1u);
    EXPECT_EQ(health.last_error.code(), StatusCode::kIOError);

    EXPECT_EQ(CheckpointBytes(service, "s"), reference);

    // The healed journal is still a valid crash-recovery source: the
    // re-appended record continued the token sequence across the segment
    // the recovery opened, so checkpoint + journal rebuild the same state.
    SnsService recovered = MakeService(0);
    auto source = serial::FileSource::Open(ckpt);
    ASSERT_TRUE(source.ok());
    auto report = durability::RecoverStream(recovered, source.value(), dir);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(CheckpointBytes(recovered, "s"), reference);
  }
}

TEST_F(SelfHealingTest, TornWriteHealsBitwiseViaTailRepair) {
  const DataStream stream = SmallStream(110, 67);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  const std::string reference = RunUninterrupted(input, /*shards=*/0);
  const std::string dir = FreshDir("heal_torn");
  const std::string ckpt = dir + ".ckpt";
  fs::remove(ckpt);
  SnsService service = MakeService(1);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  ASSERT_TRUE(service.CheckpointToFile("s", ckpt).ok());
  ASSERT_TRUE(service.EnableAutoRecovery("s", ckpt, TestPolicy()).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  for (size_t i = 0; i < input.batches.size(); ++i) {
    if (i == input.batches.size() / 2) {
      // The next journal write dies mid-record: half the bytes land on
      // disk — the torn-write shape, not a clean error. Recovery's replay
      // must truncate that tail before the retried append can land.
      ASSERT_TRUE(
          failpoint::Arm("serial.file_sink_short_write", "once").ok());
    }
    ASSERT_TRUE(service.Ingest("s", input.batches[i]).ok());
  }
  ASSERT_TRUE(service.AdvanceTo("s", input.horizon).ok());

  const StreamHealthInfo health = service.Health("s").value();
  EXPECT_EQ(health.health, StreamHealth::kHealthy);
  EXPECT_EQ(health.recoveries_completed, 1u);
  EXPECT_EQ(CheckpointBytes(service, "s"), reference);
}

TEST_F(SelfHealingTest, ExhaustedRecoveryFailsPermanentlyButServesQueries) {
  const DataStream stream = SmallStream(100, 71);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  const std::string dir = FreshDir("heal_exhausted");
  const std::string ckpt = dir + ".ckpt";
  fs::remove(ckpt);
  SnsService service = MakeService(1);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  ASSERT_TRUE(service.CheckpointToFile("s", ckpt).ok());
  std::vector<int64_t> backoffs;
  RecoveryPolicy policy = TestPolicy(&backoffs);
  policy.max_attempts = 2;
  ASSERT_TRUE(service.EnableAutoRecovery("s", ckpt, policy).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(service.Ingest("s", input.batches[0]).ok());
  const double fitness_before = service.RunningFitness("s").value();

  // A fault that never clears: every append fails, including the retried
  // one after each otherwise-successful rebuild.
  ASSERT_TRUE(failpoint::Arm("journal.append", "after:0").ok());
  EXPECT_EQ(service.Ingest("s", input.batches[1]).code(),
            StatusCode::kIOError);

  const StreamHealthInfo health = service.Health("s").value();
  EXPECT_EQ(health.health, StreamHealth::kFailed);
  EXPECT_EQ(health.quarantine_count, 1u);
  EXPECT_EQ(health.recovery_attempts, 2u);
  EXPECT_EQ(health.recoveries_completed, 0u);
  EXPECT_EQ(health.last_error.code(), StatusCode::kIOError);
  // The retry loop followed the policy's jittered schedule exactly.
  ASSERT_EQ(backoffs.size(), 2u);
  EXPECT_EQ(backoffs[0], policy.BackoffMs(1));
  EXPECT_EQ(backoffs[1], policy.BackoffMs(2));
  EXPECT_GE(backoffs[1], backoffs[0]);  // Exponential, same jitter seed.

  // kFailed is terminal stream state, not the fault lingering: mutations
  // stay refused (typed) after the fault clears, through every entry point.
  failpoint::DisarmAll();
  EXPECT_EQ(service.Ingest("s", input.batches[1]).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(service.IngestAsync("s", input.batches[1]).Wait().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(service.AdvanceTo("s", input.horizon).code(),
            StatusCode::kDataLoss);
  // Queries keep serving the last-good state.
  EXPECT_EQ(service.RunningFitness("s").value(), fitness_before);
  EXPECT_TRUE(service.Stats("s").ok());
  EXPECT_TRUE(service.TopK("s", 0, 3).ok());
}

TEST_F(SelfHealingTest, QuarantineWithoutRecoveryConfigIsTerminal) {
  const DataStream stream = SmallStream(100, 73);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(
      service.EnableJournal("s", FreshDir("heal_unconfigured")).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  ASSERT_TRUE(failpoint::Arm("journal.append", "once").ok());
  EXPECT_EQ(service.Ingest("s", input.batches[0]).code(),
            StatusCode::kIOError);

  // One transient fault, but no recovery config: the quarantine is
  // immediately terminal even though the fault never fires again.
  const StreamHealthInfo health = service.Health("s").value();
  EXPECT_EQ(health.health, StreamHealth::kFailed);
  EXPECT_EQ(health.quarantine_count, 1u);
  EXPECT_EQ(health.recovery_attempts, 0u);
  EXPECT_EQ(service.Ingest("s", input.batches[0]).code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(service.Stats("s").ok());
  // A failed stream cannot re-attach a journal; it must be rebuilt.
  EXPECT_EQ(service.EnableJournal("s", FreshDir("heal_reattach")).code(),
            StatusCode::kFailedPrecondition);
}

/// Records every health edge a stream's sinks observe.
struct RecordingHealthSink : EventSink {
  struct Edge {
    StreamHealth from;
    StreamHealth to;
    int attempt;
    StatusCode cause;
  };
  std::vector<Edge> edges;
  void OnStreamEvent(const StreamEvent&) override {}
  void OnHealthTransition(const HealthTransition& transition) override {
    edges.push_back({transition.from, transition.to, transition.attempt,
                     transition.cause.code()});
  }
};

TEST_F(SelfHealingTest, HealthTransitionsAreDeliveredToSinks) {
  const DataStream stream = SmallStream(100, 79);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  const std::string dir = FreshDir("heal_sink");
  const std::string ckpt = dir + ".ckpt";
  fs::remove(ckpt);
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  ASSERT_TRUE(service.CheckpointToFile("s", ckpt).ok());
  ASSERT_TRUE(service.EnableAutoRecovery("s", ckpt, TestPolicy()).ok());
  RecordingHealthSink sink;
  ASSERT_TRUE(service.Find("s")->AddSink(&sink).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  ASSERT_TRUE(failpoint::Arm("journal.append", "once").ok());
  ASSERT_TRUE(service.Ingest("s", input.batches[0]).ok());  // Self-healed.

  // quarantine → attempt 1 → healed; the final edge arrives through the
  // REBUILT handle, proving subscriptions survive the recovery swap.
  ASSERT_EQ(sink.edges.size(), 3u);
  EXPECT_EQ(sink.edges[0].from, StreamHealth::kHealthy);
  EXPECT_EQ(sink.edges[0].to, StreamHealth::kQuarantined);
  EXPECT_EQ(sink.edges[0].attempt, 0);
  EXPECT_EQ(sink.edges[0].cause, StatusCode::kIOError);
  EXPECT_EQ(sink.edges[1].from, StreamHealth::kQuarantined);
  EXPECT_EQ(sink.edges[1].to, StreamHealth::kRecovering);
  EXPECT_EQ(sink.edges[1].attempt, 1);
  EXPECT_EQ(sink.edges[2].from, StreamHealth::kRecovering);
  EXPECT_EQ(sink.edges[2].to, StreamHealth::kHealthy);
  EXPECT_EQ(sink.edges[2].attempt, 1);
  EXPECT_EQ(sink.edges[2].cause, StatusCode::kOk);
}

TEST_F(SelfHealingTest, CheckpointToFileIsAtomicUnderRenameFailure) {
  const DataStream stream = SmallStream(100, 83);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  const std::string path = FreshDir("ckpt_atomic") + ".ckpt";
  fs::remove(path);
  fs::remove(path + ".tmp");
  ASSERT_TRUE(service.CheckpointToFile("s", path).ok());
  const std::string before = ReadFileBytes(path);
  EXPECT_EQ(before, CheckpointBytes(service, "s"));

  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(failpoint::Arm("checkpoint.rename", "once").ok());
  EXPECT_EQ(service.CheckpointToFile("s", path).code(), StatusCode::kIOError);
  // The failed checkpoint neither clobbered the good one nor left a temp.
  EXPECT_EQ(ReadFileBytes(path), before);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  ASSERT_TRUE(service.CheckpointToFile("s", path).ok());
  EXPECT_EQ(ReadFileBytes(path), CheckpointBytes(service, "s"));
}

TEST_F(SelfHealingTest, EnableAutoRecoveryValidatesItsPreconditions) {
  const DataStream stream = SmallStream(100, 89);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  const std::string dir = FreshDir("heal_preconditions");
  const std::string ckpt = dir + ".ckpt";
  fs::remove(ckpt);

  EXPECT_EQ(service.EnableAutoRecovery("missing", ckpt).code(),
            StatusCode::kNotFound);
  // Journal first: recovery replays checkpoint + journal.
  EXPECT_EQ(service.EnableAutoRecovery("s", ckpt).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  RecoveryPolicy zero;
  zero.max_attempts = 0;
  EXPECT_EQ(service.EnableAutoRecovery("s", ckpt, zero).code(),
            StatusCode::kInvalidArgument);
  // A checkpoint that does not exist is caught here, not mid-incident.
  EXPECT_FALSE(service.EnableAutoRecovery("s", ckpt).ok());
  ASSERT_TRUE(service.CheckpointToFile("s", ckpt).ok());
  EXPECT_TRUE(service.EnableAutoRecovery("s", ckpt).ok());
}

TEST_F(SelfHealingTest, RecoverHandleRebuildsBitwiseWithoutAService) {
  const DataStream stream = SmallStream(110, 97);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVecPlus));
  const std::string dir = FreshDir("recover_handle");
  std::string saved;
  std::string final_bytes;
  uint64_t saved_seq = 0;
  uint64_t final_seq = 0;
  {
    SnsService service = MakeService(0);
    SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
    SNS_CHECK(service.EnableJournal("s", dir).ok());
    SNS_CHECK(service.Warmup("s", input.warmup).ok());
    SNS_CHECK(service.Initialize("s").ok());
    SNS_CHECK(service.Ingest("s", input.batches[0]).ok());
    saved = CheckpointBytes(service, "s");
    saved_seq = service.AppliedSequence("s").value();
    SNS_CHECK(service.Ingest("s", input.batches[1]).ok());
    SNS_CHECK(service.Ingest("s", input.batches[2]).ok());
    final_bytes = CheckpointBytes(service, "s");
    final_seq = service.AppliedSequence("s").value();
  }
  serial::StringSource source(saved);
  auto recovered = durability::RecoverHandle(source, dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().report.checkpoint_sequence, saved_seq);
  EXPECT_EQ(recovered.value().report.last_sequence, final_seq);
  EXPECT_EQ(recovered.value().report.records_replayed, final_seq - saved_seq);
  EXPECT_FALSE(recovered.value().report.torn_tail);
  serial::StringSink sink;
  ASSERT_TRUE(durability::WriteStreamCheckpoint(recovered.value().handle,
                                                final_seq, sink)
                  .ok());
  EXPECT_EQ(sink.data(), final_bytes);
}

TEST_F(SelfHealingTest, HostileInputIsRefusedBeforeJournaling) {
  const DataStream stream = SmallStream(100, 101);
  const ProtocolInput input =
      MakeProtocol(stream, SmallEngineOptions(SnsVariant::kVec));
  const std::string dir = FreshDir("admission");
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.EnableJournal("s", dir).ok());
  const std::string saved = CheckpointBytes(service, "s");
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(service.Ingest("s", input.batches[0]).ok());
  const uint64_t seq = service.AppliedSequence("s").value();

  // NaN, infinity, out-of-range and wrong-arity coordinates: refused with
  // kInvalidArgument at admission — before a token is issued — through
  // both the sync and the ticketed entry points.
  const std::vector<Tuple> nan_batch = {
      {{1, 1}, std::numeric_limits<double>::quiet_NaN(), 95}};
  const std::vector<Tuple> inf_batch = {
      {{1, 1}, std::numeric_limits<double>::infinity(), 95}};
  const std::vector<Tuple> range_batch = {{{6, 0}, 1.0, 95}};
  const std::vector<Tuple> arity_batch = {{{1, 1, 1}, 1.0, 95}};
  for (const auto& batch : {nan_batch, inf_batch, range_batch, arity_batch}) {
    EXPECT_EQ(service.Ingest("s", batch).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(service.IngestAsync("s", batch).Wait().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(service.Warmup("s", batch).code(),
              StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(service.AppliedSequence("s").value(), seq);

  // Nothing hostile reached the journal: replay rebuilds the live state
  // from exactly the acknowledged records, with no mirrored failures.
  serial::StringSource source(saved);
  auto recovered = durability::RecoverHandle(source, dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().report.records_replayed, seq);
  EXPECT_EQ(recovered.value().report.mirrored_failures, 0u);
  serial::StringSink sink;
  ASSERT_TRUE(durability::WriteStreamCheckpoint(recovered.value().handle,
                                                seq, sink)
                  .ok());
  EXPECT_EQ(sink.data(), CheckpointBytes(service, "s"));
}

}  // namespace
}  // namespace sns
