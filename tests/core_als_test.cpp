// Tests for batch ALS (Eq. 4) and the CpdState bookkeeping helpers.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/als.h"
#include "core/cpd_state.h"
#include "core/gram_solve.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

// Sparse tensor holding the dense values of a random rank-r model.
SparseTensor DenseFromModel(const KruskalModel& model) {
  SparseTensor x(model.factor(0).rows() == 0 ? std::vector<int64_t>{}
                                             : [&] {
                                                 std::vector<int64_t> dims;
                                                 for (int m = 0;
                                                      m < model.num_modes();
                                                      ++m) {
                                                   dims.push_back(
                                                       model.factor(m).rows());
                                                 }
                                                 return dims;
                                               }());
  std::vector<int64_t> dims = x.dims();
  ModeIndex index;
  for (size_t m = 0; m < dims.size(); ++m) index.PushBack(0);
  // Odometer over all cells.
  while (true) {
    x.Set(index, model.Evaluate(index));
    int m = static_cast<int>(dims.size()) - 1;
    while (m >= 0) {
      if (++index[m] < dims[static_cast<size_t>(m)]) break;
      index[m] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return x;
}

TEST(CpdStateTest, RecomputeGramsMatchesDefinition) {
  Rng rng(1);
  CpdState state(KruskalModel::Random({4, 5, 3}, 2, rng));
  ASSERT_EQ(state.grams.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    Matrix expected =
        MultiplyTransposeA(state.model.factor(m), state.model.factor(m));
    EXPECT_LT(MaxAbsDiff(state.grams[static_cast<size_t>(m)], expected),
              1e-12);
  }
}

TEST(CpdStateTest, AbsorbLambdaPreservesModelValues) {
  Rng rng(2);
  CpdState state(KruskalModel::Random({3, 4, 2}, 2, rng));
  state.model.lambda() = {2.0, -0.5};
  std::vector<double> before;
  for (int32_t i = 0; i < 3; ++i) {
    before.push_back(state.model.Evaluate({i, 1, 1}));
  }
  state.AbsorbLambda();
  EXPECT_DOUBLE_EQ(state.model.lambda()[0], 1.0);
  EXPECT_DOUBLE_EQ(state.model.lambda()[1], 1.0);
  for (int32_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(state.model.Evaluate({i, 1, 1}), before[static_cast<size_t>(i)],
                1e-10);
  }
  // Grams refreshed too.
  for (int m = 0; m < 3; ++m) {
    Matrix expected =
        MultiplyTransposeA(state.model.factor(m), state.model.factor(m));
    EXPECT_LT(MaxAbsDiff(state.grams[static_cast<size_t>(m)], expected),
              1e-12);
  }
}

TEST(CpdStateTest, GramRowUpdateMatchesRecompute) {
  Rng rng(3);
  Matrix factor = Matrix::RandomNormal(6, 4, rng);
  Matrix gram = MultiplyTransposeA(factor, factor);
  // Change row 2. The snapshot spans the padded stride (zero padding comes
  // along from the factor row), per the padded-buffer contract.
  std::vector<double> old_row(factor.Row(2), factor.Row(2) + factor.stride());
  for (int64_t r = 0; r < 4; ++r) factor(2, r) = rng.Normal();
  ApplyGramRowUpdate(gram, old_row.data(), factor.Row(2));
  EXPECT_LT(MaxAbsDiff(gram, MultiplyTransposeA(factor, factor)), 1e-10);
}

TEST(CpdStateTest, PrevGramRowUpdateMatchesDefinition) {
  Rng rng(4);
  Matrix prev_factor = Matrix::RandomNormal(5, 3, rng);
  Matrix factor = prev_factor;
  Matrix u = MultiplyTransposeA(prev_factor, factor);
  // Update two distinct rows (as an event would: once each).
  for (int64_t row : {1L, 3L}) {
    std::vector<double> prev_row(factor.Row(row),
                                 factor.Row(row) + factor.stride());
    for (int64_t r = 0; r < 3; ++r) factor(row, r) = rng.Normal();
    ApplyPrevGramRowUpdate(u, prev_row.data(), factor.Row(row));
  }
  EXPECT_LT(MaxAbsDiff(u, MultiplyTransposeA(prev_factor, factor)), 1e-10);
}

TEST(AlsTest, SweepSolvesExactRowLeastSquares) {
  // After one sweep, each factor row satisfies the normal equations of
  // Eq. 3 for the factors it was solved against.
  Rng rng(5);
  const std::vector<int64_t> dims = {5, 4, 3};
  SparseTensor x(dims);
  for (int i = 0; i < 25; ++i) {
    x.Set({static_cast<int32_t>(rng.UniformInt(0, 4)),
           static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 2))},
          rng.UniformDouble(0.5, 2.0));
  }
  CpdState state(KruskalModel::Random(dims, 2, rng));
  AlsSweep(x, state, /*normalize_columns=*/false);
  // The last updated mode (mode 2) must satisfy A H = MTTKRP exactly.
  Matrix mttkrp = Mttkrp(x, state.model.factors(), 2);
  Matrix h = HadamardOfGramsExcept(state.grams, 2);
  Matrix lhs = Multiply(state.model.factor(2), h);
  EXPECT_LT(MaxAbsDiff(lhs, mttkrp), 1e-8);
}

TEST(AlsTest, FitnessNonDecreasingAcrossSweeps) {
  Rng rng(6);
  const std::vector<int64_t> dims = {6, 5, 4};
  KruskalModel truth = KruskalModel::Random(dims, 2, rng);
  SparseTensor x = DenseFromModel(truth);

  CpdState state(KruskalModel::Random(dims, 3, rng));
  double previous = state.model.Fitness(x);
  for (int sweep = 0; sweep < 10; ++sweep) {
    AlsSweep(x, state, /*normalize_columns=*/true);
    const double fitness = state.model.Fitness(x);
    EXPECT_GE(fitness, previous - 1e-9) << "sweep " << sweep;
    previous = fitness;
  }
}

TEST(AlsTest, RecoversExactLowRankTensor) {
  Rng rng(7);
  const std::vector<int64_t> dims = {6, 5, 4};
  KruskalModel truth = KruskalModel::Random(dims, 2, rng);
  SparseTensor x = DenseFromModel(truth);
  AlsOptions options;
  options.max_iterations = 200;
  options.fitness_tolerance = 1e-9;
  KruskalModel fitted = AlsDecompose(x, 3, options, rng);  // Overcomplete.
  EXPECT_GT(fitted.Fitness(x), 0.999);
}

TEST(AlsTest, NormalizedSweepKeepsUnitColumns) {
  Rng rng(8);
  const std::vector<int64_t> dims = {5, 4, 3};
  SparseTensor x(dims);
  for (int i = 0; i < 20; ++i) {
    x.Set({static_cast<int32_t>(rng.UniformInt(0, 4)),
           static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 2))},
          1.0);
  }
  CpdState state(KruskalModel::Random(dims, 2, rng));
  AlsSweep(x, state, /*normalize_columns=*/true);
  for (int m = 0; m < 3; ++m) {
    for (int64_t r = 0; r < 2; ++r) {
      double norm_sq = 0.0;
      for (int64_t i = 0; i < dims[static_cast<size_t>(m)]; ++i) {
        norm_sq += state.model.factor(m)(i, r) * state.model.factor(m)(i, r);
      }
      // Columns are unit length unless the component died entirely.
      if (norm_sq > 0.0) {
        EXPECT_NEAR(norm_sq, 1.0, 1e-9);
      }
    }
  }
}

TEST(AlsTest, EmptyTensorIsHandled) {
  Rng rng(9);
  SparseTensor x({3, 3, 3});
  AlsOptions options;
  KruskalModel model = AlsDecompose(x, 2, options, rng);
  EXPECT_EQ(model.Fitness(x), 0.0);
  EXPECT_EQ(AlsReferenceFitness(x, 2, options, rng), 0.0);
}

TEST(AlsTest, ReferenceFitnessIsReasonablyHighOnLowRankData) {
  Rng rng(10);
  const std::vector<int64_t> dims = {8, 7, 5};
  KruskalModel truth = KruskalModel::Random(dims, 3, rng);
  SparseTensor x = DenseFromModel(truth);
  AlsOptions options;
  options.max_iterations = 100;
  EXPECT_GT(AlsReferenceFitness(x, 3, options, rng), 0.95);
}

TEST(GramSolveTest, AgreesWithPinvOnSingularGram) {
  // Duplicated component ⇒ rank-deficient H; the solve must fall back to the
  // pseudoinverse rather than blowing up.
  Matrix a(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);  // Same column twice.
  }
  Matrix h = MultiplyTransposeA(a, a);
  double b[2] = {1.0, 2.0};
  double x[2];
  SolveRowAgainstGram(h, b, x);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  // For the pseudoinverse solution, x H must reproduce the projection of b
  // onto range(H); with b in range check consistency: (1,2) is not symmetric
  // so project: verify ‖x‖ finite and x H ≈ projection of b.
  double recon[2] = {x[0] * h(0, 0) + x[1] * h(1, 0),
                     x[0] * h(0, 1) + x[1] * h(1, 1)};
  // Range of H is span{(1,1)}; projection of (1,2) is (1.5,1.5).
  EXPECT_NEAR(recon[0], 1.5, 1e-8);
  EXPECT_NEAR(recon[1], 1.5, 1e-8);
}

}  // namespace
}  // namespace sns
