// End-to-end tests of the ContinuousCpd facade: creation validation,
// warm-up + ALS init + event-driven updating, determinism, and tracking
// quality of every variant on a synthetic low-rank stream.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/als.h"
#include "core/continuous_cpd.h"
#include "stream/data_stream.h"

namespace sns {
namespace {

// A stationary low-rank stream: events drawn from 2 latent components with
// skewed per-mode popularity, one event per time unit.
DataStream MakeSyntheticStream(int64_t num_tuples, uint64_t seed) {
  Rng rng(seed);
  DataStream stream({8, 6});
  const std::vector<std::vector<double>> mode0 = {
      {8, 4, 2, 1, 1, 1, 1, 1}, {1, 1, 1, 1, 2, 4, 8, 8}};
  const std::vector<std::vector<double>> mode1 = {
      {6, 3, 1, 1, 1, 1}, {1, 1, 1, 3, 6, 6}};
  int64_t now = 1;
  for (int64_t n = 0; n < num_tuples; ++n) {
    const size_t component = rng.UniformDouble() < 0.6 ? 0 : 1;
    Tuple tuple{{static_cast<int32_t>(rng.Categorical(mode0[component])),
                 static_cast<int32_t>(rng.Categorical(mode1[component]))},
                1.0, now};
    SNS_CHECK(stream.Append(tuple).ok());
    now += rng.UniformInt(1, 2);
  }
  return stream;
}

// gtest-safe name: '+' becomes "Plus", '-' is dropped.
std::string VariantTestName(SnsVariant variant) {
  std::string out;
  for (char c : VariantName(variant)) {
    if (c == '+') {
      out += "Plus";
    } else if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    }
  }
  return out;
}

ContinuousCpdOptions TestOptions(SnsVariant variant) {
  ContinuousCpdOptions options;
  options.rank = 3;
  options.window_size = 4;
  options.period = 25;
  options.variant = variant;
  // θ sized like the paper (≈ average slice degree); far smaller values make
  // the RND variants under-sample this tiny window (see bench/fig7_theta).
  options.sample_threshold = 20;
  options.clip_bound = 100.0;
  options.init.max_iterations = 30;
  options.seed = 99;
  return options;
}

// Warm up over the first window span, ALS-init, process the rest.
std::unique_ptr<ContinuousCpd> RunPipeline(const DataStream& stream,
                                           SnsVariant variant) {
  ContinuousCpdOptions options = TestOptions(variant);
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  SNS_CHECK(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  const int64_t warmup_end =
      stream.start_time() + options.window_size * options.period;
  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd->IngestOnly(tuples[i]);
  }
  cpd->InitializeWithAls();
  for (; i < tuples.size(); ++i) cpd->ProcessTuple(tuples[i]);
  return cpd;
}

TEST(ContinuousCpdTest, CreateValidatesConfiguration) {
  ContinuousCpdOptions options = TestOptions(SnsVariant::kRndPlus);
  EXPECT_TRUE(ContinuousCpd::Create({5, 5}, options).ok());
  EXPECT_FALSE(ContinuousCpd::Create({}, options).ok());
  EXPECT_FALSE(ContinuousCpd::Create({0, 5}, options).ok());

  options.rank = 0;
  EXPECT_FALSE(ContinuousCpd::Create({5, 5}, options).ok());
  options = TestOptions(SnsVariant::kRndPlus);
  options.period = 0;
  EXPECT_FALSE(ContinuousCpd::Create({5, 5}, options).ok());
  options = TestOptions(SnsVariant::kRndPlus);
  options.sample_threshold = 0;
  EXPECT_FALSE(ContinuousCpd::Create({5, 5}, options).ok());
  options = TestOptions(SnsVariant::kRndPlus);
  options.clip_bound = -1.0;
  EXPECT_FALSE(ContinuousCpd::Create({5, 5}, options).ok());
  options = TestOptions(SnsVariant::kRndPlus);
  options.window_size = 0;
  EXPECT_FALSE(ContinuousCpd::Create({5, 5}, options).ok());
}

TEST(ContinuousCpdTest, WarmupDoesNotTouchFactorsButFillsWindow) {
  DataStream stream = MakeSyntheticStream(50, 7);
  ContinuousCpdOptions options = TestOptions(SnsVariant::kVecPlus);
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  for (const Tuple& tuple : stream.tuples()) cpd->IngestOnly(tuple);
  EXPECT_GT(cpd->window().nnz(), 0);
  EXPECT_EQ(cpd->events_processed(), 0);
}

TEST(ContinuousCpdTest, ProcessCountsEventsAndMeasuresTime) {
  DataStream stream = MakeSyntheticStream(300, 8);
  std::unique_ptr<ContinuousCpd> cpd = RunPipeline(stream, SnsVariant::kRndPlus);
  EXPECT_GT(cpd->events_processed(), 0);
  EXPECT_GT(cpd->update_seconds(), 0.0);
  EXPECT_GT(cpd->MeanUpdateMicros(), 0.0);
  EXPECT_EQ(cpd->updater_name(), "SNS+RND");
}

TEST(ContinuousCpdTest, DeterministicForSameSeed) {
  DataStream stream = MakeSyntheticStream(200, 9);
  std::unique_ptr<ContinuousCpd> a = RunPipeline(stream, SnsVariant::kRndPlus);
  std::unique_ptr<ContinuousCpd> b = RunPipeline(stream, SnsVariant::kRndPlus);
  for (int m = 0; m < a->model().num_modes(); ++m) {
    EXPECT_LT(MaxAbsDiff(a->model().factor(m), b->model().factor(m)), 1e-15);
  }
}

TEST(ContinuousCpdTest, AdvanceToDrainsScheduledEvents) {
  DataStream stream = MakeSyntheticStream(100, 10);
  std::unique_ptr<ContinuousCpd> cpd = RunPipeline(stream, SnsVariant::kVecPlus);
  const int64_t horizon =
      stream.end_time() +
      cpd->options().window_size * cpd->options().period + 1;
  cpd->AdvanceTo(horizon);
  EXPECT_EQ(cpd->window().nnz(), 0);  // Everything expired.
}

// Every stable variant must track the window with fitness comparable to a
// fresh batch ALS (Observation 4 reports 72-100%; we assert a loose 55% on
// this tiny stream to stay robust to seed effects).
class StableVariantTrackingTest
    : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(StableVariantTrackingTest, TracksWindowFitness) {
  DataStream stream = MakeSyntheticStream(900, 11);
  std::unique_ptr<ContinuousCpd> cpd = RunPipeline(stream, GetParam());

  const double fitness = cpd->Fitness();
  EXPECT_TRUE(std::isfinite(fitness));

  Rng rng(1234);
  AlsOptions als_options;
  als_options.max_iterations = 50;
  const double als_fitness = AlsReferenceFitness(
      cpd->window(), cpd->options().rank, als_options, rng);
  ASSERT_GT(als_fitness, 0.0);
  EXPECT_GT(fitness / als_fitness, 0.55)
      << VariantName(GetParam()) << ": fitness " << fitness << " vs ALS "
      << als_fitness;
}

INSTANTIATE_TEST_SUITE_P(StableVariants, StableVariantTrackingTest,
                         ::testing::Values(SnsVariant::kMat,
                                           SnsVariant::kVecPlus,
                                           SnsVariant::kRndPlus),
                         [](const auto& info) {
                           return VariantTestName(info.param);
                         });

// The unstable variants must at least run without producing NaNs on this
// well-behaved stream (the paper's instability shows on harder data).
class AnyVariantSmokeTest : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(AnyVariantSmokeTest, ProducesFiniteFactors) {
  DataStream stream = MakeSyntheticStream(400, 12);
  std::unique_ptr<ContinuousCpd> cpd = RunPipeline(stream, GetParam());
  for (int m = 0; m < cpd->model().num_modes(); ++m) {
    const Matrix& factor = cpd->model().factor(m);
    for (int64_t i = 0; i < factor.rows(); ++i) {
      for (int64_t r = 0; r < factor.cols(); ++r) {
        ASSERT_TRUE(std::isfinite(factor(i, r)))
            << VariantName(GetParam()) << " mode " << m;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, AnyVariantSmokeTest,
    ::testing::Values(SnsVariant::kMat, SnsVariant::kVec, SnsVariant::kRnd,
                      SnsVariant::kVecPlus, SnsVariant::kRndPlus),
    [](const auto& info) { return VariantTestName(info.param); });

}  // namespace
}  // namespace sns
