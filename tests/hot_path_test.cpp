// Hot-path guarantees of the per-event update stack:
//   - a counting global allocator asserting that steady-state event
//     processing performs ZERO heap allocations for every updater variant
//     (the workspace/Gram-cache refactor's core contract),
//   - differential tests pinning the workspace/caching path to a naive
//     reference reimplementation of the pre-refactor algorithm — bitwise
//     identical for the deterministic variants on 3-mode tensors (where the
//     prefix/suffix product order coincides with the sequential one), and
//     tight-tolerance for the sampled RND variants (whose prev-Gram
//     reconstruction U = Q + (p−a)'a is algebraically exact but rounds
//     differently than the deep-copy-and-maintain path),
//   - GramProductCache consistency against scratch recomputation under
//     arbitrary invalidation sequences,
//   - snapshot deduplication + O(1) PrevRow behavior,
//   - MakeUpdater failing loudly on an unhandled SnsVariant.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/random.h"
#include "core/als.h"
#include "core/continuous_cpd.h"
#include "core/cpd_state.h"
#include "core/gram_product_cache.h"
#include "core/gram_solve.h"
#include "core/row_updater_base.h"
#include "core/slice_sampler.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/scoped_timer.h"
#include "tensor/mttkrp.h"

// ---------------------------------------------------------------------------
// Counting global allocator. Every operator new in this binary bumps the
// counter; tests snapshot it around updater calls. Deallocation is not
// counted (free is allocation-free by definition here).

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded > 0 ? rounded : alignment)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sns {
namespace {

// The naive reference below is deliberately plain scalar code, so the
// bitwise differentials only hold when the production path runs the
// portable kernels too: pin the whole binary to the generic tier before
// any test constructs an updater. (The allocation-count and cache
// consistency guarantees are tier-independent.)
class ForceGenericTierEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    setenv("SNS_FORCE_GENERIC_KERNELS", "1", /*overwrite=*/1);
    internal::RefreshKernelTierForTest();
  }
};
const auto* const kForceGenericTier =
    ::testing::AddGlobalTestEnvironment(new ForceGenericTierEnvironment);

// ---------------------------------------------------------------------------
// Shared event helpers (mirroring core_updaters_test).

SparseTensor DenseWindowFromModel(const KruskalModel& model) {
  std::vector<int64_t> dims;
  for (int m = 0; m < model.num_modes(); ++m) {
    dims.push_back(model.factor(m).rows());
  }
  SparseTensor x(dims);
  ModeIndex index;
  for (size_t m = 0; m < dims.size(); ++m) index.PushBack(0);
  while (true) {
    x.Set(index, model.Evaluate(index));
    int m = static_cast<int>(dims.size()) - 1;
    while (m >= 0) {
      if (++index[m] < dims[static_cast<size_t>(m)]) break;
      index[m] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return x;
}

WindowDelta MakeArrival(SparseTensor& window, int32_t i0, int32_t i1,
                        double v, int w_size) {
  WindowDelta delta;
  delta.kind = EventKind::kArrival;
  delta.w = 0;
  delta.tuple = Tuple{{i0, i1}, v, 0};
  const ModeIndex cell = ModeIndex{i0, i1}.WithAppended(w_size - 1);
  window.Add(cell, v);
  delta.cells.push_back({cell, v});
  return delta;
}

WindowDelta MakeSlide(SparseTensor& window, int32_t i0, int32_t i1, double v,
                      int w, int w_size) {
  WindowDelta delta;
  delta.kind = EventKind::kSlide;
  delta.w = w;
  delta.tuple = Tuple{{i0, i1}, v, 0};
  const ModeIndex from = ModeIndex{i0, i1}.WithAppended(w_size - w);
  const ModeIndex to = ModeIndex{i0, i1}.WithAppended(w_size - w - 1);
  window.Add(from, -v);
  window.Add(to, v);
  delta.cells.push_back({from, -v});
  delta.cells.push_back({to, v});
  return delta;
}

WindowDelta RandomEvent(SparseTensor& window, Rng& rng, int w_size,
                        int64_t dim0, int64_t dim1) {
  const auto i0 = static_cast<int32_t>(rng.UniformInt(0, dim0 - 1));
  const auto i1 = static_cast<int32_t>(rng.UniformInt(0, dim1 - 1));
  const double v = rng.UniformDouble(0.5, 1.5);
  if (rng.NextUint64(3) == 0 && w_size > 1) {
    const int w = 1 + static_cast<int>(rng.NextUint64(
                          static_cast<uint64_t>(w_size - 1)));
    return MakeSlide(window, i0, i1, v, w, w_size);
  }
  return MakeArrival(window, i0, i1, v, w_size);
}

// ---------------------------------------------------------------------------
// Zero-allocation guarantee.

// Runs `updater` over `total` random events on a dense-ish window and
// returns the number of heap allocations performed by OnEvent calls after
// the first `warmup` events (which are allowed to size workspaces).
std::uint64_t SteadyStateAllocations(EventUpdater& updater, int warmup,
                                     int measured, uint64_t seed) {
  Rng rng(seed);
  const int w_size = 4;
  const std::vector<int64_t> dims = {6, 5, w_size};
  KruskalModel model = KruskalModel::Random(dims, 4, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);

  std::uint64_t counted = 0;
  for (int step = 0; step < warmup + measured; ++step) {
    WindowDelta delta = RandomEvent(window, rng, w_size, dims[0], dims[1]);
    const std::uint64_t before =
        g_heap_allocations.load(std::memory_order_relaxed);
    updater.OnEvent(window, delta, state);
    const std::uint64_t after =
        g_heap_allocations.load(std::memory_order_relaxed);
    if (step >= warmup) counted += after - before;
  }
  return counted;
}

// Canary: the counting allocator must actually be intercepting operator
// new, or every zero-allocation assertion below would pass vacuously.
TEST(ZeroAllocationTest, CountingAllocatorIntercepts) {
  const std::uint64_t before =
      g_heap_allocations.load(std::memory_order_relaxed);
  std::vector<double>* v = new std::vector<double>(64);
  const std::uint64_t after =
      g_heap_allocations.load(std::memory_order_relaxed);
  delete v;
  EXPECT_GE(after - before, 2u);  // The vector object + its buffer.
}

TEST(ZeroAllocationTest, SnsVecSteadyStateEventsAllocateNothing) {
  SnsVecUpdater updater;
  EXPECT_EQ(SteadyStateAllocations(updater, 20, 80, 0xa110c1), 0u);
}

TEST(ZeroAllocationTest, SnsVecPlusSteadyStateEventsAllocateNothing) {
  SnsVecPlusUpdater updater(/*clip_bound=*/50.0);
  EXPECT_EQ(SteadyStateAllocations(updater, 20, 80, 0xa110c2), 0u);
}

TEST(ZeroAllocationTest, SnsRndSteadyStateEventsAllocateNothing) {
  // θ = 2 forces the sampled path (slice degrees exceed 2 on the dense
  // window), which exercises the prev-Gram reconstruction and the θ-sample
  // buffer.
  SnsRndUpdater updater(/*sample_threshold=*/2, /*seed=*/7);
  EXPECT_EQ(SteadyStateAllocations(updater, 20, 80, 0xa110c3), 0u);
}

TEST(ZeroAllocationTest, SnsRndPlusSteadyStateEventsAllocateNothing) {
  SnsRndPlusUpdater updater(/*sample_threshold=*/2, /*clip_bound=*/50.0,
                            /*seed=*/7);
  EXPECT_EQ(SteadyStateAllocations(updater, 20, 80, 0xa110c4), 0u);
}

TEST(ZeroAllocationTest, SnsMatSteadyStateEventsAllocateNothing) {
  SnsMatUpdater updater;
  EXPECT_EQ(SteadyStateAllocations(updater, 5, 20, 0xa110c5), 0u);
}

// Telemetry hot-path contract: with metrics enabled, the worker-shard
// instrumentation (scoped timer, latency histograms, counters, queue-depth
// gauge) adds relaxed atomics to the event loop but never a heap
// allocation — histogram storage is preallocated inline in the domain.
TEST(ZeroAllocationTest, MetricsRecordingSteadyStateAllocatesNothing) {
  const auto metrics = std::make_unique<telemetry::ShardMetrics>();
  SnsVecPlusUpdater updater(/*clip_bound=*/50.0);
  Rng rng(0xa110c6);
  const int w_size = 4;
  const std::vector<int64_t> dims = {6, 5, w_size};
  KruskalModel model = KruskalModel::Random(dims, 4, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);

  std::uint64_t counted = 0;
  for (int step = 0; step < 100; ++step) {
    WindowDelta delta = RandomEvent(window, rng, w_size, dims[0], dims[1]);
    const std::uint64_t before =
        g_heap_allocations.load(std::memory_order_relaxed);
    {
      // The exact per-task instrumentation the worker shard performs.
      telemetry::ScopedTimer timer(&metrics->apply_ns);
      metrics->mailbox_pushes.Add(1);
      metrics->queue_depth.Add(1);
      updater.OnEvent(window, delta, state);
      metrics->queue_depth.Add(-1);
      metrics->tasks_executed.Add(1);
      metrics->ingest_latency_ns.Record(timer.ElapsedNanos());
    }
    const std::uint64_t after =
        g_heap_allocations.load(std::memory_order_relaxed);
    if (step >= 20) counted += after - before;
  }
  EXPECT_EQ(counted, 0u);
  EXPECT_EQ(metrics->tasks_executed.Get(), 100u);
  EXPECT_EQ(metrics->apply_ns.Snapshot().count, 100u);
  EXPECT_EQ(metrics->queue_depth.Get(), 0);
}

// ---------------------------------------------------------------------------
// Differential tests against a naive reference reimplementation of the
// pre-refactor update algorithm: per-row Hadamard-of-Grams recomputed from
// scratch, prev Grams deep-copied at event start and maintained by
// ApplyPrevGramRowUpdate, the pre-event model evaluated from a full factor
// copy.

enum class RefKind { kVec, kVecPlus, kRnd, kRndPlus };

class NaiveReference {
 public:
  NaiveReference(RefKind kind, int64_t theta, double clip_bound, uint64_t seed)
      : kind_(kind), theta_(theta), clip_min_(-clip_bound),
        clip_max_(clip_bound), rng_(seed) {}

  void OnEvent(const SparseTensor& window, const WindowDelta& delta,
               CpdState& state) {
    if (delta.cells.empty()) return;
    const int time_mode = state.num_modes() - 1;
    const int w_size =
        static_cast<int>(state.model.factor(time_mode).rows());
    const int w = delta.w;

    const bool sampling = kind_ == RefKind::kRnd || kind_ == RefKind::kRndPlus;
    std::vector<Matrix> prev_grams;
    std::vector<Matrix> prev_factors;
    if (sampling) {
      prev_grams = state.grams;                 // Alg. 3 line 1 (deep copy).
      prev_factors = state.model.factors();     // Full pre-event snapshot.
    }

    auto update_row = [&](int mode, int64_t row) {
      const int64_t rank = state.rank();
      const int64_t padded = PaddedRank(rank);
      Matrix& factor = state.model.factor(mode);
      // Padded-buffer contract of the kernels: rank-length scratch spans
      // the padded stride with zero padding lanes.
      std::vector<double> old_row(factor.Row(row), factor.Row(row) + padded);
      const Matrix h = HadamardOfGramsExcept(state.grams, mode);
      std::vector<double> rhs(static_cast<size_t>(padded), 0.0);
      std::vector<double> had(static_cast<size_t>(padded), 0.0);

      auto accumulate_delta_cells = [&]() {
        for (const DeltaCell& cell : delta.cells) {
          if (cell.index[mode] != row) continue;
          HadamardRowProduct(state.model.factors(), cell.index, mode,
                             had.data());
          for (int64_t r = 0; r < rank; ++r) {
            rhs[static_cast<size_t>(r)] +=
                cell.delta * had[static_cast<size_t>(r)];
          }
        }
      };

      switch (kind_) {
        case RefKind::kVec:
          if (mode == time_mode) {
            accumulate_delta_cells();
            std::vector<double> solution(static_cast<size_t>(rank));
            SolveRowAgainstGram(h, rhs.data(), solution.data());
            double* target = factor.Row(row);
            for (int64_t r = 0; r < rank; ++r) {
              target[r] += solution[static_cast<size_t>(r)];
            }
          } else {
            MttkrpRow(window, state.model.factors(), mode, row, rhs.data());
            std::vector<double> solution(static_cast<size_t>(rank));
            SolveRowAgainstGram(h, rhs.data(), solution.data());
            double* target = factor.Row(row);
            for (int64_t r = 0; r < rank; ++r) {
              target[r] = solution[static_cast<size_t>(r)];
            }
          }
          break;
        case RefKind::kVecPlus:
          if (mode == time_mode) {
            RowTimesMatrix(old_row.data(), h, rhs.data());
            accumulate_delta_cells();
          } else {
            MttkrpRow(window, state.model.factors(), mode, row, rhs.data());
          }
          CoordinateDescentRow(factor.Row(row), rank, h, rhs.data(),
                               clip_min_, clip_max_);
          break;
        case RefKind::kRnd:
        case RefKind::kRndPlus: {
          const int64_t degree = window.Degree(mode, row);
          if (degree <= theta_) {
            MttkrpRow(window, state.model.factors(), mode, row, rhs.data());
          } else {
            const Matrix h_prev = HadamardOfGramsExcept(prev_grams, mode);
            RowTimesMatrix(old_row.data(), h_prev, rhs.data());
            for (const SampledCell& cell : SampleSliceCells(
                     window, mode, row, theta_, delta, rng_)) {
              double prev_value = 0.0;
              for (int64_t r = 0; r < rank; ++r) {
                double prod = 1.0;
                for (int m = 0; m < state.num_modes(); ++m) {
                  prod *= prev_factors[static_cast<size_t>(m)].Row(
                      cell.index[m])[r];
                }
                prev_value += prod;
              }
              const double residual = cell.value - prev_value;
              HadamardRowProduct(state.model.factors(), cell.index, mode,
                                 had.data());
              for (int64_t r = 0; r < rank; ++r) {
                rhs[static_cast<size_t>(r)] +=
                    residual * had[static_cast<size_t>(r)];
              }
            }
            accumulate_delta_cells();
          }
          if (kind_ == RefKind::kRnd) {
            std::vector<double> solution(static_cast<size_t>(rank));
            SolveRowAgainstGram(h, rhs.data(), solution.data());
            double* target = factor.Row(row);
            for (int64_t r = 0; r < rank; ++r) {
              target[r] = solution[static_cast<size_t>(r)];
            }
          } else {
            CoordinateDescentRow(factor.Row(row), rank, h, rhs.data(),
                                 clip_min_, clip_max_);
          }
          break;
        }
      }

      ApplyGramRowUpdate(state.grams[static_cast<size_t>(mode)],
                         old_row.data(), factor.Row(row));
      if (sampling) {
        ApplyPrevGramRowUpdate(prev_grams[static_cast<size_t>(mode)],
                               old_row.data(), factor.Row(row));
      }
    };

    if (w > 0) update_row(time_mode, w_size - w);
    if (w < w_size) update_row(time_mode, w_size - w - 1);
    for (int m = 0; m < time_mode; ++m) update_row(m, delta.tuple.index[m]);
  }

 private:
  RefKind kind_;
  int64_t theta_;
  double clip_min_;
  double clip_max_;
  Rng rng_;
};

void ExpectFactorsBitwiseEqual(const CpdState& a, const CpdState& b,
                               int step) {
  for (int m = 0; m < a.num_modes(); ++m) {
    const Matrix& fa = a.model.factor(m);
    const Matrix& fb = b.model.factor(m);
    for (int64_t i = 0; i < fa.rows(); ++i) {
      for (int64_t r = 0; r < fa.cols(); ++r) {
        ASSERT_EQ(fa(i, r), fb(i, r))
            << "step " << step << " mode " << m << " row " << i;
      }
    }
  }
}

double MaxFactorDiff(const CpdState& a, const CpdState& b) {
  double diff = 0.0;
  for (int m = 0; m < a.num_modes(); ++m) {
    diff = std::max(diff, MaxAbsDiff(a.model.factor(m), b.model.factor(m)));
  }
  return diff;
}

// Runs the real updater and the naive reference over the same 3-mode event
// stream (separate but identically mutated windows).
template <typename Updater>
void RunDifferential(Updater& updater, NaiveReference& reference,
                     bool expect_bitwise, double tolerance, uint64_t seed) {
  Rng rng(seed);
  const int w_size = 4;
  const std::vector<int64_t> dims = {5, 6, w_size};
  KruskalModel model = KruskalModel::Random(dims, 3, rng);
  SparseTensor window_real = DenseWindowFromModel(model);
  SparseTensor window_ref = DenseWindowFromModel(model);
  CpdState state_real(model);
  CpdState state_ref(model);

  Rng events(seed + 1);
  for (int step = 0; step < 60; ++step) {
    Rng events_copy = events;  // Same event on both windows.
    WindowDelta delta_real =
        RandomEvent(window_real, events, w_size, dims[0], dims[1]);
    WindowDelta delta_ref =
        RandomEvent(window_ref, events_copy, w_size, dims[0], dims[1]);
    updater.OnEvent(window_real, delta_real, state_real);
    reference.OnEvent(window_ref, delta_ref, state_ref);
    if (expect_bitwise) {
      ExpectFactorsBitwiseEqual(state_real, state_ref, step);
    } else {
      ASSERT_LT(MaxFactorDiff(state_real, state_ref), tolerance)
          << "step " << step;
    }
  }
}

// On 3-mode tensors the Gram-product cache's prefix/suffix order coincides
// with the sequential Hadamard order, so the deterministic variants must be
// BITWISE identical to the naive reference.
TEST(DifferentialTest, SnsVecBitwiseIdenticalToNaiveReference) {
  SnsVecUpdater updater;
  NaiveReference reference(RefKind::kVec, 0, 1.0, 0);
  RunDifferential(updater, reference, /*expect_bitwise=*/true, 0.0, 0xd1f1);
}

TEST(DifferentialTest, SnsVecPlusBitwiseIdenticalToNaiveReference) {
  SnsVecPlusUpdater updater(/*clip_bound=*/50.0);
  NaiveReference reference(RefKind::kVecPlus, 0, 50.0, 0);
  RunDifferential(updater, reference, /*expect_bitwise=*/true, 0.0, 0xd1f2);
}

// The sampled variants reconstruct U(m) = Q(m) + (p−a)'a instead of deep
// copying and maintaining it; the algebra is exact but the floating-point
// rounding differs from the reference path, so the comparison is a tight
// tolerance instead of bitwise. Identical seeds keep the θ-sampling in
// lockstep.
TEST(DifferentialTest, SnsRndMatchesNaiveReference) {
  SnsRndUpdater updater(/*sample_threshold=*/3, /*seed=*/99);
  NaiveReference reference(RefKind::kRnd, 3, 1.0, 99);
  RunDifferential(updater, reference, /*expect_bitwise=*/false, 1e-7, 0xd1f3);
}

TEST(DifferentialTest, SnsRndPlusMatchesNaiveReference) {
  SnsRndPlusUpdater updater(/*sample_threshold=*/3, /*clip_bound=*/50.0,
                            /*seed=*/99);
  NaiveReference reference(RefKind::kRndPlus, 3, 50.0, 99);
  RunDifferential(updater, reference, /*expect_bitwise=*/false, 1e-7, 0xd1f4);
}

// SNS-MAT: the workspace ALS sweep (in-place solve, MttkrpInto,
// MultiplyTransposeAInto, cached Gram products) against the textbook sweep.
TEST(DifferentialTest, SnsMatBitwiseIdenticalToNaiveSweep) {
  Rng rng(0xd1f5);
  const int w_size = 4;
  const std::vector<int64_t> dims = {5, 6, w_size};
  KruskalModel model = KruskalModel::Random(dims, 3, rng);
  SparseTensor window_real = DenseWindowFromModel(model);
  SparseTensor window_ref = DenseWindowFromModel(model);
  CpdState state_real(model);
  CpdState state_ref(model);
  SnsMatUpdater updater;

  Rng events(0xd1f6);
  for (int step = 0; step < 10; ++step) {
    Rng events_copy = events;
    WindowDelta delta_real =
        RandomEvent(window_real, events, w_size, dims[0], dims[1]);
    WindowDelta delta_ref =
        RandomEvent(window_ref, events_copy, w_size, dims[0], dims[1]);
    updater.OnEvent(window_real, delta_real, state_real);

    // Naive sweep on the reference state.
    for (int m = 0; m < state_ref.num_modes(); ++m) {
      Matrix mttkrp = Mttkrp(window_ref, state_ref.model.factors(), m);
      Matrix h = HadamardOfGramsExcept(state_ref.grams, m);
      Matrix updated = SolveRowsAgainstGram(h, mttkrp);
      for (int64_t r = 0; r < state_ref.rank(); ++r) {
        double norm_sq = 0.0;
        for (int64_t i = 0; i < updated.rows(); ++i) {
          norm_sq += updated(i, r) * updated(i, r);
        }
        const double norm = std::sqrt(norm_sq);
        state_ref.model.lambda()[static_cast<size_t>(r)] = norm;
        if (norm > 0.0) {
          const double inv = 1.0 / norm;
          for (int64_t i = 0; i < updated.rows(); ++i) updated(i, r) *= inv;
        }
      }
      state_ref.model.factor(m) = std::move(updated);
      state_ref.grams[static_cast<size_t>(m)] = MultiplyTransposeA(
          state_ref.model.factor(m), state_ref.model.factor(m));
    }
    ExpectFactorsBitwiseEqual(state_real, state_ref, step);
  }
}

// ---------------------------------------------------------------------------
// GramProductCache.

TEST(GramProductCacheTest, MatchesScratchRecomputation3ModeBitwise) {
  Rng rng(0xcac4e);
  const int64_t rank = 4;
  std::vector<Matrix> grams;
  for (int m = 0; m < 3; ++m) {
    grams.push_back(Matrix::RandomUniform(rank, rank, rng));
  }
  GramProductCache cache;
  cache.BeginEvent(grams);
  Matrix out(rank, rank);

  const int sequence[] = {2, 2, 0, 1, 2, 0};
  for (int mode : sequence) {
    cache.ProductExcept(mode, out);
    const Matrix expected = HadamardOfGramsExcept(grams, mode);
    for (int64_t i = 0; i < rank; ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        ASSERT_EQ(out(i, j), expected(i, j)) << "mode " << mode;
      }
    }
    // Mutate the mode just read and invalidate it, as a row commit would.
    grams[static_cast<size_t>(mode)] =
        Matrix::RandomUniform(rank, rank, rng);
    cache.NotifyModeChanged(mode);
  }
}

TEST(GramProductCacheTest, MatchesScratchRecomputation5Mode) {
  Rng rng(0xcac5e);
  const int64_t rank = 3;
  std::vector<Matrix> grams;
  for (int m = 0; m < 5; ++m) {
    grams.push_back(Matrix::RandomUniform(rank, rank, rng));
  }
  GramProductCache cache;
  cache.BeginEvent(grams);
  Matrix out(rank, rank);

  for (int step = 0; step < 40; ++step) {
    const int mode = static_cast<int>(rng.NextUint64(5));
    cache.ProductExcept(mode, out);
    const Matrix expected = HadamardOfGramsExcept(grams, mode);
    // 5-mode prefix/suffix grouping differs from the sequential product by
    // rounding only.
    ASSERT_LT(MaxAbsDiff(out, expected), 1e-12) << "step " << step;
    if (rng.NextUint64(2) == 0) {
      const int changed = static_cast<int>(rng.NextUint64(5));
      grams[static_cast<size_t>(changed)] =
          Matrix::RandomUniform(rank, rank, rng);
      cache.NotifyModeChanged(changed);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot deduplication + O(1) PrevRow.

class SnapshotProbeUpdater : public RowUpdaterBase {
 public:
  std::string_view name() const override { return "probe"; }

  int snapshots_seen = -1;

 protected:
  bool NeedsPrevGrams() const override { return true; }

  void UpdateRow(int mode, int64_t row, const SparseTensor&,
                 const WindowDelta&, CpdState& state,
                 UpdateWorkspace& ws) override {
    snapshots_seen = snapshot_count();
    // Overwrite the live row and check PrevRow still serves the event-start
    // value from its snapshot.
    Matrix& factor = state.model.factor(mode);
    const double before = factor(row, 0);
    std::copy(factor.Row(row), factor.Row(row) + state.rank(),
              ws.old_row.begin());
    factor(row, 0) = before + 7.5;
    EXPECT_EQ(PrevRow(mode, row, state)[0], before)
        << "mode " << mode << " row " << row;
    CommitRow(mode, row, ws.old_row.data(), state);
  }
};

TEST(SnapshotTest, DuplicateTimeRowCellsSnapshotOnce) {
  Rng rng(0x54a9);
  const std::vector<int64_t> dims = {4, 3, 5};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  SnapshotProbeUpdater probe;

  // Degenerate delta: two cells living in the SAME time slice. The old code
  // snapshotted the time row once per cell; the deduped path must count it
  // once — 1 time snapshot + 2 non-time snapshots.
  WindowDelta twin;
  twin.kind = EventKind::kArrival;
  twin.w = 0;
  twin.tuple = Tuple{{1, 2}, 2.0, 0};
  const ModeIndex cell = ModeIndex{1, 2}.WithAppended(4);
  window.Add(cell, 2.0);
  twin.cells.push_back({cell, 1.5});
  twin.cells.push_back({cell, 0.5});
  probe.OnEvent(window, twin, state);
  EXPECT_EQ(probe.snapshots_seen, 3);

  // A slide touches two distinct time rows: 2 + 2 snapshots.
  WindowDelta slide = MakeSlide(window, 2, 1, 1.0, 2, 5);
  probe.OnEvent(window, slide, state);
  EXPECT_EQ(probe.snapshots_seen, 4);
}

// ---------------------------------------------------------------------------
// MakeUpdater fails loudly on an unhandled variant.

TEST(MakeUpdaterDeathTest, UnhandledVariantFailsLoudly) {
  ContinuousCpdOptions options;
  options.variant = static_cast<SnsVariant>(99);
  EXPECT_DEATH(
      { auto engine = ContinuousCpd::Create({4, 4}, options); },
      "unhandled SnsVariant");
}

}  // namespace
}  // namespace sns
