// Tests for the experiment harness (src/experiments/) that the benchmark
// binaries are built on.

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

// A miniature dataset spec so harness runs take milliseconds.
DatasetSpec MiniSpec() {
  DatasetSpec spec;
  spec.name = "mini";
  spec.paper_name = "Mini";
  spec.engine.rank = 3;
  spec.engine.window_size = 4;
  spec.engine.period = 50;
  spec.engine.sample_threshold = 15;
  spec.engine.clip_bound = 100.0;
  spec.engine.init.max_iterations = 20;
  spec.engine.seed = 5;
  spec.stream.mode_dims = {8, 6};
  spec.stream.num_events = 2000;
  spec.stream.time_span = (1 + kLiveWindows) * 4 * 50;
  spec.stream.latent_rank = 3;
  spec.stream.diurnal_period = 300;
  spec.stream.seed = 55;
  return spec;
}

TEST(HarnessTest, RunContinuousProducesBoundaryAlignedCurve) {
  DatasetSpec spec = MiniSpec();
  auto stream = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream.ok());
  RunResult result =
      RunContinuous(spec, stream.value(), SnsVariant::kVecPlus);

  EXPECT_EQ(result.method, "SNS+VEC");
  EXPECT_GT(result.updates, 0);
  EXPECT_GT(result.mean_update_micros, 0.0);
  EXPECT_EQ(result.num_parameters, 3 * (8 + 6 + 4));
  ASSERT_FALSE(result.fitness_curve.empty());
  // Boundaries are consecutive period multiples after the warm-up.
  const int64_t warmup_end = spec.WarmupEndTime();
  for (size_t i = 0; i < result.fitness_curve.size(); ++i) {
    EXPECT_EQ(result.fitness_curve[i].time,
              warmup_end + static_cast<int64_t>(i + 1) * spec.engine.period);
    EXPECT_TRUE(std::isfinite(result.fitness_curve[i].fitness));
  }
  // Live phase spans kLiveWindows window spans → 5*W boundaries.
  EXPECT_EQ(result.fitness_curve.size(),
            static_cast<size_t>(kLiveWindows * spec.engine.window_size));
}

TEST(HarnessTest, RunPeriodicMatchesBoundaryCount) {
  DatasetSpec spec = MiniSpec();
  auto stream = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream.ok());
  RunResult result =
      RunPeriodic(spec, stream.value(), MakeBaseline("OnlineSCP", spec));
  EXPECT_EQ(result.method, "OnlineSCP");
  EXPECT_EQ(result.fitness_curve.size(),
            static_cast<size_t>(kLiveWindows * spec.engine.window_size));
  EXPECT_GT(result.mean_update_micros, 0.0);
}

TEST(HarnessTest, MakeBaselineKnowsAllNames) {
  DatasetSpec spec = MiniSpec();
  for (const char* name :
       {"ALS", "OnlineSCP", "CP-stream", "NeCPD(1)", "NeCPD(10)"}) {
    auto algorithm = MakeBaseline(name, spec);
    ASSERT_NE(algorithm, nullptr);
    EXPECT_EQ(algorithm->name(), name);
  }
}

TEST(HarnessTest, OverrideOptionsApplies) {
  DatasetSpec spec = MiniSpec();
  auto stream = GenerateSyntheticStream(spec.stream);
  ASSERT_TRUE(stream.ok());
  // Degenerate θ must still run (and typically fit worse).
  RunResult result = RunContinuous(
      spec, stream.value(), SnsVariant::kRndPlus,
      [](ContinuousCpdOptions& options) { options.sample_threshold = 1; });
  EXPECT_FALSE(result.fitness_curve.empty());
}

TEST(HarnessTest, RelativeToDividesMatchingBoundaries) {
  std::vector<FitnessSample> curve = {{10, 0.4}, {20, 0.6}, {30, 0.9}};
  std::vector<FitnessSample> reference = {{10, 0.8}, {20, 0.0}, {30, 0.9}};
  auto relative = RelativeTo(curve, reference);
  // t=20 dropped (non-positive reference).
  ASSERT_EQ(relative.size(), 2u);
  EXPECT_DOUBLE_EQ(relative[0].fitness, 0.5);
  EXPECT_DOUBLE_EQ(relative[1].fitness, 1.0);
  EXPECT_DOUBLE_EQ(MeanOf(relative), 0.75);
  EXPECT_EQ(MeanOf({}), 0.0);
}

TEST(HarnessTest, MeanFitnessFractions) {
  RunResult result;
  result.fitness_curve = {{1, 0.0}, {2, 0.0}, {3, 1.0}, {4, 1.0}};
  EXPECT_DOUBLE_EQ(result.MeanFitness(), 0.5);
  EXPECT_DOUBLE_EQ(result.MeanFitness(0.5), 1.0);
  RunResult empty;
  EXPECT_EQ(empty.MeanFitness(), 0.0);
}

TEST(HarnessTest, MergeTimeRowsSumsGroups) {
  Rng rng(9);
  KruskalModel model = KruskalModel::Random({3, 4, 6}, 2, rng);
  KruskalModel merged = MergeTimeRows(model, 3);
  const Matrix& fine = model.factor(2);
  const Matrix& coarse = merged.factor(2);
  ASSERT_EQ(coarse.rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(coarse(0, r), fine(0, r) + fine(1, r) + fine(2, r), 1e-12);
    EXPECT_NEAR(coarse(1, r), fine(3, r) + fine(4, r) + fine(5, r), 1e-12);
  }
  // Non-time factors untouched.
  EXPECT_LT(MaxAbsDiff(merged.factor(0), model.factor(0)), 1e-15);
}

TEST(HarnessTest, MergeTimeRowsHandlesRaggedTail) {
  Rng rng(10);
  KruskalModel model = KruskalModel::Random({2, 2, 5}, 2, rng);
  KruskalModel merged = MergeTimeRows(model, 2);
  EXPECT_EQ(merged.factor(2).rows(), 3);  // ceil(5/2).
}

TEST(ReportTest, TableFormatsNumbers) {
  EXPECT_EQ(TableReporter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TableReporter::Num(-1.5, 0), "-2");
  EXPECT_EQ(TableReporter::Sci(0.00012345, 2), "1.23e-04");
}

TEST(ReportTest, TablePrintsWithoutCrashing) {
  TableReporter table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  table.Print();  // Smoke: alignment math must not assert.
  PrintDatasetLine(MiniSpec(), 100);
}

}  // namespace
}  // namespace sns
