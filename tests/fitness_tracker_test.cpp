// Differential tests of the incremental running-fitness estimator
// (core/fitness_tracker.h) against the exact fitness rescan, on synthetic
// streams through the real engine.

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/continuous_cpd.h"
#include "data/synthetic.h"
#include "stream/data_stream.h"

namespace sns {
namespace {

DataStream MakeStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {10, 8};
  config.num_events = num_events;
  config.time_span = 6 * 4 * 50;
  config.latent_rank = 3;
  config.diurnal_period = 200;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

ContinuousCpdOptions TrackerOptions(SnsVariant variant,
                                    int64_t resync_interval) {
  ContinuousCpdOptions options;
  options.rank = 3;
  options.window_size = 4;
  options.period = 50;
  options.variant = variant;
  options.sample_threshold = 20;
  options.clip_bound = 100.0;
  options.fitness_resync_interval = resync_interval;
  options.seed = 77;
  return options;
}

std::unique_ptr<ContinuousCpd> WarmedEngine(
    const DataStream& stream, const ContinuousCpdOptions& options,
    size_t* next_tuple) {
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  SNS_CHECK(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    cpd->IngestOnly(stream.tuples()[i]);
  }
  cpd->InitializeWithAls();
  *next_tuple = i;
  return cpd;
}

TEST(FitnessTrackerTest, MatchesExactFitnessAtInitialization) {
  const DataStream stream = MakeStream(800, 5);
  size_t i = 0;
  auto cpd = WarmedEngine(stream, TrackerOptions(SnsVariant::kVecPlus, 0), &i);
  // Reset recomputes all three terms exactly: the estimate IS the exact
  // fitness (same decomposition of the residual norm) up to rounding.
  EXPECT_NEAR(cpd->RunningFitness(), cpd->Fitness(), 1e-9);
}

// With a resync cadence the estimate must track the exact value closely on
// every variant class (deterministic row, sampled row, and full-sweep MAT).
class TrackedVariantTest : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(TrackedVariantTest, TracksExactFitnessWithinTolerance) {
  const DataStream stream = MakeStream(1500, 6);
  size_t i = 0;
  auto cpd = WarmedEngine(stream, TrackerOptions(GetParam(), 128), &i);

  double worst_gap = 0.0;
  int64_t checks = 0;
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
    if (i % 100 == 0) {
      const double exact = cpd->Fitness();
      const double running = cpd->RunningFitness();
      ASSERT_TRUE(std::isfinite(running));
      worst_gap = std::max(worst_gap, std::fabs(running - exact));
      ++checks;
    }
  }
  EXPECT_GT(checks, 5);
  // Between resyncs (run lazily at query time) only the delta-cell share of
  // each factor update is accounted (see the accuracy contract in
  // core/fitness_tracker.h), so the mid-interval estimate is a trend
  // signal, not the exact number. The empirical worst gap on these streams
  // is well under 0.2 across all variants at this cadence; 0.25 bounds it
  // with margin while still catching a divergent estimator immediately.
  EXPECT_LT(worst_gap, 0.25) << VariantName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Variants, TrackedVariantTest,
                         ::testing::Values(SnsVariant::kVecPlus,
                                           SnsVariant::kRndPlus,
                                           SnsVariant::kMat),
                         [](const auto& info) {
                           std::string out;
                           for (char c : VariantName(info.param)) {
                             if (c == '+') {
                               out += "Plus";
                             } else if (std::isalnum(
                                            static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

TEST(FitnessTrackerTest, ResyncDisabledStaysFiniteAndLooselyTracks) {
  const DataStream stream = MakeStream(1200, 7);
  size_t i = 0;
  auto cpd = WarmedEngine(stream, TrackerOptions(SnsVariant::kVecPlus, 0), &i);
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
  }
  const double running = cpd->RunningFitness();
  EXPECT_TRUE(std::isfinite(running));
  // Without resyncs only the factor-drift term accumulates error; it must
  // still land in the same neighborhood, not diverge.
  EXPECT_LT(std::fabs(running - cpd->Fitness()), 0.5);
}

TEST(FitnessTrackerTest, ResyncEveryEventMatchesExactEverywhere) {
  // resync_interval = 1 degenerates the estimator into the exact
  // computation: every query must agree with the rescan to rounding. This
  // pins the decomposition ‖X̃‖² − 2⟨X̃,X⟩ + ‖X‖² (Gram identity included)
  // against KruskalModel::Fitness at every single step.
  const DataStream stream = MakeStream(500, 8);
  size_t i = 0;
  auto cpd = WarmedEngine(stream, TrackerOptions(SnsVariant::kVecPlus, 1), &i);
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
    if (i % 25 == 0) {
      ASSERT_NEAR(cpd->RunningFitness(), cpd->Fitness(), 1e-8) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace sns
