// Correctness tests for the five SliceNStitch updaters (Algorithms 2-5).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/als.h"
#include "core/cpd_state.h"
#include "core/continuous_cpd.h"
#include "core/gram_solve.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

// Window tensor equal to the dense values of `model` (so X̃ = X exactly).
SparseTensor DenseWindowFromModel(const KruskalModel& model) {
  std::vector<int64_t> dims;
  for (int m = 0; m < model.num_modes(); ++m) {
    dims.push_back(model.factor(m).rows());
  }
  SparseTensor x(dims);
  ModeIndex index;
  for (size_t m = 0; m < dims.size(); ++m) index.PushBack(0);
  while (true) {
    x.Set(index, model.Evaluate(index));
    int m = static_cast<int>(dims.size()) - 1;
    while (m >= 0) {
      if (++index[m] < dims[static_cast<size_t>(m)]) break;
      index[m] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return x;
}

// Applies an arrival delta of value v at (i0, i1, W-1) to `window` and
// returns the WindowDelta describing it.
WindowDelta MakeArrival(SparseTensor& window, int32_t i0, int32_t i1,
                        double v, int w_size) {
  WindowDelta delta;
  delta.kind = EventKind::kArrival;
  delta.w = 0;
  delta.time = 0;
  delta.tuple = Tuple{{i0, i1}, v, 0};
  const ModeIndex cell = ModeIndex{i0, i1}.WithAppended(w_size - 1);
  window.Add(cell, v);
  delta.cells.push_back({cell, v});
  return delta;
}

// Applies a slide delta (w-th update) for tuple (i0, i1, v) to `window`.
WindowDelta MakeSlide(SparseTensor& window, int32_t i0, int32_t i1, double v,
                      int w, int w_size) {
  WindowDelta delta;
  delta.kind = EventKind::kSlide;
  delta.w = w;
  delta.time = 0;
  delta.tuple = Tuple{{i0, i1}, v, 0};
  const ModeIndex from = ModeIndex{i0, i1}.WithAppended(w_size - w);
  const ModeIndex to = ModeIndex{i0, i1}.WithAppended(w_size - w - 1);
  window.Add(from, -v);
  window.Add(to, v);
  delta.cells.push_back({from, -v});
  delta.cells.push_back({to, v});
  return delta;
}

double GramDrift(const CpdState& state) {
  double drift = 0.0;
  for (int m = 0; m < state.num_modes(); ++m) {
    Matrix expected =
        MultiplyTransposeA(state.model.factor(m), state.model.factor(m));
    drift = std::max(
        drift, MaxAbsDiff(state.grams[static_cast<size_t>(m)], expected));
  }
  return drift;
}

TEST(SnsMatTest, EventEqualsOneNormalizedAlsSweep) {
  Rng rng(21);
  const std::vector<int64_t> dims = {4, 3, 5};
  KruskalModel start = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(KruskalModel::Random(dims, 2, rng));

  CpdState state_updater(start);
  CpdState state_reference(start);

  WindowDelta delta = MakeArrival(window, 1, 2, 3.0, 5);
  // Reference sees the same post-delta window.
  SnsMatUpdater updater;
  updater.OnEvent(window, delta, state_updater);
  AlsSweep(window, state_reference, /*normalize_columns=*/true);

  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(MaxAbsDiff(state_updater.model.factor(m),
                         state_reference.model.factor(m)),
              1e-12);
  }
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(state_updater.model.lambda()[static_cast<size_t>(r)],
                     state_reference.model.lambda()[static_cast<size_t>(r)]);
  }
}

TEST(SnsMatTest, SkipsZeroValuedEvents) {
  Rng rng(22);
  const std::vector<int64_t> dims = {3, 3, 3};
  CpdState state(KruskalModel::Random(dims, 2, rng));
  KruskalModel before = state.model;
  SparseTensor window(dims);
  WindowDelta empty_delta;  // No cells.
  SnsMatUpdater updater;
  updater.OnEvent(window, empty_delta, state);
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(MaxAbsDiff(state.model.factor(m), before.factor(m)), 1e-15);
  }
}

// Under a perfect model (X̃ = X, H nonsingular), Eq. 9's incremental time-
// mode update must coincide with the exact row least squares (Eq. 6/12).
TEST(SnsVecTest, TimeModeShortcutMatchesExactSolveUnderPerfectModel) {
  Rng rng(23);
  const int w_size = 4;
  const std::vector<int64_t> dims = {3, 4, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);

  WindowDelta delta = MakeArrival(window, 2, 1, 5.0, w_size);

  // Expected: exact solve of the affected time row with the pre-event
  // factors (the time mode is updated first, so these are current).
  std::vector<double> b(PaddedRank(2)), expected(2);
  MttkrpRow(window, state.model.factors(), 2, w_size - 1, b.data());
  Matrix h = HadamardOfGramsExcept(state.grams, 2);
  SolveRowAgainstGram(h, b.data(), expected.data());

  SnsVecUpdater updater;
  updater.OnEvent(window, delta, state);

  const double* actual = state.model.factor(2).Row(w_size - 1);
  EXPECT_NEAR(actual[0], expected[0], 1e-8);
  EXPECT_NEAR(actual[1], expected[1], 1e-8);
}

// After an SNS-VEC event the final non-time row satisfies its normal
// equations exactly: A(m)(i,:) H = (X+ΔX)_(m)(i,:) K with everything at its
// final value (mode 1 is updated last in a 3-mode tensor).
TEST(SnsVecTest, LastNonTimeRowSatisfiesNormalEquations) {
  Rng rng(24);
  const int w_size = 3;
  const std::vector<int64_t> dims = {4, 5, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);

  WindowDelta delta = MakeSlide(window, 3, 2, 2.0, 1, w_size);
  SnsVecUpdater updater;
  updater.OnEvent(window, delta, state);

  std::vector<double> rhs(PaddedRank(2));
  MttkrpRow(window, state.model.factors(), 1, 2, rhs.data());
  Matrix h = HadamardOfGramsExcept(state.grams, 1);
  const double* row = state.model.factor(1).Row(2);
  for (int64_t k = 0; k < 2; ++k) {
    double lhs = row[0] * h(0, k) + row[1] * h(1, k);
    EXPECT_NEAR(lhs, rhs[static_cast<size_t>(k)], 1e-8);
  }
}

TEST(SnsVecTest, OnlyAffectedRowsChange) {
  Rng rng(25);
  const int w_size = 4;
  const std::vector<int64_t> dims = {5, 6, w_size};
  KruskalModel model = KruskalModel::Random(dims, 3, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  KruskalModel before = state.model;

  WindowDelta delta = MakeArrival(window, 2, 4, 1.5, w_size);
  SnsVecUpdater updater;
  updater.OnEvent(window, delta, state);

  for (int64_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    for (int64_t r = 0; r < 3; ++r) {
      EXPECT_EQ(state.model.factor(0)(i, r), before.factor(0)(i, r));
    }
  }
  for (int64_t i = 0; i < 6; ++i) {
    if (i == 4) continue;
    for (int64_t r = 0; r < 3; ++r) {
      EXPECT_EQ(state.model.factor(1)(i, r), before.factor(1)(i, r));
    }
  }
  for (int64_t t = 0; t < w_size - 1; ++t) {  // Only row W-1 changes.
    for (int64_t r = 0; r < 3; ++r) {
      EXPECT_EQ(state.model.factor(2)(t, r), before.factor(2)(t, r));
    }
  }
}

TEST(SnsVecTest, GramsStayConsistentAcrossEvents) {
  Rng rng(26);
  const int w_size = 3;
  const std::vector<int64_t> dims = {4, 4, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  SnsVecUpdater updater;

  for (int step = 0; step < 50; ++step) {
    WindowDelta delta =
        MakeArrival(window, static_cast<int32_t>(rng.UniformInt(0, 3)),
                    static_cast<int32_t>(rng.UniformInt(0, 3)),
                    rng.UniformDouble(0.5, 2.0), w_size);
    updater.OnEvent(window, delta, state);
  }
  EXPECT_LT(GramDrift(state), 1e-6);
}

TEST(SnsRndTest, ExactPathWhenDegreeBelowThreshold) {
  // With θ larger than any slice degree, SNS-RND uses Eq. 12 for every mode
  // — the update must then equal SNS-VEC's on non-time rows.
  Rng rng(27);
  const int w_size = 3;
  const std::vector<int64_t> dims = {4, 5, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window_rnd = DenseWindowFromModel(model);
  SparseTensor window_vec = DenseWindowFromModel(model);
  CpdState state_rnd(model);
  CpdState state_vec(model);

  SnsRndUpdater rnd(/*sample_threshold=*/10000, /*seed=*/1);
  SnsVecUpdater vec;
  WindowDelta delta_rnd = MakeArrival(window_rnd, 1, 3, 2.0, w_size);
  WindowDelta delta_vec = MakeArrival(window_vec, 1, 3, 2.0, w_size);
  rnd.OnEvent(window_rnd, delta_rnd, state_rnd);
  vec.OnEvent(window_vec, delta_vec, state_vec);

  // Time rows may differ (Eq. 12 vs Eq. 9) but under the perfect model they
  // agree too; non-time rows must match given identical time rows.
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(
        MaxAbsDiff(state_rnd.model.factor(m), state_vec.model.factor(m)),
        1e-7)
        << "mode " << m;
  }
}

TEST(SnsRndTest, SampledPathKeepsGramsAndPrevGramsConsistent) {
  Rng rng(28);
  const int w_size = 3;
  const std::vector<int64_t> dims = {4, 4, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  SnsRndUpdater updater(/*sample_threshold=*/3, /*seed=*/2);  // Forces sampling.

  for (int step = 0; step < 40; ++step) {
    WindowDelta delta =
        MakeArrival(window, static_cast<int32_t>(rng.UniformInt(0, 3)),
                    static_cast<int32_t>(rng.UniformInt(0, 3)),
                    rng.UniformDouble(0.5, 1.5), w_size);
    updater.OnEvent(window, delta, state);
    ASSERT_LT(GramDrift(state), 1e-5) << "step " << step;
  }
}

TEST(CoordinateDescentTest, ClipsToBound) {
  Matrix hq = Matrix::Identity(3);
  // Padded contract: `row` spans hq.stride() doubles, padding at 0.0.
  double row[4] = {0.0, 0.0, 0.0, 0.0};
  double numerator[3] = {100.0, -50.0, 0.5};
  CoordinateDescentRow(row, 3, hq, numerator, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], -1.0);
  EXPECT_DOUBLE_EQ(row[2], 0.5);
}

TEST(CoordinateDescentTest, SkipsDeadComponents) {
  Matrix hq(2, 2);  // All zero: both components dead.
  double row[4] = {0.25, -0.75, 0.0, 0.0};
  double numerator[2] = {10.0, 10.0};
  CoordinateDescentRow(row, 2, hq, numerator, -5.0, 5.0);
  EXPECT_DOUBLE_EQ(row[0], 0.25);
  EXPECT_DOUBLE_EQ(row[1], -0.75);
}

// Coordinate descent with the Eq. 21 numerator solves the row least-squares
// problem exactly when run to convergence — one pass already matches the
// closed-form solve when HQ is diagonal; for general HQ, iterating must
// monotonically decrease ‖b − row·K'‖ measured through the normal equations.
TEST(CoordinateDescentTest, ReducesRowObjective) {
  Rng rng(29);
  Matrix k = Matrix::RandomNormal(12, 3, rng);   // Khatri-Rao stand-in.
  Matrix hq = MultiplyTransposeA(k, k);          // Gram of K.
  std::vector<double> target(12);
  for (auto& t : target) t = rng.Normal();
  // numerator_k = Σ_J x_J K(J,k) (Eq. 21 data term).
  std::vector<double> numerator(3, 0.0);
  for (int64_t j = 0; j < 12; ++j) {
    for (int64_t r = 0; r < 3; ++r) {
      numerator[static_cast<size_t>(r)] +=
          target[static_cast<size_t>(j)] * k(j, r);
    }
  }
  auto objective = [&](const double* row) {
    double obj = 0.0;
    for (int64_t j = 0; j < 12; ++j) {
      double approx = 0.0;
      for (int64_t r = 0; r < 3; ++r) approx += row[r] * k(j, r);
      const double diff = target[static_cast<size_t>(j)] - approx;
      obj += diff * diff;
    }
    return obj;
  };

  double row[4] = {rng.Normal(), rng.Normal(), rng.Normal(), 0.0};
  double previous = objective(row);
  for (int pass = 0; pass < 100; ++pass) {
    CoordinateDescentRow(row, 3, hq, numerator.data(), -1e6, 1e6);
    const double current = objective(row);
    EXPECT_LE(current, previous + 1e-9) << "pass " << pass;
    previous = current;
  }
  // Converges (linearly) to the closed-form least-squares solution.
  double expected[3];
  SolveRowAgainstGram(hq, numerator.data(), expected);
  EXPECT_NEAR(objective(row), objective(expected),
              1e-6 * (1.0 + objective(expected)));
}

TEST(SnsVecPlusTest, EntriesBoundedByEta) {
  Rng rng(30);
  const int w_size = 3;
  const std::vector<int64_t> dims = {4, 4, w_size};
  KruskalModel model = KruskalModel::Random(dims, 2, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  const double eta = 0.6;
  SnsVecPlusUpdater updater(eta);

  for (int step = 0; step < 60; ++step) {
    WindowDelta delta =
        MakeArrival(window, static_cast<int32_t>(rng.UniformInt(0, 3)),
                    static_cast<int32_t>(rng.UniformInt(0, 3)),
                    rng.UniformDouble(2.0, 8.0), w_size);
    updater.OnEvent(window, delta, state);
  }
  // Initial entries were in [0,1); every updated entry is clipped to ±η, so
  // nothing may exceed max(1, η).
  for (int m = 0; m < 3; ++m) {
    EXPECT_LE(state.model.factor(m).MaxAbs(), std::max(1.0, eta) + 1e-12);
  }
  EXPECT_LT(GramDrift(state), 1e-6);
}

TEST(SnsRndPlusTest, GramsAndBoundsHoldUnderSampling) {
  Rng rng(31);
  const int w_size = 3;
  const std::vector<int64_t> dims = {5, 5, w_size};
  KruskalModel model = KruskalModel::Random(dims, 3, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);
  SnsRndPlusUpdater updater(/*sample_threshold=*/4, /*clip_bound=*/50.0,
                            /*seed=*/3);

  for (int step = 0; step < 60; ++step) {
    WindowDelta delta =
        step % 3 == 0
            ? MakeSlide(window, static_cast<int32_t>(rng.UniformInt(0, 4)),
                        static_cast<int32_t>(rng.UniformInt(0, 4)),
                        rng.UniformDouble(0.5, 2.0), 1 + step % 2, w_size)
            : MakeArrival(window, static_cast<int32_t>(rng.UniformInt(0, 4)),
                          static_cast<int32_t>(rng.UniformInt(0, 4)),
                          rng.UniformDouble(0.5, 2.0), w_size);
    updater.OnEvent(window, delta, state);
    ASSERT_LT(GramDrift(state), 1e-5) << "step " << step;
    for (int m = 0; m < 3; ++m) {
      ASSERT_LE(state.model.factor(m).MaxAbs(), 50.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace sns
