// Runtime kernel-tier dispatch (common/cpu_features.h): probe sanity, the
// SNS_FORCE_GENERIC_KERNELS env override, the per-engine
// force_generic_kernels flag, and the cross-tier consistency contract —
// a forced-generic engine is bitwise identical to an env-forced process,
// and (on hosts without AVX2) to the auto-tier default.

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "core/continuous_cpd.h"
#include "linalg/rank_dispatch.h"

namespace sns {
namespace {

// RAII env override + tier refresh, restoring the prior value on exit.
class ScopedForceGenericEnv {
 public:
  explicit ScopedForceGenericEnv(const char* value) {
    const char* old = std::getenv("SNS_FORCE_GENERIC_KERNELS");
    had_old_ = old != nullptr;
    if (had_old_) old_value_ = old;
    if (value != nullptr) {
      setenv("SNS_FORCE_GENERIC_KERNELS", value, /*overwrite=*/1);
    } else {
      unsetenv("SNS_FORCE_GENERIC_KERNELS");
    }
    internal::RefreshKernelTierForTest();
  }
  ~ScopedForceGenericEnv() {
    if (had_old_) {
      setenv("SNS_FORCE_GENERIC_KERNELS", old_value_.c_str(), 1);
    } else {
      unsetenv("SNS_FORCE_GENERIC_KERNELS");
    }
    internal::RefreshKernelTierForTest();
  }

 private:
  bool had_old_ = false;
  std::string old_value_;
};

TEST(CpuFeaturesTest, ProbeIsConsistent) {
  const CpuFeatures f = DetectCpuFeatures();
  // Feature implications on real hardware: avx512f ⊂ avx2 ⊂ avx ⊂ sse4.2.
  if (f.avx512f) EXPECT_TRUE(f.avx2);
  if (f.avx2) EXPECT_TRUE(f.avx);
  if (f.avx) EXPECT_TRUE(f.sse42);
  EXPECT_FALSE(CpuFeaturesSummary().empty());
}

TEST(CpuFeaturesTest, GenericTierAlwaysAvailable) {
  EXPECT_TRUE(KernelTierCompiledIn(KernelTier::kGeneric));
  EXPECT_TRUE(KernelTierSupported(KernelTier::kGeneric));
  EXPECT_STREQ(KernelTierName(KernelTier::kGeneric), "generic");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx512), "avx512");
}

TEST(CpuFeaturesTest, AutoTierIsSupportedAndCompiledIn) {
  const KernelTier tier = ResolveKernelTier();
  EXPECT_TRUE(KernelTierCompiledIn(tier));
  EXPECT_TRUE(KernelTierSupported(tier));
}

TEST(CpuFeaturesTest, ForceGenericFlagWins) {
  EXPECT_EQ(ResolveKernelTier(/*force_generic=*/true), KernelTier::kGeneric);
}

TEST(CpuFeaturesTest, EnvOverrideForcesGeneric) {
  ScopedForceGenericEnv env("1");
  EXPECT_EQ(ResolveKernelTier(), KernelTier::kGeneric);
}

TEST(CpuFeaturesTest, EnvZeroDoesNotForce) {
  const KernelTier unforced = [] {
    ScopedForceGenericEnv env(nullptr);
    return ResolveKernelTier();
  }();
  ScopedForceGenericEnv env("0");
  EXPECT_EQ(ResolveKernelTier(), unforced);
}

TEST(KernelTierTableTest, TierFieldMatchesRequest) {
  for (const int64_t padded : {0l, 8l, 20l, 32l}) {
    const RankKernelTable& generic =
        GetRankKernelTable(padded, KernelTier::kGeneric);
    EXPECT_EQ(generic.tier, KernelTier::kGeneric);
    EXPECT_EQ(generic.padded_rank, padded);
    // Unavailable tiers fall back to generic; available ones must report
    // the tier they were asked for.
    for (const KernelTier tier : {KernelTier::kAvx2, KernelTier::kAvx512}) {
      const RankKernelTable& t = GetRankKernelTable(padded, tier);
      EXPECT_EQ(t.padded_rank, padded);
      if (KernelTierCompiledIn(tier)) {
        EXPECT_EQ(t.tier, tier);
      } else {
        EXPECT_EQ(t.tier, KernelTier::kGeneric);
      }
    }
  }
}

// Runs one engine per configuration over the same synthetic stream (warm-up
// + one-sweep ALS init + live events) and returns the final factors.
// max_iterations = 1 keeps the ALS stopping rule out of the picture — its
// fitness evaluations run at the auto tier by design, so an iteration-count
// dependence on fitness ulps would make bitwise comparisons tier-sensitive.
std::vector<Matrix> RunEngine(ContinuousCpdOptions options) {
  options.rank = 6;
  options.window_size = 4;
  options.period = 5;
  options.init.max_iterations = 1;
  auto created = ContinuousCpd::Create({7, 9}, options);
  SNS_CHECK(created.ok());
  std::unique_ptr<ContinuousCpd> engine = std::move(created).value();
  Rng rng(0xfeed);
  auto next_tuple = [&](int64_t t) {
    return Tuple{{static_cast<int32_t>(rng.UniformInt(0, 6)),
                  static_cast<int32_t>(rng.UniformInt(0, 8))},
                 rng.UniformDouble(), t};
  };
  int64_t t = 1;
  const int64_t warmup_end = 1 + options.window_size * options.period;
  for (; t <= warmup_end; ++t) engine->IngestOnly(next_tuple(t));
  engine->InitializeWithAls();
  for (; t <= warmup_end + 120; ++t) engine->ProcessTuple(next_tuple(t));
  std::vector<Matrix> factors;
  for (int m = 0; m < engine->state().num_modes(); ++m) {
    factors.push_back(engine->state().model.factor(m));
  }
  return factors;
}

void ExpectBitwiseEqual(const std::vector<Matrix>& a,
                        const std::vector<Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    ASSERT_EQ(a[m].rows(), b[m].rows());
    ASSERT_EQ(a[m].cols(), b[m].cols());
    for (int64_t i = 0; i < a[m].rows(); ++i) {
      for (int64_t j = 0; j < a[m].cols(); ++j) {
        ASSERT_EQ(a[m](i, j), b[m](i, j))
            << "mode " << m << " (" << i << "," << j << ")";
      }
    }
  }
}

// The per-engine flag must reproduce the env override bit for bit: both pin
// every kernel the factor state flows through to the generic tier.
TEST(ForcedGenericTest, FlagMatchesEnvOverrideBitwise) {
  for (const SnsVariant variant :
       {SnsVariant::kVec, SnsVariant::kRnd, SnsVariant::kVecPlus,
        SnsVariant::kRndPlus, SnsVariant::kMat}) {
    ContinuousCpdOptions options;
    options.variant = variant;
    options.sample_threshold = 3;

    std::vector<Matrix> env_forced;
    {
      ScopedForceGenericEnv env("1");
      env_forced = RunEngine(options);
    }
    std::vector<Matrix> flag_forced;
    {
      ScopedForceGenericEnv env(nullptr);
      options.force_generic_kernels = true;
      flag_forced = RunEngine(options);
    }
    SCOPED_TRACE(VariantName(variant));
    ExpectBitwiseEqual(env_forced, flag_forced);
  }
}

// On hosts without a usable AVX2 tier the auto tier IS generic, so forcing
// must change nothing at all.
TEST(ForcedGenericTest, ForcedMatchesAutoWhenHostLacksAvx2) {
  if (KernelTierSupported(KernelTier::kAvx2) &&
      KernelTierCompiledIn(KernelTier::kAvx2)) {
    GTEST_SKIP() << "host dispatches AVX2; auto != generic by design";
  }
  ContinuousCpdOptions options;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 3;
  const std::vector<Matrix> auto_tier = RunEngine(options);
  options.force_generic_kernels = true;
  const std::vector<Matrix> forced = RunEngine(options);
  ExpectBitwiseEqual(auto_tier, forced);
}

}  // namespace
}  // namespace sns
