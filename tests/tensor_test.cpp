// Unit + property tests for the sparse tensor substrate: ModeIndex,
// SparseTensor bucket bookkeeping, KruskalModel fitness, MTTKRP kernels.

#include <cmath>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/kruskal.h"
#include "tensor/mode_index.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_tensor.h"

namespace sns {
namespace {

TEST(ModeIndexTest, ConstructionAndAccess) {
  ModeIndex idx = {3, 1, 4};
  EXPECT_EQ(idx.size(), 3);
  EXPECT_EQ(idx[0], 3);
  EXPECT_EQ(idx[2], 4);
  EXPECT_EQ(idx.ToString(), "(3, 1, 4)");
}

TEST(ModeIndexTest, WithAppended) {
  ModeIndex idx = {5, 6};
  ModeIndex ext = idx.WithAppended(9);
  EXPECT_EQ(idx.size(), 2);
  EXPECT_EQ(ext.size(), 3);
  EXPECT_EQ(ext[2], 9);
}

TEST(ModeIndexTest, EqualityAndHash) {
  ModeIndex a = {1, 2, 3};
  ModeIndex b = {1, 2, 3};
  ModeIndex c = {1, 2, 4};
  ModeIndex d = {1, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  ModeIndexHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // Overwhelmingly likely for FNV-1a.
}

TEST(SparseTensorTest, GetSetAdd) {
  SparseTensor x({4, 5, 3});
  EXPECT_EQ(x.nnz(), 0);
  EXPECT_EQ(x.Get({1, 2, 0}), 0.0);
  x.Set({1, 2, 0}, 3.5);
  EXPECT_EQ(x.Get({1, 2, 0}), 3.5);
  EXPECT_EQ(x.nnz(), 1);
  x.Add({1, 2, 0}, -1.5);
  EXPECT_EQ(x.Get({1, 2, 0}), 2.0);
  x.Add({3, 4, 2}, 1.0);
  EXPECT_EQ(x.nnz(), 2);
}

TEST(SparseTensorTest, AddToZeroErasesEntry) {
  SparseTensor x({2, 2});
  x.Add({0, 1}, 2.0);
  x.Add({0, 1}, -2.0);
  EXPECT_EQ(x.nnz(), 0);
  EXPECT_EQ(x.Degree(0, 0), 0);
  EXPECT_EQ(x.Degree(1, 1), 0);
}

TEST(SparseTensorTest, SetZeroErasesEntry) {
  SparseTensor x({2, 2});
  x.Set({1, 1}, 5.0);
  x.Set({1, 1}, 0.0);
  EXPECT_EQ(x.nnz(), 0);
}

TEST(SparseTensorTest, DegreeAndSliceTracking) {
  SparseTensor x({3, 4, 2});
  x.Set({0, 1, 0}, 1.0);
  x.Set({0, 2, 1}, 2.0);
  x.Set({1, 1, 0}, 3.0);
  EXPECT_EQ(x.Degree(0, 0), 2);
  EXPECT_EQ(x.Degree(0, 1), 1);
  EXPECT_EQ(x.Degree(1, 1), 2);
  EXPECT_EQ(x.Degree(2, 0), 2);
  EXPECT_EQ(x.Degree(2, 1), 1);

  const auto slice = x.Slice(1, 1);
  ASSERT_EQ(slice.size(), 2u);
  std::set<std::string> coords;
  double value_sum = 0.0;
  for (const auto entry : slice) {
    coords.insert(entry.coords.ToString());
    value_sum += entry.value;
  }
  EXPECT_TRUE(coords.contains("(0, 1, 0)"));
  EXPECT_TRUE(coords.contains("(1, 1, 0)"));
  EXPECT_DOUBLE_EQ(value_sum, 4.0);  // Slice iteration carries values.
}

TEST(SparseTensorTest, FrobeniusAndMaxAbs) {
  SparseTensor x({2, 2});
  x.Set({0, 0}, 3.0);
  x.Set({1, 1}, -4.0);
  EXPECT_DOUBLE_EQ(x.FrobeniusNormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(x.MaxAbsValue(), 4.0);
}

TEST(SparseTensorTest, IndexInBounds) {
  SparseTensor x({2, 3});
  EXPECT_TRUE(x.IndexInBounds({1, 2}));
  EXPECT_FALSE(x.IndexInBounds({2, 0}));
  EXPECT_FALSE(x.IndexInBounds({0, -1}));
  EXPECT_FALSE(x.IndexInBounds({0, 0, 0}));
}

TEST(SparseTensorTest, ClearResetsEverything) {
  SparseTensor x({3, 3});
  x.Set({0, 0}, 1.0);
  x.Set({1, 2}, 2.0);
  x.Clear();
  EXPECT_EQ(x.nnz(), 0);
  EXPECT_EQ(x.Degree(0, 0), 0);
  EXPECT_EQ(x.Degree(1, 2), 0);
}

// Property: after a random mutation sequence, bucket bookkeeping agrees with
// a reference map in every mode.
TEST(SparseTensorTest, RandomMutationsKeepBucketsConsistent) {
  Rng rng(42);
  const std::vector<int64_t> dims = {5, 7, 4};
  SparseTensor x(dims);
  std::unordered_map<std::string, std::pair<ModeIndex, double>> reference;

  for (int step = 0; step < 5000; ++step) {
    ModeIndex idx = {static_cast<int32_t>(rng.UniformInt(0, 4)),
                     static_cast<int32_t>(rng.UniformInt(0, 6)),
                     static_cast<int32_t>(rng.UniformInt(0, 3))};
    const double delta = rng.UniformInt(-2, 2);
    x.Add(idx, delta);
    auto& slot = reference[idx.ToString()];
    slot.first = idx;
    slot.second += delta;
    if (std::fabs(slot.second) < SparseTensor::kZeroEpsilon) {
      reference.erase(idx.ToString());
    }
  }

  EXPECT_EQ(x.nnz(), static_cast<int64_t>(reference.size()));
  for (const auto& [key, value] : reference) {
    EXPECT_DOUBLE_EQ(x.Get(value.first), value.second) << key;
  }
  // Degrees per mode match reference counts.
  for (int m = 0; m < 3; ++m) {
    for (int64_t i = 0; i < dims[static_cast<size_t>(m)]; ++i) {
      int64_t expected = 0;
      for (const auto& [key, value] : reference) {
        if (value.first[m] == i) ++expected;
      }
      EXPECT_EQ(x.Degree(m, i), expected) << "mode " << m << " index " << i;
      EXPECT_EQ(static_cast<int64_t>(x.Slice(m, i).size()), expected);
    }
  }
}

KruskalModel SmallModel() {
  // 2x2x2 rank-2 model with hand-checkable entries.
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  c(0, 0) = 9; c(0, 1) = 10; c(1, 0) = 11; c(1, 1) = 12;
  return KruskalModel({a, b, c});
}

TEST(KruskalModelTest, EvaluateMatchesHandComputation) {
  KruskalModel model = SmallModel();
  // x(0,1,1) = 1*7*11 + 2*8*12 = 77 + 192 = 269.
  EXPECT_DOUBLE_EQ(model.Evaluate({0, 1, 1}), 269.0);
}

TEST(KruskalModelTest, LambdaScalesEvaluation) {
  KruskalModel model = SmallModel();
  model.lambda() = {2.0, 0.5};
  EXPECT_DOUBLE_EQ(model.Evaluate({0, 1, 1}), 2.0 * 77 + 0.5 * 192);
}

TEST(KruskalModelTest, NumParameters) {
  KruskalModel model = SmallModel();
  EXPECT_EQ(model.NumParameters(), 3 * 2 * 2);
}

// ‖X̃‖² via the Gram identity must equal the dense brute-force sum.
TEST(KruskalModelTest, NormSquaredMatchesBruteForce) {
  Rng rng(7);
  KruskalModel model = KruskalModel::Random({4, 3, 5}, 3, rng);
  model.lambda() = {1.5, 0.5, 2.0};
  double brute = 0.0;
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 3; ++j) {
      for (int32_t k = 0; k < 5; ++k) {
        const double v = model.Evaluate({i, j, k});
        brute += v * v;
      }
    }
  }
  EXPECT_NEAR(model.NormSquared(), brute, 1e-9 * (1.0 + brute));
}

TEST(KruskalModelTest, FitnessMatchesBruteForceResidual) {
  Rng rng(8);
  KruskalModel model = KruskalModel::Random({3, 4, 2}, 2, rng);
  SparseTensor x({3, 4, 2});
  for (int step = 0; step < 10; ++step) {
    x.Set({static_cast<int32_t>(rng.UniformInt(0, 2)),
           static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 1))},
          rng.UniformDouble(0.5, 2.0));
  }
  double residual = 0.0;
  for (int32_t i = 0; i < 3; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      for (int32_t k = 0; k < 2; ++k) {
        const double diff = model.Evaluate({i, j, k}) - x.Get({i, j, k});
        residual += diff * diff;
      }
    }
  }
  const double expected =
      1.0 - std::sqrt(residual / x.FrobeniusNormSquared());
  EXPECT_NEAR(model.Fitness(x), expected, 1e-9);
}

TEST(KruskalModelTest, PerfectModelHasFitnessOne) {
  // Build X exactly equal to the model's dense form restricted to a few
  // cells? Fitness needs all cells; instead make X dense over a tiny shape.
  Rng rng(9);
  KruskalModel model = KruskalModel::Random({2, 2, 2}, 2, rng);
  SparseTensor x({2, 2, 2});
  for (int32_t i = 0; i < 2; ++i) {
    for (int32_t j = 0; j < 2; ++j) {
      for (int32_t k = 0; k < 2; ++k) {
        x.Set({i, j, k}, model.Evaluate({i, j, k}));
      }
    }
  }
  EXPECT_NEAR(model.Fitness(x), 1.0, 1e-7);
}

TEST(KruskalModelTest, FitnessOfZeroTensorIsZero) {
  Rng rng(10);
  KruskalModel model = KruskalModel::Random({2, 2}, 1, rng);
  SparseTensor x({2, 2});
  EXPECT_EQ(model.Fitness(x), 0.0);
}

TEST(MttkrpTest, HadamardRowProductSkipsMode) {
  KruskalModel model = SmallModel();
  double out[4];  // PaddedRank(2): the kernel writes the padded stride.
  HadamardRowProduct(model.factors(), {0, 1, 1}, /*skip_mode=*/1, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0 * 11.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0 * 12.0);
  HadamardRowProduct(model.factors(), {0, 1, 1}, /*skip_mode=*/-1, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0 * 7.0 * 11.0);
}

// MTTKRP against the dense definition X_(n) (⊙_{m≠n} A(m)) computed via the
// explicit Khatri-Rao matrix.
TEST(MttkrpTest, MatchesDenseDefinition) {
  Rng rng(11);
  const std::vector<int64_t> dims = {3, 4, 5};
  const int64_t rank = 2;
  KruskalModel model = KruskalModel::Random(dims, rank, rng);
  SparseTensor x(dims);
  for (int step = 0; step < 20; ++step) {
    x.Set({static_cast<int32_t>(rng.UniformInt(0, 2)),
           static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 4))},
          rng.Normal());
  }
  // Dense check for mode 0: X_(0) is 3×20 with column index j*5+k (row-major
  // over the remaining modes, first remaining mode slowest); the matching
  // Khatri-Rao is A(1) ⊙ A(2).
  Matrix kr = KhatriRao(model.factor(1), model.factor(2));
  Matrix x0(3, 20);
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    x0(index[0], index[1] * 5 + index[2]) = value;
  });
  Matrix expected = Multiply(x0, kr);
  Matrix actual = Mttkrp(x, model.factors(), 0);
  EXPECT_LT(MaxAbsDiff(expected, actual), 1e-10);
}

TEST(MttkrpTest, RowRestrictedMatchesFullRow) {
  Rng rng(12);
  const std::vector<int64_t> dims = {4, 3, 6};
  KruskalModel model = KruskalModel::Random(dims, 3, rng);
  SparseTensor x(dims);
  for (int step = 0; step < 30; ++step) {
    x.Set({static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 2)),
           static_cast<int32_t>(rng.UniformInt(0, 5))},
          rng.Normal());
  }
  for (int mode = 0; mode < 3; ++mode) {
    Matrix full = Mttkrp(x, model.factors(), mode);
    std::vector<double> row(PaddedRank(3));
    for (int64_t i = 0; i < dims[static_cast<size_t>(mode)]; ++i) {
      MttkrpRow(x, model.factors(), mode, i, row.data());
      for (int64_t r = 0; r < 3; ++r) {
        EXPECT_NEAR(row[static_cast<size_t>(r)], full(i, r), 1e-10)
            << "mode " << mode << " row " << i;
      }
    }
  }
}

TEST(MttkrpTest, HadamardOfGramsExcept) {
  Rng rng(13);
  KruskalModel model = KruskalModel::Random({3, 4, 5}, 2, rng);
  std::vector<Matrix> grams;
  for (int m = 0; m < 3; ++m) {
    grams.push_back(
        MultiplyTransposeA(model.factor(m), model.factor(m)));
  }
  Matrix h1 = HadamardOfGramsExcept(grams, 1);
  Matrix expected = Hadamard(grams[0], grams[2]);
  EXPECT_LT(MaxAbsDiff(h1, expected), 1e-12);
  Matrix all = HadamardOfGramsExcept(grams, -1);
  EXPECT_LT(MaxAbsDiff(all, Hadamard(expected, grams[1])), 1e-12);
}

}  // namespace
}  // namespace sns
