// Loss subsystem coverage: analytic derivatives of every LossFunction
// against central differences (boundary data values included), link
// functions, the bounded outlier store's capture/evict/decay/serialize
// semantics, and the GCP Newton sweep's differential contracts — the
// monotone non-increase of the reference objective on a static window and
// the generalized running fitness agreeing with the slow reference.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/random.h"
#include "common/serial.h"
#include "core/continuous_cpd.h"
#include "core/cpd_state.h"
#include "core/options.h"
#include "data/synthetic.h"
#include "losses/gcp_row_update.h"
#include "losses/loss_function.h"
#include "losses/outlier_store.h"
#include "losses/reference_objective.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace sns {
namespace {

// --- LossFunction derivatives vs central differences ----------------------

double NumericFirst(const LossFunction& loss, double y, double theta) {
  const double h = 1e-6 * std::max(1.0, std::fabs(theta));
  return (loss.Value(y, theta + h) - loss.Value(y, theta - h)) / (2.0 * h);
}

double NumericSecond(const LossFunction& loss, double y, double theta) {
  const double h = 1e-6 * std::max(1.0, std::fabs(theta));
  return (loss.FirstDerivative(y, theta + h) -
          loss.FirstDerivative(y, theta - h)) /
         (2.0 * h);
}

void ExpectDerivativesMatch(const LossFunction& loss, double y, double theta) {
  const double d1 = loss.FirstDerivative(y, theta);
  const double d2 = loss.SecondDerivative(y, theta);
  EXPECT_NEAR(d1, NumericFirst(loss, y, theta),
              1e-4 * std::max(1.0, std::fabs(d1)))
      << loss.name() << " d1 at y=" << y << " theta=" << theta;
  // The analytic second derivative is floored away from zero; only compare
  // where the true curvature is well above the floor.
  const double numeric_d2 = NumericSecond(loss, y, theta);
  if (numeric_d2 > 1e-6) {
    EXPECT_NEAR(d2, numeric_d2, 1e-4 * std::max(1.0, std::fabs(d2)))
        << loss.name() << " d2 at y=" << y << " theta=" << theta;
  }
  EXPECT_GT(d2, 0.0) << loss.name() << " curvature must stay positive";
}

TEST(LossFunctionTest, GaussianDerivativesMatchNumericGradients) {
  const LossFunction& loss = GetLossFunction(LossKind::kGaussian);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const double y = rng.UniformDouble() * 6.0 - 3.0;
    const double theta = rng.UniformDouble() * 10.0 - 5.0;
    ExpectDerivativesMatch(loss, y, theta);
  }
}

TEST(LossFunctionTest, PoissonDerivativesMatchNumericGradients) {
  const LossFunction& loss = GetLossFunction(LossKind::kPoisson);
  Rng rng(13);
  // y = 0 is the boundary of the count domain and must behave like any
  // other value (ℓ = e^θ there).
  const double ys[] = {0.0, 1.0, 2.0, 7.5};
  for (double y : ys) {
    for (int i = 0; i < 25; ++i) {
      const double theta = rng.UniformDouble() * 8.0 - 4.0;
      ExpectDerivativesMatch(loss, y, theta);
    }
  }
}

TEST(LossFunctionTest, BernoulliLogitDerivativesMatchNumericGradients) {
  const LossFunction& loss = GetLossFunction(LossKind::kBernoulliLogit);
  Rng rng(17);
  for (double y : {0.0, 1.0}) {
    for (int i = 0; i < 25; ++i) {
      const double theta = rng.UniformDouble() * 10.0 - 5.0;
      ExpectDerivativesMatch(loss, y, theta);
    }
  }
}

TEST(LossFunctionTest, PoissonStaysFiniteUnderExponentialClamp) {
  const LossFunction& loss = GetLossFunction(LossKind::kPoisson);
  for (double theta : {45.0, 100.0, 1e6}) {
    EXPECT_TRUE(std::isfinite(loss.Value(3.0, theta)));
    EXPECT_TRUE(std::isfinite(loss.FirstDerivative(3.0, theta)));
    EXPECT_TRUE(std::isfinite(loss.SecondDerivative(3.0, theta)));
    EXPECT_TRUE(std::isfinite(loss.Link(theta)));
  }
  // Far negative θ: curvature collapses toward 0 but must stay floored.
  EXPECT_GT(loss.SecondDerivative(0.0, -1e3), 0.0);
}

TEST(LossFunctionTest, BernoulliSoftplusIsStableAtExtremeTheta) {
  const LossFunction& loss = GetLossFunction(LossKind::kBernoulliLogit);
  // softplus(θ) → θ for large θ and → 0 for very negative θ, with no
  // overflow anywhere in between.
  EXPECT_NEAR(loss.Value(0.0, 800.0), 800.0, 1e-9);
  EXPECT_NEAR(loss.Value(0.0, -800.0), 0.0, 1e-9);
  EXPECT_GT(loss.SecondDerivative(1.0, 700.0), 0.0);
}

TEST(LossFunctionTest, LinkFunctionsMatchTheCatalog) {
  EXPECT_DOUBLE_EQ(GetLossFunction(LossKind::kGaussian).Link(1.75), 1.75);
  EXPECT_DOUBLE_EQ(GetLossFunction(LossKind::kPoisson).Link(0.0), 1.0);
  EXPECT_NEAR(GetLossFunction(LossKind::kPoisson).Link(2.0), std::exp(2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(GetLossFunction(LossKind::kBernoulliLogit).Link(0.0), 0.5);
  EXPECT_NEAR(GetLossFunction(LossKind::kBernoulliLogit).Link(-3.0),
              1.0 / (1.0 + std::exp(3.0)), 1e-12);
}

TEST(LossFunctionTest, MinimizerSitsAtTheMatchingLink) {
  // ∂ℓ/∂θ = 0 exactly where Link(θ) = y — the GCP stationarity condition.
  const LossFunction& poisson = GetLossFunction(LossKind::kPoisson);
  EXPECT_NEAR(poisson.FirstDerivative(5.0, std::log(5.0)), 0.0, 1e-9);
  const LossFunction& gaussian = GetLossFunction(LossKind::kGaussian);
  EXPECT_DOUBLE_EQ(gaussian.FirstDerivative(2.5, 2.5), 0.0);
}

TEST(LossFunctionTest, NamesAndKindsRoundTrip) {
  for (LossKind kind : {LossKind::kGaussian, LossKind::kPoisson,
                        LossKind::kBernoulliLogit}) {
    const LossFunction& loss = GetLossFunction(kind);
    EXPECT_EQ(loss.kind(), kind);
    EXPECT_EQ(loss.name(), LossKindName(kind));
  }
}

// --- OutlierStore ---------------------------------------------------------

TEST(OutlierStoreTest, CapturesOnlyAboveThresholdAndAccumulates) {
  OutlierStore store;
  store.Configure(/*threshold=*/2.0, /*decay=*/0.5, /*capacity=*/4);
  const ModeIndex key({1, 2});

  EXPECT_DOUBLE_EQ(store.Capture(key, 1.5), 0.0);   // Below τ: untouched.
  EXPECT_DOUBLE_EQ(store.Capture(key, -2.0), 0.0);  // |r| = τ: untouched.
  EXPECT_EQ(store.size(), 0);
  EXPECT_EQ(store.captures(), 0u);

  EXPECT_DOUBLE_EQ(store.Capture(key, 5.0), 3.0);   // Soft-threshold.
  EXPECT_DOUBLE_EQ(store.Capture(key, -6.0), -4.0);
  EXPECT_EQ(store.size(), 1);
  EXPECT_DOUBLE_EQ(store.Get(key), -1.0);  // 3 − 4 accumulated.
  EXPECT_EQ(store.captures(), 2u);
  EXPECT_DOUBLE_EQ(store.TotalMagnitude(), 1.0);
}

TEST(OutlierStoreTest, NanResidualIsNeverCaptured) {
  OutlierStore store;
  store.Configure(2.0, 0.5, 4);
  EXPECT_DOUBLE_EQ(
      store.Capture(ModeIndex({0}),
                    std::numeric_limits<double>::quiet_NaN()),
      0.0);
  EXPECT_EQ(store.size(), 0);
}

TEST(OutlierStoreTest, EvictsSmallestMagnitudeDeterministically) {
  OutlierStore store;
  store.Configure(1.0, 0.5, /*capacity=*/2);
  store.Capture(ModeIndex({0}), 4.0);   // +3
  store.Capture(ModeIndex({1}), -3.0);  // −2
  store.Capture(ModeIndex({2}), 6.0);   // +5 → evicts key {1} (|−2| min).
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_DOUBLE_EQ(store.Get(ModeIndex({0})), 3.0);
  EXPECT_DOUBLE_EQ(store.Get(ModeIndex({1})), 0.0);
  EXPECT_DOUBLE_EQ(store.Get(ModeIndex({2})), 5.0);
}

TEST(OutlierStoreTest, DecayDrainsStaleMass) {
  OutlierStore store;
  store.Configure(1.0, /*decay=*/0.5, 8);
  store.Capture(ModeIndex({0}), 9.0);  // +8
  store.Decay();
  EXPECT_DOUBLE_EQ(store.Get(ModeIndex({0})), 4.0);
  // Enough decays push the entry under the drop epsilon and it disappears.
  for (int i = 0; i < 64; ++i) store.Decay();
  EXPECT_EQ(store.size(), 0);
}

TEST(OutlierStoreTest, SerializeRestoreRoundTripsContentAndCounters) {
  OutlierStore store;
  store.Configure(1.0, 0.5, 2);
  store.Capture(ModeIndex({3, 1}), 4.5);
  store.Capture(ModeIndex({0, 2}), -7.0);
  store.Capture(ModeIndex({5, 5}), 2.25);  // Forces one eviction.

  serial::StringSink sink;
  serial::Writer w(sink);
  store.SerializeTo(w);
  ASSERT_TRUE(w.status().ok());

  OutlierStore restored;
  restored.Configure(1.0, 0.5, 2);
  serial::StringSource source(sink.data());
  serial::Reader r(source);
  ASSERT_TRUE(restored.RestoreFrom(r).ok());

  EXPECT_EQ(restored.size(), store.size());
  EXPECT_EQ(restored.captures(), store.captures());
  EXPECT_EQ(restored.evictions(), store.evictions());
  for (const auto& [key, value] : store.entries()) {
    EXPECT_DOUBLE_EQ(restored.Get(key), value);
  }

  // And the restored store reserializes to identical bytes.
  serial::StringSink sink2;
  serial::Writer w2(sink2);
  restored.SerializeTo(w2);
  EXPECT_EQ(sink2.data(), sink.data());
}

// --- GCP Newton sweep: monotone non-increase on a static window -----------

SparseTensor CountWindow(const std::vector<int64_t>& dims, LossKind kind,
                         uint64_t seed) {
  SparseTensor window(dims);
  Rng rng(seed);
  ModeIndex index;
  for (size_t m = 0; m < dims.size(); ++m) index.PushBack(0);
  while (true) {
    if (rng.UniformDouble() < 0.6) {
      const double value = kind == LossKind::kBernoulliLogit
                               ? 1.0
                               : static_cast<double>(rng.UniformInt(1, 6));
      window.Set(index, value);
    }
    int m = static_cast<int>(dims.size()) - 1;
    while (m >= 0) {
      if (++index[m] < dims[static_cast<size_t>(m)]) break;
      index[m] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return window;
}

TEST(GcpRowUpdateTest, SweepNeverIncreasesTheReferenceObjective) {
  const std::vector<int64_t> dims = {5, 4, 3};
  for (LossKind kind : {LossKind::kPoisson, LossKind::kBernoulliLogit}) {
    const LossFunction& loss = GetLossFunction(kind);
    const SparseTensor window = CountWindow(dims, kind, 31);
    Rng rng(7);
    CpdState state(KruskalModel::Random(dims, /*rank=*/4, rng),
                   ResolveKernelTier());

    GcpRowWorkspace ws;
    double prev = WindowLoss(window, state.model, loss);
    const double initial = prev;
    for (int sweep = 0; sweep < 6; ++sweep) {
      GcpSweep(window, state, loss, ws);
      const double cur = WindowLoss(window, state.model, loss);
      // Every damped Newton row step accepts only candidates that do not
      // increase its restricted objective; summed over rows the window
      // objective cannot go up (small relative slack for fp accumulation).
      EXPECT_LE(cur, prev * (1.0 + 1e-9) + 1e-9)
          << LossKindName(kind) << " sweep " << sweep;
      prev = cur;
    }
    EXPECT_LT(prev, initial) << LossKindName(kind)
                             << ": six sweeps made no progress at all";
  }
}

TEST(GcpRowUpdateTest, ClippedStepsRespectTheBox) {
  const std::vector<int64_t> dims = {5, 4, 3};
  const LossFunction& loss = GetLossFunction(LossKind::kPoisson);
  const SparseTensor window = CountWindow(dims, LossKind::kPoisson, 33);
  Rng rng(9);
  CpdState state(KruskalModel::Random(dims, 4, rng), ResolveKernelTier());

  GcpRowWorkspace ws;
  const double clip_max = 0.8;
  int stepped = 0;
  for (int mode = 0; mode < 3; ++mode) {
    for (int64_t row = 0; row < dims[static_cast<size_t>(mode)]; ++row) {
      if (!GcpNewtonRowUpdateOnSlice(window, state, mode, row, loss,
                                     /*clip_min=*/0.0, clip_max, ws)) {
        continue;  // Untouched rows keep their (unclipped) initial values.
      }
      ++stepped;
      const Matrix& factor = state.model.factor(mode);
      for (int64_t r = 0; r < factor.cols(); ++r) {
        EXPECT_GE(factor(row, r), 0.0);
        EXPECT_LE(factor(row, r), clip_max);
      }
    }
  }
  EXPECT_GT(stepped, 0);
}

// --- Engine-level differentials -------------------------------------------

ContinuousCpdOptions LossEngineOptions(SnsVariant variant, LossKind loss) {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = variant;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  options.loss = loss;
  options.fitness_resync_interval = 1;
  return options;
}

DataStream LossStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

TEST(GeneralizedFitnessTest, RunningFitnessMatchesTheSlowReference) {
  const DataStream stream = LossStream(120, 41);
  for (LossKind kind : {LossKind::kPoisson, LossKind::kBernoulliLogit}) {
    for (SnsVariant variant :
         {SnsVariant::kVec, SnsVariant::kVecPlus, SnsVariant::kRnd}) {
      auto engine = ContinuousCpd::Create(
          {6, 5}, LossEngineOptions(variant, kind));
      ASSERT_TRUE(engine.ok());
      ContinuousCpd& cpd = *engine.value();
      size_t i = 0;
      const auto& tuples = stream.tuples();
      for (; i < tuples.size() && tuples[i].time <= 90; ++i) {
        cpd.IngestOnly(tuples[i]);
      }
      cpd.InitializeWithAls();
      const LossFunction& loss = GetLossFunction(kind);
      int checked = 0;
      for (; i < tuples.size(); ++i) {
        cpd.ProcessTuple(tuples[i]);
        if (i % 17 != 0) continue;
        // resync_interval = 1 forces the exact path: the running estimate
        // must equal the slow reference objective identically.
        const double expected =
            1.0 - WindowLoss(cpd.window(), cpd.model(), loss) /
                      WindowLossBaseline(cpd.window(), loss);
        EXPECT_NEAR(cpd.RunningFitness(), expected,
                    1e-9 * std::max(1.0, std::fabs(expected)))
            << LossKindName(kind) << " " << cpd.updater_name();
        ++checked;
      }
      EXPECT_GT(checked, 0);
    }
  }
}

TEST(GeneralizedFitnessTest, NonGaussianLossActuallyStepsTheFactors) {
  const DataStream stream = LossStream(80, 43);
  auto gaussian = ContinuousCpd::Create(
      {6, 5}, LossEngineOptions(SnsVariant::kVec, LossKind::kGaussian));
  auto poisson = ContinuousCpd::Create(
      {6, 5}, LossEngineOptions(SnsVariant::kVec, LossKind::kPoisson));
  ASSERT_TRUE(gaussian.ok());
  ASSERT_TRUE(poisson.ok());
  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= 90; ++i) {
    gaussian.value()->IngestOnly(tuples[i]);
    poisson.value()->IngestOnly(tuples[i]);
  }
  gaussian.value()->InitializeWithAls();
  poisson.value()->InitializeWithAls();
  for (; i < tuples.size(); ++i) {
    gaussian.value()->ProcessTuple(tuples[i]);
    poisson.value()->ProcessTuple(tuples[i]);
  }
  // Same seed, same data: if the Poisson branch never engaged, the two
  // trajectories would be identical.
  bool diverged = false;
  const Matrix& a = gaussian.value()->model().factor(0);
  const Matrix& b = poisson.value()->model().factor(0);
  for (int64_t r = 0; r < a.rows() && !diverged; ++r) {
    for (int64_t c = 0; c < a.cols() && !diverged; ++c) {
      diverged = a(r, c) != b(r, c);
    }
  }
  EXPECT_TRUE(diverged);
  EXPECT_GT(poisson.value()->events_processed(), 0);
}

// --- Robust mode ----------------------------------------------------------

TEST(RobustModeTest, SpikesAreCapturedIntoSAndCleanedFromTheWindow) {
  ContinuousCpdOptions options =
      LossEngineOptions(SnsVariant::kVecPlus, LossKind::kGaussian);
  options.robust.enabled = true;
  options.robust.threshold = 3.0;
  options.robust.decay = 0.5;
  options.robust.capacity = 16;
  const DataStream stream = LossStream(100, 47);
  auto engine = ContinuousCpd::Create({6, 5}, options);
  ASSERT_TRUE(engine.ok());
  ContinuousCpd& cpd = *engine.value();
  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= 90; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  int64_t last_time = 0;
  for (; i < tuples.size(); ++i) {
    cpd.ProcessTuple(tuples[i]);
    last_time = tuples[i].time;
  }

  // A planted spike far above anything the model predicts: the soft
  // threshold captures (most of) it and the window keeps the cleaned part.
  Tuple spike;
  spike.index = ModeIndex({2, 3});
  spike.value = 500.0;
  spike.time = last_time;
  cpd.ProcessTuple(spike);

  EXPECT_GT(cpd.outliers().size(), 0);
  const double captured = cpd.outliers().Get(spike.index);
  EXPECT_GT(captured, 400.0);
  const ModeIndex cell =
      spike.index.WithAppended(options.window_size - 1);
  // The window absorbed only value − captured (plus whatever it held).
  EXPECT_LT(cpd.window().Get(cell), 100.0);
  EXPECT_GT(cpd.outliers().captures(), 0u);
}

TEST(RobustModeTest, CaptureIsBoundedByObservedMassUnderExponentialLink) {
  // Regression: with an exponential link, a transiently over-predicting
  // model makes the residual hugely negative; an unbounded capture would
  // write the blown-up prediction μ back into the window as fake mass and
  // ratchet θ to the exp clamp. The capture is bounded by the observed
  // cell mass, so the outlier store must stay on the order of the data.
  ContinuousCpdOptions options =
      LossEngineOptions(SnsVariant::kVecPlus, LossKind::kPoisson);
  options.robust.enabled = true;
  options.robust.threshold = 4.0;
  options.robust.decay = 0.5;
  options.robust.capacity = 256;
  const DataStream stream = LossStream(400, 71);
  auto engine = ContinuousCpd::Create({6, 5}, options);
  ASSERT_TRUE(engine.ok());
  ContinuousCpd& cpd = *engine.value();
  size_t i = 0;
  double ingested_mass = 0.0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= 90; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  for (; i < tuples.size(); ++i) {
    cpd.ProcessTuple(tuples[i]);
    ingested_mass += std::fabs(tuples[i].value);
  }
  EXPECT_LT(cpd.outliers().TotalMagnitude(), 2.0 * ingested_mass);
  cpd.window().ForEachNonzero([&](const ModeIndex&, double value) {
    EXPECT_LT(std::fabs(value), 1e6);
  });
}

TEST(RobustModeTest, ValidateRejectsBadRobustConfiguration) {
  ContinuousCpdOptions options =
      LossEngineOptions(SnsVariant::kVec, LossKind::kGaussian);
  options.robust.enabled = true;
  options.robust.threshold = 0.0;
  EXPECT_FALSE(ContinuousCpd::Create({4, 4}, options).ok());
  options.robust.threshold = 1.0;
  options.robust.decay = 1.5;
  EXPECT_FALSE(ContinuousCpd::Create({4, 4}, options).ok());
  options.robust.decay = 0.5;
  options.robust.capacity = 0;
  EXPECT_FALSE(ContinuousCpd::Create({4, 4}, options).ok());
  options.robust.capacity = 8;
  EXPECT_TRUE(ContinuousCpd::Create({4, 4}, options).ok());
}

}  // namespace
}  // namespace sns
