// Edge-case and boundary-condition tests across modules: order-2 tensors
// (single non-time mode), W=1 windows, rank-1 models, empty streams,
// degenerate Grams, and extreme values.

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/stream_handle.h"
#include "common/random.h"
#include "core/als.h"
#include "core/continuous_cpd.h"
#include "data/synthetic.h"
#include "stream/continuous_window.h"

namespace sns {
namespace {

// --- Order-2 streams: one categorical mode + time = matrix factorization.

DataStream TwoModeStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  DataStream stream({12});
  int64_t now = 1;
  for (int64_t i = 0; i < n; ++i) {
    SNS_CHECK(
        stream
            .Append({{static_cast<int32_t>(rng.Categorical(
                        {8, 5, 3, 2, 1, 1, 1, 1, 1, 1, 1, 1}))},
                     1.0, now})
            .ok());
    now += rng.UniformInt(1, 3);
  }
  return stream;
}

class TwoModeVariantTest : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(TwoModeVariantTest, RunsOnSingleCategoricalMode) {
  DataStream stream = TwoModeStream(1200, 3);
  ContinuousCpdOptions options;
  options.rank = 2;
  options.window_size = 4;
  options.period = 40;
  options.variant = GetParam();
  options.sample_threshold = 8;
  options.clip_bound = 50.0;
  options.seed = 4;
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    cpd->IngestOnly(stream.tuples()[i]);
  }
  cpd->InitializeWithAls();
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
  }
  ASSERT_TRUE(std::isfinite(cpd->Fitness())) << VariantName(GetParam());
  EXPECT_EQ(cpd->model().num_modes(), 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TwoModeVariantTest,
    ::testing::Values(SnsVariant::kMat, SnsVariant::kVec, SnsVariant::kRnd,
                      SnsVariant::kVecPlus, SnsVariant::kRndPlus),
    [](const auto& info) {
      std::string out;
      for (char c : VariantName(info.param)) {
        if (c == '+') {
          out += "Plus";
        } else if (std::isalnum(static_cast<unsigned char>(c))) {
          out += c;
        }
      }
      return out;
    });

// --- W = 1: every tuple arrives into the only slice and expires directly.

TEST(WindowEdgeTest, SingleSliceWindowArrivesAndExpires) {
  ContinuousTensorWindow window({3, 3}, /*window_size=*/1, /*period=*/10);
  WindowDelta arrival = window.Ingest({{1, 1}, 2.0, 100});
  EXPECT_EQ(arrival.cells[0].index, (ModeIndex{1, 1, 0}));
  EXPECT_EQ(window.NextScheduledTime(), 110);
  WindowDelta expiry = window.PopScheduled();
  EXPECT_EQ(expiry.kind, EventKind::kExpiry);
  EXPECT_EQ(window.tensor().nnz(), 0);
}

TEST(WindowEdgeTest, NegativeValuedTuplesCancel) {
  ContinuousTensorWindow window({2, 2}, 3, 10);
  window.Ingest({{0, 0}, 5.0, 10});
  window.Ingest({{0, 0}, -5.0, 10});
  EXPECT_EQ(window.tensor().nnz(), 0);
  // Both tuples still slide independently; the window stays consistent.
  window.AdvanceTo(1000);
  EXPECT_EQ(window.tensor().nnz(), 0);
  EXPECT_FALSE(window.HasScheduled());
}

TEST(WindowEdgeTest, LargeTimestampsDoNotOverflow) {
  const int64_t base = std::numeric_limits<int64_t>::max() / 4;
  ContinuousTensorWindow window({2, 2}, 3, 1000);
  window.Ingest({{0, 1}, 1.0, base});
  window.AdvanceTo(base + 2500);
  EXPECT_EQ(window.tensor().Get({0, 1, 0}), 1.0);
}

// --- Rank 1 and tiny models.

TEST(RankEdgeTest, RankOneAlsRecoversRankOneTensor) {
  Rng rng(7);
  SparseTensor x({4, 3, 2});
  // Rank-1 ground truth: x = u ∘ v ∘ w with positive entries.
  std::vector<double> u = {1, 2, 3, 4}, v = {0.5, 1.0, 1.5}, w = {2.0, 0.5};
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 3; ++j) {
      for (int32_t k = 0; k < 2; ++k) {
        x.Set({i, j, k}, u[static_cast<size_t>(i)] * v[static_cast<size_t>(j)] *
                             w[static_cast<size_t>(k)]);
      }
    }
  }
  AlsOptions options;
  options.max_iterations = 100;
  KruskalModel model = AlsDecompose(x, 1, options, rng);
  EXPECT_GT(model.Fitness(x), 0.9999);
}

TEST(RankEdgeTest, RankExceedingDataStillFinite) {
  Rng rng(8);
  SparseTensor x({3, 3, 3});
  x.Set({0, 0, 0}, 1.0);
  x.Set({1, 1, 1}, 2.0);
  AlsOptions options;
  KruskalModel model = AlsDecompose(x, 8, options, rng);  // R >> nnz.
  EXPECT_TRUE(std::isfinite(model.Fitness(x)));
  EXPECT_GT(model.Fitness(x), 0.9);  // Interpolates the two points.
}

// --- Degenerate engine usage.

TEST(EngineEdgeTest, InitializeOnEmptyWindowIsSafe) {
  ContinuousCpdOptions options;
  options.rank = 2;
  options.window_size = 2;
  options.period = 10;
  options.variant = SnsVariant::kVecPlus;
  auto engine = ContinuousCpd::Create({4, 4}, options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  cpd->InitializeWithAls();  // Empty window: zero factors, no crash.
  cpd->ProcessTuple({{1, 1}, 1.0, 5});
  cpd->ProcessTuple({{2, 2}, 1.0, 7});
  EXPECT_TRUE(std::isfinite(cpd->Fitness()));
}

TEST(EngineEdgeTest, ZeroValuedTuplesAreNoOps) {
  ContinuousCpdOptions options;
  options.rank = 2;
  options.window_size = 2;
  options.period = 10;
  options.variant = SnsVariant::kRndPlus;
  auto engine = ContinuousCpd::Create({4, 4}, options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  cpd->IngestOnly({{0, 0}, 1.0, 1});
  cpd->InitializeWithAls();
  const int64_t before = cpd->events_processed();
  cpd->ProcessTuple({{1, 1}, 0.0, 2});
  // The event is counted but must not corrupt state (empty delta).
  EXPECT_GE(cpd->events_processed(), before);
  EXPECT_TRUE(std::isfinite(cpd->Fitness()));
}

// Regression test for the latent move-safety bug: the engine's updater
// caches hold pointers into CpdState, so ContinuousCpd itself is pinned
// (moves deleted) and movability lives in StreamHandle's unique_ptr pimpl.
// Moving a handle mid-stream — engine warm, factors live, schedule loaded —
// must keep processing on the moved-to handle without disturbing state.
TEST(EngineEdgeTest, StreamHandleMovesMidStreamAndKeepsProcessing) {
  ContinuousCpdOptions options;
  options.rank = 2;
  options.window_size = 3;
  options.period = 10;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 5;
  auto created = StreamHandle::Create("movable", {3, 3}, options);
  ASSERT_TRUE(created.ok());
  StreamHandle a = std::move(created).value();

  const std::vector<Tuple> warmup = {
      {{1, 1}, 1.0, 3}, {{2, 0}, 2.0, 11}, {{0, 2}, 1.0, 25}};
  ASSERT_TRUE(a.Warmup(warmup).ok());
  ASSERT_TRUE(a.Initialize().ok());
  ASSERT_TRUE(a.Ingest(Tuple{{1, 2}, 1.0, 31}).ok());

  // Move mid-stream, with live factors and scheduled slide events.
  StreamHandle b = std::move(a);
  EXPECT_EQ(b.Stats().window_nnz, 4);
  for (int64_t t = 35; t <= 150; t += 5) {
    ASSERT_TRUE(b.Ingest(Tuple{{static_cast<int32_t>(t % 3),
                                static_cast<int32_t>((t / 5) % 3)},
                               1.0, t})
                    .ok());
  }
  // Move again via move-assignment while events are still scheduled.
  StreamHandle c = std::move(b);
  ASSERT_TRUE(c.Ingest(Tuple{{0, 0}, 1.0, 200}).ok());
  ASSERT_TRUE(c.AdvanceTo(500).ok());  // Drain everything out the window.
  EXPECT_EQ(c.Stats().window_nnz, 0);
  EXPECT_GT(c.Stats().events_processed, 0);
  EXPECT_TRUE(std::isfinite(c.ExactFitness()));
}

// --- Synthetic generator extremes.

TEST(GeneratorEdgeTest, ZeroEventsProducesEmptyStream) {
  SyntheticStreamConfig config;
  config.mode_dims = {3, 3};
  config.num_events = 0;
  config.time_span = 100;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(stream.value().empty());
}

TEST(GeneratorEdgeTest, SingleIndexModesWork) {
  SyntheticStreamConfig config;
  config.mode_dims = {1, 5};
  config.num_events = 50;
  config.time_span = 100;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  for (const Tuple& tuple : stream.value().tuples()) {
    EXPECT_EQ(tuple.index[0], 0);
  }
}

TEST(GeneratorEdgeTest, FullNoiseFractionIsUniform) {
  SyntheticStreamConfig config;
  config.mode_dims = {4, 4};
  config.num_events = 8000;
  config.time_span = 10000;
  config.noise_fraction = 1.0;
  config.seed = 11;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  std::vector<int> counts(4, 0);
  for (const Tuple& tuple : stream.value().tuples()) {
    counts[static_cast<size_t>(tuple.index[0])]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 8000.0, 0.25, 0.03);
  }
}

}  // namespace
}  // namespace sns
