// Tests for the synthetic stream generator, dataset presets, and CSV loader.

#include <cmath>
#include <cstdio>
#include <map>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "data/synthetic.h"

namespace sns {
namespace {

SyntheticStreamConfig BaseConfig() {
  SyntheticStreamConfig config;
  config.mode_dims = {20, 15};
  config.num_events = 4000;
  config.time_span = 50000;
  config.latent_rank = 4;
  config.diurnal_period = 5000;
  config.seed = 42;
  return config;
}

TEST(SyntheticTest, ValidatesConfig) {
  SyntheticStreamConfig config = BaseConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.mode_dims = {};
  EXPECT_FALSE(GenerateSyntheticStream(config).ok());
  config = BaseConfig();
  config.noise_fraction = 1.5;
  EXPECT_FALSE(GenerateSyntheticStream(config).ok());
  config = BaseConfig();
  config.time_span = 0;
  EXPECT_FALSE(GenerateSyntheticStream(config).ok());
  config = BaseConfig();
  config.value_min = 3.0;
  config.value_max = 1.0;
  EXPECT_FALSE(GenerateSyntheticStream(config).ok());
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  auto stream = GenerateSyntheticStream(BaseConfig());
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value().size(), 4000);
  EXPECT_EQ(stream.value().mode_dims(), (std::vector<int64_t>{20, 15}));
  int64_t previous = 0;
  for (const Tuple& tuple : stream.value().tuples()) {
    EXPECT_GE(tuple.time, previous);
    previous = tuple.time;
    EXPECT_GE(tuple.time, 1);
    EXPECT_LE(tuple.time, 50000);
    EXPECT_EQ(tuple.value, 1.0);  // Count data by default.
    EXPECT_GE(tuple.index[0], 0);
    EXPECT_LT(tuple.index[0], 20);
    EXPECT_GE(tuple.index[1], 0);
    EXPECT_LT(tuple.index[1], 15);
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  auto a = GenerateSyntheticStream(BaseConfig());
  auto b = GenerateSyntheticStream(BaseConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (int64_t i = 0; i < a.value().size(); ++i) {
    const Tuple& x = a.value().tuples()[static_cast<size_t>(i)];
    const Tuple& y = b.value().tuples()[static_cast<size_t>(i)];
    EXPECT_TRUE(x.index == y.index);
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.value, y.value);
  }
}

TEST(SyntheticTest, PopularitySkewProducesHeavyIndices) {
  SyntheticStreamConfig config = BaseConfig();
  config.noise_fraction = 0.0;
  config.popularity_skew = 1.5;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  std::map<int32_t, int64_t> counts;
  for (const Tuple& tuple : stream.value().tuples()) {
    counts[tuple.index[0]]++;
  }
  int64_t max_count = 0;
  for (const auto& [index, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // The most popular index should be far above uniform (4000/20 = 200).
  EXPECT_GT(max_count, 400);
}

TEST(SyntheticTest, DiurnalModulationShiftsMass) {
  SyntheticStreamConfig config = BaseConfig();
  config.diurnal_strength = 0.9;
  config.num_events = 20000;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  // sin-phase [0, half) gets boosted, [half, period) suppressed.
  int64_t first_half = 0, second_half = 0;
  for (const Tuple& tuple : stream.value().tuples()) {
    if (tuple.time % 5000 < 2500) {
      ++first_half;
    } else {
      ++second_half;
    }
  }
  EXPECT_GT(first_half, second_half * 2);
}

TEST(SyntheticTest, ValueRangeRespected) {
  SyntheticStreamConfig config = BaseConfig();
  config.value_min = 1.0;
  config.value_max = 4.0;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());
  for (const Tuple& tuple : stream.value().tuples()) {
    EXPECT_GE(tuple.value, 1.0);
    EXPECT_LE(tuple.value, 4.0);
    EXPECT_EQ(tuple.value, std::floor(tuple.value));  // Integral bounds.
  }
}

TEST(DatasetsTest, PresetsMatchPaperTableIII) {
  auto presets = AllDatasetPresets();
  ASSERT_EQ(presets.size(), 4u);

  EXPECT_EQ(presets[0].name, "divvy");
  EXPECT_EQ(presets[0].engine.period, 1440);
  EXPECT_EQ(presets[0].engine.sample_threshold, 20);
  EXPECT_EQ(presets[0].stream.mode_dims, (std::vector<int64_t>{673, 673}));

  EXPECT_EQ(presets[1].name, "crime");
  EXPECT_EQ(presets[1].engine.period, 720);
  EXPECT_EQ(presets[1].stream.mode_dims, (std::vector<int64_t>{77, 32}));

  EXPECT_EQ(presets[2].name, "taxi");
  EXPECT_EQ(presets[2].engine.period, 3600);
  EXPECT_EQ(presets[2].stream.mode_dims, (std::vector<int64_t>{265, 265}));

  EXPECT_EQ(presets[3].name, "austin");
  EXPECT_EQ(presets[3].engine.period, 1440);
  EXPECT_EQ(presets[3].engine.sample_threshold, 50);
  EXPECT_EQ(presets[3].stream.mode_dims,
            (std::vector<int64_t>{219, 219, 24}));

  for (const auto& preset : presets) {
    EXPECT_EQ(preset.engine.rank, 20);
    EXPECT_EQ(preset.engine.window_size, 10);
    EXPECT_EQ(preset.engine.clip_bound, 1000.0);
    EXPECT_TRUE(preset.engine.Validate().ok());
    EXPECT_TRUE(preset.stream.Validate().ok());
    // Streams span warm-up + 5 live window spans.
    EXPECT_EQ(preset.stream.time_span,
              (1 + kLiveWindows) * 10 * preset.engine.period);
    EXPECT_EQ(preset.WarmupEndTime(), 10 * preset.engine.period);
  }
}

TEST(DatasetsTest, EventScaleScalesCounts) {
  auto small = NewYorkTaxiPreset(0.5);
  auto large = NewYorkTaxiPreset(2.0);
  EXPECT_EQ(small.stream.num_events * 4, large.stream.num_events);
}

TEST(DatasetsTest, PresetStreamsGenerate) {
  for (const auto& preset : AllDatasetPresets(0.1)) {
    auto stream = GenerateSyntheticStream(preset.stream);
    ASSERT_TRUE(stream.ok()) << preset.name;
    EXPECT_EQ(stream.value().size(), preset.stream.num_events);
  }
}

TEST(LoaderTest, RoundTripsStream) {
  SyntheticStreamConfig config = BaseConfig();
  config.num_events = 200;
  auto stream = GenerateSyntheticStream(config);
  ASSERT_TRUE(stream.ok());

  const std::string path = ::testing::TempDir() + "/sns_stream.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveStreamCsv(stream.value(), path).ok());
  auto loaded = LoadStreamCsv(path, {20, 15});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 200);
  for (int64_t i = 0; i < 200; ++i) {
    const Tuple& x = stream.value().tuples()[static_cast<size_t>(i)];
    const Tuple& y = loaded.value().tuples()[static_cast<size_t>(i)];
    EXPECT_TRUE(x.index == y.index);
    EXPECT_EQ(x.time, y.time);
    EXPECT_NEAR(x.value, y.value, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(LoaderTest, RejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/sns_bad_stream.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDelimitedFile(path, ',', {{"1", "2", "1.0"}}).ok());
  EXPECT_FALSE(LoadStreamCsv(path, {5, 5}).ok());  // Missing timestamp field.
  std::remove(path.c_str());

  ASSERT_TRUE(WriteDelimitedFile(path, ',', {{"9", "2", "1.0", "10"}}).ok());
  EXPECT_FALSE(LoadStreamCsv(path, {5, 5}).ok());  // Index out of range.
  std::remove(path.c_str());

  ASSERT_TRUE(WriteDelimitedFile(
                  path, ',', {{"1", "2", "1.0", "10"}, {"1", "2", "1.0", "5"}})
                  .ok());
  EXPECT_FALSE(LoadStreamCsv(path, {5, 5}).ok());  // Time regression.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sns
