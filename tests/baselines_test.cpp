// Tests for the periodic baselines (ALS / OnlineSCP / CP-stream / NeCPD)
// and the PeriodicRunner driver.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/cp_stream.h"
#include "baselines/necpd.h"
#include "baselines/online_scp.h"
#include "baselines/periodic_als.h"
#include "baselines/periodic_runner.h"
#include "baselines/unit_ops.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

constexpr int kWindowSize = 4;
constexpr int64_t kPeriod = 50;
constexpr int64_t kRank = 3;

DataStream TestStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {9, 7};
  config.num_events = num_events;
  config.time_span = (1 + 5) * kWindowSize * kPeriod;
  config.latent_rank = 3;
  config.noise_fraction = 0.1;
  config.diurnal_period = 200;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

AlsOptions InitOptions() {
  AlsOptions options;
  options.max_iterations = 30;
  return options;
}

std::unique_ptr<PeriodicAlgorithm> MakeAlgorithm(const std::string& which) {
  if (which == "als") {
    return std::make_unique<PeriodicAls>(kRank, InitOptions(), /*seed=*/5);
  }
  if (which == "onlinescp") {
    return std::make_unique<OnlineScp>(kRank, InitOptions());
  }
  if (which == "cpstream") {
    return std::make_unique<CpStream>(kRank, InitOptions());
  }
  if (which == "necpd1") {
    return std::make_unique<NeCpd>(kRank, InitOptions(), /*epochs=*/1);
  }
  return std::make_unique<NeCpd>(kRank, InitOptions(), /*epochs=*/10);
}

// Shared pipeline: warm up one window span, init, process 5 window spans.
PeriodicRunner RunBaseline(const std::string& which, const DataStream& stream) {
  PeriodicRunner runner(stream.mode_dims(), kWindowSize, kPeriod,
                        MakeAlgorithm(which));
  const int64_t warmup_end = kWindowSize * kPeriod;
  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    runner.Warmup(tuples[i]);
  }
  Rng rng(77);
  runner.Initialize(rng, warmup_end);
  for (; i < tuples.size(); ++i) runner.Process(tuples[i]);
  runner.FinishUpTo(stream.end_time());
  return runner;
}

TEST(UnitOpsTest, SplitWindowIntoUnitsRoundTrips) {
  Rng rng(1);
  SparseTensor window({4, 3, 5});
  for (int i = 0; i < 30; ++i) {
    window.Set({static_cast<int32_t>(rng.UniformInt(0, 3)),
                static_cast<int32_t>(rng.UniformInt(0, 2)),
                static_cast<int32_t>(rng.UniformInt(0, 4))},
               rng.UniformDouble(0.5, 2.0));
  }
  auto units = SplitWindowIntoUnits(window);
  ASSERT_EQ(units.size(), 5u);
  int64_t total_nnz = 0;
  for (size_t w = 0; w < units.size(); ++w) {
    total_nnz += units[w].nnz();
    units[w].ForEachNonzero([&](const ModeIndex& index, double value) {
      EXPECT_DOUBLE_EQ(
          window.Get(index.WithAppended(static_cast<int32_t>(w))), value);
    });
  }
  EXPECT_EQ(total_nnz, window.nnz());
}

TEST(UnitOpsTest, UnitTimeRowRhsMatchesMttkrpRow) {
  // Placing the unit at time index w of an otherwise-empty window, the unit
  // RHS must equal the mode-(M-1) row MTTKRP of that window at row w.
  Rng rng(2);
  const std::vector<int64_t> dims = {5, 4};
  SparseTensor unit(dims);
  for (int i = 0; i < 12; ++i) {
    unit.Set({static_cast<int32_t>(rng.UniformInt(0, 4)),
              static_cast<int32_t>(rng.UniformInt(0, 3))},
             rng.UniformDouble(0.5, 2.0));
  }
  KruskalModel model = KruskalModel::Random({5, 4, 3}, 2, rng);
  SparseTensor window({5, 4, 3});
  unit.ForEachNonzero([&](const ModeIndex& index, double value) {
    window.Set(index.WithAppended(1), value);
  });
  std::vector<double> rhs = UnitTimeRowRhs(unit, model.factors());
  std::vector<double> expected(PaddedRank(2));
  MttkrpRow(window, model.factors(), 2, 1, expected.data());
  EXPECT_NEAR(rhs[0], expected[0], 1e-10);
  EXPECT_NEAR(rhs[1], expected[1], 1e-10);
}

TEST(UnitOpsTest, AccumulateUnitMttkrpMatchesFullMttkrp) {
  Rng rng(3);
  const std::vector<int64_t> dims = {5, 4};
  SparseTensor unit(dims);
  for (int i = 0; i < 15; ++i) {
    unit.Set({static_cast<int32_t>(rng.UniformInt(0, 4)),
              static_cast<int32_t>(rng.UniformInt(0, 3))},
             rng.UniformDouble(0.5, 2.0));
  }
  KruskalModel model = KruskalModel::Random({5, 4, 3}, 2, rng);
  // Window with the unit at time index 2.
  SparseTensor window({5, 4, 3});
  unit.ForEachNonzero([&](const ModeIndex& index, double value) {
    window.Set(index.WithAppended(2), value);
  });
  for (int mode = 0; mode < 2; ++mode) {
    Matrix p(dims[static_cast<size_t>(mode)], 2);
    AccumulateUnitMttkrp(unit, model.factors(), model.factor(2).Row(2), mode,
                         1.0, p);
    Matrix expected = Mttkrp(window, model.factors(), mode);
    EXPECT_LT(MaxAbsDiff(p, expected), 1e-10) << "mode " << mode;
  }
}

TEST(PeriodicAlgorithmTest, ShiftTimeFactorRows) {
  Matrix time_factor(3, 2);
  for (int64_t i = 0; i < 3; ++i) {
    time_factor(i, 0) = static_cast<double>(i);
    time_factor(i, 1) = static_cast<double>(10 + i);
  }
  ShiftTimeFactorRows(time_factor);
  EXPECT_DOUBLE_EQ(time_factor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(time_factor(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(time_factor(2, 0), 2.0);  // Warm start copy.
  EXPECT_DOUBLE_EQ(time_factor(0, 1), 11.0);
}

class BaselineBehaviourTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineBehaviourTest, ProducesFinitePositiveFitnessPerBoundary) {
  DataStream stream = TestStream(2500, 31);
  PeriodicRunner runner = RunBaseline(GetParam(), stream);
  ASSERT_GT(runner.observations().size(), 5u);
  for (const auto& obs : runner.observations()) {
    ASSERT_TRUE(std::isfinite(obs.fitness)) << GetParam();
    ASSERT_GE(obs.update_micros, 0.0);
  }
  // The second half of the run should track reasonably. The least-squares
  // baselines stay above a loose floor; SGD-based NeCPD is far weaker (as in
  // the paper, where it is the least accurate baseline — Fig. 5b) and must
  // merely stay positive on average rather than collapse or diverge.
  double mean_late_fitness = 0.0;
  int counted = 0;
  const auto& all = runner.observations();
  for (size_t i = all.size() / 2; i < all.size(); ++i) {
    mean_late_fitness += all[i].fitness;
    ++counted;
  }
  mean_late_fitness /= counted;
  const bool is_sgd_baseline = GetParam().rfind("necpd", 0) == 0;
  // NeCPD(1) hovers around zero fitness on sparse windows (one SGD epoch
  // cannot keep up) — the bound only rejects divergence.
  EXPECT_GT(mean_late_fitness, is_sgd_baseline ? -0.1 : 0.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineBehaviourTest,
                         ::testing::Values("als", "onlinescp", "cpstream",
                                           "necpd1", "necpd10"),
                         [](const auto& info) { return info.param; });

TEST(BaselineOrderingTest, AlsIsMostAccurateBaseline) {
  DataStream stream = TestStream(2500, 33);
  PeriodicRunner als = RunBaseline("als", stream);
  PeriodicRunner scp = RunBaseline("onlinescp", stream);
  auto mean_fitness = [](const PeriodicRunner& runner) {
    double sum = 0.0;
    for (const auto& obs : runner.observations()) sum += obs.fitness;
    return sum / static_cast<double>(runner.observations().size());
  };
  // Batch ALS re-solves per boundary and should not lose to the incremental
  // approximation by a wide margin (allow small noise).
  EXPECT_GT(mean_fitness(als) + 0.05, mean_fitness(scp));
}

TEST(PeriodicRunnerTest, BoundariesAdvanceWithGaps) {
  // Tuples that skip several periods still produce one observation per
  // boundary (with empty units).
  DataStream stream({3, 3});
  SNS_CHECK(stream.Append({{0, 0}, 1.0, 10}).ok());
  SNS_CHECK(stream.Append({{1, 1}, 1.0, 30}).ok());
  SNS_CHECK(stream.Append({{2, 2}, 1.0, 460}).ok());

  PeriodicRunner runner({3, 3}, kWindowSize, /*period=*/50,
                        std::make_unique<PeriodicAls>(2, InitOptions(), 1));
  runner.Warmup(stream.tuples()[0]);
  runner.Warmup(stream.tuples()[1]);
  Rng rng(5);
  runner.Initialize(rng, /*boundary_time=*/50);
  runner.Process(stream.tuples()[2]);  // Crosses boundaries 100..450.
  runner.FinishUpTo(500);
  // Boundaries 100, 150, ..., 500 → 9 observations.
  EXPECT_EQ(runner.observations().size(), 9u);
  EXPECT_EQ(runner.observations().front().boundary_time, 100);
  EXPECT_EQ(runner.observations().back().boundary_time, 500);
}

TEST(NeCpdTest, EpochCountsBothTrackOnDenseStream) {
  DataStream stream = TestStream(3000, 35);
  PeriodicRunner one = RunBaseline("necpd1", stream);
  PeriodicRunner ten = RunBaseline("necpd10", stream);
  auto mean_fitness = [](const PeriodicRunner& runner) {
    double sum = 0.0;
    for (const auto& obs : runner.observations()) sum += obs.fitness;
    return sum / static_cast<double>(runner.observations().size());
  };
  // With LMS normalization + weight decay both epoch counts are stable on a
  // dense stream; extra epochs trade a little fit for extra regularization,
  // so we assert a band rather than an ordering.
  EXPECT_GT(mean_fitness(one), 0.3);
  EXPECT_GT(mean_fitness(ten), 0.3);
  EXPECT_LT(std::fabs(mean_fitness(ten) - mean_fitness(one)), 0.2);
}

}  // namespace
}  // namespace sns
