// Mixed-precision factor storage (FactorPrecision::kFloat32Accum64): the
// float32 mirrors stay exact images of the double factors, every committed
// factor entry is float32-representable, the f32 kernels agree with their
// double counterparts on f32-representable data, and the end-to-end fitness
// of every variant stays close to the float64 run.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/continuous_cpd.h"
#include "linalg/matrix32.h"
#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

TEST(Matrix32Test, MirrorsDoubleMatrixExactly) {
  Rng rng(7);
  Matrix m = Matrix::RandomNormal(5, 11, rng);
  Matrix32 m32(5, 11);
  m32.AssignFromDouble(m);
  ASSERT_EQ(m32.rows(), 5);
  ASSERT_EQ(m32.cols(), 11);
  EXPECT_EQ(m32.stride() % 8, 0);
  EXPECT_GE(m32.stride(), PaddedRank(11));
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 11; ++j) {
      EXPECT_EQ(m32(i, j), static_cast<float>(m(i, j)));
    }
  }
  EXPECT_TRUE(m32.PaddingIsZero());
}

TEST(Matrix32Test, F32KernelsMatchDoubleOnRepresentableData) {
  // Factors quantized through float32: the f32 widening kernels must agree
  // with the double kernels bitwise (widening a float is exact, and both
  // run the same double accumulation).
  Rng rng(13);
  for (const int64_t rank : {3l, 8l, 20l, 29l}) {
    const int64_t padded = PaddedRank(rank);
    Matrix a(4, rank), b(4, rank);
    for (int64_t i = 0; i < 4; ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        a(i, j) = static_cast<double>(static_cast<float>(rng.Normal()));
        b(i, j) = static_cast<double>(static_cast<float>(rng.Normal()));
      }
    }
    Matrix32 a32(4, rank), b32(4, rank);
    a32.AssignFromDouble(a);
    b32.AssignFromDouble(b);

    const RankKernelTable& kr = GetRankKernelTable(padded);
    AlignedVector out_d(rank), out_f(rank);
    for (int64_t i = 0; i < 4; ++i) {
      kr.fill(out_d.data(), 1.0, padded);
      kr.fill(out_f.data(), 1.0, padded);
      kr.mul_accum(out_d.data(), a.Row(i), padded);
      kr.mul_accum_f32(out_f.data(), a32.Row(i), padded);
      for (int64_t r = 0; r < padded; ++r) {
        ASSERT_EQ(out_d[r], out_f[r]) << "mul_accum rank " << rank;
      }

      kr.fill(out_d.data(), 0.5, padded);
      kr.fill(out_f.data(), 0.5, padded);
      kr.fma3(1.75, a.Row(i), b.Row(i), out_d.data(), padded);
      kr.fma3_f32(1.75, a32.Row(i), b32.Row(i), out_f.data(), padded);
      for (int64_t r = 0; r < padded; ++r) {
        ASSERT_EQ(out_d[r], out_f[r]) << "fma3 rank " << rank;
      }
    }
  }
}

TEST(Matrix32Test, HadamardAndMttkrpRow32MatchDoublePath) {
  Rng rng(29);
  const int64_t rank = 7;
  const int64_t padded = PaddedRank(rank);
  std::vector<Matrix> factors;
  std::vector<Matrix32> factors32(3);
  const int64_t dims[3] = {5, 4, 3};
  for (int m = 0; m < 3; ++m) {
    Matrix f(dims[m], rank);
    for (int64_t i = 0; i < dims[m]; ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        f(i, j) = static_cast<double>(static_cast<float>(rng.UniformDouble()));
      }
    }
    factors32[static_cast<size_t>(m)].AssignFromDouble(f);
    factors.push_back(std::move(f));
  }
  SparseTensor x({5, 4, 3});
  for (int n = 0; n < 25; ++n) {
    x.Add({static_cast<int32_t>(rng.UniformInt(0, 4)),
           static_cast<int32_t>(rng.UniformInt(0, 3)),
           static_cast<int32_t>(rng.UniformInt(0, 2))},
          rng.UniformDouble());
  }

  const RankKernelTable& kr = GetRankKernelTable(padded);
  AlignedVector out_d(rank), out_f(rank), had(rank);
  for (int mode = 0; mode < 3; ++mode) {
    HadamardRowProduct(factors, {1, 2, 0}, mode, out_d.data(), kr);
    HadamardRowProduct32(factors32, {1, 2, 0}, mode, out_f.data(), kr);
    for (int64_t r = 0; r < padded; ++r) ASSERT_EQ(out_d[r], out_f[r]);

    for (int64_t row = 0; row < dims[mode]; ++row) {
      MttkrpRow(x, factors, mode, row, out_d.data(), had.data(), kr);
      MttkrpRow32(x, factors32, mode, row, out_f.data(), had.data(), kr);
      for (int64_t r = 0; r < padded; ++r) ASSERT_EQ(out_d[r], out_f[r]);
    }
  }
}

// Shared synthetic pipeline for the end-to-end differentials.
std::unique_ptr<ContinuousCpd> RunPipeline(SnsVariant variant,
                                           FactorPrecision precision) {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 4;
  options.period = 10;
  options.variant = variant;
  options.sample_threshold = 10;
  options.clip_bound = 100.0;
  options.factor_precision = precision;
  options.init.max_iterations = 20;
  options.seed = 4242;
  auto created = ContinuousCpd::Create({8, 6}, options);
  SNS_CHECK(created.ok());
  std::unique_ptr<ContinuousCpd> engine = std::move(created).value();

  // Stationary low-rank stream (same construction per call: fixed seed).
  Rng rng(0xabc);
  const std::vector<std::vector<double>> mode0 = {
      {8, 4, 2, 1, 1, 1, 1, 1}, {1, 1, 1, 1, 2, 4, 8, 8}};
  const std::vector<std::vector<double>> mode1 = {
      {6, 3, 1, 1, 1, 1}, {1, 1, 1, 3, 6, 6}};
  auto next_tuple = [&](int64_t t) {
    const size_t c = rng.UniformDouble() < 0.6 ? 0 : 1;
    return Tuple{{static_cast<int32_t>(rng.Categorical(mode0[c])),
                  static_cast<int32_t>(rng.Categorical(mode1[c]))},
                 1.0, t};
  };
  int64_t t = 1;
  const int64_t warmup_end = 1 + options.window_size * options.period;
  for (; t <= warmup_end; ++t) engine->IngestOnly(next_tuple(t));
  engine->InitializeWithAls();
  for (; t <= warmup_end + 260; ++t) engine->ProcessTuple(next_tuple(t));
  return engine;
}

TEST(MixedPrecisionTest, FactorsStayFloat32RepresentableAndMirrored) {
  for (const SnsVariant variant :
       {SnsVariant::kVec, SnsVariant::kRndPlus, SnsVariant::kMat}) {
    SCOPED_TRACE(VariantName(variant));
    auto engine =
        RunPipeline(variant, FactorPrecision::kFloat32Accum64);
    const CpdState& state = engine->state();
    ASSERT_TRUE(state.mixed());
    ASSERT_EQ(state.factors32.size(),
              static_cast<size_t>(state.num_modes()));
    for (int m = 0; m < state.num_modes(); ++m) {
      const Matrix& f = state.model.factor(m);
      const Matrix32& f32 = state.factors32[static_cast<size_t>(m)];
      for (int64_t i = 0; i < f.rows(); ++i) {
        for (int64_t j = 0; j < f.cols(); ++j) {
          // Every double entry is exactly a float32 value...
          ASSERT_EQ(f(i, j),
                    static_cast<double>(static_cast<float>(f(i, j))));
          // ...and the mirror carries exactly that value.
          ASSERT_EQ(static_cast<double>(f32(i, j)), f(i, j));
        }
      }
      ASSERT_TRUE(f32.PaddingIsZero());
    }
  }
}

// Accuracy contract: on a well-conditioned stream the mixed-precision run
// tracks the float64 run's fitness closely for every variant. float32 has
// ~1e-7 relative rounding; the bound leaves room for accumulation across
// hundreds of events.
TEST(MixedPrecisionTest, FitnessDriftIsBoundedForEveryVariant) {
  for (const SnsVariant variant :
       {SnsVariant::kMat, SnsVariant::kVec, SnsVariant::kRnd,
        SnsVariant::kVecPlus, SnsVariant::kRndPlus}) {
    SCOPED_TRACE(VariantName(variant));
    auto f64 = RunPipeline(variant, FactorPrecision::kFloat64);
    auto mixed = RunPipeline(variant, FactorPrecision::kFloat32Accum64);
    const double fit64 = f64->Fitness();
    const double fit_mixed = mixed->Fitness();
    EXPECT_TRUE(std::isfinite(fit_mixed));
    EXPECT_NEAR(fit_mixed, fit64, 5e-3);
  }
}

TEST(MixedPrecisionTest, PrecisionNameAndDefault) {
  EXPECT_EQ(FactorPrecisionName(FactorPrecision::kFloat64), "f64");
  EXPECT_EQ(FactorPrecisionName(FactorPrecision::kFloat32Accum64), "f32a64");
  ContinuousCpdOptions options;
  EXPECT_EQ(options.factor_precision, FactorPrecision::kFloat64);
  EXPECT_FALSE(options.force_generic_kernels);
}

}  // namespace
}  // namespace sns
