// Tests for the non-negative factor extension (projected coordinate
// descent; DESIGN.md extension, not in the paper).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/continuous_cpd.h"
#include "core/sns_vec_plus.h"
#include "data/synthetic.h"

namespace sns {
namespace {

TEST(NonnegativeOptionsTest, OnlyCompatibleWithClippedVariants) {
  ContinuousCpdOptions options;
  options.nonnegative_factors = true;
  options.variant = SnsVariant::kVecPlus;
  EXPECT_TRUE(options.Validate().ok());
  options.variant = SnsVariant::kRndPlus;
  EXPECT_TRUE(options.Validate().ok());
  for (SnsVariant bad :
       {SnsVariant::kMat, SnsVariant::kVec, SnsVariant::kRnd}) {
    options.variant = bad;
    EXPECT_FALSE(options.Validate().ok()) << VariantName(bad);
  }
}

TEST(NonnegativeCoordinateDescentTest, ClampsNegativeSolutionsToZero) {
  Matrix hq = Matrix::Identity(2);
  // Padded contract: `row` spans hq.stride() doubles, padding at 0.0.
  double row[4] = {0.5, 0.5, 0.0, 0.0};
  double numerator[2] = {-3.0, 0.25};
  CoordinateDescentRow(row, 2, hq, numerator, /*clip_min=*/0.0,
                       /*clip_max=*/10.0);
  EXPECT_DOUBLE_EQ(row[0], 0.0);   // Unconstrained optimum -3 → projected.
  EXPECT_DOUBLE_EQ(row[1], 0.25);  // Interior optimum untouched.
}

DataStream Stream(uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {9, 7};
  config.num_events = 2500;
  config.time_span = 6 * 4 * 50;
  config.latent_rank = 3;
  config.diurnal_period = 200;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

std::unique_ptr<ContinuousCpd> RunNonnegative(const DataStream& stream,
                                              SnsVariant variant) {
  ContinuousCpdOptions options;
  options.rank = 3;
  options.window_size = 4;
  options.period = 50;
  options.variant = variant;
  options.sample_threshold = 15;
  options.clip_bound = 100.0;
  options.nonnegative_factors = true;
  options.seed = 13;
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  SNS_CHECK(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();
  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    cpd->IngestOnly(stream.tuples()[i]);
  }
  cpd->InitializeWithAls();
  for (; i < stream.tuples().size(); ++i) {
    cpd->ProcessTuple(stream.tuples()[i]);
  }
  return cpd;
}

class NonnegativeVariantTest : public ::testing::TestWithParam<SnsVariant> {};

TEST_P(NonnegativeVariantTest, FactorsStayNonnegativeAndUseful) {
  DataStream stream = Stream(21);
  std::unique_ptr<ContinuousCpd> cpd = RunNonnegative(stream, GetParam());
  for (int m = 0; m < cpd->model().num_modes(); ++m) {
    const Matrix& factor = cpd->model().factor(m);
    for (int64_t i = 0; i < factor.rows(); ++i) {
      for (int64_t r = 0; r < factor.cols(); ++r) {
        ASSERT_GE(factor(i, r), 0.0) << "mode " << m;
        ASSERT_LE(factor(i, r), 100.0);
      }
    }
  }
  // Constrained fitness is lower than unconstrained but must stay sane on
  // count data (which is non-negative to begin with).
  EXPECT_GT(cpd->Fitness(), 0.05);
  EXPECT_TRUE(std::isfinite(cpd->Fitness()));
}

INSTANTIATE_TEST_SUITE_P(ClippedVariants, NonnegativeVariantTest,
                         ::testing::Values(SnsVariant::kVecPlus,
                                           SnsVariant::kRndPlus),
                         [](const auto& info) {
                           return info.param == SnsVariant::kVecPlus
                                      ? "SNSPlusVEC"
                                      : "SNSPlusRND";
                         });

TEST(NonnegativeVsUnconstrainedTest, UnconstrainedFitsAtLeastAsWell) {
  DataStream stream = Stream(22);
  std::unique_ptr<ContinuousCpd> constrained =
      RunNonnegative(stream, SnsVariant::kVecPlus);

  ContinuousCpdOptions options;
  options.rank = 3;
  options.window_size = 4;
  options.period = 50;
  options.variant = SnsVariant::kVecPlus;
  options.clip_bound = 100.0;
  options.seed = 13;
  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  ASSERT_TRUE(engine.ok());
  std::unique_ptr<ContinuousCpd> unconstrained = std::move(engine).value();
  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    unconstrained->IngestOnly(stream.tuples()[i]);
  }
  unconstrained->InitializeWithAls();
  for (; i < stream.tuples().size(); ++i) {
    unconstrained->ProcessTuple(stream.tuples()[i]);
  }
  EXPECT_GE(unconstrained->Fitness() + 0.05, constrained->Fitness());
}

}  // namespace
}  // namespace sns
