// Coverage of the telemetry subsystem (src/telemetry/) and its service
// integration: histogram bucket math against the documented boundaries,
// merge algebra, percentile accuracy against a sorted-vector reference,
// concurrent recording (this file runs under the ThreadSanitizer CI job),
// mailbox traffic counters, the sequence-consistent ServiceMetricsSnapshot,
// the periodic OnMetrics exporter, and the differential guarantee that
// enabling telemetry leaves factor state bitwise unchanged.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/mailbox.h"
#include "slicenstitch.h"

namespace sns {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::HistogramSnapshot;
using telemetry::LatencyHistogram;
using telemetry::MetricsRegistry;
using telemetry::ScopedTimer;
using telemetry::ServiceMetricsSnapshot;
using telemetry::ShardMetrics;
using telemetry::StreamMetricsSnapshot;

// --- Counters and gauges --------------------------------------------------

TEST(CountersTest, ConcurrentAddsAllLand) {
  Counter counter;
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        gauge.Add(1);
        gauge.Add(-1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.Get(), 0);
  EXPECT_GE(gauge.Peak(), 1);
  EXPECT_LE(gauge.Peak(), kThreads);
}

TEST(CountersTest, GaugePeakIsHighWaterMark) {
  Gauge gauge;
  gauge.Add(3);
  gauge.Add(4);   // depth 7 — the peak.
  gauge.Add(-6);  // depth 1.
  gauge.Add(2);   // depth 3: below the peak, must not move it.
  EXPECT_EQ(gauge.Get(), 3);
  EXPECT_EQ(gauge.Peak(), 7);
}

// --- Histogram bucket math ------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreExact) {
  // Every bucket: its lower bound maps into it, its last value maps into
  // it, and the next value starts the next bucket. Buckets tile the
  // trackable range with no gaps or overlaps.
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t lower = LatencyHistogram::BucketLowerBound(i);
    const int64_t width = LatencyHistogram::BucketWidth(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), i) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower + width - 1), i)
        << "bucket " << i;
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_EQ(lower + width, LatencyHistogram::BucketLowerBound(i + 1))
          << "bucket " << i;
      EXPECT_EQ(LatencyHistogram::BucketIndex(lower + width), i + 1)
          << "bucket " << i;
    }
    // The documented error bound: width <= lower/16 above the unit range,
    // so a bucket-midpoint representative is within 6.25% of any member.
    if (i >= LatencyHistogram::kSubBuckets) {
      EXPECT_LE(width * LatencyHistogram::kSubBuckets, lower)
          << "bucket " << i;
    } else {
      EXPECT_EQ(width, 1);
      EXPECT_EQ(lower, i);
    }
  }
  // The top bucket ends exactly at kMaxTrackable.
  const int last = LatencyHistogram::kNumBuckets - 1;
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kMaxTrackable),
            last);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(last) +
                LatencyHistogram::BucketWidth(last) - 1,
            LatencyHistogram::kMaxTrackable);
}

TEST(HistogramTest, RecordClampsButTracksExactExtremes) {
  LatencyHistogram histogram;
  histogram.Record(-17);  // Clock anomaly: clamps to 0.
  const int64_t huge = LatencyHistogram::kMaxTrackable + 12345;
  histogram.Record(huge);  // Beyond the top bucket: clamps for bucketing.
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, huge);  // The true extreme survives the clamp.
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
  // Percentile never reports beyond the observed range.
  EXPECT_LE(snap.Percentile(0.999), huge);
  EXPECT_EQ(snap.Percentile(1.0), huge);
  EXPECT_EQ(snap.Percentile(0.0), 0);
}

HistogramSnapshot SnapshotOf(const std::vector<int64_t>& values) {
  LatencyHistogram histogram;
  for (const int64_t v : values) histogram.Record(v);
  return histogram.Snapshot();
}

void ExpectSnapshotsEqual(const HistogramSnapshot& a,
                          const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> dist(0, int64_t{1} << 30);
  std::vector<std::vector<int64_t>> sets(3);
  for (size_t s = 0; s < sets.size(); ++s) {
    for (int i = 0; i < 500; ++i) sets[s].push_back(dist(rng));
  }
  const HistogramSnapshot a = SnapshotOf(sets[0]);
  const HistogramSnapshot b = SnapshotOf(sets[1]);
  const HistogramSnapshot c = SnapshotOf(sets[2]);

  HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot right = a;
  right.Merge(bc);
  ExpectSnapshotsEqual(left, right);

  HistogramSnapshot ab = a;     // a + b == b + a
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  ExpectSnapshotsEqual(ab, ba);

  // Empty is the identity, on both sides.
  HistogramSnapshot with_empty = a;
  with_empty.Merge(HistogramSnapshot{});
  ExpectSnapshotsEqual(with_empty, a);
  HistogramSnapshot from_empty;
  from_empty.Merge(a);
  ExpectSnapshotsEqual(from_empty, a);

  // The merged result equals recording the union directly.
  std::vector<int64_t> all = sets[0];
  all.insert(all.end(), sets[1].begin(), sets[1].end());
  all.insert(all.end(), sets[2].begin(), sets[2].end());
  ExpectSnapshotsEqual(left, SnapshotOf(all));
}

TEST(HistogramTest, PercentilesTrackSortedReferenceWithinErrorBound) {
  // Randomized workloads spanning several magnitudes: every reported
  // percentile must sit within the documented 6.25% relative quantization
  // error of the exact order statistic.
  for (const uint64_t seed : {1u, 7u, 99u}) {
    std::mt19937_64 rng(seed);
    std::lognormal_distribution<double> dist(10.0, 2.0);  // ~2e4 ns median.
    std::vector<int64_t> values;
    LatencyHistogram histogram;
    for (int i = 0; i < 5000; ++i) {
      const int64_t v = static_cast<int64_t>(dist(rng));
      values.push_back(v);
      histogram.Record(v);
    }
    std::sort(values.begin(), values.end());
    const HistogramSnapshot snap = histogram.Snapshot();
    ASSERT_EQ(snap.count, values.size());
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
      const size_t rank = static_cast<size_t>(
          std::ceil(q * static_cast<double>(values.size())));
      const int64_t exact = values[rank - 1];
      const int64_t reported = snap.Percentile(q);
      EXPECT_NEAR(static_cast<double>(reported),
                  static_cast<double>(exact),
                  0.0625 * static_cast<double>(exact) + 1.0)
          << "seed " << seed << " q " << q;
    }
    EXPECT_EQ(snap.min, values.front());
    EXPECT_EQ(snap.max, values.back());
  }
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  const int64_t total = kThreads * kPerThread;
  EXPECT_EQ(snap.sum, total * (total - 1) / 2);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, total - 1);
}

TEST(HistogramTest, SnapshotRacingRecordersStaysInternallyConsistent) {
  // Snapshots taken while recorders run must never report a rank outside
  // their own bucket tallies (count is derived from the buckets) and never
  // a percentile outside the observed extremes.
  LatencyHistogram histogram;
  constexpr uint64_t kSamples = 200000;
  std::atomic<bool> done{false};
  std::thread recorder([&] {
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<int64_t> dist(1, 1 << 20);
    for (uint64_t i = 0; i < kSamples; ++i) histogram.Record(dist(rng));
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    const HistogramSnapshot snap = histogram.Snapshot();
    uint64_t tallied = 0;
    for (const uint64_t b : snap.buckets) tallied += b;
    EXPECT_EQ(snap.count, tallied);
    EXPECT_LE(snap.count, kSamples);
    if (snap.count > 0) {
      const int64_t p99 = snap.Percentile(0.99);
      EXPECT_GE(p99, snap.min);
      EXPECT_LE(p99, snap.max);
    }
  }
  recorder.join();
  EXPECT_EQ(histogram.Snapshot().count, kSamples);
}

TEST(ScopedTimerTest, RecordsElapsedAndToleratesNull) {
  LatencyHistogram histogram;
  {
    ScopedTimer timer(&histogram);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(timer.ElapsedNanos(), 0);
  }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 1000000);  // Slept >= 2 ms; allow a coarse clock.
  { ScopedTimer disabled(nullptr); }  // Null histogram: records nothing.
}

// --- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, StreamDomainsAreStableAndReused) {
  MetricsRegistry registry(2);
  EXPECT_EQ(registry.num_shards(), 2);
  telemetry::StreamMetrics* first = registry.RegisterStream("s", 1);
  first->tuples_ingested.Add(5);
  // Re-registration (stream re-created) reuses the domain and re-pins.
  telemetry::StreamMetrics* again = registry.RegisterStream("s", 0);
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->shard, 0);
  EXPECT_EQ(again->tuples_ingested.Get(), 5u);

  registry.RegisterStream("a", 1);
  const ServiceMetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  ASSERT_EQ(snap.streams.size(), 2u);
  EXPECT_EQ(snap.streams[0].name, "a");  // Sorted by name.
  EXPECT_EQ(snap.streams[1].name, "s");
  EXPECT_EQ(snap.streams[1].tuples_ingested, 5u);
}

TEST(MetricsRegistryTest, SnapshotMergesHotPathHistogramsAcrossShards) {
  MetricsRegistry registry(3);
  registry.shard(0).ingest_latency_ns.Record(100);
  registry.shard(1).ingest_latency_ns.Record(200);
  registry.shard(2).ingest_latency_ns.Record(300);
  registry.shard(1).apply_ns.Record(50);
  const ServiceMetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.ingest_latency_ns.count, 3u);
  EXPECT_EQ(snap.ingest_latency_ns.min, 100);
  EXPECT_EQ(snap.ingest_latency_ns.max, 300);
  EXPECT_EQ(snap.apply_ns.count, 1u);
}

// --- Mailbox traffic counters --------------------------------------------

TEST(MailboxMetricsTest, CountsPushesDepthAndRefusals) {
  ShardMetrics metrics;
  Mailbox mailbox(1, &metrics);
  ASSERT_EQ(mailbox.Push([] {}, /*block=*/false), Mailbox::PushResult::kOk);
  EXPECT_EQ(metrics.mailbox_pushes.Get(), 1u);
  EXPECT_EQ(metrics.queue_depth.Get(), 1);

  // Full, non-blocking: refused and tallied.
  EXPECT_EQ(mailbox.Push([] {}, /*block=*/false), Mailbox::PushResult::kFull);
  EXPECT_EQ(metrics.mailbox_rejected.Get(), 1u);

  // Full, blocking with an already-expired deadline: counts one blocked
  // producer and one deadline refusal.
  EXPECT_EQ(mailbox.Push([] {}, /*block=*/true,
                         std::chrono::steady_clock::now() -
                             std::chrono::milliseconds(1)),
            Mailbox::PushResult::kTimedOut);
  EXPECT_EQ(metrics.mailbox_blocked.Get(), 1u);
  EXPECT_EQ(metrics.mailbox_deadline_exceeded.Get(), 1u);

  Task task;
  ASSERT_TRUE(mailbox.Pop(task));
  EXPECT_EQ(metrics.queue_depth.Get(), 0);
  EXPECT_EQ(metrics.queue_depth.Peak(), 1);
  task();
  mailbox.TaskDone();
  mailbox.Close();
  EXPECT_EQ(metrics.mailbox_pushes.Get(), 1u);  // Refusals never counted.
}

// --- Service integration --------------------------------------------------

ContinuousCpdOptions SmallEngineOptions() {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  return options;
}

DataStream SmallStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

std::pair<std::span<const Tuple>, std::span<const Tuple>> SplitWarmup(
    const DataStream& stream, const ContinuousCpdOptions& options) {
  const std::span<const Tuple> tuples(stream.tuples());
  const int64_t warmup_end =
      static_cast<int64_t>(options.window_size) * options.period;
  const size_t i =
      static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  return {tuples.subspan(0, i), tuples.subspan(i)};
}

TEST(ServiceTelemetryTest, MetricsAreOffByDefault) {
  SnsService service{ServiceOptions{}};
  EXPECT_FALSE(service.metrics_enabled());
  EXPECT_EQ(service.Metrics().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceTelemetryTest, SnapshotIsSequenceConsistentAfterAsyncBarrage) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  ServiceOptions runtime;
  runtime.shards = 2;
  runtime.metrics.enabled = true;
  SnsService service(runtime);
  ASSERT_TRUE(service.metrics_enabled());

  const std::vector<std::string> names = {"u", "v"};
  std::vector<DataStream> streams;
  std::vector<std::span<const Tuple>> lives;
  for (size_t s = 0; s < names.size(); ++s) {
    streams.push_back(SmallStream(500, 31 + s));
    ASSERT_TRUE(service.CreateStream(names[s], {6, 5}, options).ok());
    const auto [warm, live] = SplitWarmup(streams[s], options);
    ASSERT_TRUE(service.Warmup(names[s], warm).ok());
    ASSERT_TRUE(service.Initialize(names[s]).ok());
    lives.push_back(live);
  }

  // Fire an async barrage, then query Metrics() WITHOUT draining: the
  // snapshot barrier must observe every batch whose ticket was issued
  // before it.
  size_t batches = 0;
  size_t live_tuples = 0;
  std::vector<Ticket> tickets;
  for (size_t s = 0; s < names.size(); ++s) {
    for (size_t offset = 0; offset < lives[s].size(); offset += 40) {
      const size_t n = std::min<size_t>(40, lives[s].size() - offset);
      tickets.push_back(
          service.IngestAsync(names[s], lives[s].subspan(offset, n)));
      ++batches;
      live_tuples += n;
    }
  }
  const ServiceMetricsSnapshot snap = service.Metrics().value();
  for (const Ticket& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());

  // Hot path: every async batch flowed through a mailbox and recorded an
  // ingest-to-ticket latency sample.
  ASSERT_EQ(snap.shards.size(), 2u);
  uint64_t pushes = 0;
  uint64_t tasks = 0;
  for (const auto& shard : snap.shards) {
    pushes += shard.mailbox_pushes;
    tasks += shard.tasks_executed;
    EXPECT_EQ(shard.queue_depth, 0);  // Barrier drained the queue.
  }
  EXPECT_GE(pushes, batches);
  EXPECT_GE(tasks, batches);
  EXPECT_GE(snap.ingest_latency_ns.count, batches);
  EXPECT_GT(snap.ingest_latency_ns.max, 0);
  EXPECT_GT(snap.ingest_latency_ns.Percentile(0.99), 0);
  EXPECT_GE(snap.ingest_latency_ns.Percentile(0.99),
            snap.ingest_latency_ns.Percentile(0.50));
  EXPECT_GE(snap.apply_ns.count, batches);

  // Per-stream: the barrage is fully reflected although nothing was
  // explicitly drained before the query.
  ASSERT_EQ(snap.streams.size(), 2u);
  uint64_t tuples = 0;
  for (const auto& stream : snap.streams) {
    EXPECT_GT(stream.batches_applied, 0u);
    tuples += stream.tuples_ingested;
  }
  EXPECT_GE(tuples, live_tuples);
  service.Shutdown();
}

TEST(ServiceTelemetryTest, RejectedPushesAreCounted) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  ServiceOptions runtime;
  runtime.shards = 1;
  runtime.backpressure = BackpressurePolicy::kReject;
  runtime.metrics.enabled = true;
  SnsService service(runtime);
  DataStream stream = SmallStream(300, 77);
  const auto [warm, live] = SplitWarmup(stream, options);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, options).ok());
  ASSERT_TRUE(service.Warmup("s", warm).ok());
  ASSERT_TRUE(service.Initialize("s").ok());

  // Deterministic full-queue injection: the next push reports kFull.
  failpoint::Arm("mailbox.push", "once");
  const Ticket refused = service.IngestAsync("s", live.subspan(0, 10));
  EXPECT_EQ(refused.Wait().code(), StatusCode::kResourceExhausted);
  failpoint::Disarm("mailbox.push");

  const ServiceMetricsSnapshot snap = service.Metrics().value();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_EQ(snap.shards[0].mailbox_rejected, 1u);
  service.Shutdown();
}

TEST(ServiceTelemetryTest, JournalAndCheckpointCountersTally) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/sns_telemetry_journal";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServiceOptions runtime;
  runtime.metrics.enabled = true;  // Inline service: shards = 0.
  SnsService service(runtime);
  DataStream stream = SmallStream(300, 5);
  const auto [warm, live] = SplitWarmup(stream, options);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, options).ok());
  ASSERT_TRUE(service.EnableJournal("s", dir + "/journal").ok());
  ASSERT_TRUE(service.Warmup("s", warm).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  ASSERT_TRUE(service.Ingest("s", live.subspan(0, 50)).ok());
  ASSERT_TRUE(service.CheckpointToFile("s", dir + "/ckpt.sns").ok());

  const ServiceMetricsSnapshot snap = service.Metrics().value();
  ASSERT_EQ(snap.streams.size(), 1u);
  const StreamMetricsSnapshot& s = snap.streams[0];
  EXPECT_GE(s.journal_appends, 1u);  // At least the live Ingest batch.
  EXPECT_GT(s.journal_bytes, 0u);
  EXPECT_EQ(s.journal_appends, s.journal_append_ns.count);
  EXPECT_EQ(s.checkpoint_writes, 1u);
  EXPECT_GT(s.checkpoint_bytes, 0u);
  EXPECT_EQ(s.checkpoint_write_ns.count, 1u);
  // Inline parity: the inline path still records apply and ingest latency.
  EXPECT_GT(snap.ingest_latency_ns.count, 0u);
  EXPECT_GT(snap.apply_ns.count, 0u);
  fs::remove_all(dir);
}

// Counts OnMetrics deliveries; ignores window events.
class TickCountingSink : public EventSink {
 public:
  void OnStreamEvent(const StreamEvent& event) override { (void)event; }
  void OnMetrics(const StreamMetricsSnapshot& metrics) override {
    last_tuples_.store(metrics.tuples_ingested, std::memory_order_relaxed);
    ticks_.fetch_add(1, std::memory_order_relaxed);
  }
  int ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t last_tuples() const {
    return last_tuples_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> ticks_{0};
  std::atomic<uint64_t> last_tuples_{0};
};

TEST(ServiceTelemetryTest, PeriodicExporterFiresOnMetricsAndWritesJson) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  namespace fs = std::filesystem;
  const std::string json_path =
      ::testing::TempDir() + "/sns_telemetry_export.jsonl";
  fs::remove(json_path);

  ServiceOptions runtime;
  runtime.shards = 1;
  runtime.metrics.enabled = true;
  runtime.metrics.export_interval_ms = 20;
  runtime.metrics.json_path = json_path;
  TickCountingSink sink;
  {
    SnsService service(runtime);
    DataStream stream = SmallStream(300, 13);
    const auto [warm, live] = SplitWarmup(stream, options);
    ASSERT_TRUE(service.CreateStream("s", {6, 5}, options).ok());
    ASSERT_TRUE(service.Find("s")->AddSink(&sink).ok());
    ASSERT_TRUE(service.Warmup("s", warm).ok());
    ASSERT_TRUE(service.Initialize("s").ok());
    ASSERT_TRUE(service.Ingest("s", live).ok());
    // Several export intervals while the stream idles.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (sink.ticks() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    service.Shutdown();  // Stops the exporter before the shards.
  }
  EXPECT_GE(sink.ticks(), 2);
  EXPECT_GT(sink.last_tuples(), 0u);

  // The capture file holds one JSON object per line.
  std::ifstream file(json_path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ingest_latency_ns\""), std::string::npos);
    EXPECT_NE(line.find("\"streams\""), std::string::npos);
  }
  EXPECT_GE(lines, 2);
  fs::remove(json_path);
}

// --- Differential: telemetry does not perturb factor state ----------------

std::vector<double> FactorState(SnsService& service,
                                const std::string& name) {
  return service
      .Query(name,
             [](const StreamHandle& handle) {
               std::vector<double> out;
               for (int mode = 0; mode < handle.num_modes(); ++mode) {
                 const int64_t rows =
                     mode + 1 == handle.num_modes()
                         ? handle.window_size()
                         : handle.mode_dims()[static_cast<size_t>(mode)];
                 for (int64_t row = 0; row < rows; ++row) {
                   const FactorRowView view =
                       handle.FactorRow(mode, row).value();
                   out.insert(out.end(), view.begin(), view.end());
                 }
               }
               return out;
             })
      .value();
}

TEST(ServiceTelemetryTest, EnablingTelemetryKeepsFactorStateBitwise) {
  const ContinuousCpdOptions options = SmallEngineOptions();
  const DataStream stream = SmallStream(600, 21);
  const auto [warm, live] = SplitWarmup(stream, options);

  for (const int shards : {0, 1, 4}) {
    std::vector<std::vector<double>> states;  // [metrics off, metrics on]
    for (const bool enabled : {false, true}) {
      ServiceOptions runtime;
      runtime.shards = shards;
      runtime.metrics.enabled = enabled;
      SnsService service(runtime);
      ASSERT_TRUE(service.CreateStream("s", {6, 5}, options).ok());
      ASSERT_TRUE(service.Warmup("s", warm).ok());
      ASSERT_TRUE(service.Initialize("s").ok());
      std::vector<Ticket> tickets;
      const size_t sizes[] = {1, 16, 7, 33};
      size_t next_size = 0;
      for (size_t offset = 0; offset < live.size();) {
        const size_t n =
            std::min(sizes[next_size++ % 4], live.size() - offset);
        tickets.push_back(service.IngestAsync("s", live.subspan(offset, n)));
        offset += n;
      }
      service.Drain();
      for (const Ticket& ticket : tickets) {
        ASSERT_TRUE(ticket.Wait().ok());
      }
      states.push_back(FactorState(service, "s"));
      if (enabled) {
        EXPECT_GT(service.Metrics().value().ingest_latency_ns.count, 0u);
      }
      service.Shutdown();
    }
    ASSERT_EQ(states[0].size(), states[1].size()) << "shards " << shards;
    for (size_t i = 0; i < states[0].size(); ++i) {
      // Bitwise: telemetry must not reorder or alter a single operation.
      EXPECT_EQ(states[0][i], states[1][i])
          << "shards " << shards << " index " << i;
    }
  }
}

}  // namespace
}  // namespace sns
