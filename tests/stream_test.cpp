// Tests for the continuous tensor model (Algorithm 1) and the conventional
// periodic window, including the brute-force D(t, W) equivalence property.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/continuous_window.h"
#include "stream/data_stream.h"
#include "stream/periodic_window.h"

namespace sns {
namespace {

// Brute-force D(t, W) from Definitions 3-4: tuple t_n is active iff
// t_n ∈ (t − WT, t], and sits at 0-based time index W−1−⌊(t−t_n)/T⌋.
SparseTensor BruteForceWindow(const std::vector<Tuple>& tuples,
                              const std::vector<int64_t>& mode_dims, int w_size,
                              int64_t period, int64_t now) {
  std::vector<int64_t> dims = mode_dims;
  dims.push_back(w_size);
  SparseTensor window(dims);
  for (const Tuple& tuple : tuples) {
    if (tuple.time > now) continue;
    const int64_t age = (now - tuple.time) / period;
    if (age >= w_size) continue;
    window.Add(tuple.index.WithAppended(w_size - 1 - static_cast<int32_t>(age)),
               tuple.value);
  }
  return window;
}

bool TensorsEqual(const SparseTensor& a, const SparseTensor& b,
                  double tol = 1e-9) {
  if (a.nnz() != b.nnz()) return false;
  bool equal = true;
  a.ForEachNonzero([&](const ModeIndex& index, double value) {
    if (std::fabs(b.Get(index) - value) > tol) equal = false;
  });
  return equal;
}

TEST(DataStreamTest, AppendValidations) {
  DataStream stream({3, 4});
  EXPECT_TRUE(stream.Append({{1, 2}, 1.0, 10}).ok());
  EXPECT_FALSE(stream.Append({{1}, 1.0, 11}).ok());       // Arity.
  EXPECT_FALSE(stream.Append({{3, 0}, 1.0, 11}).ok());    // Range.
  EXPECT_FALSE(stream.Append({{0, 0}, 1.0, 5}).ok());     // Time regression.
  EXPECT_EQ(stream.size(), 1);
  EXPECT_EQ(stream.start_time(), 10);
}

TEST(ContinuousWindowTest, ArrivalAddsToNewestSlice) {
  ContinuousTensorWindow window({4, 4}, /*window_size=*/3, /*period=*/10);
  WindowDelta delta = window.Ingest({{1, 2}, 5.0, 100});
  EXPECT_EQ(delta.kind, EventKind::kArrival);
  ASSERT_EQ(delta.cells.size(), 1u);
  EXPECT_EQ(delta.cells[0].index, (ModeIndex{1, 2, 2}));
  EXPECT_EQ(delta.cells[0].delta, 5.0);
  EXPECT_EQ(window.tensor().Get({1, 2, 2}), 5.0);
  EXPECT_EQ(window.NextScheduledTime(), 110);
}

TEST(ContinuousWindowTest, SlideMovesValueBackOneSlice) {
  ContinuousTensorWindow window({4, 4}, 3, 10);
  window.Ingest({{1, 2}, 5.0, 100});
  WindowDelta slide = window.PopScheduled();
  EXPECT_EQ(slide.kind, EventKind::kSlide);
  EXPECT_EQ(slide.w, 1);
  EXPECT_EQ(slide.time, 110);
  ASSERT_EQ(slide.cells.size(), 2u);
  EXPECT_EQ(slide.cells[0].index, (ModeIndex{1, 2, 2}));
  EXPECT_EQ(slide.cells[0].delta, -5.0);
  EXPECT_EQ(slide.cells[1].index, (ModeIndex{1, 2, 1}));
  EXPECT_EQ(slide.cells[1].delta, 5.0);
  EXPECT_EQ(window.tensor().Get({1, 2, 2}), 0.0);
  EXPECT_EQ(window.tensor().Get({1, 2, 1}), 5.0);
}

TEST(ContinuousWindowTest, TupleExpiresAfterWSlides) {
  ContinuousTensorWindow window({2, 2}, 3, 10);
  window.Ingest({{0, 1}, 2.0, 50});
  // Slides at 60, 70; expiry at 80. W+1 = 4 events total including arrival.
  WindowDelta s1 = window.PopScheduled();
  WindowDelta s2 = window.PopScheduled();
  WindowDelta s3 = window.PopScheduled();
  EXPECT_EQ(s1.kind, EventKind::kSlide);
  EXPECT_EQ(s2.kind, EventKind::kSlide);
  EXPECT_EQ(s3.kind, EventKind::kExpiry);
  EXPECT_EQ(s3.time, 80);
  ASSERT_EQ(s3.cells.size(), 1u);
  EXPECT_EQ(s3.cells[0].index, (ModeIndex{0, 1, 0}));
  EXPECT_EQ(s3.cells[0].delta, -2.0);
  EXPECT_EQ(window.tensor().nnz(), 0);
  EXPECT_FALSE(window.HasScheduled());
}

TEST(ContinuousWindowTest, ZeroValueTupleIsNoOp) {
  ContinuousTensorWindow window({2, 2}, 3, 10);
  WindowDelta delta = window.Ingest({{0, 0}, 0.0, 5});
  EXPECT_TRUE(delta.cells.empty());
  EXPECT_FALSE(window.HasScheduled());
}

TEST(ContinuousWindowTest, OverlappingTuplesAccumulate) {
  ContinuousTensorWindow window({2, 2}, 2, 10);
  window.Ingest({{0, 0}, 1.0, 10});
  window.Ingest({{0, 0}, 2.0, 12});
  EXPECT_EQ(window.tensor().Get({0, 0, 1}), 3.0);
  // First tuple slides at 20, second at 22.
  window.AdvanceTo(20);
  EXPECT_EQ(window.tensor().Get({0, 0, 1}), 2.0);
  EXPECT_EQ(window.tensor().Get({0, 0, 0}), 1.0);
  window.AdvanceTo(22);
  EXPECT_EQ(window.tensor().Get({0, 0, 1}), 0.0);
  EXPECT_EQ(window.tensor().Get({0, 0, 0}), 3.0);
}

TEST(ContinuousWindowTest, IngestCheckedValidates) {
  ContinuousTensorWindow window({2, 2}, 2, 10);
  WindowDelta delta;
  EXPECT_TRUE(window.IngestChecked({{1, 1}, 1.0, 10}, &delta).ok());
  EXPECT_FALSE(window.IngestChecked({{2, 0}, 1.0, 11}, nullptr).ok());
  EXPECT_FALSE(window.IngestChecked({{0}, 1.0, 11}, nullptr).ok());
  EXPECT_FALSE(window.IngestChecked({{0, 0}, 1.0, 5}, nullptr).ok());
  // Scheduled slide at 20 must be drained before ingesting at 25.
  EXPECT_FALSE(window.IngestChecked({{0, 0}, 1.0, 25}, nullptr).ok());
  window.AdvanceTo(25);
  EXPECT_TRUE(window.IngestChecked({{0, 0}, 1.0, 25}, nullptr).ok());
}

TEST(ContinuousWindowTest, EventCountMatchesTheorem1) {
  // Each tuple causes exactly W+1 events (1 arrival + W scheduled).
  const int w_size = 4;
  ContinuousTensorWindow window({3, 3}, w_size, 5);
  int scheduled_events = 0;
  for (int i = 0; i < 10; ++i) {
    window.AdvanceTo(i * 3,
                     [&](const WindowDelta&) { ++scheduled_events; });
    window.Ingest({{static_cast<int32_t>(i % 3), 0}, 1.0, i * 3});
  }
  window.AdvanceTo(std::numeric_limits<int64_t>::max(),
                   [&](const WindowDelta&) { ++scheduled_events; });
  EXPECT_EQ(scheduled_events, 10 * w_size);
}

// The central property: replaying any random stream through Algorithm 1
// yields exactly D(t, W) at every instant.
class ContinuousWindowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContinuousWindowPropertyTest, MatchesBruteForceWindow) {
  Rng rng(1000 + GetParam());
  const std::vector<int64_t> mode_dims = {4, 3};
  const int w_size = 1 + GetParam() % 5;
  const int64_t period = 3 + GetParam() % 7;

  ContinuousTensorWindow window(mode_dims, w_size, period);
  std::vector<Tuple> history;
  int64_t now = 0;

  for (int step = 0; step < 400; ++step) {
    now += rng.UniformInt(0, 4);
    if (rng.UniformDouble() < 0.8) {
      Tuple tuple{{static_cast<int32_t>(rng.UniformInt(0, 3)),
                   static_cast<int32_t>(rng.UniformInt(0, 2))},
                  static_cast<double>(rng.UniformInt(1, 5)), now};
      window.AdvanceTo(now);
      window.Ingest(tuple);
      history.push_back(tuple);
    } else {
      window.AdvanceTo(now);
    }
    SparseTensor expected =
        BruteForceWindow(history, mode_dims, w_size, period, now);
    ASSERT_TRUE(TensorsEqual(window.tensor(), expected))
        << "step " << step << " now " << now;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, ContinuousWindowPropertyTest,
                         ::testing::Range(0, 10));

TEST(PeriodicWindowTest, UnitsCloseAtBoundaries) {
  PeriodicTensorWindow window({2, 2}, /*window_size=*/2, /*period=*/10);
  window.AddTuple({{0, 0}, 1.0, 3});
  window.AddTuple({{0, 1}, 2.0, 10});  // Still unit (0, 10].
  window.AddTuple({{1, 1}, 4.0, 11});  // Forces closing unit (0, 10].
  EXPECT_EQ(window.num_units(), 1);
  window.CloseUpTo(20);
  EXPECT_EQ(window.num_units(), 2);

  SparseTensor tensor = window.WindowTensor();
  EXPECT_EQ(tensor.Get({0, 0, 0}), 1.0);
  EXPECT_EQ(tensor.Get({0, 1, 0}), 2.0);
  EXPECT_EQ(tensor.Get({1, 1, 1}), 4.0);
}

TEST(PeriodicWindowTest, OldestUnitDropsBeyondW) {
  PeriodicTensorWindow window({2, 2}, 2, 10);
  window.AddTuple({{0, 0}, 1.0, 5});
  window.CloseUpTo(30);  // Units (0,10], (10,20], (20,30] -> first dropped.
  EXPECT_EQ(window.num_units(), 2);
  EXPECT_EQ(window.WindowTensor().nnz(), 0);
}

TEST(PeriodicWindowTest, NewestUnitExtraction) {
  PeriodicTensorWindow window({3, 3}, 3, 10);
  window.AddTuple({{2, 2}, 7.0, 15});
  window.CloseUpTo(20);
  SparseTensor unit = window.NewestUnit();
  EXPECT_EQ(unit.num_modes(), 2);
  EXPECT_EQ(unit.Get({2, 2}), 7.0);
}

TEST(PeriodicWindowTest, AggregationSumsWithinPeriod) {
  PeriodicTensorWindow window({2, 2}, 2, 10);
  window.AddTuple({{1, 0}, 1.0, 11});
  window.AddTuple({{1, 0}, 2.5, 15});
  window.AddTuple({{1, 0}, 0.5, 20});
  window.CloseUpTo(20);
  EXPECT_EQ(window.NewestUnit().Get({1, 0}), 4.0);
}

// Consistency at boundaries: the continuous window evaluated exactly at a
// period boundary must match the conventional window (same partitioning).
TEST(PeriodicWindowTest, ContinuousEqualsPeriodicAtBoundaries) {
  Rng rng(77);
  const std::vector<int64_t> mode_dims = {3, 3};
  const int w_size = 3;
  const int64_t period = 10;

  ContinuousTensorWindow continuous(mode_dims, w_size, period);
  PeriodicTensorWindow periodic(mode_dims, w_size, period);

  int64_t now = 1;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 200; ++i) {
    now += rng.UniformInt(0, 2);
    tuples.push_back({{static_cast<int32_t>(rng.UniformInt(0, 2)),
                       static_cast<int32_t>(rng.UniformInt(0, 2))},
                      1.0, now});
  }
  size_t fed = 0;
  for (int64_t boundary = period; boundary <= now + period;
       boundary += period) {
    while (fed < tuples.size() && tuples[fed].time <= boundary) {
      continuous.AdvanceTo(tuples[fed].time);
      continuous.Ingest(tuples[fed]);
      periodic.AddTuple(tuples[fed]);
      ++fed;
    }
    continuous.AdvanceTo(boundary);
    periodic.CloseUpTo(boundary);
    ASSERT_TRUE(
        TensorsEqual(continuous.tensor(), periodic.WindowTensor()))
        << "boundary " << boundary;
  }
}

}  // namespace
}  // namespace sns
