// Unit tests for the common runtime: Status, Rng, CSV parsing.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "api/service_options.h"
#include "api/stream_health.h"
#include "common/csv.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace sns {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("rank must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: rank must be positive");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    SNS_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too big");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) differences += (a.Next() != b.Next());
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextUint64(17), 17u);
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(17);
  for (double mean : {0.5, 4.0, 80.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(100, 13);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 13u);
    for (size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(5, 9);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementIsApproximatelyUniform) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) counts[idx]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(CsvTest, SplitLineBasicAndEmptyFields) {
  auto fields = SplitLine("a,b,,d", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
}

TEST(CsvTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("-42").value(), -42);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(CsvTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(CsvTest, RoundTripFile) {
  const std::string path = ::testing::TempDir() + "/sns_csv_test.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDelimitedFile(path, ',', {{"1", "2", "3.5"}, {"4", "5", "6"}})
                  .ok());
  auto rows = ReadDelimitedFile(path, ',', /*skip_header=*/false);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][2], "3.5");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto rows = ReadDelimitedFile("/nonexistent/path.csv", ',', false);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIOError);
}

TEST(StopwatchTest, MeasuresNonNegativeIncreasingTime) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

// --- Status taxonomy (self-healing additions) ------------------------------

TEST(StatusTest, DeadlineExceededAndUnavailableFactories) {
  const Status deadline = Status::DeadlineExceeded("push timed out");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: push timed out");

  const Status unavailable = Status::Unavailable("quarantined");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: quarantined");
}

TEST(StatusTest, StatusCodeNameCoversEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, IsRetryableSeparatesTransientFromPermanent) {
  // Transient: the same call can succeed later.
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(StatusCode::kIOError));
  // Permanent verdicts.
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kDataLoss));
}

TEST(StatusTest, TaxonomyIsExhaustivePerCode) {
  // One switch over every enumerator — no default — so adding a StatusCode
  // without extending this test is a -Wswitch build warning here and an
  // SNS_CHECK abort in StatusCodeName/IsRetryable. For each code the row
  // pins: a factory producing it, its display name, and its retryability.
  for (int raw = 0; raw < kStatusCodeCount; ++raw) {
    const StatusCode code = static_cast<StatusCode>(raw);
    Status made;
    const char* expected_name = nullptr;
    bool expected_retryable = false;
    switch (code) {
      case StatusCode::kOk:
        made = Status::OK();
        expected_name = "OK";
        expected_retryable = false;
        break;
      case StatusCode::kInvalidArgument:
        made = Status::InvalidArgument("m");
        expected_name = "InvalidArgument";
        expected_retryable = false;
        break;
      case StatusCode::kNotFound:
        made = Status::NotFound("m");
        expected_name = "NotFound";
        expected_retryable = false;
        break;
      case StatusCode::kOutOfRange:
        made = Status::OutOfRange("m");
        expected_name = "OutOfRange";
        expected_retryable = false;
        break;
      case StatusCode::kFailedPrecondition:
        made = Status::FailedPrecondition("m");
        expected_name = "FailedPrecondition";
        expected_retryable = false;
        break;
      case StatusCode::kResourceExhausted:
        made = Status::ResourceExhausted("m");
        expected_name = "ResourceExhausted";
        expected_retryable = true;
        break;
      case StatusCode::kInternal:
        made = Status::Internal("m");
        expected_name = "Internal";
        expected_retryable = false;
        break;
      case StatusCode::kIOError:
        made = Status::IOError("m");
        expected_name = "IOError";
        expected_retryable = true;
        break;
      case StatusCode::kDataLoss:
        made = Status::DataLoss("m");
        expected_name = "DataLoss";
        expected_retryable = false;
        break;
      case StatusCode::kDeadlineExceeded:
        made = Status::DeadlineExceeded("m");
        expected_name = "DeadlineExceeded";
        expected_retryable = true;
        break;
      case StatusCode::kUnavailable:
        made = Status::Unavailable("m");
        expected_name = "Unavailable";
        expected_retryable = true;
        break;
    }
    ASSERT_NE(expected_name, nullptr) << "code " << raw << " has no row";
    EXPECT_EQ(made.code(), code) << expected_name;
    EXPECT_STREQ(StatusCodeName(code), expected_name);
    EXPECT_EQ(IsRetryable(code), expected_retryable) << expected_name;
    EXPECT_EQ(made.ok(), code == StatusCode::kOk);
  }
}

TEST(StreamHealthTest, NamesCoverEveryState) {
  EXPECT_STREQ(StreamHealthName(StreamHealth::kHealthy), "healthy");
  EXPECT_STREQ(StreamHealthName(StreamHealth::kQuarantined), "quarantined");
  EXPECT_STREQ(StreamHealthName(StreamHealth::kRecovering), "recovering");
  EXPECT_STREQ(StreamHealthName(StreamHealth::kFailed), "failed");
}

TEST(StreamHealthTest, BackoffScheduleIsBoundedJitteredAndDeterministic) {
  RecoveryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 50;
  policy.jitter_seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int64_t backoff = policy.BackoffMs(attempt);
    // Jitter scales the exponential envelope by [0.5, 1.0).
    const double envelope =
        std::min<double>(static_cast<double>(policy.max_backoff_ms),
                         10.0 * std::pow(2.0, attempt - 1));
    EXPECT_GE(backoff, static_cast<int64_t>(envelope * 0.5) - 1);
    EXPECT_LE(backoff, static_cast<int64_t>(envelope));
    EXPECT_EQ(backoff, policy.BackoffMs(attempt));  // Deterministic.
  }
  // Different seeds give different schedules (the fleet-desync property).
  RecoveryPolicy other = policy;
  other.jitter_seed = 43;
  bool any_difference = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    any_difference |= other.BackoffMs(attempt) != policy.BackoffMs(attempt);
  }
  EXPECT_TRUE(any_difference);
}

// Name functions promise to SNS_CHECK-fail on values outside their enums
// instead of returning garbage; pin the abort with death tests.
using NameFunctionDeathTest = ::testing::Test;

TEST(NameFunctionDeathTest, StatusCodeNameAbortsOutsideTheEnum) {
  EXPECT_DEATH(StatusCodeName(static_cast<StatusCode>(255)), "StatusCodeName");
}

TEST(NameFunctionDeathTest, StreamHealthNameAbortsOutsideTheEnum) {
  EXPECT_DEATH(StreamHealthName(static_cast<StreamHealth>(255)),
               "StreamHealthName");
}

TEST(NameFunctionDeathTest, BackpressurePolicyNameAbortsOutsideTheEnum) {
  EXPECT_DEATH(BackpressurePolicyName(static_cast<BackpressurePolicy>(255)),
               "BackpressurePolicyName");
}

}  // namespace
}  // namespace sns
