// Differential tests for the SIMD kernel layer (linalg/simd.h,
// linalg/rank_dispatch.h): every rank-dispatched kernel is pinned to a
// naive scalar reference computed with bounds-checked (i, j) indexing, at
// awkward ranks covering each dispatch specialization (padded ranks
// 4, 8, 12, 16, 20, 24, 32), the generic fallback (padded rank > 32), and
// padded tails of every phase (rank ≡ 0..3 mod 4). Also regression-guards
// the layout invariants: 64-byte-aligned storage, padded leading stride,
// and padding lanes that stay exactly 0.0 through real updater runs.

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/random.h"
#include "core/cpd_state.h"
#include "core/sns_rnd.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/matrix32.h"
#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

// Ranks exercising every specialization (padded 4, 8, 12, 16, 20, 24, 32),
// the generic fallback (40), and every padded-tail residue.
const int64_t kRanks[] = {1, 3, 5, 7, 12, 16, 20, 24, 29, 32, 40};

// Every tier the host can actually run: the generic fallback always, plus
// each compiled-in intrinsic tier the CPU supports. Kernels pinned to these
// tables exercise the real codelets, not the fallback.
std::vector<KernelTier> AvailableTiers() {
  std::vector<KernelTier> tiers = {KernelTier::kGeneric};
  for (const KernelTier t : {KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (KernelTierCompiledIn(t) && KernelTierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

// FMA-bearing codelets drop one rounding per multiply-add: intrinsic tiers
// agree with the scalar reference to ulps, not bitwise.
void ExpectTierValue(KernelTier tier, double actual, double expected) {
  if (tier == KernelTier::kGeneric) {
    ASSERT_EQ(actual, expected);
  } else {
    ASSERT_NEAR(actual, expected, 1e-13 * (1.0 + std::fabs(expected)));
  }
}

class KernelDispatchTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(Ranks, KernelDispatchTest,
                         ::testing::ValuesIn(kRanks));

// ---------------------------------------------------------------------------
// Layout invariants.

TEST(SimdLayoutTest, PaddedRankRoundsUpToMultipleOfFour) {
  EXPECT_EQ(PaddedRank(0), 0);
  EXPECT_EQ(PaddedRank(1), 4);
  EXPECT_EQ(PaddedRank(4), 4);
  EXPECT_EQ(PaddedRank(5), 8);
  EXPECT_EQ(PaddedRank(20), 20);
  EXPECT_EQ(PaddedRank(33), 36);
}

TEST_P(KernelDispatchTest, MatrixLayoutAlignedAndPadded) {
  const int64_t rank = GetParam();
  Rng rng(1);
  Matrix m = Matrix::RandomUniform(7, rank, rng);
  EXPECT_EQ(m.stride(), PaddedRank(rank));
  EXPECT_GE(m.stride(), m.cols());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(0)) % kSimdByteAlignment, 0u);
  // Every row is at least one vector lane (32 bytes) aligned.
  for (int64_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(i)) %
                  (kRankPadDoubles * sizeof(double)),
              0u);
  }
  EXPECT_TRUE(m.PaddingIsZero());
}

TEST(SimdLayoutTest, AlignedVectorZeroPadsAndAligns) {
  AlignedVector v(5, 3.0);
  EXPECT_EQ(v.size(), 5);
  EXPECT_EQ(v.padded_size(), 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kSimdByteAlignment, 0u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 3.0);
  EXPECT_TRUE(v.PaddingIsZero());
  // Resize within capacity is value-preserving; across capacity reallocates
  // zero-initialized.
  v.Resize(6);
  EXPECT_EQ(v.padded_size(), 8);
  EXPECT_EQ(v[0], 3.0);
  // A shrink within the same padded bucket must re-zero the lanes leaving
  // the logical range — they become padding.
  v[5] = 7.0;
  v.Resize(5);
  EXPECT_EQ(v.padded_size(), 8);
  EXPECT_TRUE(v.PaddingIsZero());
  v.Resize(9);
  EXPECT_EQ(v.padded_size(), 12);
  EXPECT_TRUE(v.PaddingIsZero());
}

TEST(SimdLayoutTest, MatrixFillLeavesPaddingZero) {
  Matrix m(3, 5);
  m.Fill(7.5);
  EXPECT_TRUE(m.PaddingIsZero());
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 5; ++j) EXPECT_EQ(m(i, j), 7.5);
  }
}

TEST(SimdLayoutTest, ForEachEntryNeverExposesPadding) {
  Rng rng(2);
  Matrix m = Matrix::RandomNormal(4, 5, rng);
  int64_t visits = 0;
  m.ForEachEntry([&](int64_t i, int64_t j, double value) {
    EXPECT_EQ(value, m(i, j));
    ++visits;
  });
  EXPECT_EQ(visits, 4 * 5);
}

// ---------------------------------------------------------------------------
// Elementwise matrix kernels vs (i, j)-indexed references. Bitwise: the
// kernels perform the same per-entry arithmetic.

TEST_P(KernelDispatchTest, HadamardKernelsMatchNaive) {
  const int64_t rank = GetParam();
  Rng rng(10 + rank);
  Matrix a = Matrix::RandomNormal(rank, rank, rng);
  Matrix b = Matrix::RandomNormal(rank, rank, rng);

  Matrix out(rank, rank);
  HadamardInto(a, b, out);
  Matrix acc = a;
  HadamardAccumulate(acc, b);
  for (int64_t i = 0; i < rank; ++i) {
    for (int64_t j = 0; j < rank; ++j) {
      ASSERT_EQ(out(i, j), a(i, j) * b(i, j));
      ASSERT_EQ(acc(i, j), a(i, j) * b(i, j));
    }
  }
  EXPECT_TRUE(out.PaddingIsZero());
  EXPECT_TRUE(acc.PaddingIsZero());
}

TEST_P(KernelDispatchTest, AddOuterProductMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(20 + rank);
  const Matrix base = Matrix::RandomNormal(rank, rank, rng);
  AlignedVector u(rank), v(rank);
  for (int64_t r = 0; r < rank; ++r) {
    u[r] = rng.Normal();
    v[r] = rng.Normal();
  }
  for (const KernelTier tier : AvailableTiers()) {
    SCOPED_TRACE(KernelTierName(tier));
    Matrix dst = base;
    AddOuterProduct(dst, u.data(), v.data(),
                    GetRankKernelTable(dst.stride(), tier));
    for (int64_t i = 0; i < rank; ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        ExpectTierValue(tier, dst(i, j), base(i, j) + u[i] * v[j]);
      }
    }
    EXPECT_TRUE(dst.PaddingIsZero());
  }
}

TEST_P(KernelDispatchTest, MultiplyTransposeAIntoMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(30 + rank);
  Matrix a = Matrix::RandomNormal(9, rank, rng);
  Matrix b = Matrix::RandomNormal(9, rank, rng);
  Matrix out(rank, rank);
  out.Fill(99.0);  // Must be fully overwritten.
  MultiplyTransposeAInto(a, b, out);
  for (int64_t i = 0; i < rank; ++i) {
    for (int64_t j = 0; j < rank; ++j) {
      double sum = 0.0;
      for (int64_t k = 0; k < 9; ++k) sum += a(k, i) * b(k, j);
      ASSERT_NEAR(out(i, j), sum, 1e-12 * (1.0 + std::fabs(sum)));
    }
  }
  EXPECT_TRUE(out.PaddingIsZero());
}

// ---------------------------------------------------------------------------
// Gram rank-1 updates.

TEST_P(KernelDispatchTest, GramRowUpdatesMatchNaive) {
  const int64_t rank = GetParam();
  Rng rng(40 + rank);
  const Matrix base = Matrix::RandomNormal(rank, rank, rng);
  AlignedVector old_row(rank), new_row(rank);
  for (int64_t r = 0; r < rank; ++r) {
    old_row[r] = rng.Normal();
    new_row[r] = rng.Normal();
  }

  for (const KernelTier tier : AvailableTiers()) {
    SCOPED_TRACE(KernelTierName(tier));
    Matrix gram = base;
    Matrix prev_gram = base;
    const RankKernelTable& kr = GetRankKernelTable(gram.stride(), tier);
    ApplyGramRowUpdate(gram, old_row.data(), new_row.data(), kr);
    ApplyPrevGramRowUpdate(prev_gram, old_row.data(), new_row.data(), kr);
    for (int64_t i = 0; i < rank; ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        // Group like the kernel: g += (a·b − p·p), not (g + a·b) − p·p.
        const double gram_delta =
            new_row[i] * new_row[j] - old_row[i] * old_row[j];
        ExpectTierValue(tier, gram(i, j), base(i, j) + gram_delta);
        const double prev_delta = old_row[i] * (new_row[j] - old_row[j]);
        ExpectTierValue(tier, prev_gram(i, j), base(i, j) + prev_delta);
      }
    }
    EXPECT_TRUE(gram.PaddingIsZero());
    EXPECT_TRUE(prev_gram.PaddingIsZero());
  }
}

// ---------------------------------------------------------------------------
// Every RankKernelTable entry point, per available tier, against a scalar
// reference. Elementwise kernels (fill/copy/mul/mul_accum and the widening
// mul_accum_f32) are bitwise on every tier — same per-entry arithmetic;
// FMA-bearing kernels (axpy/fma3/dot/gram deltas/fma3_f32) are bitwise on
// the generic tier and ulp-tight on the intrinsic ones.

TEST_P(KernelDispatchTest, TableKernelsMatchNaivePerTier) {
  const int64_t rank = GetParam();
  const int64_t padded = PaddedRank(rank);
  Rng rng(110 + rank);
  AlignedVector a(rank), b(rank);
  for (int64_t r = 0; r < rank; ++r) {
    a[r] = rng.Normal();
    b[r] = rng.Normal();
  }
  // Pre-quantized rows + float32 mirrors for the f32 kernels.
  Matrix aq(1, rank), bq(1, rank);
  for (int64_t r = 0; r < rank; ++r) {
    aq(0, r) = static_cast<double>(static_cast<float>(a[r]));
    bq(0, r) = static_cast<double>(static_cast<float>(b[r]));
  }
  Matrix32 a32(1, rank), b32(1, rank);
  a32.AssignFromDouble(aq);
  b32.AssignFromDouble(bq);

  AlignedVector out(rank), scratch(rank);
  for (const KernelTier tier : AvailableTiers()) {
    SCOPED_TRACE(KernelTierName(tier));
    const RankKernelTable& kr = GetRankKernelTable(padded, tier);
    // Specialized table for padded ranks <= 32, runtime-bound (sentinel 0)
    // beyond.
    ASSERT_EQ(kr.padded_rank, padded <= 32 ? padded : 0);

    kr.fill(out.data(), 1.75, padded);
    for (int64_t r = 0; r < padded; ++r) ASSERT_EQ(out[r], 1.75);

    kr.copy(a.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) ASSERT_EQ(out[r], a[r]);

    kr.copy(b.data(), out.data(), padded);
    kr.axpy(1.3, a.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ExpectTierValue(tier, out[r], b[r] + 1.3 * a[r]);
    }

    kr.mul(a.data(), b.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) ASSERT_EQ(out[r], a[r] * b[r]);

    kr.copy(a.data(), out.data(), padded);
    kr.mul_accum(out.data(), b.data(), padded);
    for (int64_t r = 0; r < rank; ++r) ASSERT_EQ(out[r], a[r] * b[r]);

    kr.copy(b.data(), out.data(), padded);
    kr.fma3(0.77, a.data(), a.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ExpectTierValue(tier, out[r], b[r] + 0.77 * (a[r] * a[r]));
    }

    // Dot reference replicating the fixed four-lane reduction grouping
    // every tier's contract is based on.
    {
      const int64_t m4 = padded - padded % 4;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int64_t r = 0; r < m4; r += 4) {
        s0 += a.data()[r] * b.data()[r];
        s1 += a.data()[r + 1] * b.data()[r + 1];
        s2 += a.data()[r + 2] * b.data()[r + 2];
        s3 += a.data()[r + 3] * b.data()[r + 3];
      }
      const double expected = (s0 + s2) + (s1 + s3);
      ExpectTierValue(tier, kr.dot(a.data(), b.data(), padded), expected);
    }

    kr.copy(b.data(), out.data(), padded);
    kr.gram_row_delta(a[0], a.data(), b[0], b.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ExpectTierValue(tier, out[r], b[r] + (a[0] * a[r] - b[0] * b[r]));
    }

    kr.copy(b.data(), out.data(), padded);
    kr.scaled_diff_accum(1.1, a.data(), b.data(), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ExpectTierValue(tier, out[r], b[r] + 1.1 * (a[r] - b[r]));
    }

    kr.copy(aq.Row(0), out.data(), padded);
    kr.mul_accum_f32(out.data(), b32.Row(0), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ASSERT_EQ(out[r], aq(0, r) * bq(0, r));
    }

    kr.fill(out.data(), 0.25, padded);
    kr.fma3_f32(1.5, a32.Row(0), b32.Row(0), out.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      ExpectTierValue(tier, out[r], 0.25 + 1.5 * (aq(0, r) * bq(0, r)));
    }
  }
}

// ---------------------------------------------------------------------------
// Hadamard row product + MTTKRP rows vs a std::map tensor reference.

TEST_P(KernelDispatchTest, HadamardRowProductMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(50 + rank);
  std::vector<Matrix> factors;
  const std::vector<int64_t> dims = {4, 5, 3};
  for (int64_t d : dims) {
    factors.push_back(Matrix::RandomNormal(d, rank, rng));
  }
  AlignedVector out(rank);
  const ModeIndex index{2, 4, 1};
  for (int skip = -1; skip < 3; ++skip) {
    HadamardRowProduct(factors, index, skip, out.data());
    for (int64_t r = 0; r < rank; ++r) {
      double expected = 1.0;
      for (int m = 0; m < 3; ++m) {
        if (m == skip) continue;
        expected *= factors[static_cast<size_t>(m)](index[m], r);
      }
      ASSERT_EQ(out[r], expected) << "skip " << skip << " r " << r;
    }
    EXPECT_TRUE(out.PaddingIsZero()) << "skip " << skip;
  }
}

// Builds a small random sparse tensor plus a std::map mirror.
SparseTensor RandomTensor(const std::vector<int64_t>& dims, int64_t nnz,
                          Rng& rng,
                          std::map<std::vector<int32_t>, double>* mirror) {
  SparseTensor x(dims);
  for (int64_t k = 0; k < nnz; ++k) {
    ModeIndex index;
    std::vector<int32_t> key;
    for (int64_t d : dims) {
      const auto i = static_cast<int32_t>(rng.UniformInt(0, d - 1));
      index.PushBack(i);
      key.push_back(i);
    }
    const double v = rng.Normal();
    x.Add(index, v);
    (*mirror)[key] += v;
  }
  return x;
}

TEST_P(KernelDispatchTest, MttkrpRow3ModeFusedMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(60 + rank);
  const std::vector<int64_t> dims = {6, 5, 4};
  std::map<std::vector<int32_t>, double> mirror;
  SparseTensor x = RandomTensor(dims, 40, rng, &mirror);
  std::vector<Matrix> factors;
  for (int64_t d : dims) {
    factors.push_back(Matrix::RandomNormal(d, rank, rng));
  }

  AlignedVector out(rank);
  for (int mode = 0; mode < 3; ++mode) {
    for (int64_t row = 0; row < dims[static_cast<size_t>(mode)]; ++row) {
      MttkrpRow(x, factors, mode, row, out.data());
      for (int64_t r = 0; r < rank; ++r) {
        double expected = 0.0;
        for (const auto& [key, value] : mirror) {
          if (value == 0.0 || key[static_cast<size_t>(mode)] != row) continue;
          double prod = value;
          for (int m = 0; m < 3; ++m) {
            if (m == mode) continue;
            prod *= factors[static_cast<size_t>(m)](key[static_cast<size_t>(m)],
                                                    r);
          }
          expected += prod;
        }
        ASSERT_NEAR(out[r], expected, 1e-10 * (1.0 + std::fabs(expected)))
            << "mode " << mode << " row " << row << " r " << r;
      }
      EXPECT_TRUE(out.PaddingIsZero());
    }
  }
}

TEST_P(KernelDispatchTest, MttkrpRow4ModeGenericMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(70 + rank);
  const std::vector<int64_t> dims = {4, 3, 3, 4};
  std::map<std::vector<int32_t>, double> mirror;
  SparseTensor x = RandomTensor(dims, 50, rng, &mirror);
  std::vector<Matrix> factors;
  for (int64_t d : dims) {
    factors.push_back(Matrix::RandomNormal(d, rank, rng));
  }

  AlignedVector out(rank), had(rank);
  for (int mode = 0; mode < 4; ++mode) {
    for (int64_t row = 0; row < dims[static_cast<size_t>(mode)]; ++row) {
      MttkrpRow(x, factors, mode, row, out.data(), had.data());
      for (int64_t r = 0; r < rank; ++r) {
        double expected = 0.0;
        for (const auto& [key, value] : mirror) {
          if (value == 0.0 || key[static_cast<size_t>(mode)] != row) continue;
          double prod = value;
          for (int m = 0; m < 4; ++m) {
            if (m == mode) continue;
            prod *= factors[static_cast<size_t>(m)](key[static_cast<size_t>(m)],
                                                    r);
          }
          expected += prod;
        }
        ASSERT_NEAR(out[r], expected, 1e-10 * (1.0 + std::fabs(expected)));
      }
      EXPECT_TRUE(out.PaddingIsZero());
      EXPECT_TRUE(had.PaddingIsZero());
    }
  }
}

TEST_P(KernelDispatchTest, MttkrpIntoMatchesRowKernel) {
  const int64_t rank = GetParam();
  Rng rng(80 + rank);
  const std::vector<int64_t> dims = {6, 5, 4};
  std::map<std::vector<int32_t>, double> mirror;
  SparseTensor x = RandomTensor(dims, 40, rng, &mirror);
  std::vector<Matrix> factors;
  for (int64_t d : dims) {
    factors.push_back(Matrix::RandomNormal(d, rank, rng));
  }
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix full = Mttkrp(x, factors, mode);
    EXPECT_TRUE(full.PaddingIsZero());
    AlignedVector row_out(rank);
    for (int64_t row = 0; row < dims[static_cast<size_t>(mode)]; ++row) {
      MttkrpRow(x, factors, mode, row, row_out.data());
      for (int64_t r = 0; r < rank; ++r) {
        // Same kernels, different entry order (pool vs slice order):
        // tolerance, not bitwise.
        ASSERT_NEAR(full(row, r), row_out[r],
                    1e-10 * (1.0 + std::fabs(row_out[r])));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cholesky solve vs a naive textbook substitution on (i, j) indexing.

TEST_P(KernelDispatchTest, CholeskySolveMatchesNaiveSubstitution) {
  const int64_t n = GetParam();
  Rng rng(90 + n);
  Matrix b = Matrix::RandomNormal(2 * n, n, rng);
  Matrix spd = MultiplyTransposeA(b, b);
  for (int64_t i = 0; i < n; ++i) spd(i, i) += 1.0;

  Matrix lower(n, n);
  ASSERT_TRUE(CholeskyFactorizeInto(spd, lower));
  EXPECT_TRUE(lower.PaddingIsZero());

  AlignedVector rhs(n), x(n);
  for (int64_t i = 0; i < n; ++i) rhs[i] = rng.Normal();

  // Kernel path.
  for (int64_t i = 0; i < n; ++i) x[i] = rhs[i];
  CholeskySolveInPlace(lower, x.data());

  // Naive textbook forward/back substitution.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double sum = rhs[i];
    for (int64_t k = 0; k < i; ++k) sum -= lower(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = sum / lower(i, i);
  }
  std::vector<double> z(y);
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = z[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      sum -= lower(k, i) * z[static_cast<size_t>(k)];
    }
    z[static_cast<size_t>(i)] = sum / lower(i, i);
  }
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[i], z[static_cast<size_t>(i)],
                1e-9 * (1.0 + std::fabs(z[static_cast<size_t>(i)])));
  }
  EXPECT_TRUE(x.PaddingIsZero());
}

// The hot-path U'U (row-suffix) factorization agrees with the textbook
// lower factorization: U = L' up to rounding, and both solves recover the
// same solution.
TEST_P(KernelDispatchTest, UpperCholeskyMatchesLowerFactorization) {
  const int64_t n = GetParam();
  Rng rng(95 + n);
  Matrix b = Matrix::RandomNormal(2 * n, n, rng);
  Matrix spd = MultiplyTransposeA(b, b);
  for (int64_t i = 0; i < n; ++i) spd(i, i) += 1.0;

  Matrix lower(n, n), upper(n, n);
  ASSERT_TRUE(CholeskyFactorizeInto(spd, lower));
  ASSERT_TRUE(CholeskyFactorizeUpperInto(spd, upper));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      ASSERT_NEAR(upper(i, j), lower(j, i),
                  1e-9 * (1.0 + std::fabs(lower(j, i))))
          << i << "," << j;
    }
  }

  AlignedVector rhs(n), x_lower(n), x_upper(n);
  for (int64_t i = 0; i < n; ++i) {
    rhs[i] = rng.Normal();
    x_lower[i] = rhs[i];
    x_upper[i] = rhs[i];
  }
  CholeskySolveInPlace(lower, x_lower.data());
  CholeskySolveUpperInPlace(upper, x_upper.data());
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x_upper[i], x_lower[i], 1e-8 * (1.0 + std::fabs(x_lower[i])));
  }
  EXPECT_TRUE(upper.PaddingIsZero());
}

// ---------------------------------------------------------------------------
// Coordinate descent vs a naive reimplementation (same update order; tight
// tolerance rather than bitwise — with -march enabling FMA the compiler may
// contract the kernel's dot and this reference loop differently).

TEST_P(KernelDispatchTest, CoordinateDescentRowMatchesNaive) {
  const int64_t rank = GetParam();
  Rng rng(100 + rank);
  Matrix k = Matrix::RandomNormal(2 * rank + 1, rank, rng);
  Matrix hq = MultiplyTransposeA(k, k);
  AlignedVector row(rank), numerator(rank);
  for (int64_t r = 0; r < rank; ++r) {
    row[r] = rng.Normal();
    numerator[r] = rng.Normal();
  }
  std::vector<double> naive_row(row.data(), row.data() + rank);

  CoordinateDescentRow(row.data(), rank, hq, numerator.data(), -2.0, 2.0);

  for (int64_t kk = 0; kk < rank; ++kk) {
    const double c_k = hq(kk, kk);
    if (!(c_k > 1e-300)) continue;
    double d_k = 0.0;
    for (int64_t r = 0; r < rank; ++r) {
      d_k += naive_row[static_cast<size_t>(r)] * hq(kk, r);
    }
    d_k -= naive_row[static_cast<size_t>(kk)] * c_k;
    double value = (numerator[kk] - d_k) / c_k;
    value = std::min(2.0, std::max(-2.0, value));
    naive_row[static_cast<size_t>(kk)] = value;
  }
  for (int64_t r = 0; r < rank; ++r) {
    const double expected = naive_row[static_cast<size_t>(r)];
    ASSERT_NEAR(row[r], expected, 1e-12 * (1.0 + std::fabs(expected)))
        << "r " << r;
  }
  EXPECT_TRUE(row.PaddingIsZero());
}

// ---------------------------------------------------------------------------
// The padding invariant survives real updater runs: after hundreds of
// events through SNS-VEC / SNS+VEC / SNS-RND, every factor and Gram matrix
// still has exactly-zero padding lanes.

SparseTensor DenseWindowFromModel(const KruskalModel& model) {
  std::vector<int64_t> dims;
  for (int m = 0; m < model.num_modes(); ++m) {
    dims.push_back(model.factor(m).rows());
  }
  SparseTensor x(dims);
  ModeIndex index;
  for (size_t m = 0; m < dims.size(); ++m) index.PushBack(0);
  while (true) {
    x.Set(index, model.Evaluate(index));
    int m = static_cast<int>(dims.size()) - 1;
    while (m >= 0) {
      if (++index[m] < dims[static_cast<size_t>(m)]) break;
      index[m] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return x;
}

template <typename UpdaterT>
void RunPaddingInvariantCheck(UpdaterT& updater, int64_t rank,
                              uint64_t seed) {
  Rng rng(seed);
  const int w_size = 4;
  const std::vector<int64_t> dims = {5, 6, w_size};
  KruskalModel model = KruskalModel::Random(dims, rank, rng);
  SparseTensor window = DenseWindowFromModel(model);
  CpdState state(model);

  for (int step = 0; step < 120; ++step) {
    WindowDelta delta;
    delta.kind = EventKind::kArrival;
    delta.w = 0;
    const auto i0 = static_cast<int32_t>(rng.UniformInt(0, dims[0] - 1));
    const auto i1 = static_cast<int32_t>(rng.UniformInt(0, dims[1] - 1));
    const double v = rng.UniformDouble(0.5, 1.5);
    delta.tuple = Tuple{{i0, i1}, v, 0};
    const ModeIndex cell = ModeIndex{i0, i1}.WithAppended(w_size - 1);
    window.Add(cell, v);
    delta.cells.push_back({cell, v});
    updater.OnEvent(window, delta, state);
  }
  for (int m = 0; m < state.num_modes(); ++m) {
    EXPECT_TRUE(state.model.factor(m).PaddingIsZero()) << "factor " << m;
    EXPECT_TRUE(state.grams[static_cast<size_t>(m)].PaddingIsZero())
        << "gram " << m;
  }
}

TEST_P(KernelDispatchTest, PaddingStaysZeroThroughSnsVecEvents) {
  // Cap the rank: the dense differential window is O(Π dims) work per event.
  const int64_t rank = std::min<int64_t>(GetParam(), 20);
  SnsVecUpdater updater;
  RunPaddingInvariantCheck(updater, rank, 0x9add1);
}

TEST_P(KernelDispatchTest, PaddingStaysZeroThroughSnsVecPlusEvents) {
  const int64_t rank = std::min<int64_t>(GetParam(), 20);
  SnsVecPlusUpdater updater(/*clip_bound=*/50.0);
  RunPaddingInvariantCheck(updater, rank, 0x9add2);
}

TEST_P(KernelDispatchTest, PaddingStaysZeroThroughSnsRndEvents) {
  const int64_t rank = std::min<int64_t>(GetParam(), 20);
  SnsRndUpdater updater(/*sample_threshold=*/2, /*seed=*/5);
  RunPaddingInvariantCheck(updater, rank, 0x9add3);
}

}  // namespace
}  // namespace sns
