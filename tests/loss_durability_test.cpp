// Durability of the loss subsystem: the checkpoint version matrix (v1 for
// plain Gaussian streams, v2 once a non-Gaussian loss or robust mode adds
// extended state, typed rejection of anything newer), round-tripping of
// loss/robust configuration and the outlier store through checkpoints, and
// the central differential extended to generalized losses — restore +
// journal replay of a Poisson/Bernoulli/robust stream is BITWISE identical
// to uninterrupted execution for every updater variant and shard count.

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "slicenstitch.h"

namespace sns {
namespace {

namespace fs = std::filesystem;

ContinuousCpdOptions LossEngineOptions(SnsVariant variant, LossKind loss,
                                       bool robust) {
  ContinuousCpdOptions options;
  options.rank = 4;
  options.window_size = 3;
  options.period = 30;
  options.variant = variant;
  options.sample_threshold = 10;
  options.clip_bound = 1000.0;
  options.loss = loss;
  if (robust) {
    options.robust.enabled = true;
    options.robust.threshold = 2.0;
    options.robust.decay = 0.5;
    options.robust.capacity = 32;
  }
  return options;
}

DataStream SmallStream(int64_t num_events, uint64_t seed) {
  SyntheticStreamConfig config;
  config.mode_dims = {6, 5};
  config.num_events = num_events;
  config.time_span = 6 * 3 * 30;
  config.diurnal_period = 90;
  config.seed = seed;
  auto stream = GenerateSyntheticStream(config);
  SNS_CHECK(stream.ok());
  return std::move(stream).value();
}

SnsService MakeService(int shards) {
  ServiceOptions options;
  options.shards = shards;
  return SnsService(options);
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/sns_loss_durability_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::string CheckpointBytes(SnsService& service, const std::string& name) {
  serial::StringSink sink;
  const Status status = service.Checkpoint(name, sink);
  SNS_CHECK(status.ok());
  return sink.TakeData();
}

// The same batched protocol durability_test.cpp pins for the Gaussian path.
struct ProtocolInput {
  ContinuousCpdOptions options;
  std::span<const Tuple> warmup;
  std::vector<std::span<const Tuple>> batches;
  int64_t horizon = 0;
};

ProtocolInput MakeProtocol(const DataStream& stream,
                           const ContinuousCpdOptions& options) {
  ProtocolInput input;
  input.options = options;
  const std::span<const Tuple> tuples(stream.tuples());
  const int64_t warmup_end =
      static_cast<int64_t>(options.window_size) * options.period;
  const size_t split =
      static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  input.warmup = tuples.subspan(0, split);
  const std::span<const Tuple> live = tuples.subspan(split);
  for (size_t i = 0; i < live.size(); i += 3) {
    input.batches.push_back(
        live.subspan(i, std::min<size_t>(3, live.size() - i)));
  }
  input.horizon = stream.tuples().back().time + options.period;
  return input;
}

std::string RunUninterrupted(const ProtocolInput& input, int shards) {
  SnsService service = MakeService(shards);
  SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
  SNS_CHECK(service.Warmup("s", input.warmup).ok());
  SNS_CHECK(service.Initialize("s").ok());
  for (const auto& batch : input.batches) {
    SNS_CHECK(service.Ingest("s", batch).ok());
  }
  SNS_CHECK(service.AdvanceTo("s", input.horizon).ok());
  return CheckpointBytes(service, "s");
}

enum class Interrupt { kBeforeWarmup, kMidBatches, kAfterBatches };

std::string RunRecovered(const ProtocolInput& input, int shards,
                         Interrupt interrupt, const std::string& dir) {
  fs::remove_all(dir);
  std::string saved;
  {
    SnsService service = MakeService(shards);
    SNS_CHECK(service.CreateStream("s", {6, 5}, input.options).ok());
    SNS_CHECK(service.EnableJournal("s", dir).ok());
    if (interrupt == Interrupt::kBeforeWarmup) {
      saved = CheckpointBytes(service, "s");
    }
    SNS_CHECK(service.Warmup("s", input.warmup).ok());
    SNS_CHECK(service.Initialize("s").ok());
    for (size_t i = 0; i < input.batches.size(); ++i) {
      SNS_CHECK(service.Ingest("s", input.batches[i]).ok());
      if (interrupt == Interrupt::kMidBatches &&
          i + 1 == input.batches.size() / 2) {
        saved = CheckpointBytes(service, "s");
      }
    }
    if (interrupt == Interrupt::kAfterBatches) {
      saved = CheckpointBytes(service, "s");
    }
    SNS_CHECK(service.AdvanceTo("s", input.horizon).ok());
  }  // "Crash": checkpoint + journal survive the service.

  SnsService recovered = MakeService(shards);
  serial::StringSource source(saved);
  auto report = durability::RecoverStream(recovered, source, dir);
  SNS_CHECK(report.ok());
  SNS_CHECK(!report.value().torn_tail);
  return CheckpointBytes(recovered, "s");
}

// --- Checkpoint version matrix --------------------------------------------

int CheckpointVersionByte(const std::string& bytes) {
  SNS_CHECK(bytes.size() > 4);
  return static_cast<int>(static_cast<unsigned char>(bytes[4]));
}

std::string MakeCheckpoint(const ContinuousCpdOptions& options) {
  SnsService service = MakeService(0);
  SNS_CHECK(service.CreateStream("s", {6, 5}, options).ok());
  return CheckpointBytes(service, "s");
}

TEST(LossCheckpointVersionTest, PlainGaussianStreamsStayOnVersionOne) {
  // A default-loss stream must emit the exact pre-loss envelope generation:
  // checkpoints taken by this build remain readable by pre-loss builds.
  const std::string bytes =
      MakeCheckpoint(LossEngineOptions(SnsVariant::kVec, LossKind::kGaussian,
                                       /*robust=*/false));
  EXPECT_EQ(CheckpointVersionByte(bytes), 1);
}

TEST(LossCheckpointVersionTest, ExtendedStateBumpsToVersionTwo) {
  // Either a non-Gaussian loss or robust mode forces the extension.
  EXPECT_EQ(CheckpointVersionByte(MakeCheckpoint(LossEngineOptions(
                SnsVariant::kVec, LossKind::kPoisson, false))),
            2);
  EXPECT_EQ(CheckpointVersionByte(MakeCheckpoint(LossEngineOptions(
                SnsVariant::kVec, LossKind::kBernoulliLogit, false))),
            2);
  EXPECT_EQ(CheckpointVersionByte(MakeCheckpoint(LossEngineOptions(
                SnsVariant::kVec, LossKind::kGaussian, true))),
            2);
}

TEST(LossCheckpointVersionTest, VersionOneCheckpointsRestoreAsGaussian) {
  // A v1 envelope carries no loss section; the restored stream must come up
  // with the default Gaussian/non-robust configuration — observable as
  // OutlierActivity refusing with kFailedPrecondition.
  const std::string bytes = MakeCheckpoint(
      LossEngineOptions(SnsVariant::kVecPlus, LossKind::kGaussian, false));
  ASSERT_EQ(CheckpointVersionByte(bytes), 1);

  SnsService restored = MakeService(0);
  serial::StringSource source(bytes);
  ASSERT_TRUE(restored.Restore(source).ok());
  const auto activity = restored.OutlierActivity("s", 0, 3);
  ASSERT_FALSE(activity.ok());
  EXPECT_EQ(activity.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LossCheckpointVersionTest, UnknownFutureVersionIsFailedPrecondition) {
  // Corrupt a valid v2 envelope up to the first unknown generation: the
  // reader must refuse with a typed error, never misinterpret the payload.
  std::string bytes = MakeCheckpoint(
      LossEngineOptions(SnsVariant::kVec, LossKind::kPoisson, true));
  ASSERT_EQ(CheckpointVersionByte(bytes), 2);
  bytes[4] = static_cast<char>(3);

  SnsService restored = MakeService(0);
  serial::StringSource source(bytes);
  const auto result = restored.Restore(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LossCheckpointVersionTest, VersionTwoRoundTripsLossAndRobustConfig) {
  const DataStream stream = SmallStream(90, 77);
  const ProtocolInput input = MakeProtocol(
      stream, LossEngineOptions(SnsVariant::kVecPlus, LossKind::kPoisson,
                                /*robust=*/true));
  SnsService service = MakeService(0);
  ASSERT_TRUE(service.CreateStream("s", {6, 5}, input.options).ok());
  ASSERT_TRUE(service.Warmup("s", input.warmup).ok());
  ASSERT_TRUE(service.Initialize("s").ok());
  for (const auto& batch : input.batches) {
    ASSERT_TRUE(service.Ingest("s", batch).ok());
  }
  // Plant a spike so the outlier store is non-empty at checkpoint time.
  Tuple spike;
  spike.index = ModeIndex({2, 3});
  spike.value = 400.0;
  spike.time = stream.end_time();
  ASSERT_TRUE(service.Ingest("s", spike).ok());
  const auto stats = service.Stats("s");
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats.value().outlier_cells, 0);

  const std::string bytes = CheckpointBytes(service, "s");
  ASSERT_EQ(CheckpointVersionByte(bytes), 2);

  SnsService restored = MakeService(0);
  serial::StringSource source(bytes);
  ASSERT_TRUE(restored.Restore(source).ok());

  // The robust configuration survived: OutlierActivity answers, and the
  // restored stats mirror the original outlier state exactly.
  const auto activity = restored.OutlierActivity("s", 0, 3);
  ASSERT_TRUE(activity.ok());
  EXPECT_FALSE(activity.value().empty());
  const auto restored_stats = restored.Stats("s");
  ASSERT_TRUE(restored_stats.ok());
  EXPECT_EQ(restored_stats.value().outlier_cells,
            stats.value().outlier_cells);
  EXPECT_DOUBLE_EQ(restored_stats.value().outlier_magnitude,
                   stats.value().outlier_magnitude);
  EXPECT_EQ(restored_stats.value().outlier_captures,
            stats.value().outlier_captures);
  EXPECT_EQ(restored_stats.value().outlier_evictions,
            stats.value().outlier_evictions);

  // And reserializing the restored stream reproduces the bytes.
  EXPECT_EQ(CheckpointBytes(restored, "s"), bytes);
}

// --- The central differential, generalized --------------------------------

TEST(LossRecoveryDifferentialTest, PoissonRobustAllVariantsAndShards) {
  const DataStream stream = SmallStream(110, 51);
  const SnsVariant variants[] = {SnsVariant::kMat, SnsVariant::kVec,
                                 SnsVariant::kRnd, SnsVariant::kVecPlus,
                                 SnsVariant::kRndPlus};
  for (SnsVariant variant : variants) {
    const ProtocolInput input = MakeProtocol(
        stream, LossEngineOptions(variant, LossKind::kPoisson,
                                  /*robust=*/true));
    const std::string reference = RunUninterrupted(input, /*shards=*/0);
    for (int shards : {0, 1, 4}) {
      const std::string recovered = RunRecovered(
          input, shards, Interrupt::kMidBatches, FreshDir("poisson"));
      EXPECT_EQ(recovered, reference)
          << VariantName(variant) << " shards=" << shards;
    }
  }
}

TEST(LossRecoveryDifferentialTest, AllInterruptPointsForSampledVariant) {
  // The sampled coordinate-descent variant exercises the RNG checkpoint path
  // together with the loss extension; cover every interrupt position.
  const DataStream stream = SmallStream(110, 53);
  const ProtocolInput input = MakeProtocol(
      stream, LossEngineOptions(SnsVariant::kRndPlus, LossKind::kPoisson,
                                /*robust=*/true));
  const std::string reference = RunUninterrupted(input, 0);
  for (Interrupt interrupt : {Interrupt::kBeforeWarmup, Interrupt::kMidBatches,
                              Interrupt::kAfterBatches}) {
    const std::string recovered =
        RunRecovered(input, /*shards=*/1, interrupt, FreshDir("interrupts"));
    EXPECT_EQ(recovered, reference)
        << "interrupt=" << static_cast<int>(interrupt);
  }
}

TEST(LossRecoveryDifferentialTest, BernoulliWithoutRobustRecoversBitwise) {
  // Non-Gaussian alone (no outlier store) still takes the v2 envelope for
  // the fitness loss sums; recovery must reproduce them exactly.
  const DataStream stream = SmallStream(100, 59);
  const ProtocolInput input = MakeProtocol(
      stream, LossEngineOptions(SnsVariant::kVec, LossKind::kBernoulliLogit,
                                /*robust=*/false));
  const std::string reference = RunUninterrupted(input, 0);
  for (Interrupt interrupt :
       {Interrupt::kBeforeWarmup, Interrupt::kMidBatches}) {
    const std::string recovered =
        RunRecovered(input, /*shards=*/1, interrupt, FreshDir("bernoulli"));
    EXPECT_EQ(recovered, reference)
        << "interrupt=" << static_cast<int>(interrupt);
  }
}

TEST(LossRecoveryDifferentialTest, RobustGaussianRecoversBitwise) {
  // Robust mode on the default loss: the outlier store and its decay clock
  // are the only extended state.
  const DataStream stream = SmallStream(100, 61);
  const ProtocolInput input = MakeProtocol(
      stream, LossEngineOptions(SnsVariant::kVecPlus, LossKind::kGaussian,
                                /*robust=*/true));
  const std::string reference = RunUninterrupted(input, 0);
  const std::string recovered = RunRecovered(
      input, /*shards=*/4, Interrupt::kMidBatches, FreshDir("robust_gauss"));
  EXPECT_EQ(recovered, reference);
}

}  // namespace
}  // namespace sns
