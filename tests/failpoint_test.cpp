// Tests for the deterministic fault-injection subsystem
// (common/failpoint.h): trigger policies, environment arming, evaluation
// counters, and the unarmed fast path.

#include "common/failpoint.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/status.h"

namespace sns {
namespace {

// Every test starts and ends with a clean registry and an unread
// environment, so tests cannot leak armed failpoints into each other.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("SNS_FAILPOINTS");
    failpoint::DisarmAll();
  }
  void TearDown() override {
    unsetenv("SNS_FAILPOINTS");
    failpoint::DisarmAll();
  }
};

TEST_F(FailpointTest, UnarmedNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SNS_FAILPOINT("test.unarmed"));
  }
  EXPECT_EQ(failpoint::Evaluations("test.unarmed"), 0);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Arm("test.once", "once").ok());
  EXPECT_TRUE(SNS_FAILPOINT("test.once"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(SNS_FAILPOINT("test.once"));
  }
  EXPECT_EQ(failpoint::Evaluations("test.once"), 11);
}

TEST_F(FailpointTest, OffNeverFiresButCounts) {
  ASSERT_TRUE(failpoint::Arm("test.off", "off").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(SNS_FAILPOINT("test.off"));
  }
  EXPECT_EQ(failpoint::Evaluations("test.off"), 5);
}

TEST_F(FailpointTest, EveryNFiresOnMultiplesOfN) {
  ASSERT_TRUE(failpoint::Arm("test.every", "every:3").ok());
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    if (SNS_FAILPOINT("test.every")) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, AfterNFiresOnEveryEvaluationPastN) {
  ASSERT_TRUE(failpoint::Arm("test.after", "after:2").ok());
  EXPECT_FALSE(SNS_FAILPOINT("test.after"));
  EXPECT_FALSE(SNS_FAILPOINT("test.after"));
  EXPECT_TRUE(SNS_FAILPOINT("test.after"));
  EXPECT_TRUE(SNS_FAILPOINT("test.after"));
}

TEST_F(FailpointTest, AfterZeroAlwaysFires) {
  ASSERT_TRUE(failpoint::Arm("test.always", "after:0").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(SNS_FAILPOINT("test.always"));
  }
}

TEST_F(FailpointTest, RearmResetsTheEvaluationCounter) {
  ASSERT_TRUE(failpoint::Arm("test.rearm", "once").ok());
  EXPECT_TRUE(SNS_FAILPOINT("test.rearm"));
  EXPECT_FALSE(SNS_FAILPOINT("test.rearm"));
  ASSERT_TRUE(failpoint::Arm("test.rearm", "once").ok());
  EXPECT_EQ(failpoint::Evaluations("test.rearm"), 0);
  EXPECT_TRUE(SNS_FAILPOINT("test.rearm"));
}

TEST_F(FailpointTest, DisarmRestoresTheFastPath) {
  ASSERT_TRUE(failpoint::Arm("test.disarm", "after:0").ok());
  EXPECT_TRUE(SNS_FAILPOINT("test.disarm"));
  failpoint::Disarm("test.disarm");
  EXPECT_FALSE(SNS_FAILPOINT("test.disarm"));
  EXPECT_EQ(failpoint::Evaluations("test.disarm"), 0);
}

TEST_F(FailpointTest, DistinctFailpointsAreIndependent) {
  ASSERT_TRUE(failpoint::Arm("test.a", "once").ok());
  ASSERT_TRUE(failpoint::Arm("test.b", "off").ok());
  EXPECT_FALSE(SNS_FAILPOINT("test.b"));
  EXPECT_TRUE(SNS_FAILPOINT("test.a"));
  EXPECT_FALSE(SNS_FAILPOINT("test.b"));
  EXPECT_EQ(failpoint::Evaluations("test.a"), 1);
  EXPECT_EQ(failpoint::Evaluations("test.b"), 2);
}

TEST_F(FailpointTest, MalformedPoliciesAreRejected) {
  EXPECT_EQ(failpoint::Arm("test.bad", "sometimes").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Arm("test.bad", "every:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Arm("test.bad", "every:x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Arm("test.bad", "after:-1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Arm("", "once").code(), StatusCode::kInvalidArgument);
  // A rejected Arm must not leave the failpoint armed.
  EXPECT_FALSE(SNS_FAILPOINT("test.bad"));
}

TEST_F(FailpointTest, EnvironmentSpecArmsFailpoints) {
  setenv("SNS_FAILPOINTS", "test.env_a=once;test.env_b=every:2", 1);
  failpoint::DisarmAll();  // Forget the parse so the env is re-read.
  EXPECT_TRUE(SNS_FAILPOINT("test.env_a"));
  EXPECT_FALSE(SNS_FAILPOINT("test.env_a"));
  EXPECT_FALSE(SNS_FAILPOINT("test.env_b"));
  EXPECT_TRUE(SNS_FAILPOINT("test.env_b"));
}

TEST_F(FailpointTest, EnvironmentCommaSeparatorAndMalformedEntries) {
  // Malformed entries are skipped, well-formed ones still arm.
  setenv("SNS_FAILPOINTS", "garbage,test.env_c=after:0,=once,d=", 1);
  failpoint::DisarmAll();
  EXPECT_TRUE(SNS_FAILPOINT("test.env_c"));
}

TEST_F(FailpointTest, InjectedFailureIsTypedAndNamed) {
  const Status status = failpoint::InjectedFailure("journal.append");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("journal.append"), std::string::npos);
  EXPECT_NE(status.message().find("injected"), std::string::npos);
}

}  // namespace
}  // namespace sns
