// Tests for the slice-grid sampler used by SNS-RND / SNS+RND.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/slice_sampler.h"

namespace sns {
namespace {

WindowDelta DeltaWithCells(std::vector<ModeIndex> cells) {
  WindowDelta delta;
  for (ModeIndex& cell : cells) delta.cells.push_back({cell, 1.0});
  return delta;
}

TEST(SliceSamplerTest, CellsAreDistinctInBoundsAndOnSlice) {
  SparseTensor window({6, 7, 5});
  Rng rng(1);
  WindowDelta delta;
  for (int trial = 0; trial < 20; ++trial) {
    auto cells = SampleSliceCells(window, /*mode=*/1, /*row=*/3,
                                  /*count=*/10, delta, rng);
    EXPECT_EQ(cells.size(), 10u);
    std::set<std::string> seen;
    for (const SampledCell& cell : cells) {
      EXPECT_EQ(cell.index.size(), 3);
      EXPECT_EQ(cell.index[1], 3);
      EXPECT_GE(cell.index[0], 0);
      EXPECT_LT(cell.index[0], 6);
      EXPECT_GE(cell.index[2], 0);
      EXPECT_LT(cell.index[2], 5);
      EXPECT_TRUE(seen.insert(cell.index.ToString()).second)
          << cell.index.ToString();
    }
  }
}

TEST(SliceSamplerTest, ExcludesDeltaCells) {
  SparseTensor window({2, 3, 2});
  Rng rng(2);
  // Slice mode 0, row 1 has 3*2 = 6 cells; exclude two of them.
  WindowDelta delta =
      DeltaWithCells({ModeIndex{1, 0, 0}, ModeIndex{1, 2, 1}});
  auto cells = SampleSliceCells(window, 0, 1, /*count=*/100, delta, rng);
  EXPECT_EQ(cells.size(), 4u);  // Enumeration path: all minus the 2 deltas.
  for (const SampledCell& cell : cells) {
    EXPECT_FALSE(cell.index == (ModeIndex{1, 0, 0}));
    EXPECT_FALSE(cell.index == (ModeIndex{1, 2, 1}));
  }
}

TEST(SliceSamplerTest, TinySliceEnumeratesEverything) {
  SparseTensor window({4, 3});
  Rng rng(3);
  WindowDelta delta;
  auto cells = SampleSliceCells(window, 1, 2, /*count=*/50, delta, rng);
  ASSERT_EQ(cells.size(), 4u);
  std::set<int32_t> first_indices;
  for (const SampledCell& cell : cells) {
    EXPECT_EQ(cell.index[1], 2);
    first_indices.insert(cell.index[0]);
  }
  EXPECT_EQ(first_indices.size(), 4u);
}

TEST(SliceSamplerTest, ApproximatelyUniformOverGrid) {
  SparseTensor window({10, 50});
  Rng rng(4);
  WindowDelta delta;
  std::map<int32_t, int> counts;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (const SampledCell& cell :
         SampleSliceCells(window, 0, 5, /*count=*/5, delta, rng)) {
      counts[cell.index[1]]++;
    }
  }
  // 4000 * 5 samples over 50 cells → mean 400 per cell.
  for (const auto& [index, count] : counts) {
    EXPECT_GT(count, 280) << index;
    EXPECT_LT(count, 520) << index;
  }
}

TEST(SliceSamplerTest, SamplesIncludeZeroCells) {
  // Window with a single non-zero: nearly all sampled cells must be zeros.
  SparseTensor window({30, 30, 4});
  window.Set({0, 0, 0}, 5.0);
  Rng rng(5);
  WindowDelta delta;
  auto cells = SampleSliceCells(window, 2, 0, /*count=*/40, delta, rng);
  EXPECT_EQ(cells.size(), 40u);
  int zero_cells = 0;
  for (const SampledCell& cell : cells) {
    // Sampled cells carry the window value so consumers never re-hash.
    EXPECT_DOUBLE_EQ(cell.value, window.Get(cell.index));
    if (cell.value == 0.0) ++zero_cells;
  }
  EXPECT_GE(zero_cells, 39);
}

}  // namespace
}  // namespace sns
