// Regenerates Fig. 6: total running time of the SliceNStitch variants as a
// function of the number of events — expected to be linear. SNS-MAT is
// omitted, exactly as in the paper ("due to long execution time").

#include <cstdio>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

void RunDataset(DatasetSpec spec) {
  const int64_t base_events = spec.stream.num_events;
  TableReporter table({"#Events", "SNS-VEC (s)", "SNS-RND (s)", "SNS+VEC (s)",
                       "SNS+RND (s)"});
  for (int multiple = 1; multiple <= 5; ++multiple) {
    spec.stream.num_events = base_events * multiple;
    auto stream_or = GenerateSyntheticStream(spec.stream);
    SNS_CHECK(stream_or.ok());
    const DataStream& stream = stream_or.value();

    std::vector<std::string> cells = {std::to_string(stream.size())};
    for (SnsVariant variant : {SnsVariant::kVec, SnsVariant::kRnd,
                               SnsVariant::kVecPlus, SnsVariant::kRndPlus}) {
      RunResult result = RunContinuous(spec, stream, variant);
      cells.push_back(TableReporter::Num(result.total_update_seconds, 3));
    }
    table.AddRow(std::move(cells));
  }
  PrintDatasetLine(spec, base_events * 5);
  table.Print();
}

void Run() {
  PrintExperimentBanner(
      "Fig. 6 (data scalability)",
      "total update time grows linearly in the number of events for all "
      "four row-wise variants (SNS-MAT omitted, as in the paper)");
  // The paper sweeps 1..5 x 1e5 events on every dataset; we sweep 1..5 x the
  // preset event count on the two ends of the density spectrum to keep the
  // default run short (all four with SNS_BENCH_SCALE if desired).
  const double scale = BenchEventScaleFromEnv();
  RunDataset(ChicagoCrimePreset(scale));
  RunDataset(NewYorkTaxiPreset(scale));
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
