// Regenerates Fig. 7: effect of the sampling threshold θ on the relative
// fitness (top) and update time (bottom) of SNS-RND and SNS+RND. Expected:
// fitness rises with θ with diminishing returns; update time grows linearly.

#include <cstdio>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

void RunDataset(const DatasetSpec& spec) {
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  RunResult als = RunPeriodic(spec, stream, MakeBaseline("ALS", spec));

  TableReporter table({"theta", "SNS-RND rel.fit", "SNS-RND us/upd",
                       "SNS+RND rel.fit", "SNS+RND us/upd"});
  const int64_t default_theta = spec.engine.sample_threshold;
  for (double fraction : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    const int64_t theta = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(default_theta) * fraction));
    auto with_theta = [theta](ContinuousCpdOptions& options) {
      options.sample_threshold = theta;
    };
    RunResult rnd = RunContinuous(spec, stream, SnsVariant::kRnd, with_theta);
    RunResult rnd_plus =
        RunContinuous(spec, stream, SnsVariant::kRndPlus, with_theta);
    table.AddRow(
        {std::to_string(theta),
         TableReporter::Num(
             MeanOf(RelativeTo(rnd.fitness_curve, als.fitness_curve)), 3),
         TableReporter::Num(rnd.mean_update_micros, 1),
         TableReporter::Num(
             MeanOf(RelativeTo(rnd_plus.fitness_curve, als.fitness_curve)), 3),
         TableReporter::Num(rnd_plus.mean_update_micros, 1)});
  }
  table.Print();
}

void Run() {
  PrintExperimentBanner(
      "Fig. 7 (effect of the sampling threshold theta)",
      "relative fitness increases with theta with diminishing returns; "
      "update time grows roughly linearly in theta; SNS-RND can destabilize "
      "at small theta (it fails on Chicago Crime in the paper)");
  for (const DatasetSpec& spec : AllDatasetPresets(BenchEventScaleFromEnv())) {
    RunDataset(spec);
  }
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
