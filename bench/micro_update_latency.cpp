// google-benchmark microbenchmarks: steady-state per-event update latency of
// every SliceNStitch variant (the quantity behind Fig. 5a), the continuous
// window bookkeeping alone (Algorithm 1), and the Gram-solver ablation
// (Cholesky fast path vs symmetric-eigen pseudoinverse) called out in
// DESIGN.md.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/continuous_cpd.h"
#include "core/gram_solve.h"
#include "data/datasets.h"
#include "linalg/pseudo_inverse.h"
#include "stream/continuous_window.h"

namespace sns {
namespace {

// A prepared engine over a mid-size window plus an endless arrival
// synthesizer, so iterations measure steady-state event processing.
struct EngineFixture {
  explicit EngineFixture(SnsVariant variant)
      : spec(NewYorkTaxiPreset(0.4)), rng(7) {
    spec.engine.variant = variant;
    auto stream = GenerateSyntheticStream(spec.stream);
    SNS_CHECK(stream.ok());
    auto created = ContinuousCpd::Create(stream.value().mode_dims(),
                                         spec.engine);
    SNS_CHECK(created.ok());
    engine = std::make_unique<ContinuousCpd>(std::move(created).value());
    const int64_t warmup_end = spec.WarmupEndTime();
    for (const Tuple& tuple : stream.value().tuples()) {
      if (tuple.time > warmup_end) break;
      engine->IngestOnly(tuple);
    }
    engine->InitializeWithAls();
    now = warmup_end;
  }

  Tuple NextTuple() {
    now += 1 + static_cast<int64_t>(rng.NextUint64(3));
    Tuple tuple;
    for (int64_t dim : spec.stream.mode_dims) {
      tuple.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    tuple.value = 1.0;
    tuple.time = now;
    return tuple;
  }

  DatasetSpec spec;
  Rng rng;
  std::unique_ptr<ContinuousCpd> engine;
  int64_t now = 0;
};

void BM_ProcessTuple(benchmark::State& state) {
  EngineFixture fixture(static_cast<SnsVariant>(state.range(0)));
  for (auto _ : state) {
    fixture.engine->ProcessTuple(fixture.NextTuple());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(VariantName(static_cast<SnsVariant>(state.range(0))));
}
BENCHMARK(BM_ProcessTuple)
    ->Arg(static_cast<int>(SnsVariant::kVec))
    ->Arg(static_cast<int>(SnsVariant::kRnd))
    ->Arg(static_cast<int>(SnsVariant::kVecPlus))
    ->Arg(static_cast<int>(SnsVariant::kRndPlus))
    ->Unit(benchmark::kMicrosecond);

// SNS-MAT separately with fewer iterations (it is ~1000x slower).
void BM_ProcessTupleMat(benchmark::State& state) {
  EngineFixture fixture(SnsVariant::kMat);
  for (auto _ : state) {
    fixture.engine->ProcessTuple(fixture.NextTuple());
  }
  state.SetLabel("SNS-MAT");
}
BENCHMARK(BM_ProcessTupleMat)->Iterations(30)->Unit(benchmark::kMicrosecond);

// Algorithm 1 alone: window bookkeeping without factor updates.
void BM_WindowOnly(benchmark::State& state) {
  DatasetSpec spec = NewYorkTaxiPreset(0.4);
  ContinuousTensorWindow window(spec.stream.mode_dims,
                                spec.engine.window_size, spec.engine.period);
  Rng rng(11);
  int64_t now = 0;
  for (auto _ : state) {
    now += 1 + static_cast<int64_t>(rng.NextUint64(3));
    Tuple tuple;
    for (int64_t dim : spec.stream.mode_dims) {
      tuple.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    tuple.value = 1.0;
    tuple.time = now;
    window.AdvanceTo(now);
    benchmark::DoNotOptimize(window.Ingest(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowOnly);

// Gram-solver ablation: R x R solve via the production path (Cholesky with
// pseudoinverse fallback) vs always-pseudoinverse.
void BM_GramSolveProduction(benchmark::State& state) {
  const int64_t rank = state.range(0);
  Rng rng(13);
  Matrix a = Matrix::RandomNormal(4 * rank, rank, rng);
  Matrix h = MultiplyTransposeA(a, a);
  std::vector<double> b(static_cast<size_t>(rank), 1.0);
  std::vector<double> x(static_cast<size_t>(rank));
  for (auto _ : state) {
    SolveRowAgainstGram(h, b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_GramSolveProduction)->Arg(10)->Arg(20)->Arg(40);

void BM_GramSolvePinvOnly(benchmark::State& state) {
  const int64_t rank = state.range(0);
  Rng rng(13);
  Matrix a = Matrix::RandomNormal(4 * rank, rank, rng);
  Matrix h = MultiplyTransposeA(a, a);
  std::vector<double> b(static_cast<size_t>(rank), 1.0);
  std::vector<double> x(static_cast<size_t>(rank));
  for (auto _ : state) {
    Matrix pinv = PseudoInverseSymmetric(h);
    RowTimesMatrix(b.data(), pinv, x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_GramSolvePinvOnly)->Arg(10)->Arg(20)->Arg(40);

}  // namespace
}  // namespace sns

BENCHMARK_MAIN();
