// google-benchmark microbenchmarks: steady-state per-event update latency of
// every SliceNStitch variant (the quantity behind Fig. 5a), the continuous
// window bookkeeping alone (Algorithm 1), the storage-engine comparison
// (flat entry pool vs the pre-refactor map-of-structs), and the Gram-solver
// ablation (Cholesky fast path vs symmetric-eigen pseudoinverse) called out
// in DESIGN.md.
//
// Unless --benchmark_out is given, results are also written as JSON to
// BENCH_micro_update_latency.json in the working directory so the perf
// trajectory is machine-trackable across PRs.

#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/sns_service.h"
#include "api/stream_handle.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "core/als.h"
#include "core/continuous_cpd.h"
#include "core/cpd_state.h"
#include "core/gram_solve.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"
#include "data/datasets.h"
#include "linalg/cholesky.h"
#include "losses/loss_function.h"
#include "linalg/matrix32.h"
#include "linalg/pseudo_inverse.h"
#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"
#include "stream/continuous_window.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

// A prepared engine over a mid-size window plus an endless arrival
// synthesizer, so iterations measure steady-state event processing.
struct EngineFixture {
  explicit EngineFixture(SnsVariant variant,
                         LossKind loss = LossKind::kGaussian,
                         bool robust = false)
      : spec(NewYorkTaxiPreset(0.4)), rng(7) {
    spec.engine.variant = variant;
    spec.engine.loss = loss;
    if (robust) {
      spec.engine.robust.enabled = true;
      spec.engine.robust.threshold = 3.0;
      spec.engine.robust.decay = 0.5;
      spec.engine.robust.capacity = 4096;
    }
    auto stream = GenerateSyntheticStream(spec.stream);
    SNS_CHECK(stream.ok());
    spec.engine.expected_nnz =
        stream.value().CountTuplesThrough(spec.WarmupEndTime());
    auto created = ContinuousCpd::Create(stream.value().mode_dims(),
                                         spec.engine);
    SNS_CHECK(created.ok());
    engine = std::move(created).value();
    const int64_t warmup_end = spec.WarmupEndTime();
    for (const Tuple& tuple : stream.value().tuples()) {
      if (tuple.time > warmup_end) break;
      engine->IngestOnly(tuple);
    }
    engine->InitializeWithAls();
    now = warmup_end;
  }

  Tuple NextTuple() {
    now += 1 + static_cast<int64_t>(rng.NextUint64(3));
    Tuple tuple;
    for (int64_t dim : spec.stream.mode_dims) {
      tuple.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    tuple.value = 1.0;
    tuple.time = now;
    return tuple;
  }

  DatasetSpec spec;
  Rng rng;
  std::unique_ptr<ContinuousCpd> engine;
  int64_t now = 0;
};

void BM_ProcessTuple(benchmark::State& state) {
  EngineFixture fixture(static_cast<SnsVariant>(state.range(0)));
  for (auto _ : state) {
    fixture.engine->ProcessTuple(fixture.NextTuple());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(VariantName(static_cast<SnsVariant>(state.range(0))));
}
// Fixed iteration count: per-tuple cost ramps as the continuous window
// fills toward its steady state and (for the unclipped variants) as the
// factors drift on the synthetic arrivals, so a run's mean depends on how
// many tuples it covers. 10000 tuples matches the iteration count of the
// PR 2 committed SNS-VEC/SNS-RND runs, keeping the committed numbers
// comparable across PRs.
BENCHMARK(BM_ProcessTuple)
    ->Arg(static_cast<int>(SnsVariant::kVec))
    ->Arg(static_cast<int>(SnsVariant::kRnd))
    ->Arg(static_cast<int>(SnsVariant::kVecPlus))
    ->Arg(static_cast<int>(SnsVariant::kRndPlus))
    ->Iterations(10000)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Generalized-loss update latency: the damped Newton GCP row step
// (losses/gcp_row_update.h) under Poisson and Bernoulli losses, and the
// robust ingest path (outlier capture into S), each against the
// closed-form Gaussian SNS+VEC run on the identical stream — the premium
// of swapping the loss is the ratio to the first row.
void BM_LossUpdate(benchmark::State& state) {
  const LossKind loss = static_cast<LossKind>(state.range(0));
  const bool robust = state.range(1) != 0;
  EngineFixture fixture(SnsVariant::kVecPlus, loss, robust);
  for (auto _ : state) {
    fixture.engine->ProcessTuple(fixture.NextTuple());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string("SNS+VEC ") + std::string(LossKindName(loss)) +
                 (robust ? "+robust" : ""));
}
// Same fixed 10000-tuple workload as BM_ProcessTuple so the Gaussian row
// here is directly comparable with the committed SNS+VEC numbers.
BENCHMARK(BM_LossUpdate)
    ->Args({static_cast<int>(LossKind::kGaussian), 0})  // Baseline.
    ->Args({static_cast<int>(LossKind::kPoisson), 0})
    ->Args({static_cast<int>(LossKind::kBernoulliLogit), 0})
    ->Args({static_cast<int>(LossKind::kGaussian), 1})  // Robust capture.
    ->Args({static_cast<int>(LossKind::kPoisson), 1})
    ->Iterations(10000)
    ->Unit(benchmark::kMicrosecond);

// SNS-MAT separately with fewer iterations (it is ~1000x slower).
void BM_ProcessTupleMat(benchmark::State& state) {
  EngineFixture fixture(SnsVariant::kMat);
  for (auto _ : state) {
    fixture.engine->ProcessTuple(fixture.NextTuple());
  }
  state.SetLabel("SNS-MAT");
}
BENCHMARK(BM_ProcessTupleMat)->Iterations(100)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Batched ingestion through the service facade (StreamHandle::Ingest over a
// span) vs the per-tuple path, on the same prepared engine state as
// BM_ProcessTuple. One iteration ingests one batch; per-tuple cost is
// real_time / batch_size (items_processed counts tuples, so the reported
// items/s is directly comparable across batch sizes and with
// BM_ProcessTuple). Iteration counts are scaled so every batch size covers
// the same ~10k-tuple workload as the committed per-tuple runs.

struct FacadeFixture {
  explicit FacadeFixture(SnsVariant variant)
      : spec(NewYorkTaxiPreset(0.4)), rng(7) {
    spec.engine.variant = variant;
    auto stream = GenerateSyntheticStream(spec.stream);
    SNS_CHECK(stream.ok());
    spec.engine.expected_nnz =
        stream.value().CountTuplesThrough(spec.WarmupEndTime());
    auto created = StreamHandle::Create("bench", stream.value().mode_dims(),
                                        spec.engine);
    SNS_CHECK(created.ok());
    handle = std::make_unique<StreamHandle>(std::move(created).value());
    const int64_t warmup_end = spec.WarmupEndTime();
    const std::span<const Tuple> tuples(stream.value().tuples());
    const size_t warm =
        static_cast<size_t>(stream.value().CountTuplesThrough(warmup_end));
    SNS_CHECK(handle->Warmup(tuples.subspan(0, warm)).ok());
    SNS_CHECK(handle->Initialize().ok());
    now = warmup_end;
  }

  Tuple NextTuple() {
    now += 1 + static_cast<int64_t>(rng.NextUint64(3));
    Tuple tuple;
    for (int64_t dim : spec.stream.mode_dims) {
      tuple.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    tuple.value = 1.0;
    tuple.time = now;
    return tuple;
  }

  DatasetSpec spec;
  Rng rng;
  std::unique_ptr<StreamHandle> handle;
  int64_t now = 0;
};

void BM_BatchIngest(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  FacadeFixture fixture(SnsVariant::kRndPlus);
  std::vector<Tuple> batch(static_cast<size_t>(batch_size));
  for (auto _ : state) {
    for (Tuple& tuple : batch) tuple = fixture.NextTuple();
    const Status status =
        fixture.handle->Ingest(std::span<const Tuple>(batch));
    SNS_CHECK(status.ok());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.SetLabel("SNS+RND batch=" + std::to_string(batch_size));
}
// ~10k tuples per run regardless of batch size, matching BM_ProcessTuple's
// fixed workload (see the comment there on why iteration counts are pinned).
BENCHMARK(BM_BatchIngest)->Arg(1)->Iterations(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BatchIngest)->Arg(16)->Iterations(625)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BatchIngest)->Arg(256)->Iterations(40)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Service-level aggregate throughput: K streams fed through the sharded
// runtime (api/sns_service.h) at S worker shards, S = 0 being the inline
// synchronous baseline. Each iteration submits one batch per stream via
// IngestAsync and drains — the batch-synchronous feed pattern — so the
// reported items/s is the aggregate tuples/sec of the whole service.
// Per-stream work is identical across shard counts (pinned assignment
// keeps event order bitwise equal), so the ratio to S = 0 is pure runtime
// scaling: ~1 on a single-core host, approaching min(S, K, cores) with
// real parallelism.

constexpr int kThroughputStreams = 8;
constexpr int64_t kThroughputBatch = 32;

struct ServiceFixture {
  explicit ServiceFixture(int shards) {
    ServiceOptions runtime;
    runtime.shards = shards;
    runtime.backpressure = BackpressurePolicy::kBlock;
    runtime.max_queue_depth = 64;
    // Telemetry on: the benchmark doubles as the overhead regression check,
    // and its JSON artifact carries the ingest-latency percentiles.
    runtime.metrics.enabled = true;
    service = std::make_unique<SnsService>(runtime);
    const int64_t warmup_end =
        static_cast<int64_t>(EngineOptions().window_size) *
        EngineOptions().period;
    for (int s = 0; s < kThroughputStreams; ++s) {
      names.push_back("stream-" + std::to_string(s));
      SyntheticStreamConfig config;
      config.mode_dims = {64, 64};
      config.num_events = 4000;
      config.time_span = warmup_end;
      config.diurnal_period = warmup_end;
      config.seed = 1000 + static_cast<uint64_t>(s);
      auto stream = GenerateSyntheticStream(config);
      SNS_CHECK(stream.ok());
      ContinuousCpdOptions engine = EngineOptions();
      engine.expected_nnz = static_cast<int64_t>(config.num_events);
      SNS_CHECK(
          service->CreateStream(names.back(), config.mode_dims, engine)
              .ok());
      SNS_CHECK(service->Warmup(names.back(), stream.value().tuples()).ok());
      SNS_CHECK(service->Initialize(names.back()).ok());
      rngs.emplace_back(2000 + static_cast<uint64_t>(s));
      clocks.push_back(warmup_end);
    }
  }

  static ContinuousCpdOptions EngineOptions() {
    ContinuousCpdOptions engine;
    engine.rank = 8;
    engine.window_size = 10;
    engine.period = 3600;
    engine.variant = SnsVariant::kRndPlus;
    return engine;
  }

  std::vector<Tuple> NextBatch(int s) {
    std::vector<Tuple> batch(static_cast<size_t>(kThroughputBatch));
    Rng& rng = rngs[static_cast<size_t>(s)];
    int64_t& now = clocks[static_cast<size_t>(s)];
    for (Tuple& tuple : batch) {
      now += 1 + static_cast<int64_t>(rng.NextUint64(3));
      tuple.index = ModeIndex{static_cast<int32_t>(rng.UniformInt(0, 63)),
                              static_cast<int32_t>(rng.UniformInt(0, 63))};
      tuple.value = 1.0;
      tuple.time = now;
    }
    return batch;
  }

  std::unique_ptr<SnsService> service;
  std::vector<std::string> names;
  std::vector<Rng> rngs;
  std::vector<int64_t> clocks;
};

// Bucket-wise difference of two snapshots of the SAME histogram, so the
// reported percentiles cover only the timed phase (warm-up batches are the
// slowest samples and would otherwise own the p99). min/max keep the
// lifetime envelope — the diff clamps inside it.
telemetry::HistogramSnapshot DiffHistogram(
    const telemetry::HistogramSnapshot& after,
    const telemetry::HistogramSnapshot& before) {
  telemetry::HistogramSnapshot diff = after;
  diff.count = 0;
  diff.sum = after.sum - before.sum;
  for (int i = 0; i < telemetry::HistogramSnapshot::kNumBuckets; ++i) {
    diff.buckets[static_cast<size_t>(i)] -=
        before.buckets[static_cast<size_t>(i)];
    diff.count += diff.buckets[static_cast<size_t>(i)];
  }
  return diff;
}

void BM_ServiceThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ServiceFixture fixture(shards);
  const telemetry::ServiceMetricsSnapshot before =
      fixture.service->Metrics().value();
  for (auto _ : state) {
    std::vector<Ticket> tickets;
    tickets.reserve(static_cast<size_t>(kThroughputStreams));
    for (int s = 0; s < kThroughputStreams; ++s) {
      tickets.push_back(fixture.service->IngestAsync(
          fixture.names[static_cast<size_t>(s)], fixture.NextBatch(s)));
    }
    fixture.service->Drain();
    for (const Ticket& ticket : tickets) SNS_CHECK(ticket.Wait().ok());
  }
  state.SetItemsProcessed(state.iterations() * kThroughputStreams *
                          kThroughputBatch);
  state.SetLabel("K=" + std::to_string(kThroughputStreams) + " streams, " +
                 (shards == 0 ? std::string("inline")
                              : "S=" + std::to_string(shards) + " shards"));

  // Telemetry snapshot into the JSON artifact: ingest-to-ticket latency of
  // the timed phase plus per-shard tuple rates (pinned streams make the
  // shard split deterministic).
  const telemetry::ServiceMetricsSnapshot after =
      fixture.service->Metrics().value();
  const telemetry::HistogramSnapshot timed =
      DiffHistogram(after.ingest_latency_ns, before.ingest_latency_ns);
  state.counters["sns_p99_ingest_ns"] = benchmark::Counter(
      static_cast<double>(timed.Percentile(0.99)));
  state.counters["sns_p50_ingest_ns"] = benchmark::Counter(
      static_cast<double>(timed.Percentile(0.50)));
  std::vector<double> shard_tuples(after.shards.size(), 0.0);
  for (const auto& stream : after.streams) {
    shard_tuples[static_cast<size_t>(stream.shard)] +=
        static_cast<double>(stream.tuples_ingested);
  }
  for (const auto& stream : before.streams) {
    shard_tuples[static_cast<size_t>(stream.shard)] -=
        static_cast<double>(stream.tuples_ingested);
  }
  for (size_t s = 0; s < shard_tuples.size(); ++s) {
    state.counters["sns_shard" + std::to_string(s) + "_tuples_per_s"] =
        benchmark::Counter(shard_tuples[s], benchmark::Counter::kIsRate);
  }
}
// Fixed iteration count (see BM_ProcessTuple): every configuration covers
// the identical ~12.8k-tuple workload, so items/s is comparable across
// shard counts and PRs. Real time, not CPU time — shard work happens off
// the main thread.
BENCHMARK(BM_ServiceThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(50)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Update algebra in isolation: a bounded synthetic window plus hand-built
// arrival/removal deltas, measuring EventUpdater::OnEvent alone — no
// scheduler, stopwatch, or ingestion bookkeeping. This is the quantity the
// zero-allocation workspace + Gram-product-cache refactor targets.

constexpr int64_t kAlgebraRank = 20;
constexpr int64_t kAlgebraActiveCells = 4000;
const std::vector<int64_t> kAlgebraDims = {265, 265, 10};  // W = 10.

struct UpdaterFixture {
  explicit UpdaterFixture(SnsVariant variant)
      : window(kAlgebraDims, kAlgebraActiveCells), rng(17) {
    // Steady-state window: kAlgebraActiveCells live cells in the newest
    // slice (the arrival steady state).
    for (int64_t i = 0; i < kAlgebraActiveCells; ++i) {
      const ModeIndex cell = NextCell();
      window.Add(cell, 1.0);
      active.push_back(cell);
    }
    Rng init_rng(23);
    state = CpdState(
        KruskalModel::Random(kAlgebraDims, kAlgebraRank, init_rng));
    // A few ALS sweeps stand in for InitializeWithAls: without a warm start
    // the unclipped variants drift into the pseudoinverse fallback.
    const bool is_mat = variant == SnsVariant::kMat;
    for (int i = 0; i < 3; ++i) {
      AlsSweep(window, state, /*normalize_columns=*/is_mat);
    }
    switch (variant) {
      case SnsVariant::kMat:
        updater = std::make_unique<SnsMatUpdater>();
        break;
      case SnsVariant::kVec:
        updater = std::make_unique<SnsVecUpdater>();
        break;
      case SnsVariant::kRnd:
        updater = std::make_unique<SnsRndUpdater>(20, 19);
        break;
      case SnsVariant::kVecPlus:
        updater = std::make_unique<SnsVecPlusUpdater>(1000.0);
        break;
      case SnsVariant::kRndPlus:
        updater = std::make_unique<SnsRndPlusUpdater>(20, 1000.0, 19);
        break;
    }
  }

  ModeIndex NextCell() {
    ModeIndex index;
    index.PushBack(static_cast<int32_t>(rng.UniformInt(0, 264)));
    index.PushBack(static_cast<int32_t>(rng.UniformInt(0, 264)));
    index.PushBack(9);  // Newest slice W−1.
    return index;
  }

  // One arrival event; once the window is at capacity, also one removal
  // event for the oldest live cell so nnz stays bounded.
  void NextEvent() {
    const ModeIndex cell = NextCell();
    window.Add(cell, 1.0);
    active.push_back(cell);
    FireArrival(cell, 1.0);
    if (static_cast<int64_t>(active.size()) > kAlgebraActiveCells) {
      const ModeIndex old = active.front();
      active.pop_front();
      window.Add(old, -1.0);
      FireArrival(old, -1.0);
    }
  }

  void FireArrival(const ModeIndex& cell, double value) {
    delta.kind = EventKind::kArrival;
    delta.w = 0;
    delta.tuple.index = ModeIndex{cell[0], cell[1]};
    delta.tuple.value = value;
    delta.cells.clear();
    delta.cells.push_back({cell, value});
    updater->OnEvent(window, delta, state);
  }

  SparseTensor window;
  Rng rng;
  CpdState state;
  std::unique_ptr<EventUpdater> updater;
  std::deque<ModeIndex> active;
  WindowDelta delta;  // Reused so delta construction is not measured.
};

void BM_UpdateEventAlgebra(benchmark::State& state) {
  UpdaterFixture fixture(static_cast<SnsVariant>(state.range(0)));
  for (auto _ : state) {
    fixture.NextEvent();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(VariantName(static_cast<SnsVariant>(state.range(0))));
}
// Fixed iteration count: the fixture feeds i.i.d. random unit cells, which
// the unclipped variants cannot fit — SNS-VEC's factors drift and
// eventually blow up (the paper's Observation 3), at which point the
// ill-conditioned Gram drops the solver into the (allocating, ~40× slower)
// pseudoinverse fallback. Letting google-benchmark pick the iteration
// count makes the mean race that cliff; 20k events per run keeps every
// variant in the same steady-state regime.
BENCHMARK(BM_UpdateEventAlgebra)
    ->Arg(static_cast<int>(SnsVariant::kVec))
    ->Arg(static_cast<int>(SnsVariant::kRnd))
    ->Arg(static_cast<int>(SnsVariant::kVecPlus))
    ->Arg(static_cast<int>(SnsVariant::kRndPlus))
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

void BM_UpdateEventAlgebraMat(benchmark::State& state) {
  UpdaterFixture fixture(SnsVariant::kMat);
  for (auto _ : state) {
    fixture.NextEvent();
  }
  state.SetLabel("SNS-MAT");
}
BENCHMARK(BM_UpdateEventAlgebraMat)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

// Algorithm 1 alone: window bookkeeping without factor updates.
void BM_WindowOnly(benchmark::State& state) {
  DatasetSpec spec = NewYorkTaxiPreset(0.4);
  ContinuousTensorWindow window(spec.stream.mode_dims,
                                spec.engine.window_size, spec.engine.period);
  Rng rng(11);
  int64_t now = 0;
  for (auto _ : state) {
    now += 1 + static_cast<int64_t>(rng.NextUint64(3));
    Tuple tuple;
    for (int64_t dim : spec.stream.mode_dims) {
      tuple.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    tuple.value = 1.0;
    tuple.time = now;
    window.AdvanceTo(now);
    benchmark::DoNotOptimize(window.Ingest(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowOnly);

// Gram-solver ablation: R x R solve via the production path (Cholesky with
// pseudoinverse fallback) vs always-pseudoinverse.
void BM_GramSolveProduction(benchmark::State& state) {
  const int64_t rank = state.range(0);
  Rng rng(13);
  Matrix a = Matrix::RandomNormal(4 * rank, rank, rng);
  Matrix h = MultiplyTransposeA(a, a);
  std::vector<double> b(static_cast<size_t>(rank), 1.0);
  std::vector<double> x(static_cast<size_t>(rank));
  for (auto _ : state) {
    SolveRowAgainstGram(h, b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_GramSolveProduction)->Arg(10)->Arg(20)->Arg(40);

// ---------------------------------------------------------------------------
// Storage-engine comparison: the flat entry pool (tensor/entry_pool.h)
// against a faithful replica of the pre-refactor storage — an
// std::unordered_map of per-entry structs with per-mode buckets holding full
// ModeIndex copies, std::function non-zero iteration, and a redundant
// Get() re-hash per slice entry during row MTTKRP. Both run the identical
// synthetic 3-mode workload: continuous-window churn (insert at the newest
// slice, expire the oldest active cell) followed by the per-event row-MTTKRP
// consumption of all three affected rows, i.e. the storage share of one
// SliceNStitch event.

/// Pre-refactor SparseTensor internals, preserved as the benchmark baseline.
class LegacyMapTensor {
 public:
  explicit LegacyMapTensor(std::vector<int64_t> dims)
      : dims_(std::move(dims)) {
    buckets_.resize(dims_.size());
    for (size_t m = 0; m < dims_.size(); ++m) {
      buckets_[m].resize(static_cast<size_t>(dims_[m]));
    }
  }

  double Get(const ModeIndex& index) const {
    auto it = entries_.find(index);
    return it == entries_.end() ? 0.0 : it->second.value;
  }

  double Add(const ModeIndex& index, double delta) {
    auto [it, inserted] = entries_.try_emplace(index);
    Entry& entry = it->second;
    if (inserted) {
      entry.value = delta;
      for (int m = 0; m < index.size(); ++m) {
        auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
        entry.bucket_pos[m] = static_cast<uint32_t>(bucket.size());
        bucket.push_back(index);
      }
    } else {
      entry.value += delta;
    }
    const double value = entry.value;
    if (std::fabs(value) < 1e-12) {
      for (int m = 0; m < index.size(); ++m) {
        auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
        const uint32_t pos = entry.bucket_pos[m];
        const uint32_t last = static_cast<uint32_t>(bucket.size()) - 1;
        if (pos != last) {
          bucket[pos] = bucket[last];
          entries_.find(bucket[pos])->second.bucket_pos[m] = pos;
        }
        bucket.pop_back();
      }
      entries_.erase(it);
      return 0.0;
    }
    return value;
  }

  const std::vector<ModeIndex>& SliceNonzeros(int mode, int64_t index) const {
    return buckets_[mode][index];
  }

  void ForEachNonzero(
      const std::function<void(const ModeIndex&, double)>& fn) const {
    for (const auto& [index, entry] : entries_) fn(index, entry.value);
  }

 private:
  struct Entry {
    double value;
    std::array<uint32_t, kMaxTensorModes> bucket_pos;
  };
  std::vector<int64_t> dims_;
  std::unordered_map<ModeIndex, Entry, ModeIndexHash> entries_;
  std::vector<std::vector<std::vector<ModeIndex>>> buckets_;
};

constexpr int64_t kStorageRank = 20;
constexpr int64_t kStorageActiveCells = 4000;
const std::vector<int64_t> kStorageDims = {265, 265, 10};

struct StorageWorkload {
  StorageWorkload() : rng(21) {
    for (size_t m = 0; m < kStorageDims.size(); ++m) {
      factors.push_back(
          Matrix::RandomUniform(kStorageDims[m], kStorageRank, rng));
    }
  }

  ModeIndex NextCell() {
    ModeIndex index;
    for (int64_t dim : kStorageDims) {
      index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    return index;
  }

  Rng rng;
  std::vector<Matrix> factors;
  std::deque<ModeIndex> active;
  AlignedVector had = AlignedVector(kStorageRank);
  AlignedVector out = AlignedVector(kStorageRank);
};

// One synthetic event against the legacy storage: churn + per-entry-Get row
// MTTKRP over the three affected rows.
void BM_StoragePerEventLegacyMap(benchmark::State& state) {
  LegacyMapTensor x(kStorageDims);
  StorageWorkload w;
  for (auto _ : state) {
    const ModeIndex cell = w.NextCell();
    x.Add(cell, 1.0);
    w.active.push_back(cell);
    if (static_cast<int64_t>(w.active.size()) > kStorageActiveCells) {
      x.Add(w.active.front(), -1.0);
      w.active.pop_front();
    }
    for (int mode = 0; mode < 3; ++mode) {
      std::fill(w.out.begin(), w.out.end(), 0.0);
      for (const ModeIndex& index : x.SliceNonzeros(mode, cell[mode])) {
        const double value = x.Get(index);  // The pre-refactor re-hash.
        HadamardRowProduct(w.factors, index, mode, w.had.data());
        for (int64_t r = 0; r < kStorageRank; ++r) {
          w.out[static_cast<size_t>(r)] +=
              value * w.had[static_cast<size_t>(r)];
        }
      }
      benchmark::DoNotOptimize(w.out.data());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("unordered_map storage (pre-refactor)");
}
BENCHMARK(BM_StoragePerEventLegacyMap)->Unit(benchmark::kMicrosecond);

// The same event against the flat entry pool, consuming slices through the
// value-carrying SliceView (MttkrpRow's access pattern).
void BM_StoragePerEventFlatPool(benchmark::State& state) {
  SparseTensor x(kStorageDims, kStorageActiveCells);
  StorageWorkload w;
  for (auto _ : state) {
    const ModeIndex cell = w.NextCell();
    x.Add(cell, 1.0);
    w.active.push_back(cell);
    if (static_cast<int64_t>(w.active.size()) > kStorageActiveCells) {
      x.Add(w.active.front(), -1.0);
      w.active.pop_front();
    }
    for (int mode = 0; mode < 3; ++mode) {
      MttkrpRow(x, w.factors, mode, cell[mode], w.out.data());
      benchmark::DoNotOptimize(w.out.data());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("flat entry pool");
}
BENCHMARK(BM_StoragePerEventFlatPool)->Unit(benchmark::kMicrosecond);

void BM_GramSolvePinvOnly(benchmark::State& state) {
  const int64_t rank = state.range(0);
  Rng rng(13);
  Matrix a = Matrix::RandomNormal(4 * rank, rank, rng);
  Matrix h = MultiplyTransposeA(a, a);
  std::vector<double> b(static_cast<size_t>(rank), 1.0);
  std::vector<double> x(static_cast<size_t>(rank));
  for (auto _ : state) {
    Matrix pinv = PseudoInverseSymmetric(h);
    RowTimesMatrix(b.data(), pinv, x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_GramSolvePinvOnly)->Arg(10)->Arg(20)->Arg(40);

// ---------------------------------------------------------------------------
// Per-kernel microbenchmarks of the SIMD kernel layer (the rank-R inner
// loops behind Theorem 4), across ranks hitting different dispatch
// specializations (8, 20, 32) and the generic fallback (40), and across
// kernel tiers (common/cpu_features.h). The RankKernelTable is resolved in
// the fixture, outside the timed region — exactly like the production path,
// where UpdateWorkspace::Prepare caches it per engine — so iterations
// measure the codelet, not the dispatch. Reported per-op, not per-event.

constexpr int64_t kKernelDim = 128;

// Second benchmark argument: which kernel tier to pin. Tiers the host or
// build cannot run are skipped (not silently measured as the generic
// fallback) so an intrinsic label in the JSON always means intrinsic code.
bool ResolveBenchTier(benchmark::State& state, KernelTier* tier) {
  switch (state.range(1)) {
    case 1:
      *tier = KernelTier::kAvx2;
      break;
    case 2:
      *tier = KernelTier::kAvx512;
      break;
    default:
      *tier = KernelTier::kGeneric;
      break;
  }
  if (!KernelTierCompiledIn(*tier) || !KernelTierSupported(*tier)) {
    state.SkipWithError("kernel tier not available on this host/build");
    return false;
  }
  return true;
}

#define SNS_KERNEL_BENCH_ARGS                            \
  ArgsProduct({{8, 20, 32, 40}, {0, 1, 2}})              \
      ->ArgNames({"rank", "tier"})

// One prepared 3-mode factor set + float32 mirrors + a pool of random cell
// indices. The factors are pre-quantized through float32 so the double and
// mixed paths read identical values.
struct KernelFixture {
  KernelFixture(int64_t rank, KernelTier tier)
      : rng(33), kr(&GetRankKernelTable(PaddedRank(rank), tier)) {
    for (int m = 0; m < 3; ++m) {
      Matrix f = Matrix::RandomUniform(kKernelDim, rank, rng);
      for (int64_t i = 0; i < f.rows(); ++i) {
        for (int64_t j = 0; j < rank; ++j) {
          f(i, j) = static_cast<double>(static_cast<float>(f(i, j)));
        }
      }
      Matrix32 f32;
      f32.AssignFromDouble(f);
      factors.push_back(std::move(f));
      factors32.push_back(std::move(f32));
    }
    for (int i = 0; i < 256; ++i) {
      ModeIndex cell;
      for (int m = 0; m < 3; ++m) {
        cell.PushBack(static_cast<int32_t>(rng.UniformInt(0, kKernelDim - 1)));
      }
      cells.push_back(cell);
    }
    out.Assign(rank, 0.0);
    had.Assign(rank, 0.0);
  }

  Rng rng;
  const RankKernelTable* kr;
  std::vector<Matrix> factors;
  std::vector<Matrix32> factors32;
  std::vector<ModeIndex> cells;
  AlignedVector out;
  AlignedVector had;
};

// Hadamard row product: out[r] = Π_{m≠skip} A(m)(i_m, r).
void BM_KernelHadamardRow(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  KernelFixture w(state.range(0), tier);
  size_t next = 0;
  for (auto _ : state) {
    HadamardRowProduct(w.factors, w.cells[next], /*skip_mode=*/0,
                       w.out.data(), *w.kr);
    benchmark::DoNotOptimize(w.out.data());
    next = (next + 1) % w.cells.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelHadamardRow)->SNS_KERNEL_BENCH_ARGS;

// Mixed-precision Hadamard row: float32 factor reads, double accumulation.
void BM_KernelHadamardRowF32(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  KernelFixture w(state.range(0), tier);
  size_t next = 0;
  for (auto _ : state) {
    HadamardRowProduct32(w.factors32, w.cells[next], /*skip_mode=*/0,
                         w.out.data(), *w.kr);
    benchmark::DoNotOptimize(w.out.data());
    next = (next + 1) % w.cells.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelHadamardRowF32)->SNS_KERNEL_BENCH_ARGS;

// Shared slice tensor of the row-MTTKRP benches.
SparseTensor MttkrpBenchTensor() {
  SparseTensor x({kKernelDim, kKernelDim, 10});
  Rng fill(37);
  for (int i = 0; i < 4000; ++i) {
    x.Add({static_cast<int32_t>(fill.UniformInt(0, kKernelDim - 1)),
           static_cast<int32_t>(fill.UniformInt(0, kKernelDim - 1)),
           static_cast<int32_t>(fill.UniformInt(0, 9))},
          1.0);
  }
  return x;
}

// Row-restricted MTTKRP over a steady-state slice (the fused 3-mode path).
void BM_KernelMttkrpRow(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  KernelFixture w(state.range(0), tier);
  SparseTensor x = MttkrpBenchTensor();
  int64_t row = 0;
  for (auto _ : state) {
    MttkrpRow(x, w.factors, /*mode=*/0, row, w.out.data(), w.had.data(),
              *w.kr);
    benchmark::DoNotOptimize(w.out.data());
    row = (row + 1) % kKernelDim;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelMttkrpRow)->SNS_KERNEL_BENCH_ARGS;

// Mixed-precision row MTTKRP (float32 factor reads, double accumulation).
void BM_KernelMttkrpRowF32(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  KernelFixture w(state.range(0), tier);
  SparseTensor x = MttkrpBenchTensor();
  int64_t row = 0;
  for (auto _ : state) {
    MttkrpRow32(x, w.factors32, /*mode=*/0, row, w.out.data(), w.had.data(),
                *w.kr);
    benchmark::DoNotOptimize(w.out.data());
    row = (row + 1) % kKernelDim;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelMttkrpRowF32)->SNS_KERNEL_BENCH_ARGS;

// Gram rank-1 update Q ← Q − p'p + a'a (Eq. 13).
void BM_KernelGramRankOneUpdate(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  const int64_t rank = state.range(0);
  Rng rng(41);
  Matrix factor = Matrix::RandomUniform(kKernelDim, rank, rng);
  Matrix gram = MultiplyTransposeA(factor, factor);
  const RankKernelTable& kr = GetRankKernelTable(gram.stride(), tier);
  AlignedVector old_row(rank), new_row(rank);
  for (int64_t r = 0; r < rank; ++r) {
    old_row[r] = rng.UniformDouble();
    new_row[r] = rng.UniformDouble();
  }
  bool flip = false;
  for (auto _ : state) {
    // Alternate directions so the Gram stays bounded across iterations.
    if (flip) {
      ApplyGramRowUpdate(gram, new_row.data(), old_row.data(), kr);
    } else {
      ApplyGramRowUpdate(gram, old_row.data(), new_row.data(), kr);
    }
    flip = !flip;
    benchmark::DoNotOptimize(gram.Row(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelGramRankOneUpdate)->SNS_KERNEL_BENCH_ARGS;

// Cholesky row solve x = b H⁻¹ against a prefactorized Gram (the per-row
// GramSolver fast path: copy + forward/back substitution).
void BM_KernelCholeskySolve(benchmark::State& state) {
  KernelTier tier;
  if (!ResolveBenchTier(state, &tier)) return;
  const int64_t rank = state.range(0);
  Rng rng(43);
  Matrix a = Matrix::RandomNormal(4 * rank, rank, rng);
  Matrix h = MultiplyTransposeA(a, a);
  for (int64_t i = 0; i < rank; ++i) h(i, i) += 1.0;
  GramSolver solver;
  solver.set_kernels(&GetRankKernelTable(0, tier));
  solver.Factorize(h);
  AlignedVector b(rank), x(rank);
  for (int64_t r = 0; r < rank; ++r) b[r] = rng.Normal();
  for (auto _ : state) {
    solver.Solve(b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCholeskySolve)->SNS_KERNEL_BENCH_ARGS;

}  // namespace
}  // namespace sns

// Custom main: default to a committed-friendly JSON artifact
// (BENCH_micro_update_latency.json) unless the caller picked an output.
//
// Provenance guard: numbers from a non-NDEBUG (Debug) build are
// meaningless for tracking — the binary refuses to run unless
// --sns_allow_debug is passed, and always tags the JSON context with
// sns_build so a Debug artifact can never masquerade as a Release run.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool allow_debug = false;
  for (auto it = args.begin() + 1; it != args.end();) {
    if (std::strcmp(*it, "--sns_allow_debug") == 0) {
      allow_debug = true;
      it = args.erase(it);  // google-benchmark rejects unknown flags.
    } else {
      ++it;
    }
  }
  // CPU provenance next to the build provenance: which SIMD features the
  // host reported and which kernel tier auto-dispatch picked, so committed
  // numbers are attributable to the codelets that actually ran.
  benchmark::AddCustomContext("sns_cpu", sns::CpuFeaturesSummary());
  benchmark::AddCustomContext(
      "sns_kernel_tier", sns::KernelTierName(sns::ResolveKernelTier()));
#ifdef NDEBUG
  benchmark::AddCustomContext("sns_build", "release");
#else
  benchmark::AddCustomContext("sns_build", "debug");
  if (!allow_debug) {
    std::fprintf(
        stderr,
        "bench_micro_update_latency: refusing to benchmark a Debug build "
        "(NDEBUG not set).\nBuild with -DCMAKE_BUILD_TYPE=Release, or pass "
        "--sns_allow_debug to run anyway\n(the JSON will be tagged "
        "\"sns_build\": \"debug\" and must not be committed).\n");
    return 2;
  }
  std::fprintf(stderr,
               "WARNING: Debug build — results are tagged \"sns_build\": "
               "\"debug\" and are not comparable.\n");
#endif
  (void)allow_debug;
  bool has_out = false;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string arg(args[i]);
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default artifact.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_update_latency.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
