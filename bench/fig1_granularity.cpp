// Regenerates Fig. 1(c,d,e): why neither coarse- nor fine-grained
// conventional CPD solves continuous analysis. For each update interval T'
// (1 hour down to seconds), conventional methods (ALS / OnlineSCP /
// CP-stream) decompose a window of W' = span/T' fine units; SliceNStitch
// (SNS-RND, T fixed at 1 hour) updates per event. Reported per method:
//   - update interval (Fig. 1 x-axis),
//   - fitness against the hourly window, with fine-grained time factors
//     merged to hourly rows first (footnote 7 of the paper),
//   - number of parameters (Fig. 1d),
//   - runtime per update (Fig. 1e).

#include <algorithm>
#include <cstdio>

#include "core/als.h"
#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"
#include "stream/continuous_window.h"
#include "stream/periodic_window.h"

namespace sns {
namespace {

// Builds the conventional window D(end_time, span/period) of the stream.
SparseTensor BuildWindow(const DataStream& stream, int64_t period,
                         int window_units, int64_t end_time) {
  PeriodicTensorWindow window(stream.mode_dims(), window_units, period);
  for (const Tuple& tuple : stream.tuples()) {
    if (tuple.time > end_time) break;
    window.AddTuple(tuple);
  }
  window.CloseUpTo(end_time);
  return window.WindowTensor();
}

struct GranularityRow {
  std::string method;
  std::string interval;
  double fitness = 0.0;
  int64_t parameters = 0;
  double micros_per_update = 0.0;
};

void Run() {
  PrintExperimentBanner(
      "Fig. 1(c,d,e) (continuous vs conventional CPD across granularity)",
      "finer T' costs many parameters and lower merged fitness; coarse T' "
      "updates rarely; SNS (T=1h) gets near-instant updates, few parameters "
      "and high fitness simultaneously");

  DatasetSpec spec = NewYorkTaxiPreset(BenchEventScaleFromEnv());
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  const int64_t coarse_period = spec.engine.period;            // 1 hour.
  const int w_size = spec.engine.window_size;                  // 10.
  const int64_t span = coarse_period * w_size;                 // 10 hours.
  const int64_t end_time =
      (stream.end_time() / coarse_period) * coarse_period;     // Hour mark.
  const int64_t rank = spec.engine.rank;

  // Hourly reference window every method is evaluated against.
  SparseTensor hourly = BuildWindow(stream, coarse_period, w_size, end_time);
  std::printf("Reference hourly window: nnz=%lld\n",
              static_cast<long long>(hourly.nnz()));

  std::vector<GranularityRow> rows;
  int64_t mode_sum = 0;
  for (int64_t dim : stream.mode_dims()) mode_sum += dim;

  for (int64_t fine_period : {int64_t{10}, int64_t{60}, int64_t{600},
                              int64_t{3600}}) {
    const int fine_units = static_cast<int>(span / fine_period);
    const int64_t merge_group = coarse_period / fine_period;
    SparseTensor fine_window =
        BuildWindow(stream, fine_period, fine_units, end_time);

    // --- Batch ALS at this granularity (one decomposition = one update).
    {
      Rng rng(spec.engine.seed + 3);
      Stopwatch timer;
      KruskalModel model =
          AlsDecompose(fine_window, rank, spec.engine.init, rng);
      const double micros = timer.ElapsedMicros();
      const double fitness =
          MergeTimeRows(model, merge_group).Fitness(hourly);
      rows.push_back({"ALS", std::to_string(fine_period) + "s", fitness,
                      model.NumParameters(), micros});
    }

    // --- Incremental baselines at this granularity: init on the window one
    // hour before the end, then stream the last hour period-by-period.
    for (const char* name : {"OnlineSCP", "CP-stream"}) {
      DatasetSpec fine_spec = spec;
      fine_spec.engine.period = fine_period;
      fine_spec.engine.window_size = fine_units;
      std::unique_ptr<PeriodicAlgorithm> algorithm =
          MakeBaseline(name, fine_spec);

      PeriodicTensorWindow window(stream.mode_dims(), fine_units,
                                  fine_period);
      const int64_t init_boundary = end_time - coarse_period;
      size_t i = 0;
      const auto& tuples = stream.tuples();
      for (; i < tuples.size() && tuples[i].time <= init_boundary; ++i) {
        window.AddTuple(tuples[i]);
      }
      window.CloseUpTo(init_boundary);
      Rng rng(spec.engine.seed + 7);
      algorithm->Initialize(window.WindowTensor(), rng);

      double total_micros = 0.0;
      int64_t update_count = 0;
      for (int64_t boundary = init_boundary + fine_period;
           boundary <= end_time; boundary += fine_period) {
        while (i < tuples.size() && tuples[i].time <= boundary) {
          window.AddTuple(tuples[i]);
          ++i;
        }
        window.CloseUpTo(boundary);
        Stopwatch timer;
        algorithm->OnPeriod(window.WindowTensor(), window.NewestUnit());
        total_micros += timer.ElapsedMicros();
        ++update_count;
      }
      const double fitness =
          MergeTimeRows(algorithm->model(), merge_group).Fitness(hourly);
      rows.push_back({name, std::to_string(fine_period) + "s", fitness,
                      algorithm->model().NumParameters(),
                      total_micros / static_cast<double>(update_count)});
    }
  }

  // --- SliceNStitch: SNS-RND with T fixed at one hour, per-event updates.
  {
    RunResult result = RunContinuous(spec, stream, SnsVariant::kRnd);
    const double fitness = result.fitness_curve.empty()
                               ? 0.0
                               : result.fitness_curve.back().fitness;
    rows.push_back({"SliceNStitch (SNS-RND)", "per event (~1s)", fitness,
                    rank * (mode_sum + w_size), result.mean_update_micros});
  }

  TableReporter table({"Method", "Update interval", "Fitness (hourly)",
                       "#Parameters", "Runtime/update (us)"});
  for (const GranularityRow& row : rows) {
    table.AddRow({row.method, row.interval, TableReporter::Num(row.fitness, 3),
                  std::to_string(row.parameters),
                  TableReporter::Num(row.micros_per_update, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
