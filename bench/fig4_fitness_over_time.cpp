// Regenerates Fig. 4: relative fitness (fitness / ALS fitness) over time for
// every SliceNStitch variant (updated per event, sampled at boundaries) and
// every baseline (updated once per period) on all four datasets.

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

const char* kBaselines[] = {"ALS", "OnlineSCP", "CP-stream", "NeCPD(1)",
                            "NeCPD(10)"};
const SnsVariant kVariants[] = {SnsVariant::kMat, SnsVariant::kVec,
                                SnsVariant::kRnd, SnsVariant::kVecPlus,
                                SnsVariant::kRndPlus};

void RunDataset(const DatasetSpec& spec) {
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  // ALS per boundary is both a method and the relative-fitness denominator.
  RunResult als = RunPeriodic(spec, stream, MakeBaseline("ALS", spec));

  std::vector<RunResult> results;
  for (SnsVariant variant : kVariants) {
    results.push_back(RunContinuous(spec, stream, variant));
  }
  for (const char* name : kBaselines) {
    if (std::string(name) == "ALS") {
      results.push_back(als);
      continue;
    }
    results.push_back(RunPeriodic(spec, stream, MakeBaseline(name, spec)));
  }

  // Print the curves: one column per method, one row per boundary (time
  // expressed in periods since the live phase began).
  std::printf("\nRelative fitness over time (1.0 = batch ALS):\n");
  std::vector<std::vector<FitnessSample>> curves;
  std::vector<std::string> headers = {"period"};
  for (const RunResult& result : results) {
    curves.push_back(RelativeTo(result.fitness_curve, als.fitness_curve));
    headers.push_back(result.method);
  }
  TableReporter table(headers);
  for (size_t row = 0; row < als.fitness_curve.size(); ++row) {
    const int64_t time = als.fitness_curve[row].time;
    std::vector<std::string> cells = {std::to_string(row + 1)};
    for (const auto& curve : curves) {
      std::string cell = "-";
      for (const FitnessSample& sample : curve) {
        if (sample.time == time) {
          cell = TableReporter::Num(sample.fitness, 3);
          break;
        }
      }
      cells.push_back(cell);
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  std::printf("Mean relative fitness: ");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%s=%.3f ", results[i].method.c_str(), MeanOf(curves[i]));
  }
  std::printf("\n");
}

void Run() {
  PrintExperimentBanner(
      "Fig. 4 (relative fitness over time)",
      "stable SNS variants (MAT/+VEC/+RND) track 0.7-1.0 of ALS "
      "continuously; SNS-VEC / SNS-RND may degrade or diverge; NeCPD lowest");
  for (const DatasetSpec& spec : AllDatasetPresets(BenchEventScaleFromEnv())) {
    RunDataset(spec);
  }
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
