// Regenerates Fig. 5: (a) runtime per update and (b) average relative
// fitness, for every method on all four datasets — the paper's headline
// speed/accuracy trade-off (SNS+RND up to 464x faster than CP-stream with
// 72-100% of the best fitness).

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

struct MethodSummary {
  std::string method;
  double update_micros = 0.0;
  double mean_relative_fitness = 0.0;
};

std::vector<MethodSummary> RunDataset(const DatasetSpec& spec) {
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  RunResult als = RunPeriodic(spec, stream, MakeBaseline("ALS", spec));

  std::vector<RunResult> results;
  for (SnsVariant variant :
       {SnsVariant::kRndPlus, SnsVariant::kVecPlus, SnsVariant::kRnd,
        SnsVariant::kVec, SnsVariant::kMat}) {
    results.push_back(RunContinuous(spec, stream, variant));
  }
  for (const char* name : {"CP-stream", "OnlineSCP", "NeCPD(1)", "NeCPD(10)"}) {
    results.push_back(RunPeriodic(spec, stream, MakeBaseline(name, spec)));
  }
  results.push_back(als);

  std::vector<MethodSummary> summaries;
  TableReporter table({"Method", "Update granularity", "Runtime/update (us)",
                       "Avg relative fitness"});
  for (const RunResult& result : results) {
    MethodSummary summary;
    summary.method = result.method;
    summary.update_micros = result.mean_update_micros;
    summary.mean_relative_fitness =
        MeanOf(RelativeTo(result.fitness_curve, als.fitness_curve));
    summaries.push_back(summary);
    const bool continuous = result.method.rfind("SNS", 0) == 0;
    table.AddRow({summary.method, continuous ? "per event" : "per period",
                  TableReporter::Num(summary.update_micros, 1),
                  TableReporter::Num(summary.mean_relative_fitness, 3)});
  }
  table.Print();

  // Paper headline: speedup of the fastest stable SNS over the fastest
  // per-period baseline update.
  double sns_rnd_plus = 0.0, best_baseline = 1e300;
  for (const MethodSummary& summary : summaries) {
    if (summary.method == "SNS+RND") sns_rnd_plus = summary.update_micros;
    if (summary.method == "CP-stream" || summary.method == "OnlineSCP") {
      best_baseline = std::min(best_baseline, summary.update_micros);
    }
  }
  if (sns_rnd_plus > 0.0) {
    std::printf("SNS+RND vs fastest online baseline: %.0fx faster per update\n",
                best_baseline / sns_rnd_plus);
  }
  return summaries;
}

void Run() {
  PrintExperimentBanner(
      "Fig. 5 (runtime per update & average relative fitness)",
      "SNS variants update in us-scale, orders faster than per-period "
      "baselines; fitness order SNS-MAT > SNS+VEC > SNS+RND, all within "
      "0.72-1.0 of ALS");
  for (const DatasetSpec& spec : AllDatasetPresets(BenchEventScaleFromEnv())) {
    RunDataset(spec);
  }
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
