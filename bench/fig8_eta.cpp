// Regenerates Fig. 8: effect of the clipping bound η on the relative fitness
// of SNS+VEC and SNS+RND. Expected: fitness is insensitive to η as long as η
// is large enough, and degrades when η clips genuine factor mass (η does not
// affect speed, so only fitness is reported).

#include <cstdio>

#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"

namespace sns {
namespace {

void RunDataset(const DatasetSpec& spec) {
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  RunResult als = RunPeriodic(spec, stream, MakeBaseline("ALS", spec));

  TableReporter table({"eta", "SNS+VEC rel.fit", "SNS+RND rel.fit"});
  for (double eta : {32.0, 100.0, 320.0, 1000.0, 3200.0, 16000.0}) {
    auto with_eta = [eta](ContinuousCpdOptions& options) {
      options.clip_bound = eta;
    };
    RunResult vec_plus =
        RunContinuous(spec, stream, SnsVariant::kVecPlus, with_eta);
    RunResult rnd_plus =
        RunContinuous(spec, stream, SnsVariant::kRndPlus, with_eta);
    table.AddRow(
        {TableReporter::Num(eta, 0),
         TableReporter::Num(
             MeanOf(RelativeTo(vec_plus.fitness_curve, als.fitness_curve)), 3),
         TableReporter::Num(
             MeanOf(RelativeTo(rnd_plus.fitness_curve, als.fitness_curve)),
             3)});
  }
  table.Print();
}

void Run() {
  PrintExperimentBanner(
      "Fig. 8 (effect of the clipping bound eta)",
      "fitness of SNS+VEC / SNS+RND is flat across eta once eta is large "
      "enough (32 .. 16000 sweep, as in the paper)");
  for (const DatasetSpec& spec : AllDatasetPresets(BenchEventScaleFromEnv())) {
    RunDataset(spec);
  }
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
