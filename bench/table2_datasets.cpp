// Regenerates Table II: summary of the datasets (size, #non-zeros, density),
// reporting the synthetic stand-ins side by side with the paper's numbers.

#include <cstdio>

#include "data/datasets.h"
#include "experiments/report.h"
#include "stream/periodic_window.h"

namespace sns {
namespace {

void Run() {
  PrintExperimentBanner(
      "Table II (dataset summary)",
      "four sparse tensors with densities spanning 1e-2 .. 1e-6; Chicago "
      "Crime densest, Ride Austin sparsest");

  const double scale = BenchEventScaleFromEnv();
  TableReporter table({"Name", "Size (this run)", "#Nonzeros", "Density",
                       "Paper size", "Paper #nnz", "Paper density"});

  for (const DatasetSpec& spec : AllDatasetPresets(scale)) {
    auto stream = GenerateSyntheticStream(spec.stream);
    SNS_CHECK(stream.ok());

    // Aggregate the whole stream at period granularity (the tensor of the
    // paper's Table II) and count non-zeros / density.
    const int64_t num_periods = spec.stream.time_span / spec.engine.period;
    PeriodicTensorWindow window(spec.stream.mode_dims,
                                static_cast<int>(num_periods),
                                spec.engine.period);
    for (const Tuple& tuple : stream.value().tuples()) window.AddTuple(tuple);
    window.CloseUpTo(spec.stream.time_span);
    SparseTensor tensor = window.WindowTensor();

    double cells = static_cast<double>(num_periods);
    std::string size;
    for (int64_t dim : spec.stream.mode_dims) {
      cells *= static_cast<double>(dim);
      size += std::to_string(dim) + "x";
    }
    size += std::to_string(num_periods) + " [T]";

    table.AddRow({spec.paper_name, size, std::to_string(tensor.nnz()),
                  TableReporter::Sci(static_cast<double>(tensor.nnz()) / cells),
                  spec.paper_size,
                  TableReporter::Num(spec.paper_nnz_millions, 2) + "M",
                  TableReporter::Sci(spec.paper_density)});
  }
  table.Print();
  std::printf(
      "\nNote: sizes use one index per period T (the paper reports raw\n"
      "timestamp resolution); densities are comparable order-of-magnitude.\n");
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
