// Regenerates Fig. 9: anomaly detection on the New York Taxi stream. 20
// abnormally large changes (5x the maximum single-event change) are injected
// at random times/entries; each method flags the top-20 z-scores of its
// reconstruction errors. SliceNStitch (SNS+RND) scores every event the
// instant it arrives, so its occurrence-to-detection gap is its per-event
// update latency; the per-period baselines must wait for the period to
// close (gap ~ T/2 on average, >1400s in the paper).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>

#include "api/stream_handle.h"
#include "apps/anomaly_detection.h"
#include "baselines/periodic_algorithm.h"
#include "data/datasets.h"
#include "experiments/harness.h"
#include "experiments/report.h"
#include "stream/periodic_window.h"

namespace sns {
namespace {

constexpr int kInjected = 20;
constexpr double kSpikeMagnitude = 15.0;  // 5x the max 1-second change (=3).

// The continuous detector scores arrivals by the robust decomposition's
// separated outlier signal (X = L + S): an arrival's score is the mass the
// soft threshold diverted into S, which is exactly zero for events the
// low-rank model explains. Set SNS_ANOMALY_ABS_ERROR=1 to fall back to the
// legacy z-scored reconstruction-error detector (robust mode off).
bool UseLegacyAbsError() {
  return std::getenv("SNS_ANOMALY_ABS_ERROR") != nullptr;
}

struct DetectorResult {
  std::string method;
  double precision_at_k = 0.0;
  double mean_gap_seconds = 0.0;  // Occurrence -> detection.
  int64_t scored = 0;
};

// Scores every arrival through the facade's typed event view.
class DetectorSink : public EventSink {
 public:
  explicit DetectorSink(bool use_abs_error) : use_abs_error_(use_abs_error) {}

  void OnStreamEvent(const StreamEvent& event) override {
    if (event.kind() != EventKind::kArrival || event.empty()) return;
    // The outlier capture needs no z-normalization: it is already the
    // residual mass beyond the soft threshold, zero for explained events.
    const double score = use_abs_error_
                             ? stats_.ScoreAndUpdate(event.AbsError())
                             : std::fabs(event.OutlierCapture());
    detections_.push_back({event.time(), event.tuple().index, score, false});
  }

  std::vector<Detection>& detections() { return detections_; }

 private:
  bool use_abs_error_;
  RunningZScore stats_;
  std::vector<Detection> detections_;
};

DetectorResult RunContinuousDetector(const DatasetSpec& spec,
                                     const DataStream& stream,
                                     const std::vector<InjectedAnomaly>& truth) {
  const bool use_abs_error = UseLegacyAbsError();
  ContinuousCpdOptions engine = spec.engine;
  if (!use_abs_error) {
    // Robust mode separates the spikes into S instead of letting them
    // pollute the factors; the capture threshold sits well above the
    // normal per-event residual (max clean change is 3) and well below
    // the injected magnitude.
    engine.robust.enabled = true;
    engine.robust.threshold = kSpikeMagnitude / 2.5;
    engine.robust.decay = 0.5;
    engine.robust.capacity = 4096;
  }
  auto created = StreamHandle::Create("taxi", stream.mode_dims(), engine);
  SNS_CHECK(created.ok());
  StreamHandle taxi = std::move(created).value();

  DetectorSink sink(use_abs_error);
  SNS_CHECK(taxi.AddSink(&sink).ok());

  const int64_t warmup_end = spec.WarmupEndTime();
  const std::span<const Tuple> tuples(stream.tuples());
  const size_t i = static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  SNS_CHECK(taxi.Warmup(tuples.subspan(0, i)).ok());
  SNS_CHECK(taxi.Initialize().ok());
  SNS_CHECK(taxi.Ingest(tuples.subspan(i)).ok());

  LabelDetections(truth, /*time_slack=*/0, &sink.detections());
  DetectorResult result;
  result.method =
      std::string(taxi.variant_name()) + (use_abs_error ? "" : "+S");
  result.precision_at_k = PrecisionAtTopK(sink.detections(), kInjected);
  // Detection is instantaneous in stream time; the real gap is the per-event
  // computation latency.
  result.mean_gap_seconds = taxi.Stats().mean_update_micros * 1e-6;
  result.scored = static_cast<int64_t>(sink.detections().size());
  return result;
}

DetectorResult RunPeriodicDetector(const DatasetSpec& spec,
                                   const DataStream& stream,
                                   const std::vector<InjectedAnomaly>& truth,
                                   const std::string& baseline) {
  PeriodicTensorWindow window(stream.mode_dims(), spec.engine.window_size,
                              spec.engine.period);
  std::unique_ptr<PeriodicAlgorithm> algorithm = MakeBaseline(baseline, spec);

  std::vector<Detection> detections;
  RunningZScore stats;
  const int w_newest = spec.engine.window_size - 1;

  const int64_t warmup_end = spec.WarmupEndTime();
  size_t i = 0;
  const auto& tuples = stream.tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    window.AddTuple(tuples[i]);
  }
  window.CloseUpTo(warmup_end);
  Rng rng(spec.engine.seed + 41);
  algorithm->Initialize(window.WindowTensor(), rng);

  int64_t next_boundary = warmup_end + spec.engine.period;
  auto run_boundary = [&](int64_t boundary) {
    window.CloseUpTo(boundary);
    SparseTensor window_tensor = window.WindowTensor();
    SparseTensor unit = window.NewestUnit();
    algorithm->OnPeriod(window_tensor, unit);
    // Score every entry of the newest unit against the refreshed model.
    unit.ForEachNonzero([&](const ModeIndex& index, double value) {
      const double predicted = algorithm->model().Evaluate(
          index.WithAppended(static_cast<int32_t>(w_newest)));
      const double error = std::fabs(value - predicted);
      detections.push_back(
          {boundary, index, stats.ScoreAndUpdate(error), false});
    });
  };
  for (; i < tuples.size(); ++i) {
    while (tuples[i].time > next_boundary) {
      run_boundary(next_boundary);
      next_boundary += spec.engine.period;
    }
    window.AddTuple(tuples[i]);
  }
  run_boundary(next_boundary);

  LabelDetections(truth, /*time_slack=*/spec.engine.period, &detections);
  DetectorResult result;
  result.method = baseline;
  result.precision_at_k = PrecisionAtTopK(detections, kInjected);
  result.mean_gap_seconds = MeanDetectionDelay(
      truth, detections, kInjected,
      /*miss_penalty=*/static_cast<double>(spec.engine.period));
  result.scored = static_cast<int64_t>(detections.size());
  return result;
}

void Run() {
  PrintExperimentBanner(
      "Fig. 9 (anomaly detection on New York Taxi)",
      "SNS+RND and OnlineSCP reach precision ~0.8 @ top-20; SNS+RND detects "
      "in ~milliseconds (computation only) while per-period methods wait "
      "~T/2 (>1400s in the paper)");

  DatasetSpec spec = NewYorkTaxiPreset(BenchEventScaleFromEnv());
  auto clean = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(clean.ok());

  Rng rng(4242);
  std::vector<InjectedAnomaly> truth;
  DataStream stream =
      InjectAnomalies(clean.value(), kInjected, kSpikeMagnitude,
                      spec.WarmupEndTime() + spec.engine.period, rng, &truth);
  PrintDatasetLine(spec, stream.size());
  std::printf("Injected %d spikes of value %.0f after t=%lld\n", kInjected,
              kSpikeMagnitude,
              static_cast<long long>(spec.WarmupEndTime()));

  std::vector<DetectorResult> results;
  results.push_back(RunContinuousDetector(spec, stream, truth));
  results.push_back(RunPeriodicDetector(spec, stream, truth, "OnlineSCP"));
  results.push_back(RunPeriodicDetector(spec, stream, truth, "CP-stream"));

  TableReporter table({"Method", "Precision@20", "Mean gap (s)",
                       "#Scored", "Paper precision", "Paper gap (s)"});
  const char* paper_precision[] = {"0.80", "0.80", "0.70"};
  const char* paper_gap[] = {"0.0015", "1601.00", "1424.57"};
  for (size_t i = 0; i < results.size(); ++i) {
    table.AddRow({results[i].method,
                  TableReporter::Num(results[i].precision_at_k, 2),
                  TableReporter::Num(results[i].mean_gap_seconds, 6),
                  std::to_string(results[i].scored), paper_precision[i],
                  paper_gap[i]});
  }
  table.Print();
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
