// Ablation (DESIGN.md): the event-driven continuous tensor model
// (Algorithm 1) versus rebuilding D(t, W) from scratch at every event — the
// "computationally prohibitive" strawman of §IV-B — plus an empirical check
// of the Theorem 1/2 bounds (O(MW) events per tuple, space linear in active
// tuples).

#include <cstdio>

#include "common/stopwatch.h"
#include "data/datasets.h"
#include "experiments/report.h"
#include "stream/continuous_window.h"

namespace sns {
namespace {

// Rebuild cost model: construct D(t, W) from the active tuples at each
// event. To keep the strawman affordable we rebuild on a 1-in-100 sample of
// events and extrapolate.
void Run() {
  PrintExperimentBanner(
      "Ablation: event-driven window vs rebuild-from-scratch",
      "per-event maintenance is microseconds and independent of window "
      "size; rebuilding scales with the non-zeros in the window");

  DatasetSpec spec = NewYorkTaxiPreset(BenchEventScaleFromEnv());
  auto stream_or = GenerateSyntheticStream(spec.stream);
  SNS_CHECK(stream_or.ok());
  const DataStream& stream = stream_or.value();
  PrintDatasetLine(spec, stream.size());

  // --- Event-driven maintenance (Algorithm 1).
  ContinuousTensorWindow window(spec.stream.mode_dims,
                                spec.engine.window_size, spec.engine.period);
  int64_t events = 0;
  Stopwatch incremental_timer;
  for (const Tuple& tuple : stream.tuples()) {
    window.AdvanceTo(tuple.time, [&](const WindowDelta&) { ++events; });
    window.Ingest(tuple);
    ++events;
  }
  const double incremental_seconds = incremental_timer.ElapsedSeconds();

  // Theorem 1: (W+1) events per tuple once every tuple has fully aged.
  const double events_per_tuple =
      static_cast<double>(events) / static_cast<double>(stream.size());

  // --- Rebuild-from-scratch strawman (sampled).
  std::vector<Tuple> active;
  int64_t rebuilds = 0;
  double rebuild_seconds = 0.0;
  size_t oldest = 0;
  const auto& tuples = stream.tuples();
  for (size_t i = 0; i < tuples.size(); ++i) {
    while (oldest < i &&
           tuples[oldest].time + spec.engine.period * spec.engine.window_size <=
               tuples[i].time) {
      ++oldest;
    }
    if (i % 100 != 0) continue;
    Stopwatch timer;
    ContinuousTensorWindow rebuilt(spec.stream.mode_dims,
                                   spec.engine.window_size,
                                   spec.engine.period);
    for (size_t j = oldest; j <= i; ++j) {
      rebuilt.AdvanceTo(tuples[j].time);
      rebuilt.Ingest(tuples[j]);
    }
    rebuild_seconds += timer.ElapsedSeconds();
    ++rebuilds;
  }

  TableReporter table({"Strategy", "us per event", "Events/tuple",
                       "Peak active tuples"});
  table.AddRow({"Event-driven (Alg. 1)",
                TableReporter::Num(incremental_seconds * 1e6 /
                                       static_cast<double>(events),
                                   2),
                TableReporter::Num(events_per_tuple, 2),
                std::to_string(window.ActiveTupleCount())});
  table.AddRow({"Rebuild per event (sampled 1/100)",
                TableReporter::Num(rebuild_seconds * 1e6 /
                                       static_cast<double>(rebuilds),
                                   2),
                "-", "-"});
  table.Print();
  std::printf(
      "\nTheorem 1 predicts at most W+1 = %d events per tuple (tuples still "
      "in\nthe window at stream end have pending events): measured %.2f.\n",
      spec.engine.window_size + 1, events_per_tuple);
}

}  // namespace
}  // namespace sns

int main() {
  sns::Run();
  return 0;
}
