#include "durability/journal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "tensor/mode_index.h"

namespace sns {
namespace durability {
namespace {

namespace fs = std::filesystem;

constexpr size_t kSegmentHeaderBytes = 12;  // u64 magic + u32 version.
constexpr size_t kRecordFrameBytes = 8;     // u32 size + u32 crc.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

std::string SegmentFileName(int64_t number) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08lld.seg",
                static_cast<long long>(number));
  return name;
}

/// Segment number of a `wal-NNNNNNNN.seg` file name, or -1.
int64_t ParseSegmentNumber(std::string_view name) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".seg";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.substr(0, prefix.size()) != prefix ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return -1;
  }
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  int64_t number = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    number = number * 10 + (c - '0');
  }
  return number;
}

std::string EncodeRecord(uint64_t sequence, JournalOpType op, int64_t time,
                         std::span<const Tuple> tuples) {
  serial::StringSink payload;
  serial::Writer w(payload);
  w.U64(sequence);
  w.U8(static_cast<uint8_t>(op));
  w.I64(time);
  w.U64(tuples.size());
  for (const Tuple& tuple : tuples) {
    w.U32(static_cast<uint32_t>(tuple.index.size()));
    for (int m = 0; m < tuple.index.size(); ++m) w.I32(tuple.index[m]);
    w.F64(tuple.value);
    w.I64(tuple.time);
  }
  return payload.TakeData();
}

/// Removes the torn tail of the final segment from disk. A later
/// JournalWriter::Open starts a fresh, higher-numbered segment, so a torn
/// tail left in place would sit at the end of a non-last segment forever and
/// turn every subsequent replay into kDataLoss. Truncating is safe: the torn
/// record was never acknowledged. A segment too short to hold even its
/// header (a crash during segment creation — the header is flushed before
/// any record) is removed whole.
Status RepairTornTail(const std::string& path, size_t intact_bytes) {
  std::error_code ec;
  if (intact_bytes < kSegmentHeaderBytes) {
    fs::remove(path, ec);
  } else {
    fs::resize_file(path, intact_bytes, ec);
  }
  if (ec) {
    return Status::IOError("cannot truncate torn tail of journal segment '" +
                           path + "': " + ec.message());
  }
  return Status::OK();
}

StatusOr<JournalRecord> DecodeRecord(std::string_view payload) {
  serial::StringSource source(payload);
  serial::Reader r(source);
  JournalRecord record;
  SNS_RETURN_IF_ERROR(r.U64(&record.sequence));
  uint8_t op = 0;
  SNS_RETURN_IF_ERROR(r.U8(&op));
  if (op < static_cast<uint8_t>(JournalOpType::kWarmup) ||
      op > static_cast<uint8_t>(JournalOpType::kAdvanceTo)) {
    return Status::DataLoss("journal record has unknown op " +
                            std::to_string(op));
  }
  record.op = static_cast<JournalOpType>(op);
  SNS_RETURN_IF_ERROR(r.I64(&record.time));
  uint64_t count = 0;
  SNS_RETURN_IF_ERROR(r.U64(&count));
  if (count > payload.size()) {  // Every tuple takes > 1 payload byte.
    return Status::DataLoss("journal record tuple count is implausible");
  }
  record.tuples.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Tuple tuple;
    uint32_t arity = 0;
    SNS_RETURN_IF_ERROR(r.U32(&arity));
    if (arity > static_cast<uint32_t>(kMaxTensorModes)) {
      return Status::DataLoss("journal tuple arity is implausible");
    }
    for (uint32_t m = 0; m < arity; ++m) {
      int32_t c = 0;
      SNS_RETURN_IF_ERROR(r.I32(&c));
      tuple.index.PushBack(c);
    }
    SNS_RETURN_IF_ERROR(r.F64(&tuple.value));
    SNS_RETURN_IF_ERROR(r.I64(&tuple.time));
    record.tuples.push_back(std::move(tuple));
  }
  if (source.remaining() != 0) {
    return Status::DataLoss("journal record carries trailing bytes");
  }
  return record;
}

}  // namespace

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& directory, const JournalOptions& options) {
  if (options.max_segment_bytes < 1) {
    return Status::InvalidArgument("max_segment_bytes must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create journal directory '" + directory +
                           "': " + ec.message());
  }
  int64_t max_segment = 0;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    max_segment = std::max(
        max_segment, ParseSegmentNumber(entry.path().filename().string()));
  }
  if (ec) {
    return Status::IOError("cannot list journal directory '" + directory +
                           "': " + ec.message());
  }
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(directory, options, max_segment + 1));
  SNS_RETURN_IF_ERROR(writer->OpenNextSegment());
  return writer;
}

JournalWriter::~JournalWriter() = default;

Status JournalWriter::OpenNextSegment() {
  if (SNS_FAILPOINT("journal.rotate")) {
    return failpoint::InjectedFailure("journal.rotate");
  }
  auto sink = serial::FileSink::Open(directory_ + "/" +
                                     SegmentFileName(next_segment_));
  if (!sink.ok()) return sink.status();
  segment_ =
      std::make_unique<serial::FileSink>(std::move(sink).value());
  serial::Writer w(*segment_);
  w.U64(kJournalMagic);
  w.U32(kJournalVersion);
  SNS_RETURN_IF_ERROR(w.status());
  SNS_RETURN_IF_ERROR(segment_->Flush());
  segment_bytes_ = static_cast<int64_t>(kSegmentHeaderBytes);
  ++next_segment_;
  ++segments_opened_;
  return Status::OK();
}

Status JournalWriter::Append(uint64_t sequence, JournalOpType op,
                             int64_t time, std::span<const Tuple> tuples) {
  if (segment_ == nullptr) {
    return Status::FailedPrecondition("journal writer is not open");
  }
  // Clean append failure: nothing reaches the segment (contrast with the
  // torn-write shape injected at "serial.file_sink_short_write").
  if (SNS_FAILPOINT("journal.append")) {
    return failpoint::InjectedFailure("journal.append");
  }
  const std::string payload = EncodeRecord(sequence, op, time, tuples);
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record exceeds the 64 MiB cap");
  }
  const int64_t frame =
      static_cast<int64_t>(kRecordFrameBytes + payload.size());
  if (segment_bytes_ > static_cast<int64_t>(kSegmentHeaderBytes) &&
      segment_bytes_ + frame > options_.max_segment_bytes) {
    SNS_RETURN_IF_ERROR(OpenNextSegment());
  }
  serial::Writer w(*segment_);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload.data(), payload.size()));
  w.Bytes(payload.data(), payload.size());
  SNS_RETURN_IF_ERROR(w.status());
  // Write-ahead flush: the record must reach the OS before the operation is
  // applied and acknowledged, or a process crash could lose an acked op.
  SNS_RETURN_IF_ERROR(segment_->Flush(options_.sync_each_record));
  segment_bytes_ += frame;
  bytes_appended_ += frame;
  return Status::OK();
}

StatusOr<ReplayStats> ReplayJournal(
    const std::string& directory, uint64_t after_sequence,
    const std::function<Status(const JournalRecord&)>& apply) {
  ReplayStats stats;
  std::error_code ec;
  if (!fs::exists(directory, ec) || ec) return stats;  // No journal: empty.
  std::vector<std::pair<int64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const int64_t number =
        ParseSegmentNumber(entry.path().filename().string());
    if (number >= 0) segments.emplace_back(number, entry.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list journal directory '" + directory +
                           "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());

  uint64_t prev_sequence = 0;
  for (size_t s = 0; s < segments.size(); ++s) {
    const bool last_segment = s + 1 == segments.size();
    const std::string& path = segments[s].second;
    auto contents = serial::ReadFileToString(path);
    if (!contents.ok()) return contents.status();
    const std::string& data = contents.value();

    // Header. A short header can only be the torn creation of the final
    // segment (no record was ever acked into it); anywhere else it is loss.
    if (data.size() < kSegmentHeaderBytes) {
      if (last_segment) {
        SNS_RETURN_IF_ERROR(RepairTornTail(path, 0));
        stats.torn_tail = true;
        break;
      }
      return Status::DataLoss("journal segment '" + path + "' is truncated");
    }
    serial::StringSource header_source(
        std::string_view(data).substr(0, kSegmentHeaderBytes));
    serial::Reader header(header_source);
    uint64_t magic = 0;
    uint32_t version = 0;
    SNS_RETURN_IF_ERROR(header.U64(&magic));
    SNS_RETURN_IF_ERROR(header.U32(&version));
    if (magic != kJournalMagic) {
      return Status::DataLoss("'" + path + "' is not a journal segment");
    }
    if (version != kJournalVersion) {
      return Status::FailedPrecondition(
          "journal segment '" + path + "' has format version " +
          std::to_string(version) + "; this build reads version " +
          std::to_string(kJournalVersion));
    }

    size_t pos = kSegmentHeaderBytes;
    while (pos < data.size()) {
      const size_t remaining = data.size() - pos;
      // A record cut short by a crash is recoverable only as the very last
      // thing in the journal: it was still unacknowledged. The same short
      // read with records after it means acknowledged data is gone.
      uint32_t size = 0;
      uint32_t crc = 0;
      bool torn = remaining < kRecordFrameBytes;
      if (!torn) {
        serial::StringSource frame_source(
            std::string_view(data).substr(pos, kRecordFrameBytes));
        serial::Reader frame(frame_source);
        SNS_RETURN_IF_ERROR(frame.U32(&size));
        SNS_RETURN_IF_ERROR(frame.U32(&crc));
        torn = remaining - kRecordFrameBytes < size;
      }
      if (torn) {
        if (last_segment) {
          SNS_RETURN_IF_ERROR(RepairTornTail(path, pos));
          stats.torn_tail = true;
          break;
        }
        return Status::DataLoss("journal segment '" + path +
                                "' has a truncated record before its end");
      }
      if (size > kMaxRecordBytes) {
        return Status::DataLoss("journal segment '" + path +
                                "' frames an implausible record size");
      }
      const std::string_view payload =
          std::string_view(data).substr(pos + kRecordFrameBytes, size);
      if (Crc32(payload.data(), payload.size()) != crc) {
        return Status::DataLoss("journal record CRC mismatch in '" + path +
                                "' at offset " + std::to_string(pos));
      }
      auto record = DecodeRecord(payload);
      if (!record.ok()) return record.status();
      const JournalRecord& rec = record.value();
      if (rec.sequence == 0 ||
          (prev_sequence != 0 && rec.sequence != prev_sequence + 1)) {
        return Status::DataLoss(
            "journal sequence gap: record " + std::to_string(rec.sequence) +
            " follows " + std::to_string(prev_sequence));
      }
      prev_sequence = rec.sequence;
      ++stats.records_seen;
      stats.last_sequence = rec.sequence;
      if (rec.sequence > after_sequence) {
        if (stats.records_applied == 0 &&
            rec.sequence != after_sequence + 1) {
          return Status::DataLoss(
              "journal does not cover the checkpoint boundary: first record "
              "past sequence " + std::to_string(after_sequence) + " is " +
              std::to_string(rec.sequence));
        }
        SNS_RETURN_IF_ERROR(apply(rec));
        ++stats.records_applied;
      }
      pos += kRecordFrameBytes + size;
    }
    if (stats.torn_tail) break;
  }
  return stats;
}

}  // namespace durability
}  // namespace sns
