// Versioned, checksummed stream checkpoints: the first half of the
// durability contract (durability/journal.h is the second).
//
// A checkpoint is one self-describing byte envelope holding the complete
// deterministic state of a stream — schema, options, window tensor layout,
// event schedule, factors, λ, Grams, fitness accumulators, RNG engines, and
// the stream's per-operation sequence token. Restoring it yields a stream
// whose future trajectory is bitwise identical to the original's, so
// checkpoint + journal-suffix replay reproduces an uninterrupted run
// exactly (pinned by tests/durability_test.cpp).
//
// Envelope layout (common/serial.h little-endian encoding):
//
//   [u32 magic][u32 version][u64 payload_size][payload][u32 crc32(payload)]
//
// where payload = [u64 sequence][StreamHandle::SerializeState bytes]. The
// sequence token lives INSIDE the checksummed payload: a flipped byte there
// must surface as kDataLoss, never silently misalign journal replay.
//
// Failure taxonomy: wrong magic → kInvalidArgument (not a checkpoint at
// all); version from a different format generation → kFailedPrecondition;
// truncation, CRC mismatch, or a payload that decodes inconsistently →
// kDataLoss. Restores never crash on corrupt input.

#ifndef SLICENSTITCH_DURABILITY_CHECKPOINT_H_
#define SLICENSTITCH_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "api/stream_handle.h"
#include "common/serial.h"
#include "common/status.h"

namespace sns {

class SnsService;

namespace durability {

inline constexpr uint32_t kCheckpointMagic = 0x50434E53;  // "SNCP"
/// Envelope versions this build writes and reads. Version 1 is the original
/// Gaussian-only payload; version 2 appends the loss/robust configuration
/// and the engine's loss section. Streams on the Gaussian non-robust
/// default keep writing version 1 — byte-identical to pre-loss builds — so
/// a version-2 envelope is itself proof that non-Gaussian or robust state
/// was active. Readers accept both; anything newer fails with
/// kFailedPrecondition rather than guessing at the payload layout.
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kCheckpointVersionLoss = 2;

/// Failure codes a replayed request may legitimately reproduce: the journal
/// records every acknowledged request, including ones the stream rejected,
/// and deterministic validation rejects them identically on replay. Any
/// other code during replay means the journal and the stream disagree.
bool IsMirroredFailure(StatusCode code);

/// Serializes `handle` (with its per-stream sequence token) into `sink` as
/// one checkpoint envelope. The bytes are deterministic: equal stream state
/// and sequence always produce equal envelopes.
Status WriteStreamCheckpoint(const StreamHandle& handle, uint64_t sequence,
                             serial::ByteSink& sink);

/// A decoded checkpoint: the rebuilt stream plus the sequence token of the
/// last ticketed operation it reflects (0 for standalone-handle
/// checkpoints). Journal records with sequence > this are the replay
/// suffix.
struct RestoredStream {
  StreamHandle handle;
  uint64_t sequence = 0;
};

/// Decodes one checkpoint envelope from `source`. See the failure taxonomy
/// above; on any error the source's read position is unspecified.
StatusOr<RestoredStream> ReadStreamCheckpoint(serial::ByteSource& source);

/// Outcome of a successful RecoverStream.
struct RecoveryReport {
  uint64_t checkpoint_sequence = 0;  // Token the checkpoint reflects.
  uint64_t records_replayed = 0;     // Journal records re-applied.
  /// Replayed operations that failed with the same benign validation error
  /// they failed with originally (the journal records requests, not
  /// outcomes, so failed requests are replayed and must fail again).
  uint64_t mirrored_failures = 0;
  uint64_t last_sequence = 0;        // Stream token after recovery.
  bool torn_tail = false;            // Journal ended in a torn record.
};

/// Full crash recovery: restores the checkpoint into `service` (registering
/// the stream under its serialized name) and replays the journal suffix
/// from `journal_directory` through the service's ticketed entry points, so
/// the recovered stream ends bitwise identical to the uninterrupted
/// original. Call before EnableJournal and before any other producer
/// touches the stream; on error the partially recovered stream (if any) is
/// left registered and should be Removed.
StatusOr<RecoveryReport> RecoverStream(SnsService& service,
                                       serial::ByteSource& checkpoint,
                                       const std::string& journal_directory);

/// A stream rebuilt outside any service: checkpoint + journal-suffix replay
/// applied directly to a standalone StreamHandle. The handle carries no
/// sequence counter of its own, so the final token lives in the report.
struct RecoveredHandle {
  StreamHandle handle;
  RecoveryReport report;
};

/// Standalone-handle form of RecoverStream: decodes the checkpoint, replays
/// the journal suffix through the handle's own entry points (mirrored
/// failures tolerated, torn tail truncated), and returns the rebuilt handle
/// plus the replay report. This is the primitive stream auto-recovery runs
/// on the owning shard — no service registration, no ticket issue, no
/// cross-shard hop.
StatusOr<RecoveredHandle> RecoverHandle(serial::ByteSource& checkpoint,
                                        const std::string& journal_directory);

}  // namespace durability
}  // namespace sns

#endif  // SLICENSTITCH_DURABILITY_CHECKPOINT_H_
