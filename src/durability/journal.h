// Append-only write-ahead event journal: the second half of the durability
// contract (durability/checkpoint.h is the first).
//
// Every ticketed mutation of a journaled stream is appended — sequence
// token, operation kind, and payload tuples — BEFORE it is applied, so after
// a crash the journal holds every operation the service ever acknowledged.
// Recovery = restore the latest checkpoint + replay the journal suffix
// (records with sequence > the checkpoint's); the result is bitwise
// identical to the uninterrupted run.
//
// On-disk format. A journal is a directory of numbered segment files
// `wal-NNNNNNNN.seg`. Each segment starts with a fixed header (magic +
// format version) followed by length-prefixed records:
//
//   [u32 payload_size][u32 crc32(payload)][payload bytes]
//
// The payload encodes one JournalRecord (common/serial.h little-endian
// layout). A write that dies mid-record leaves a truncated tail; replay
// treats a short read at the END of the LAST segment as a clean torn tail
// (the record was never acknowledged) and TRUNCATES it from disk, and every
// other corruption — CRC mismatch, short read mid-directory, sequence gap —
// is kDataLoss. Writers never append to a pre-existing segment: each
// JournalWriter::Open starts a fresh segment numbered after the highest on
// disk, and because replay already removed the torn tail, that fresh segment
// never buries one — recover, re-attach, crash, recover again keeps working.

#ifndef SLICENSTITCH_DURABILITY_JOURNAL_H_
#define SLICENSTITCH_DURABILITY_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "stream/event.h"

namespace sns {
namespace durability {

inline constexpr uint64_t kJournalMagic = 0x4C4157534E53ULL;  // "SNSWAL"
inline constexpr uint32_t kJournalVersion = 1;

/// Mutating service operations a journal can carry.
enum class JournalOpType : uint8_t {
  kWarmup = 1,
  kInitialize = 2,
  kIngest = 3,
  kAdvanceTo = 4,
};

/// One journaled operation. `sequence` is the stream's per-operation ticket
/// token — the replay cursor that joins journal records to checkpoints.
struct JournalRecord {
  uint64_t sequence = 0;
  JournalOpType op = JournalOpType::kIngest;
  int64_t time = 0;  // AdvanceTo horizon; unused by the other ops.
  std::vector<Tuple> tuples;
};

struct JournalOptions {
  /// Segment rotation threshold: a record that would push the current
  /// segment past this many bytes opens the next segment first (a single
  /// record larger than the threshold still lands whole).
  int64_t max_segment_bytes = 4 << 20;
  /// fsync after every record. Default off: records are flushed to the OS
  /// on every append (surviving process crashes); syncing guards against
  /// power loss at a heavy per-record cost.
  bool sync_each_record = false;
};

/// Appender for one stream's journal. Not thread-safe; the service calls it
/// from the stream's owning shard only.
class JournalWriter {
 public:
  /// Creates `directory` if needed and opens a fresh segment numbered after
  /// the highest existing one.
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& directory, const JournalOptions& options = {});

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record and flushes it to the OS (write-ahead: the caller
  /// applies the operation only after this returns OK).
  Status Append(uint64_t sequence, JournalOpType op, int64_t time,
                std::span<const Tuple> tuples);
  Status Append(const JournalRecord& record) {
    return Append(record.sequence, record.op, record.time, record.tuples);
  }

  const std::string& directory() const { return directory_; }
  const JournalOptions& options() const { return options_; }
  /// Segments this writer has opened (≥ 1); rotation test hook.
  int64_t segments_opened() const { return segments_opened_; }
  /// Total record-frame bytes successfully appended by this writer (excludes
  /// segment headers). Telemetry reads deltas of this around each Append.
  int64_t bytes_appended() const { return bytes_appended_; }

 private:
  JournalWriter(std::string directory, const JournalOptions& options,
                int64_t next_segment)
      : directory_(std::move(directory)),
        options_(options),
        next_segment_(next_segment) {}

  Status OpenNextSegment();

  std::string directory_;
  JournalOptions options_;
  int64_t next_segment_ = 0;
  int64_t segments_opened_ = 0;
  int64_t segment_bytes_ = 0;
  int64_t bytes_appended_ = 0;
  std::unique_ptr<serial::FileSink> segment_;
};

/// Result of a journal replay.
struct ReplayStats {
  uint64_t records_seen = 0;     // Decoded records, including skipped ones.
  uint64_t records_applied = 0;  // Records with sequence > after_sequence.
  uint64_t last_sequence = 0;    // Highest decoded sequence (0 when none).
  /// The final record was torn; it was discarded and truncated from disk so
  /// a later writer's fresh segment cannot bury it.
  bool torn_tail = false;
};

/// Replays every intact record with sequence > `after_sequence` through
/// `apply`, in sequence order across all segments. Verifies per-record CRCs
/// and strict +1 sequence contiguity (from the first journaled record
/// through the last, and joining `after_sequence` when it falls inside the
/// journaled range). A truncated final record in the final segment is
/// reported via ReplayStats::torn_tail, not an error, and is truncated from
/// the segment on disk (kIOError if that repair fails) so the journal is
/// clean before a new writer attaches; any other corruption fails with
/// kDataLoss, and a segment-header version from a newer format fails with
/// kFailedPrecondition. An `apply` error aborts the replay.
StatusOr<ReplayStats> ReplayJournal(
    const std::string& directory, uint64_t after_sequence,
    const std::function<Status(const JournalRecord&)>& apply);

}  // namespace durability
}  // namespace sns

#endif  // SLICENSTITCH_DURABILITY_JOURNAL_H_
