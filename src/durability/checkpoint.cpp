#include "durability/checkpoint.h"

#include <algorithm>
#include <utility>

#include "api/sns_service.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "durability/journal.h"

namespace sns {
namespace durability {
namespace {

// Plausibility guard for the payload-length field of a corrupt envelope;
// real checkpoints of plausible streams sit far below it. The payload is
// read in kPayloadChunkBytes steps, so a hostile length field can never
// force one giant upfront allocation — a source shorter than its claimed
// length fails with kDataLoss at its actual end, having allocated only as
// much as it actually delivered.
constexpr uint64_t kMaxPayloadBytes = 1ull << 32;
constexpr size_t kPayloadChunkBytes = 1u << 20;

}  // namespace

bool IsMirroredFailure(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kOutOfRange ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kNotFound;
}

Status WriteStreamCheckpoint(const StreamHandle& handle, uint64_t sequence,
                             serial::ByteSink& sink) {
  if (SNS_FAILPOINT("checkpoint.write")) {
    return failpoint::InjectedFailure("checkpoint.write");
  }
  serial::StringSink payload_sink;
  serial::Writer payload(payload_sink);
  payload.U64(sequence);
  SNS_RETURN_IF_ERROR(handle.SerializeState(payload));
  const std::string& bytes = payload_sink.data();
  serial::Writer w(sink);
  w.U32(kCheckpointMagic);
  w.U32(handle.UsesExtendedState() ? kCheckpointVersionLoss
                                   : kCheckpointVersion);
  w.U64(bytes.size());
  w.Bytes(bytes.data(), bytes.size());
  w.U32(Crc32(bytes.data(), bytes.size()));
  return w.status();
}

StatusOr<RestoredStream> ReadStreamCheckpoint(serial::ByteSource& source) {
  serial::Reader header(source);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  SNS_RETURN_IF_ERROR(header.U32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(
        "not a stream checkpoint (bad magic number)");
  }
  SNS_RETURN_IF_ERROR(header.U32(&version));
  if (version != kCheckpointVersion && version != kCheckpointVersionLoss) {
    return Status::FailedPrecondition(
        "checkpoint has format version " + std::to_string(version) +
        "; this build reads versions " + std::to_string(kCheckpointVersion) +
        " and " + std::to_string(kCheckpointVersionLoss));
  }
  SNS_RETURN_IF_ERROR(header.U64(&payload_size));
  if (payload_size > kMaxPayloadBytes) {
    return Status::DataLoss("checkpoint frames an implausible payload size");
  }
  std::string bytes;
  for (uint64_t left = payload_size; left > 0;) {
    const size_t step =
        static_cast<size_t>(std::min<uint64_t>(left, kPayloadChunkBytes));
    const size_t old_size = bytes.size();
    bytes.resize(old_size + step);
    SNS_RETURN_IF_ERROR(source.ReadExact(bytes.data() + old_size, step));
    left -= step;
  }
  uint32_t crc = 0;
  SNS_RETURN_IF_ERROR(header.U32(&crc));
  if (Crc32(bytes.data(), bytes.size()) != crc) {
    return Status::DataLoss("checkpoint payload CRC mismatch");
  }

  serial::StringSource payload_source(bytes);
  serial::Reader payload(payload_source);
  uint64_t sequence = 0;
  SNS_RETURN_IF_ERROR(payload.U64(&sequence));
  auto handle = StreamHandle::DeserializeState(payload, version);
  if (!handle.ok()) return handle.status();
  if (payload_source.remaining() != 0) {
    return Status::DataLoss("checkpoint payload carries trailing bytes");
  }
  return RestoredStream{std::move(handle).value(), sequence};
}

StatusOr<RecoveryReport> RecoverStream(SnsService& service,
                                       serial::ByteSource& checkpoint,
                                       const std::string& journal_directory) {
  auto restored = service.Restore(checkpoint);
  if (!restored.ok()) return restored.status();
  const std::string name = restored.value()->name();

  RecoveryReport report;
  {
    auto sequence = service.AppliedSequence(name);
    if (!sequence.ok()) return sequence.status();
    report.checkpoint_sequence = sequence.value();
  }

  auto stats = ReplayJournal(
      journal_directory, report.checkpoint_sequence,
      [&service, &name, &report](const JournalRecord& record) {
        Status status;
        switch (record.op) {
          case JournalOpType::kWarmup:
            status = service.Warmup(name, record.tuples);
            break;
          case JournalOpType::kInitialize:
            status = service.Initialize(name);
            break;
          case JournalOpType::kIngest:
            status = service.Ingest(name, record.tuples);
            break;
          case JournalOpType::kAdvanceTo:
            status = service.AdvanceTo(name, record.time);
            break;
        }
        if (!status.ok()) {
          if (!IsMirroredFailure(status.code())) return status;
          ++report.mirrored_failures;
        }
        return Status::OK();
      });
  if (!stats.ok()) return stats.status();
  report.records_replayed = stats.value().records_applied;
  report.torn_tail = stats.value().torn_tail;
  report.last_sequence =
      report.checkpoint_sequence + stats.value().records_applied;

  // Every replayed request consumed exactly one ticket, so the stream's
  // applied token must land exactly at checkpoint + replayed. Anything else
  // means the journal and the service disagree about history.
  auto applied = service.AppliedSequence(name);
  if (!applied.ok()) return applied.status();
  if (applied.value() != report.last_sequence) {
    return Status::Internal(
        "recovery sequence mismatch: stream applied token " +
        std::to_string(applied.value()) + " != checkpoint " +
        std::to_string(report.checkpoint_sequence) + " + " +
        std::to_string(report.records_replayed) + " replayed records");
  }
  return report;
}

StatusOr<RecoveredHandle> RecoverHandle(serial::ByteSource& checkpoint,
                                        const std::string& journal_directory) {
  auto restored = ReadStreamCheckpoint(checkpoint);
  if (!restored.ok()) return restored.status();

  const uint64_t checkpoint_sequence = restored.value().sequence;
  RecoveredHandle out{std::move(restored).value().handle, RecoveryReport{}};
  out.report.checkpoint_sequence = checkpoint_sequence;

  StreamHandle* handle = &out.handle;
  RecoveryReport* report = &out.report;
  auto stats = ReplayJournal(
      journal_directory, out.report.checkpoint_sequence,
      [handle, report](const JournalRecord& record) {
        Status status;
        switch (record.op) {
          case JournalOpType::kWarmup:
            status = handle->Warmup(record.tuples);
            break;
          case JournalOpType::kInitialize:
            status = handle->Initialize();
            break;
          case JournalOpType::kIngest:
            status = handle->Ingest(std::span<const Tuple>(record.tuples));
            break;
          case JournalOpType::kAdvanceTo:
            status = handle->AdvanceTo(record.time);
            break;
        }
        if (!status.ok()) {
          if (!IsMirroredFailure(status.code())) return status;
          ++report->mirrored_failures;
        }
        return Status::OK();
      });
  if (!stats.ok()) return stats.status();
  out.report.records_replayed = stats.value().records_applied;
  out.report.torn_tail = stats.value().torn_tail;
  out.report.last_sequence =
      out.report.checkpoint_sequence + stats.value().records_applied;
  return out;
}

}  // namespace durability
}  // namespace sns
