// Slow reference objectives for the loss layer's differential tests.
//
// Deliberately naive — direct per-cell model evaluation, no kernels, no
// workspaces, no incremental state — so the streaming implementations
// (losses/gcp_row_update.h, the generalized fitness tracker) have an
// independent oracle to be tested against. Never called on a hot path.

#ifndef SLICENSTITCH_LOSSES_REFERENCE_OBJECTIVE_H_
#define SLICENSTITCH_LOSSES_REFERENCE_OBJECTIVE_H_

#include "losses/loss_function.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Σ over the non-zeros of `window` of ℓ(x_J, x̃_J) — the window objective
/// the non-Gaussian updaters descend. O(nnz·M·R).
double WindowLoss(const SparseTensor& window, const KruskalModel& model,
                  const LossFunction& loss);

/// Σ over the non-zeros of `window` of ℓ(x_J, 0) — the θ = 0 baseline that
/// normalizes the generalized fitness 1 − L/L₀. O(nnz).
double WindowLossBaseline(const SparseTensor& window, const LossFunction& loss);

}  // namespace sns

#endif  // SLICENSTITCH_LOSSES_REFERENCE_OBJECTIVE_H_
