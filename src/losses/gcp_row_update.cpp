#include "losses/gcp_row_update.h"

#include <cmath>
#include <limits>

#include "tensor/mttkrp.h"

namespace sns {
namespace {

// Tikhonov ridge added to the Newton system's diagonal: scaled to the
// system's own trace so it stays negligible against real curvature but
// keeps the Cholesky fast path positive definite when the cell set is
// rank-deficient (few cells, collinear Hadamard rows).
constexpr double kRidgeScale = 1e-9;

// Backtracking schedule of the damped step.
constexpr double kAlphas[] = {1.0, 0.5, 0.25, 0.125};

void HadamardDispatch(const CpdState& state, const ModeIndex& index,
                      int skip_mode, double* out, const RankKernelTable& kr) {
  if (state.mixed()) {
    HadamardRowProduct32(state.factors32, index, skip_mode, out, kr);
  } else {
    HadamardRowProduct(state.model.factors(), index, skip_mode, out, kr);
  }
}

}  // namespace

void GcpRowWorkspace::Prepare(int64_t rank, KernelTier tier) {
  if (rank == rank_ && tier == tier_ && kernels != nullptr) return;
  rank_ = rank;
  tier_ = tier;
  padded_rank = PaddedRank(rank);
  kernels = &GetRankKernelTable(padded_rank, tier);
  solver.set_kernels(&GetRankKernelTable(0, tier));
  hessian = Matrix(rank, rank);
  grad.Assign(rank, 0.0);
  step.Assign(rank, 0.0);
  candidate.Assign(rank, 0.0);
  old_row.Assign(rank, 0.0);
  had.Assign(rank, 0.0);
  had_scaled.Assign(rank, 0.0);
}

bool GcpNewtonRowUpdate(CpdState& state, int mode, int64_t row,
                        const LossFunction& loss,
                        std::span<const SampledCell> cells, double clip_min,
                        double clip_max, GcpRowWorkspace& ws) {
  const int64_t rank = state.rank();
  ws.Prepare(rank, state.kernel_tier);
  const RankKernelTable& kr = *ws.kernels;
  const int64_t padded = ws.padded_rank;
  double* live_row = state.model.factor(mode).Row(row);
  // Snapshot before any early-out: callers commit against ws.old_row even
  // when the update declines to move the row.
  kr.copy(live_row, ws.old_row.data(), padded);
  if (cells.empty()) return false;  // No information: leave the row alone.

  ws.theta0.resize(cells.size());
  ws.dtheta.resize(cells.size());

  // Pass 1: restricted objective, gradient and curvature at the current row.
  ws.hessian.SetZero();
  kr.fill(ws.grad.data(), 0.0, padded);
  double obj0 = 0.0;
  size_t c = 0;
  for (const SampledCell& cell : cells) {
    HadamardDispatch(state, cell.index, mode, ws.had.data(), kr);
    const double theta = kr.dot(ws.had.data(), ws.old_row.data(), padded);
    ws.theta0[c] = theta;
    ++c;
    obj0 += loss.Value(cell.value, theta);
    const double d1 = loss.FirstDerivative(cell.value, theta);
    const double d2 = loss.SecondDerivative(cell.value, theta);
    kr.axpy(-d1, ws.had.data(), ws.grad.data(), padded);
    kr.fill(ws.had_scaled.data(), 0.0, padded);
    kr.axpy(d2, ws.had.data(), ws.had_scaled.data(), padded);
    AddOuterProduct(ws.hessian, ws.had_scaled.data(), ws.had.data(), kr);
  }
  if (!std::isfinite(obj0)) return false;  // Already-poisoned row: bail out.

  double trace = 0.0;
  for (int64_t r = 0; r < rank; ++r) trace += ws.hessian(r, r);
  const double ridge =
      kRidgeScale * (1.0 + trace / static_cast<double>(rank));
  for (int64_t r = 0; r < rank; ++r) ws.hessian.Row(r)[r] += ridge;

  ws.solver.Factorize(ws.hessian);
  kr.fill(ws.step.data(), 0.0, padded);
  ws.solver.Solve(ws.grad.data(), ws.step.data());  // step = H⁻¹(−g).

  // Project the full-length candidate onto the clip box, then take the
  // PROJECTED direction: the box is convex and contains old_row, so every
  // backtrack point old + α·step stays feasible while θ remains linear in
  // α — which is what lets the search below run on cached scalars.
  kr.fill(ws.candidate.data(), 0.0, padded);
  for (int64_t r = 0; r < rank; ++r) {
    double v = ws.old_row.data()[r] + ws.step.data()[r];
    if (v > clip_max) {
      v = clip_max;
    } else if (v < clip_min) {
      v = clip_min;
    }
    ws.candidate.data()[r] = v;
    ws.step.data()[r] = v - ws.old_row.data()[r];
  }
  const double dir_norm_sq = kr.dot(ws.step.data(), ws.step.data(), padded);
  if (!(dir_norm_sq > 0.0) || !std::isfinite(dir_norm_sq)) return false;

  // Pass 2: the step's θ-rate at every cell.
  c = 0;
  for (const SampledCell& cell : cells) {
    HadamardDispatch(state, cell.index, mode, ws.had.data(), kr);
    ws.dtheta[c] = kr.dot(ws.had.data(), ws.step.data(), padded);
    ++c;
  }

  // Backtracking: commit the first non-increasing candidate, else keep the
  // row exactly as it was (objective unchanged — monotone either way).
  for (double alpha : kAlphas) {
    double obj = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      obj += loss.Value(cells[i].value, ws.theta0[i] + alpha * ws.dtheta[i]);
    }
    if (!std::isfinite(obj) || obj > obj0) continue;
    kr.copy(ws.old_row.data(), ws.candidate.data(), padded);
    kr.axpy(alpha, ws.step.data(), ws.candidate.data(), padded);
    for (int64_t r = 0; r < rank; ++r) {
      // Re-clamp: a + α(b − a) can overshoot the box by an ulp.
      double v = ws.candidate.data()[r];
      if (v > clip_max) {
        v = clip_max;
      } else if (v < clip_min) {
        v = clip_min;
      }
      ws.candidate.data()[r] = v;
    }
    kr.copy(ws.candidate.data(), live_row, padded);
    state.SyncRowToF32(mode, row);
    return true;
  }
  return false;
}

bool GcpNewtonRowUpdateOnSlice(const SparseTensor& window, CpdState& state,
                               int mode, int64_t row, const LossFunction& loss,
                               double clip_min, double clip_max,
                               GcpRowWorkspace& ws) {
  ws.cells.clear();
  for (const auto [coords, value] : window.Slice(mode, row)) {
    ws.cells.push_back({coords, value});
  }
  return GcpNewtonRowUpdate(state, mode, row, loss, ws.cells, clip_min,
                            clip_max, ws);
}

void GcpSweep(const SparseTensor& window, CpdState& state,
              const LossFunction& loss, GcpRowWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int m = 0; m < state.num_modes(); ++m) {
    const int64_t dim = state.model.factor(m).rows();
    for (int64_t i = 0; i < dim; ++i) {
      if (window.Degree(m, i) == 0) continue;
      GcpNewtonRowUpdateOnSlice(window, state, m, i, loss, -kInf, kInf, ws);
    }
  }
}

}  // namespace sns
