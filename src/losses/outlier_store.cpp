#include "losses/outlier_store.h"

#include <cmath>

#include "common/serial.h"

namespace sns {
namespace {

// Entries whose accumulated magnitude falls below this are dropped (decay
// tail, capture cancellation) — mirrors SparseTensor::kZeroEpsilon so the
// store never carries numeric dust.
constexpr double kDropEpsilon = 1e-12;

}  // namespace

double OutlierStore::Capture(const ModeIndex& key, double residual) {
  const double magnitude = std::abs(residual) - threshold_;
  if (!(magnitude > 0.0)) return 0.0;  // Inlier (or NaN residual): no-op.
  const double s = residual > 0.0 ? magnitude : -magnitude;
  ++captures_;
  auto [it, inserted] = entries_.try_emplace(key, 0.0);
  it->second += s;
  if (std::abs(it->second) < kDropEpsilon) {
    // Oppositely-signed captures cancelled out.
    entries_.erase(it);
    return s;
  }
  if (inserted && static_cast<int64_t>(entries_.size()) > capacity_) {
    // Evict the smallest-magnitude entry; the map's key order breaks ties
    // deterministically (first minimum in iteration order wins).
    auto victim = entries_.begin();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt) {
      if (std::abs(jt->second) < std::abs(victim->second)) victim = jt;
    }
    entries_.erase(victim);
    ++evictions_;
  }
  return s;
}

void OutlierStore::Decay() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second *= decay_;
    if (std::abs(it->second) < kDropEpsilon) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

double OutlierStore::Get(const ModeIndex& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second;
}

void OutlierStore::Clear() {
  entries_.clear();
  captures_ = 0;
  evictions_ = 0;
}

double OutlierStore::TotalMagnitude() const {
  double total = 0.0;
  for (const auto& [key, value] : entries_) total += std::abs(value);
  return total;
}

void OutlierStore::SerializeTo(serial::Writer& w) const {
  w.U64(static_cast<uint64_t>(entries_.size()));
  for (const auto& [key, value] : entries_) {
    w.U8(static_cast<uint8_t>(key.size()));
    for (int m = 0; m < key.size(); ++m) w.I32(key[m]);
    w.F64(value);
  }
  w.U64(captures_);
  w.U64(evictions_);
}

Status OutlierStore::RestoreFrom(serial::Reader& r) {
  entries_.clear();
  uint64_t count = 0;
  SNS_RETURN_IF_ERROR(r.U64(&count));
  auto hint = entries_.end();
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t num_modes = 0;
    SNS_RETURN_IF_ERROR(r.U8(&num_modes));
    if (num_modes > kMaxTensorModes) {
      return Status::DataLoss("outlier entry has too many modes");
    }
    ModeIndex key;
    for (int m = 0; m < static_cast<int>(num_modes); ++m) {
      int32_t index = 0;
      SNS_RETURN_IF_ERROR(r.I32(&index));
      key.PushBack(index);
    }
    double value = 0.0;
    SNS_RETURN_IF_ERROR(r.F64(&value));
    // Serialized in key order, so end() stays the right hint.
    hint = entries_.emplace_hint(hint, key, value);
  }
  SNS_RETURN_IF_ERROR(r.U64(&captures_));
  return r.U64(&evictions_);
}

}  // namespace sns
