#include "losses/loss_function.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sns {
namespace {

// θ clamp for the Poisson exponentials: e^±40 spans ~35 decades around 1,
// far beyond any fitted model value, while keeping e^θ, its products, and
// the Newton curvatures finite. Without it a transient blow-up row (the
// unclipped variants can produce one) would turn the whole objective into
// inf/NaN and poison the damped-step acceptance tests.
constexpr double kExpClamp = 40.0;

// Curvature floor: keeps Σ d2·h h' positive definite even where the true
// curvature vanishes (Poisson at θ → −∞, Bernoulli at |θ| → ∞), so the
// Cholesky fast path of the row solver stays usable.
constexpr double kCurvatureFloor = 1e-12;

double ClampedExp(double theta) {
  return std::exp(std::clamp(theta, -kExpClamp, kExpClamp));
}

// Numerically stable log(1 + e^θ): exact for large |θ| where the naive form
// overflows (θ > 0) or cancels (θ < 0).
double Softplus(double theta) {
  return std::max(theta, 0.0) + std::log1p(std::exp(-std::abs(theta)));
}

double Sigmoid(double theta) {
  if (theta >= 0.0) {
    const double e = std::exp(-theta);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(theta);
  return e / (1.0 + e);
}

class GaussianLoss final : public LossFunction {
 public:
  LossKind kind() const override { return LossKind::kGaussian; }
  std::string_view name() const override { return "gaussian"; }
  double Value(double y, double theta) const override {
    const double r = theta - y;
    return r * r;
  }
  double FirstDerivative(double y, double theta) const override {
    return 2.0 * (theta - y);
  }
  double SecondDerivative(double /*y*/, double /*theta*/) const override {
    return 2.0;
  }
  double Link(double theta) const override { return theta; }
};

class PoissonLoss final : public LossFunction {
 public:
  LossKind kind() const override { return LossKind::kPoisson; }
  std::string_view name() const override { return "poisson"; }
  double Value(double y, double theta) const override {
    // Negative log-likelihood with log link, dropping the θ-free log(y!)
    // term: e^θ − y·θ.
    return ClampedExp(theta) - y * theta;
  }
  double FirstDerivative(double y, double theta) const override {
    return ClampedExp(theta) - y;
  }
  double SecondDerivative(double /*y*/, double theta) const override {
    return std::max(ClampedExp(theta), kCurvatureFloor);
  }
  double Link(double theta) const override { return ClampedExp(theta); }
};

class BernoulliLogitLoss final : public LossFunction {
 public:
  LossKind kind() const override { return LossKind::kBernoulliLogit; }
  std::string_view name() const override { return "bernoulli-logit"; }
  double Value(double y, double theta) const override {
    // Negative log-likelihood of y ∈ {0,1} under p = σ(θ):
    // log(1 + e^θ) − y·θ.
    return Softplus(theta) - y * theta;
  }
  double FirstDerivative(double y, double theta) const override {
    return Sigmoid(theta) - y;
  }
  double SecondDerivative(double /*y*/, double theta) const override {
    const double p = Sigmoid(theta);
    return std::max(p * (1.0 - p), kCurvatureFloor);
  }
  double Link(double theta) const override { return Sigmoid(theta); }
};

}  // namespace

std::string LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kGaussian:
      return "gaussian";
    case LossKind::kPoisson:
      return "poisson";
    case LossKind::kBernoulliLogit:
      return "bernoulli-logit";
  }
  SNS_CHECK(false && "LossKindName: unhandled LossKind");
  return "";  // Unreachable.
}

const LossFunction& GetLossFunction(LossKind kind) {
  static const GaussianLoss gaussian;
  static const PoissonLoss poisson;
  static const BernoulliLogitLoss bernoulli;
  switch (kind) {
    case LossKind::kGaussian:
      return gaussian;
    case LossKind::kPoisson:
      return poisson;
    case LossKind::kBernoulliLogit:
      return bernoulli;
  }
  SNS_CHECK(false && "GetLossFunction: unhandled LossKind");
  return gaussian;  // Unreachable.
}

}  // namespace sns
