#include "losses/reference_objective.h"

namespace sns {

double WindowLoss(const SparseTensor& window, const KruskalModel& model,
                  const LossFunction& loss) {
  double total = 0.0;
  window.ForEachNonzero([&](const ModeIndex& coords, double value) {
    total += loss.Value(value, model.Evaluate(coords));
  });
  return total;
}

double WindowLossBaseline(const SparseTensor& window,
                          const LossFunction& loss) {
  double total = 0.0;
  window.ForEachNonzero([&](const ModeIndex& /*coords*/, double value) {
    total += loss.Value(value, 0.0);
  });
  return total;
}

}  // namespace sns
