// Pluggable pointwise losses for generalized CP decomposition (GCP).
//
// The Gaussian engine minimizes Σ (x_J − x̃_J)²; GCP (Hong, Kolda & Duersch;
// streamed by Phipps, Johnson & Kolda — see PAPERS.md) replaces the square
// with any twice-differentiable pointwise loss ℓ(y, θ) of the data value y
// and the model value θ = x̃_J (the natural parameter). Each loss exposes
// its value, first and second θ-derivatives (the row-update Newton steps in
// losses/gcp_row_update.h consume them) and its link function μ = Link(θ),
// the model's prediction of the data mean — the quantity the robust mode
// (losses/outlier_store.h) subtracts from an observation to form the
// residual it soft-thresholds.
//
// The catalog:
//   kGaussian       ℓ = (θ − y)²        identity link   continuous data
//   kPoisson        ℓ = e^θ − y·θ       log link        counts y ≥ 0
//   kBernoulliLogit ℓ = softplus(θ)−y·θ logistic link   binary y ∈ {0,1}
//
// Gaussian is the default and its selection leaves every engine code path
// byte-for-byte identical to the loss-unaware build (the updaters branch on
// kind() before touching any loss virtual). Implementations are stateless
// singletons — GetLossFunction hands out process-lifetime references, so a
// LossFunction pointer is cheap to store and never owned.
//
// This header sits below core/ (it includes nothing from it) so that
// core/options.h can name LossKind without an include cycle.

#ifndef SLICENSTITCH_LOSSES_LOSS_FUNCTION_H_
#define SLICENSTITCH_LOSSES_LOSS_FUNCTION_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sns {

/// Which pointwise loss the engine minimizes.
enum class LossKind : uint8_t {
  kGaussian = 0,
  kPoisson = 1,
  kBernoulliLogit = 2,
};

/// Short display name: "gaussian", "poisson", "bernoulli-logit".
std::string LossKindName(LossKind kind);

/// One pointwise loss ℓ(y, θ): y is the observed value, θ the model value
/// x̃_J at the same cell. Stateless; obtained through GetLossFunction.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  virtual LossKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// ℓ(y, θ).
  virtual double Value(double y, double theta) const = 0;
  /// ∂ℓ/∂θ.
  virtual double FirstDerivative(double y, double theta) const = 0;
  /// ∂²ℓ/∂θ² — floored away from zero so Newton systems built from it stay
  /// positive definite (see each implementation's floor).
  virtual double SecondDerivative(double y, double theta) const = 0;
  /// μ = E[y | θ]: identity (Gaussian), e^θ (Poisson), σ(θ) (Bernoulli).
  virtual double Link(double theta) const = 0;
};

/// Process-lifetime singleton for `kind`. Never fails; out-of-range kinds
/// (e.g. cast from a corrupt byte) abort via SNS_CHECK in the .cpp.
const LossFunction& GetLossFunction(LossKind kind);

}  // namespace sns

#endif  // SLICENSTITCH_LOSSES_LOSS_FUNCTION_H_
