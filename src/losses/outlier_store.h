// Bounded sparse outlier structure S of the robust streaming mode.
//
// Following Hawkins & Zhang's robust streaming factorization (PAPERS.md),
// the robust engine models the window as X = L + S: L is what the CP model
// fits, S is a sparse matrix of outlier mass that would otherwise be
// absorbed into the factors. At every arrival the engine forms the residual
// r = (window + v) − μ of the observation against the model's prediction
// μ = Link(x̃) and soft-thresholds it:
//
//   s = sign(r) · max(|r| − τ, 0)
//
// The captured part s accumulates here under the tuple's non-time
// coordinate (entities are outliers, not single timestamps) and is
// SUBTRACTED from the ingested value, so the factors only ever see the
// inlier part. Σ|S| per entity is the anomaly score the OutlierActivity
// query exports — a separated outlier magnitude instead of the raw
// AbsError the anomaly app used before.
//
// The store is bounded: at `capacity` entries the smallest-magnitude entry
// is evicted (deterministic — ties break on key order), and as the window
// advances the engine decays every entry once per period so stale outlier
// mass drains out. All mutation is deterministic in the input sequence and
// the content serializes in key order, which is what lets checkpoint
// restore + journal replay reproduce a robust trajectory bitwise
// (tests/loss_durability_test.cpp).

#ifndef SLICENSTITCH_LOSSES_OUTLIER_STORE_H_
#define SLICENSTITCH_LOSSES_OUTLIER_STORE_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "tensor/mode_index.h"

namespace sns {

namespace serial {
class Writer;
class Reader;
}  // namespace serial

/// Strict weak order over cell coordinates (ModeIndex has no operator<):
/// by size, then lexicographic — the deterministic iteration order of the
/// store's map, its serialization, and its eviction tie-breaks.
struct ModeIndexLess {
  bool operator()(const ModeIndex& a, const ModeIndex& b) const {
    if (a.size() != b.size()) return a.size() < b.size();
    for (int m = 0; m < a.size(); ++m) {
      if (a[m] != b[m]) return a[m] < b[m];
    }
    return false;
  }
};

/// Bounded sparse map entity-coordinate → accumulated captured outlier
/// mass. Owned by ContinuousCpd when robust mode is on.
class OutlierStore {
 public:
  using Map = std::map<ModeIndex, double, ModeIndexLess>;

  /// threshold τ > 0: residual magnitude below which nothing is captured.
  /// decay ∈ [0, 1]: per-period multiplier of every stored entry.
  /// capacity ≥ 1: maximum number of live entries.
  void Configure(double threshold, double decay, int64_t capacity) {
    threshold_ = threshold;
    decay_ = decay;
    capacity_ = capacity;
  }

  /// Soft-thresholds `residual` against τ and accumulates the captured part
  /// under `key`. Returns the captured part s (0.0 when |residual| ≤ τ —
  /// the store is untouched then). May evict the smallest-magnitude entry
  /// when the insert overflows capacity.
  double Capture(const ModeIndex& key, double residual);

  /// Multiplies every entry by the decay factor, dropping entries whose
  /// magnitude falls below the zero epsilon. Called by the engine once per
  /// stream period.
  void Decay();

  /// Accumulated (signed) outlier mass under `key`; 0.0 when absent.
  double Get(const ModeIndex& key) const;

  void Clear();

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  /// Σ |S| over every live entry.
  double TotalMagnitude() const;

  /// Lifetime counters (telemetry): non-zero captures and evictions.
  uint64_t captures() const { return captures_; }
  uint64_t evictions() const { return evictions_; }

  /// Deterministic (key-ordered) read access for queries and tests.
  const Map& entries() const { return entries_; }

  /// Content + counters, in key order; configuration is NOT serialized (it
  /// comes from the engine options the checkpoint carries separately).
  void SerializeTo(serial::Writer& w) const;
  Status RestoreFrom(serial::Reader& r);

 private:
  Map entries_;
  double threshold_ = 0.0;
  double decay_ = 1.0;
  int64_t capacity_ = 0;
  uint64_t captures_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sns

#endif  // SLICENSTITCH_LOSSES_OUTLIER_STORE_H_
