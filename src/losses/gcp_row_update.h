// Damped Newton row updates for non-Gaussian losses (streaming GCP).
//
// The Gaussian row rules (Eqs. 9/12/16/21-23) are closed-form least-squares
// solves against Hadamard-of-Grams systems. For a general pointwise loss
// ℓ(y, θ) no Gram shortcut exists — the curvature ℓ''(y, θ) varies per cell
// — so each affected row takes one damped Newton step on the restricted
// objective
//
//   F(a) = Σ_{J ∈ cells} ℓ(x_J, h_J · a),   h_J = ∗_{n≠m} A(n)(j_n, :),
//
// with gradient g = Σ ℓ'·h_J, curvature H = Σ ℓ''·h_J h_J' + ridge·I, solved
// through the same Cholesky row solver as the Gaussian path. The step is
// projected onto the variant's clip box [clip_min, clip_max] at full length
// first (the box is convex and contains the current row, so every backtrack
// point stays feasible and θ stays linear in the step length), then
// backtracks over α ∈ {1, ½, ¼, ⅛} and commits the first candidate whose
// restricted objective does not increase; if all four fail the row is left
// unchanged. That acceptance rule is what makes the window loss monotone
// non-increasing on a static window (regression-guarded by
// tests/losses_test.cpp).
//
// The cell set is the caller's choice: the VEC/MAT-style exact paths pass
// the row's whole slice of window non-zeros; the θ-sampled RND paths pass
// their sampled cells (which include zero cells — those contribute ℓ(0, θ)
// terms that pull spurious model mass down) plus the event's delta cells.
//
// Cost per row is O(|cells|·(M·R + R²) + R³) — the price of loss
// generality; BM_LossUpdate tracks it against the Gaussian baseline. The
// workspace reuses its buffers across events; per-cell scratch grows
// geometrically to the largest slice seen, so steady state allocates
// nothing new.

#ifndef SLICENSTITCH_LOSSES_GCP_ROW_UPDATE_H_
#define SLICENSTITCH_LOSSES_GCP_ROW_UPDATE_H_

#include <span>
#include <vector>

#include "common/cpu_features.h"
#include "core/cpd_state.h"
#include "core/gram_solve.h"
#include "core/slice_sampler.h"
#include "linalg/matrix.h"
#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"
#include "losses/loss_function.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Scratch of one GCP Newton row step, reused across rows and events.
struct GcpRowWorkspace {
  /// (Re)sizes the rank-shaped buffers and resolves the kernel table for
  /// `tier`; allocation-free no-op when rank and tier are unchanged.
  void Prepare(int64_t rank, KernelTier tier = ResolveKernelTier());

  const RankKernelTable* kernels = nullptr;
  int64_t padded_rank = 0;

  Matrix hessian;           // Σ ℓ''·h h' + ridge·I.
  GramSolver solver;
  AlignedVector grad;       // −g accumulator (so Solve yields the step).
  AlignedVector step;       // Box-projected Newton direction.
  AlignedVector candidate;  // Trial row of the backtracking search.
  AlignedVector old_row;    // Row value at entry.
  AlignedVector had;        // Per-cell Hadamard row h_J.
  AlignedVector had_scaled; // ℓ''-scaled copy of h_J for the outer product.

  /// Per-cell caches of the backtracking search (θ at entry and the step's
  /// θ-rate per cell). Sized to the largest cell set seen.
  std::vector<double> theta0;
  std::vector<double> dtheta;
  /// Materialized cell set of the slice-driven entry points.
  std::vector<SampledCell> cells;

 private:
  int64_t rank_ = 0;
  KernelTier tier_ = KernelTier::kGeneric;
};

/// One damped Newton step of A(mode)(row, :) on the restricted objective
/// over `cells` (window coordinates + values; every cell must have
/// index[mode] == row). Factors are read through the mixed-precision mirror
/// when state.mixed() (matching the Gaussian hot path); the updated row is
/// written back and re-quantized (SyncRowToF32) but the Grams are NOT
/// touched — callers commit the row through their own Gram maintenance
/// (RowUpdaterBase::CommitRow) or recompute afterwards (GcpSweep).
/// Returns true when the row changed; ws.old_row then holds its previous
/// value. Pass clip_min = -inf / clip_max = +inf for unclipped variants.
bool GcpNewtonRowUpdate(CpdState& state, int mode, int64_t row,
                        const LossFunction& loss,
                        std::span<const SampledCell> cells, double clip_min,
                        double clip_max, GcpRowWorkspace& ws);

/// Convenience over GcpNewtonRowUpdate: materializes the full slice
/// {J : J[mode] = row} of window non-zeros into ws.cells and steps on it —
/// the exact (non-sampled) GCP row rule.
bool GcpNewtonRowUpdateOnSlice(const SparseTensor& window, CpdState& state,
                               int mode, int64_t row, const LossFunction& loss,
                               double clip_min, double clip_max,
                               GcpRowWorkspace& ws);

/// GCP analog of one SNS-MAT ALS sweep: a damped Newton step for every
/// factor row with a non-empty window slice, mode by mode, reading the
/// live (partially updated) factors like ALS does. λ is left untouched
/// (non-Gaussian engines absorb λ into the factors at initialization) and
/// the Grams are left stale — the caller refreshes them (SNS-MAT recomputes
/// or re-quantizes after the sweep).
void GcpSweep(const SparseTensor& window, CpdState& state,
              const LossFunction& loss, GcpRowWorkspace& ws);

}  // namespace sns

#endif  // SLICENSTITCH_LOSSES_GCP_ROW_UPDATE_H_
