// Console reporting helpers for the benchmark binaries: aligned tables and
// the standard experiment banner (dataset, hyperparameters, scale note).

#ifndef SLICENSTITCH_EXPERIMENTS_REPORT_H_
#define SLICENSTITCH_EXPERIMENTS_REPORT_H_

#include <string>
#include <vector>

#include "data/datasets.h"

namespace sns {

/// Simple fixed-width console table.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders the table (header + separator + rows) to stdout.
  void Print() const;

  /// Formats a double with the given precision.
  static std::string Num(double value, int precision = 3);
  /// Scientific notation, e.g. 1.604e-05.
  static std::string Sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard banner: which paper artifact the binary regenerates,
/// the dataset's Table III hyperparameters, and the synthetic-scale caveat.
void PrintExperimentBanner(const std::string& artifact,
                           const std::string& expectation);

/// One-line dataset summary (name, modes, T, θ, events).
void PrintDatasetLine(const DatasetSpec& spec, int64_t num_events);

}  // namespace sns

#endif  // SLICENSTITCH_EXPERIMENTS_REPORT_H_
