#include "experiments/harness.h"

#include <algorithm>

#include "baselines/cp_stream.h"
#include "baselines/necpd.h"
#include "baselines/online_scp.h"
#include "baselines/periodic_als.h"

namespace sns {

double RunResult::MeanFitness(double fraction) const {
  if (fitness_curve.empty()) return 0.0;
  const size_t start = static_cast<size_t>(
      static_cast<double>(fitness_curve.size()) * (1.0 - fraction));
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = std::min(start, fitness_curve.size() - 1);
       i < fitness_curve.size(); ++i) {
    sum += fitness_curve[i].fitness;
    ++count;
  }
  return sum / static_cast<double>(count);
}

RunResult RunContinuous(
    const DatasetSpec& spec, const DataStream& stream, SnsVariant variant,
    const std::function<void(ContinuousCpdOptions&)>& override_options) {
  ContinuousCpdOptions options = spec.engine;
  options.variant = variant;
  if (override_options) override_options(options);
  if (options.expected_nnz == 0) {
    // Pre-size the window for the warm-up span (an upper bound on the
    // simultaneous non-zeros it produces).
    options.expected_nnz = stream.CountTuplesThrough(spec.WarmupEndTime());
  }

  auto engine = ContinuousCpd::Create(stream.mode_dims(), options);
  SNS_CHECK(engine.ok());
  std::unique_ptr<ContinuousCpd> cpd = std::move(engine).value();

  const int64_t warmup_end = spec.WarmupEndTime();
  const auto& tuples = stream.tuples();
  size_t i = 0;
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd->IngestOnly(tuples[i]);
  }
  cpd->InitializeWithAls();

  RunResult result;
  result.method = VariantName(variant);
  int64_t next_boundary = warmup_end + options.period;
  for (; i < tuples.size(); ++i) {
    while (tuples[i].time > next_boundary) {
      cpd->AdvanceTo(next_boundary);
      result.fitness_curve.push_back({next_boundary, cpd->Fitness()});
      next_boundary += options.period;
    }
    cpd->ProcessTuple(tuples[i]);
  }
  const int64_t last_boundary =
      (stream.end_time() / options.period) * options.period;
  while (next_boundary <= last_boundary) {
    cpd->AdvanceTo(next_boundary);
    result.fitness_curve.push_back({next_boundary, cpd->Fitness()});
    next_boundary += options.period;
  }

  result.mean_update_micros = cpd->MeanUpdateMicros();
  result.total_update_seconds = cpd->update_seconds();
  result.updates = cpd->events_processed();
  result.num_parameters = cpd->model().NumParameters();
  return result;
}

RunResult RunPeriodic(const DatasetSpec& spec, const DataStream& stream,
                      std::unique_ptr<PeriodicAlgorithm> algorithm) {
  RunResult result;
  result.method = std::string(algorithm->name());

  PeriodicRunner runner(stream.mode_dims(), spec.engine.window_size,
                        spec.engine.period, std::move(algorithm));
  const int64_t warmup_end = spec.WarmupEndTime();
  const auto& tuples = stream.tuples();
  size_t i = 0;
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    runner.Warmup(tuples[i]);
  }
  Rng rng(spec.engine.seed + 17);
  runner.Initialize(rng, warmup_end);
  for (; i < tuples.size(); ++i) runner.Process(tuples[i]);
  runner.FinishUpTo(stream.end_time());

  for (const PeriodicObservation& obs : runner.observations()) {
    result.fitness_curve.push_back({obs.boundary_time, obs.fitness});
    result.total_update_seconds += obs.update_micros * 1e-6;
  }
  result.updates = static_cast<int64_t>(runner.observations().size());
  result.mean_update_micros = runner.MeanUpdateMicros();
  result.num_parameters = runner.model().NumParameters();
  return result;
}

std::unique_ptr<PeriodicAlgorithm> MakeBaseline(const std::string& name,
                                                const DatasetSpec& spec) {
  AlsOptions init = spec.engine.init;
  const int64_t rank = spec.engine.rank;
  if (name == "ALS") {
    return std::make_unique<PeriodicAls>(rank, init, spec.engine.seed + 29);
  }
  if (name == "OnlineSCP") return std::make_unique<OnlineScp>(rank, init);
  if (name == "CP-stream") return std::make_unique<CpStream>(rank, init);
  if (name == "NeCPD(1)") {
    return std::make_unique<NeCpd>(rank, init, /*epochs=*/1);
  }
  if (name == "NeCPD(10)") {
    return std::make_unique<NeCpd>(rank, init, /*epochs=*/10);
  }
  SNS_CHECK(false);  // Unknown baseline name.
  return nullptr;
}

std::vector<FitnessSample> RelativeTo(const std::vector<FitnessSample>& curve,
                                      const std::vector<FitnessSample>& als) {
  std::vector<FitnessSample> out;
  for (const FitnessSample& sample : curve) {
    for (const FitnessSample& reference : als) {
      if (reference.time == sample.time && reference.fitness > 0.0) {
        out.push_back({sample.time, sample.fitness / reference.fitness});
        break;
      }
    }
  }
  return out;
}

double MeanOf(const std::vector<FitnessSample>& curve) {
  if (curve.empty()) return 0.0;
  double sum = 0.0;
  for (const FitnessSample& sample : curve) sum += sample.fitness;
  return sum / static_cast<double>(curve.size());
}

KruskalModel MergeTimeRows(const KruskalModel& model, int64_t group) {
  SNS_CHECK(group >= 1);
  const int time_mode = model.num_modes() - 1;
  const Matrix& fine = model.factor(time_mode);
  const int64_t merged_rows = (fine.rows() + group - 1) / group;
  Matrix coarse(merged_rows, fine.cols());
  for (int64_t i = 0; i < fine.rows(); ++i) {
    double* target = coarse.Row(i / group);
    const double* source = fine.Row(i);
    for (int64_t r = 0; r < fine.cols(); ++r) target[r] += source[r];
  }
  std::vector<Matrix> factors = model.factors();
  factors[static_cast<size_t>(time_mode)] = std::move(coarse);
  KruskalModel merged(std::move(factors));
  merged.lambda() = model.lambda();
  return merged;
}

}  // namespace sns
