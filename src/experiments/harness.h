// Experiment harness shared by the benchmark binaries: runs the paper's
// protocol (§VI-A) — warm up one window span, initialize factors with ALS,
// process events during kLiveWindows·W·T — for both the continuous engine
// and the periodic baselines, collecting fitness trajectories and update
// latencies. Lives in the library so it is unit-tested like everything else.

#ifndef SLICENSTITCH_EXPERIMENTS_HARNESS_H_
#define SLICENSTITCH_EXPERIMENTS_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/periodic_algorithm.h"
#include "baselines/periodic_runner.h"
#include "core/continuous_cpd.h"
#include "data/datasets.h"
#include "stream/data_stream.h"

namespace sns {

/// Fitness measured at one checkpoint (a period boundary).
struct FitnessSample {
  int64_t time = 0;
  double fitness = 0.0;
};

/// Result of running one method over one dataset.
struct RunResult {
  std::string method;
  /// Mean latency of one factor update (per event for SliceNStitch methods,
  /// per period for baselines), in microseconds.
  double mean_update_micros = 0.0;
  /// Total time spent in factor updates, seconds.
  double total_update_seconds = 0.0;
  /// Number of factor updates performed.
  int64_t updates = 0;
  /// Fitness at each period boundary of the live phase.
  std::vector<FitnessSample> fitness_curve;
  /// Number of model parameters at the end of the run.
  int64_t num_parameters = 0;

  /// Mean fitness over the last `fraction` of the curve (default: all).
  double MeanFitness(double fraction = 1.0) const;
};

/// Runs a SliceNStitch variant through the standard protocol. Fitness is
/// sampled at every period boundary of the live phase so curves align with
/// the baselines'. `override_options` (optional) tweaks the preset's engine
/// options (θ/η sweeps).
RunResult RunContinuous(
    const DatasetSpec& spec, const DataStream& stream, SnsVariant variant,
    const std::function<void(ContinuousCpdOptions&)>& override_options = {});

/// Runs a periodic baseline through the same protocol.
RunResult RunPeriodic(const DatasetSpec& spec, const DataStream& stream,
                      std::unique_ptr<PeriodicAlgorithm> algorithm);

/// Builds the baseline by name: "ALS", "OnlineSCP", "CP-stream", "NeCPD(1)",
/// "NeCPD(10)".
std::unique_ptr<PeriodicAlgorithm> MakeBaseline(const std::string& name,
                                                const DatasetSpec& spec);

/// Divides each entry of `curve` by the ALS fitness at the same boundary
/// (skipping boundaries where the reference is not positive). Relative
/// fitness ≡ fitness_target / fitness_ALS (§VI-A).
std::vector<FitnessSample> RelativeTo(const std::vector<FitnessSample>& curve,
                                      const std::vector<FitnessSample>& als);

/// Mean of a fitness curve (0 when empty).
double MeanOf(const std::vector<FitnessSample>& curve);

/// Merges groups of `group` consecutive time-mode rows by summing them
/// (footnote 7 of the paper): returns a model whose time mode has
/// ceil(W/group) rows. Used to compare fine-grained conventional CPD against
/// the coarse window in Fig. 1.
KruskalModel MergeTimeRows(const KruskalModel& model, int64_t group);

}  // namespace sns

#endif  // SLICENSTITCH_EXPERIMENTS_HARNESS_H_
