#include "experiments/report.h"

#include <algorithm>
#include <cstdio>

namespace sns {

TableReporter::TableReporter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableReporter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TableReporter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TableReporter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableReporter::Sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

void PrintExperimentBanner(const std::string& artifact,
                           const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("SliceNStitch reproduction — %s\n", artifact.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf(
      "Data: synthetic stand-ins for the paper datasets (same modes, T, "
      "theta,\neta; scaled event counts — set SNS_BENCH_SCALE to change). "
      "Compare\nSHAPES with the paper, not absolute numbers.\n");
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

void PrintDatasetLine(const DatasetSpec& spec, int64_t num_events) {
  std::string modes;
  for (size_t m = 0; m < spec.stream.mode_dims.size(); ++m) {
    if (m > 0) modes += "x";
    modes += std::to_string(spec.stream.mode_dims[m]);
  }
  std::printf(
      "\n--- %s (%s): modes %s, T=%lld, W=%d, R=%lld, theta=%lld, eta=%g, "
      "events=%lld ---\n",
      spec.paper_name.c_str(), spec.name.c_str(), modes.c_str(),
      static_cast<long long>(spec.engine.period), spec.engine.window_size,
      static_cast<long long>(spec.engine.rank),
      static_cast<long long>(spec.engine.sample_threshold),
      spec.engine.clip_bound, static_cast<long long>(num_events));
}

}  // namespace sns
