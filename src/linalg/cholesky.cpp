#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/rank_dispatch.h"

namespace sns {

bool CholeskyFactorizeInto(const Matrix& a, Matrix& lower) {
  SNS_CHECK(a.rows() == a.cols());
  SNS_CHECK(lower.rows() == a.rows() && lower.cols() == a.rows());
  const int64_t n = a.rows();
  for (int64_t i = 0; i < n; ++i) {
    const double* row_i = lower.Row(i);
    for (int64_t j = 0; j <= i; ++j) {
      // Row-prefix dot (runtime length j; contiguous row access).
      const double sum = a(i, j) - VecDot<0>(row_i, lower.Row(j), j);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        lower(i, i) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return true;
}

void CholeskySolveInPlace(const Matrix& lower, double* SNS_RESTRICT x) {
  const int64_t n = lower.rows();
  // Forward substitution L y = b: x[i] ← (x[i] − L(i,0..i)·x) / L(i,i).
  // Row-prefix dot over the contiguous row, vectorizable without strided
  // column access.
  for (int64_t i = 0; i < n; ++i) {
    const double* SNS_RESTRICT row = lower.Row(i);
    x[i] = (x[i] - VecDot<0>(row, x, i)) / row[i];
  }
  // Back substitution L' x = y, written column-of-L' = row-of-L oriented:
  // once x[i] is final, subtract its contribution L(i, 0..i)·x[i] from the
  // pending prefix — an axpy over the contiguous row instead of a strided
  // column walk.
  for (int64_t i = n - 1; i >= 0; --i) {
    const double* SNS_RESTRICT row = lower.Row(i);
    const double x_i = x[i] / row[i];
    x[i] = x_i;
    VecAxpy<0>(-x_i, row, x, i);
  }
}

bool CholeskyFactorizeUpperInto(const Matrix& a, Matrix& upper) {
  return CholeskyFactorizeUpperInto(a, upper, GetRankKernelTable(0));
}

bool CholeskyFactorizeUpperInto(const Matrix& a, Matrix& upper,
                                const RankKernelTable& kr) {
  SNS_CHECK(a.rows() == a.cols());
  SNS_CHECK(upper.rows() == a.rows() && upper.cols() == a.rows());
  SNS_DCHECK(kr.padded_rank == 0);  // Suffix lengths are runtime values.
  const int64_t n = a.rows();
  // Stage the upper triangle of (symmetric) a row by row.
  for (int64_t i = 0; i < n; ++i) {
    const double* SNS_RESTRICT a_row = a.Row(i);
    double* SNS_RESTRICT u_row = upper.Row(i);
    for (int64_t j = i; j < n; ++j) u_row[j] = a_row[j];
  }
  for (int64_t k = 0; k < n; ++k) {
    double* SNS_RESTRICT row_k = upper.Row(k);
    const double pivot = row_k[k];
    if (pivot <= 0.0 || !std::isfinite(pivot)) return false;
    const double diag = std::sqrt(pivot);
    row_k[k] = diag;
    const double inv = 1.0 / diag;
    for (int64_t j = k + 1; j < n; ++j) row_k[j] *= inv;
    // Trailing update: U(i, i..n) −= u_ki · U(k, i..n) — contiguous
    // independent-element suffix axpys (negated alpha flips the sign
    // exactly, so this matches the subtraction form bitwise per tier).
    for (int64_t i = k + 1; i < n; ++i) {
      const double u_ki = row_k[i];
      if (u_ki == 0.0) continue;
      kr.axpy(-u_ki, row_k + i, upper.Row(i) + i, n - i);
    }
  }
  return true;
}

void CholeskySolveUpperInPlace(const Matrix& upper, double* x) {
  CholeskySolveUpperInPlace(upper, x, GetRankKernelTable(0));
}

void CholeskySolveUpperInPlace(const Matrix& upper, double* x,
                               const RankKernelTable& kr) {
  SNS_DCHECK(kr.padded_rank == 0);
  const int64_t n = upper.rows();
  // Forward elimination U' y = b, walking rows of U: once y[k] is final,
  // subtract its contribution U(k, k+1..n)·y[k] from the pending suffix.
  for (int64_t k = 0; k < n; ++k) {
    const double* row = upper.Row(k);
    const double y_k = x[k] / row[k];
    x[k] = y_k;
    kr.axpy(-y_k, row + k + 1, x + k + 1, n - k - 1);
  }
  // Back substitution U x = y: contiguous row-suffix dots.
  for (int64_t i = n - 1; i >= 0; --i) {
    const double* row = upper.Row(i);
    x[i] = (x[i] - kr.dot(row + i + 1, x + i + 1, n - i - 1)) / row[i];
  }
}

StatusOr<Cholesky> Cholesky::Factorize(const Matrix& a) {
  SNS_CHECK(a.rows() == a.cols());
  Matrix lower(a.rows(), a.rows());
  if (!CholeskyFactorizeInto(a, lower)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  return Cholesky(std::move(lower));
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  SNS_CHECK(static_cast<int64_t>(b.size()) == lower_.rows());
  std::vector<double> x(b);
  CholeskySolveInPlace(lower_, x.data());
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  const int64_t n = lower_.rows();
  SNS_CHECK(b.rows() == n);
  Matrix x(n, b.cols());
  std::vector<double> col(n);
  for (int64_t j = 0; j < b.cols(); ++j) {
    for (int64_t i = 0; i < n; ++i) col[i] = b(i, j);
    std::vector<double> sol = Solve(col);
    for (int64_t i = 0; i < n; ++i) x(i, j) = sol[i];
  }
  return x;
}

}  // namespace sns
