#include "linalg/cholesky.h"

#include <cmath>

namespace sns {

bool CholeskyFactorizeInto(const Matrix& a, Matrix& lower) {
  SNS_CHECK(a.rows() == a.cols());
  SNS_CHECK(lower.rows() == a.rows() && lower.cols() == a.rows());
  const int64_t n = a.rows();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int64_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        lower(i, i) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return true;
}

void CholeskySolveInPlace(const Matrix& lower, double* x) {
  const int64_t n = lower.rows();
  // Forward substitution L y = b.
  for (int64_t i = 0; i < n; ++i) {
    double sum = x[i];
    const double* row = lower.Row(i);
    for (int64_t k = 0; k < i; ++k) sum -= row[k] * x[k];
    x[i] = sum / row[i];
  }
  // Back substitution L' x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = x[i];
    for (int64_t k = i + 1; k < n; ++k) sum -= lower(k, i) * x[k];
    x[i] = sum / lower(i, i);
  }
}

StatusOr<Cholesky> Cholesky::Factorize(const Matrix& a) {
  SNS_CHECK(a.rows() == a.cols());
  Matrix lower(a.rows(), a.rows());
  if (!CholeskyFactorizeInto(a, lower)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  return Cholesky(std::move(lower));
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  SNS_CHECK(static_cast<int64_t>(b.size()) == lower_.rows());
  std::vector<double> x(b);
  CholeskySolveInPlace(lower_, x.data());
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  const int64_t n = lower_.rows();
  SNS_CHECK(b.rows() == n);
  Matrix x(n, b.cols());
  std::vector<double> col(n);
  for (int64_t j = 0; j < b.cols(); ++j) {
    for (int64_t i = 0; i < n; ++i) col[i] = b(i, j);
    std::vector<double> sol = Solve(col);
    for (int64_t i = 0; i < n; ++i) x(i, j) = sol[i];
  }
  return x;
}

}  // namespace sns
