#include "linalg/cholesky.h"

#include <cmath>

namespace sns {

StatusOr<Cholesky> Cholesky::Factorize(const Matrix& a) {
  SNS_CHECK(a.rows() == a.cols());
  const int64_t n = a.rows();
  Matrix lower(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int64_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        lower(i, i) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return Cholesky(std::move(lower));
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  const int64_t n = lower_.rows();
  SNS_CHECK(static_cast<int64_t>(b.size()) == n);
  std::vector<double> y(b);
  // Forward substitution L y = b.
  for (int64_t i = 0; i < n; ++i) {
    double sum = y[i];
    const double* row = lower_.Row(i);
    for (int64_t k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  // Back substitution L' x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int64_t k = i + 1; k < n; ++k) sum -= lower_(k, i) * y[k];
    y[i] = sum / lower_(i, i);
  }
  return y;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  const int64_t n = lower_.rows();
  SNS_CHECK(b.rows() == n);
  Matrix x(n, b.cols());
  std::vector<double> col(n);
  for (int64_t j = 0; j < b.cols(); ++j) {
    for (int64_t i = 0; i < n; ++i) col[i] = b(i, j);
    std::vector<double> sol = Solve(col);
    for (int64_t i = 0; i < n; ++i) x(i, j) = sol[i];
  }
  return x;
}

}  // namespace sns
