#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "linalg/rank_dispatch.h"

namespace sns {

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    double* row = m.Row(i);
    for (int64_t j = 0; j < cols; ++j) row[j] = rng.UniformDouble();
  }
  return m;
}

Matrix Matrix::RandomNormal(int64_t rows, int64_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    double* row = m.Row(i);
    for (int64_t j = 0; j < cols; ++j) row[j] = rng.Normal();
  }
  return m;
}

double Matrix::FrobeniusNorm() const {
  // Runs over the padded buffer: the zero padding lanes add exactly 0.0.
  const double* data = data_.data();
  const int64_t total = rows_ * stride_;
  double sum = 0.0;
  for (int64_t i = 0; i < total; ++i) sum += data[i] * data[i];
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  const double* data = data_.data();
  const int64_t total = rows_ * stride_;
  double best = 0.0;
  for (int64_t i = 0; i < total; ++i) best = std::max(best, std::fabs(data[i]));
  return best;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j) out(j, i) = row[j];
  }
  return out;
}

bool Matrix::PaddingIsZero() const {
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = cols_; j < stride_; ++j) {
      if (row[j] != 0.0) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "% .*f ", precision, (*this)(i, j));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SNS_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const int64_t n = a.rows(), k_dim = a.cols();
  const RankKernelTable& kr = GetRankKernelTable(b.stride());
  for (int64_t i = 0; i < n; ++i) {
    const double* a_row = a.Row(i);
    double* c_row = c.Row(i);
    for (int64_t k = 0; k < k_dim; ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      kr.axpy(a_ik, b.Row(k), c_row, b.stride());
    }
  }
  return c;
}

Matrix MultiplyTransposeA(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  MultiplyTransposeAInto(a, b, c);
  return c;
}

void MultiplyTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out) {
  MultiplyTransposeAInto(a, b, out, GetRankKernelTable(b.stride()));
}

void MultiplyTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out,
                            const RankKernelTable& kr) {
  SNS_CHECK(a.rows() == b.rows());
  SNS_CHECK(out.rows() == a.cols() && out.cols() == b.cols());
  out.SetZero();
  const int64_t n = a.rows(), p = a.cols();
  for (int64_t k = 0; k < n; ++k) {
    const double* a_row = a.Row(k);
    const double* b_row = b.Row(k);
    for (int64_t i = 0; i < p; ++i) {
      const double a_ki = a_row[i];
      if (a_ki == 0.0) continue;
      kr.axpy(a_ki, b_row, out.Row(i), b.stride());
    }
  }
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), a.cols());
  HadamardInto(a, b, c);
  return c;
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out) {
  HadamardInto(a, b, out, GetRankKernelTable(a.stride()));
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out,
                  const RankKernelTable& kr) {
  SNS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  SNS_CHECK(out.rows() == a.rows() && out.cols() == a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    kr.mul(a.Row(i), b.Row(i), out.Row(i), a.stride());
  }
}

void HadamardAccumulate(Matrix& dst, const Matrix& src) {
  HadamardAccumulate(dst, src, GetRankKernelTable(dst.stride()));
}

void HadamardAccumulate(Matrix& dst, const Matrix& src,
                        const RankKernelTable& kr) {
  SNS_CHECK(dst.rows() == src.rows() && dst.cols() == src.cols());
  for (int64_t i = 0; i < dst.rows(); ++i) {
    kr.mul_accum(dst.Row(i), src.Row(i), dst.stride());
  }
}

void AddOuterProduct(Matrix& dst, const double* u, const double* v) {
  AddOuterProduct(dst, u, v, GetRankKernelTable(dst.stride()));
}

void AddOuterProduct(Matrix& dst, const double* u, const double* v,
                     const RankKernelTable& kr) {
  const int64_t n = dst.rows();
  SNS_DCHECK(dst.cols() == n);
  for (int64_t i = 0; i < n; ++i) {
    const double u_i = u[i];
    if (u_i == 0.0) continue;
    kr.axpy(u_i, v, dst.Row(i), dst.stride());
  }
}

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  SNS_CHECK(a.cols() == b.cols());
  Matrix c(a.rows() * b.rows(), a.cols());
  const RankKernelTable& kr = GetRankKernelTable(a.stride());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    for (int64_t k = 0; k < b.rows(); ++k) {
      kr.mul(a_row, b.Row(k), c.Row(i * b.rows() + k), a.stride());
    }
  }
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  SNS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    const double* b_row = b.Row(i);
    double* c_row = c.Row(i);
    for (int64_t j = 0; j < a.stride(); ++j) c_row[j] = a_row[j] + b_row[j];
  }
  return c;
}

Matrix Subtract(const Matrix& a, const Matrix& b) {
  SNS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    const double* b_row = b.Row(i);
    double* c_row = c.Row(i);
    for (int64_t j = 0; j < a.stride(); ++j) c_row[j] = a_row[j] - b_row[j];
  }
  return c;
}

Matrix Scale(const Matrix& a, double factor) {
  // Logical lanes only: factor · (−0.0) would flip the padding sign bit.
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    double* c_row = c.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) c_row[j] = factor * a_row[j];
  }
  return c;
}

void RowTimesMatrix(const double* SNS_RESTRICT row, const Matrix& m,
                    double* SNS_RESTRICT out) {
  const int64_t rows = m.rows(), cols = m.cols();
  std::fill(out, out + cols, 0.0);
  for (int64_t i = 0; i < rows; ++i) {
    const double r_i = row[i];
    if (r_i == 0.0) continue;
    const double* SNS_RESTRICT m_row = m.Row(i);
    for (int64_t j = 0; j < cols; ++j) out[j] += r_i * m_row[j];
  }
}

void RowTimesMatrixPadded(const double* row, const Matrix& m, double* out) {
  RowTimesMatrixPadded(row, m, out, GetRankKernelTable(m.stride()));
}

void RowTimesMatrixPadded(const double* row, const Matrix& m, double* out,
                          const RankKernelTable& kr) {
  const int64_t rows = m.rows();
  kr.fill(out, 0.0, m.stride());
  for (int64_t i = 0; i < rows; ++i) {
    const double r_i = row[i];
    if (r_i == 0.0) continue;
    kr.axpy(r_i, m.Row(i), out, m.stride());
  }
}

double Dot(const double* a, const double* b, int64_t n) {
  // Runtime-length auto-tier table: same kernel every dot in the library
  // uses, so internal bitwise differentials stay exact.
  return GetRankKernelTable(0).dot(a, b, n);
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SNS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    const double* b_row = b.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::fabs(a_row[j] - b_row[j]));
    }
  }
  return best;
}

}  // namespace sns
