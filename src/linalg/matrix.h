// Dense row-major matrix and the small set of kernels the CPD algorithms
// need. Built from scratch (no BLAS/Eigen): every hot operation in
// SliceNStitch works on R×R Gram matrices or single 1×R rows with R ≈ 20, so
// straightforward loops are fast enough and keep the library dependency-free.
//
// SIMD-ready layout (see linalg/simd.h): storage is 64-byte aligned and rows
// are separated by a padded leading stride — cols() rounded up to a multiple
// of 4 doubles — with the padding lanes held at exactly 0.0. Every rank-R
// kernel below runs tail-free over the padded stride through the
// compile-time rank dispatch of linalg/rank_dispatch.h.

#ifndef SLICENSTITCH_LINALG_MATRIX_H_
#define SLICENSTITCH_LINALG_MATRIX_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "linalg/simd.h"

namespace sns {

class Rng;
struct RankKernelTable;  // linalg/rank_dispatch.h

/// Dense row-major matrix of doubles with an aligned, padded-stride layout.
///
/// Copyable and movable. Elements are zero-initialized on construction.
/// Indexing is bounds-checked in debug builds only.
///
/// Layout invariant: row i starts at stride() doubles past row i-1, where
/// stride() = PaddedRank(cols()) >= cols(); the padding lanes
/// [cols(), stride()) of every row hold exactly 0.0 at all times. Kernels
/// rely on this to run to the padded bound without tails; code writing
/// through Row() must preserve it (writing zeros there is fine).
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), stride_(PaddedRank(cols)),
        data_(rows * stride_) {
    SNS_CHECK(rows >= 0 && cols >= 0);
  }

  /// n×n identity.
  static Matrix Identity(int64_t n);

  /// Matrix with i.i.d. Uniform[0,1) entries (the paper's factor init).
  static Matrix RandomUniform(int64_t rows, int64_t cols, Rng& rng);

  /// Matrix with i.i.d. standard normal entries.
  static Matrix RandomNormal(int64_t rows, int64_t cols, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  /// Leading stride in doubles: PaddedRank(cols()).
  int64_t stride() const { return stride_; }

  double& operator()(int64_t i, int64_t j) {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_.data()[i * stride_ + j];
  }
  double operator()(int64_t i, int64_t j) const {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_.data()[i * stride_ + j];
  }

  /// Raw pointer to the start of row i: cols() logical doubles followed by
  /// stride() − cols() zero padding lanes (32-byte aligned).
  double* Row(int64_t i) {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }
  const double* Row(int64_t i) const {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }

  /// Stride-aware iteration over the logical entries in row-major order:
  /// fn(i, j, value). The replacement for raw flat-buffer access — padding
  /// is never exposed.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (int64_t i = 0; i < rows_; ++i) {
      const double* row = Row(i);
      for (int64_t j = 0; j < cols_; ++j) fn(i, j, row[j]);
    }
  }

  void SetZero() {
    std::fill(data_.data(), data_.data() + rows_ * stride_, 0.0);
  }

  /// Sets every LOGICAL entry to `value`; padding lanes stay 0.0.
  void Fill(double value) {
    for (int64_t i = 0; i < rows_; ++i) {
      double* row = Row(i);
      std::fill(row, row + cols_, value);
    }
  }

  /// Copies `other`'s contents into this matrix without reallocating.
  /// Shapes must match — the allocation-free alternative to operator= on
  /// preallocated hot-path buffers.
  void CopyFrom(const Matrix& other) {
    SNS_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
    std::copy(other.data_.data(), other.data_.data() + rows_ * stride_,
              data_.data());
  }

  /// sqrt of the sum of squared entries.
  double FrobeniusNorm() const;

  /// Largest absolute entry (0 for an empty matrix).
  double MaxAbs() const;

  Matrix Transposed() const;

  /// True when every padding lane holds exactly 0.0 — the layout invariant
  /// (test hook; see tests/kernel_dispatch_test.cpp).
  bool PaddingIsZero() const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t stride_ = 0;
  AlignedVector data_;
};

/// C = A * B.
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = A' * B (avoids materializing the transpose). Used for Gram matrices.
Matrix MultiplyTransposeA(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product; shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// out = a ∗ b elementwise into a preallocated `out`; all shapes must match.
/// `out` may alias `a` or `b`. The allocation-free form of Hadamard.
/// The table-taking overload lets engine-resolved call sites (hot path /
/// forced tier) reuse their cached RankKernelTable; the plain overload
/// resolves the process-wide auto tier per call.
void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out);
void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out,
                  const RankKernelTable& kr);

/// dst ∗= src elementwise in place; shapes must match. Used to fold one more
/// Gram matrix into a running Hadamard-of-Grams product.
void HadamardAccumulate(Matrix& dst, const Matrix& src);
void HadamardAccumulate(Matrix& dst, const Matrix& src,
                        const RankKernelTable& kr);

/// dst += u' v for two padded length-n row vectors (n = dst order):
/// dst(i, j) += u[i]·v[j]. The rank-1 building block of the per-event Gram
/// delta reconstruction (Eq. 17 / Eq. 26 rewritten as U = Q + (p−a)'a).
/// `u` and `v` must reference dst.stride() doubles with zero padding lanes
/// (Matrix rows and AlignedVector buffers qualify).
void AddOuterProduct(Matrix& dst, const double* u, const double* v);
void AddOuterProduct(Matrix& dst, const double* u, const double* v,
                     const RankKernelTable& kr);

/// out = a' * b without allocating; `out` must be a.cols() × b.cols().
/// The allocation-free form of MultiplyTransposeA (Gram recomputation).
void MultiplyTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out);
void MultiplyTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out,
                            const RankKernelTable& kr);

/// Column-wise Khatri-Rao product: (IK)×R from I×R and K×R, with row
/// (i*K + k) = A(i,:) ∗ B(k,:). Matches the ⊙ operator of the paper. Used by
/// tests and reference implementations, not by hot paths.
Matrix KhatriRao(const Matrix& a, const Matrix& b);

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Subtract(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double factor);

/// out[1×n] = row[1×m] * m×n matrix. `out` must not alias `row`. Logical
/// lengths: `row` holds m.rows() values, `out` receives m.cols() values —
/// no padded capacity required of either.
void RowTimesMatrix(const double* row, const Matrix& m, double* out);

/// Padded form of RowTimesMatrix for the update hot path: `out` must hold
/// m.stride() doubles (its padding lanes are zeroed — sums of m's zero
/// padding), letting the accumulation run tail-free at the dispatched
/// rank. `row` still holds m.rows() logical values.
void RowTimesMatrixPadded(const double* row, const Matrix& m, double* out);
void RowTimesMatrixPadded(const double* row, const Matrix& m, double* out,
                          const RankKernelTable& kr);

/// Dot product of two length-n arrays.
double Dot(const double* a, const double* b, int64_t n);

/// Max absolute difference between same-shaped matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_MATRIX_H_
