// Dense row-major matrix and the small set of kernels the CPD algorithms
// need. Built from scratch (no BLAS/Eigen): every hot operation in
// SliceNStitch works on R×R Gram matrices or single 1×R rows with R ≈ 20, so
// straightforward loops are fast enough and keep the library dependency-free.

#ifndef SLICENSTITCH_LINALG_MATRIX_H_
#define SLICENSTITCH_LINALG_MATRIX_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace sns {

class Rng;

/// Dense row-major matrix of doubles.
///
/// Copyable and movable. Elements are zero-initialized on construction and
/// resize. Indexing is bounds-checked in debug builds only.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    SNS_CHECK(rows >= 0 && cols >= 0);
  }

  /// n×n identity.
  static Matrix Identity(int64_t n);

  /// Matrix with i.i.d. Uniform[0,1) entries (the paper's factor init).
  static Matrix RandomUniform(int64_t rows, int64_t cols, Rng& rng);

  /// Matrix with i.i.d. standard normal entries.
  static Matrix RandomNormal(int64_t rows, int64_t cols, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& operator()(int64_t i, int64_t j) {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double operator()(int64_t i, int64_t j) const {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Raw pointer to the start of row i (contiguous cols() doubles).
  double* Row(int64_t i) {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * cols_;
  }
  const double* Row(int64_t i) const {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * cols_;
  }

  const std::vector<double>& data() const { return data_; }

  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }
  void Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copies `other`'s contents into this matrix without reallocating.
  /// Shapes must match — the allocation-free alternative to operator= on
  /// preallocated hot-path buffers.
  void CopyFrom(const Matrix& other) {
    SNS_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  }

  /// sqrt of the sum of squared entries.
  double FrobeniusNorm() const;

  /// Largest absolute entry (0 for an empty matrix).
  double MaxAbs() const;

  Matrix Transposed() const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

/// C = A * B.
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = A' * B (avoids materializing the transpose). Used for Gram matrices.
Matrix MultiplyTransposeA(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product; shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// out = a ∗ b elementwise into a preallocated `out`; all shapes must match.
/// `out` may alias `a` or `b`. The allocation-free form of Hadamard.
void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out);

/// dst ∗= src elementwise in place; shapes must match. Used to fold one more
/// Gram matrix into a running Hadamard-of-Grams product.
void HadamardAccumulate(Matrix& dst, const Matrix& src);

/// dst += u' v for two length-n row vectors (n = dst order):
/// dst(i, j) += u[i]·v[j]. The rank-1 building block of the per-event Gram
/// delta reconstruction (Eq. 17 / Eq. 26 rewritten as U = Q + (p−a)'a).
void AddOuterProduct(Matrix& dst, const double* u, const double* v);

/// out = a' * b without allocating; `out` must be a.cols() × b.cols().
/// The allocation-free form of MultiplyTransposeA (Gram recomputation).
void MultiplyTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out);

/// Column-wise Khatri-Rao product: (IK)×R from I×R and K×R, with row
/// (i*K + k) = A(i,:) ∗ B(k,:). Matches the ⊙ operator of the paper. Used by
/// tests and reference implementations, not by hot paths.
Matrix KhatriRao(const Matrix& a, const Matrix& b);

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Subtract(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double factor);

/// out[1×n] = row[1×m] * m×n matrix. `out` must not alias `row`.
void RowTimesMatrix(const double* row, const Matrix& m, double* out);

/// Dot product of two length-n arrays.
double Dot(const double* a, const double* b, int64_t n);

/// Max absolute difference between same-shaped matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_MATRIX_H_
