// SIMD-ready memory layout for the dense kernel layer.
//
// Every rank-R inner loop in SliceNStitch (Hadamard row products, MTTKRP
// rows, Gram rank-1 updates, triangular solves — the Theorem 4 cost terms)
// runs over buffers laid out by this header:
//   - allocations are 64-byte aligned (cache line / AVX-512 friendly),
//   - logical lengths are padded up to a multiple of kRankPadDoubles
//     (4 doubles = one 256-bit vector), and
//   - the padding lanes hold EXACTLY 0.0 at all times,
// so kernels can run tail-free to the padded bound: products and sums over
// the padding lanes are products and sums of zeros. The invariant is
// regression-guarded by tests/kernel_dispatch_test.cpp.

#ifndef SLICENSTITCH_LINALG_SIMD_H_
#define SLICENSTITCH_LINALG_SIMD_H_

#include <algorithm>
#include <cstdint>
#include <new>

#include "common/check.h"

#if defined(__GNUC__) || defined(__clang__)
#define SNS_RESTRICT __restrict__
#else
#define SNS_RESTRICT
#endif

namespace sns {

/// Alignment of every dense-kernel allocation, in bytes.
inline constexpr int64_t kSimdByteAlignment = 64;

/// Rank padding quantum, in doubles (4 doubles = 32 bytes = one AVX2 lane).
inline constexpr int64_t kRankPadDoubles = 4;

/// Rank padding quantum of the float32 factor mirrors (8 floats = 32 bytes;
/// see linalg/matrix32.h). Keeping both quanta at one 256-bit vector means
/// a float32 row's stride is always >= the matching double row's padded
/// rank, so the double-padded trip count is in-bounds on float rows too.
inline constexpr int64_t kRankPadFloats = 8;

/// `n` rounded up to a multiple of kRankPadDoubles — the leading stride of a
/// padded rank-n row.
constexpr int64_t PaddedRank(int64_t n) {
  return (n + kRankPadDoubles - 1) / kRankPadDoubles * kRankPadDoubles;
}

/// `n` rounded up to a multiple of kRankPadFloats — the leading stride of a
/// padded rank-n float32 row.
constexpr int64_t PaddedRank32(int64_t n) {
  return (n + kRankPadFloats - 1) / kRankPadFloats * kRankPadFloats;
}

/// 64-byte-aligned buffer with a padded capacity and a zero-padding
/// invariant: the buffer holds Padded(size()) elements (size() rounded up
/// to a multiple of kPadElems), and the lanes past size() are zero on
/// allocation and must be kept zero by callers (the padded kernels do so
/// automatically — they only ever write products/sums of the zero lanes
/// there).
///
/// The scratch-row counterpart of Matrix: UpdateWorkspace / AlsWorkspace
/// rank-length buffers live here so the padded kernels may read and write
/// the full stride. Use through the AlignedVector (double) and
/// AlignedVector32 (float) aliases below.
template <typename T, int64_t kPadElems>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(int64_t n, T value = T(0)) { Assign(n, value); }
  ~AlignedBuffer() { Release(); }

  /// size() rounded up to the padding quantum.
  static constexpr int64_t Padded(int64_t n) {
    return (n + kPadElems - 1) / kPadElems * kPadElems;
  }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    if (padded_ != other.padded_) {
      Release();
      data_ = Allocate(other.padded_);
      padded_ = other.padded_;
    }
    size_ = other.size_;
    if (padded_ > 0) std::copy(other.data_, other.data_ + padded_, data_);
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { Swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      Swap(other);
    }
    return *this;
  }

  /// Logical length.
  int64_t size() const { return size_; }
  /// Allocated length: Padded(size()).
  int64_t padded_size() const { return padded_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](int64_t i) {
    SNS_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }
  T operator[](int64_t i) const {
    SNS_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }

  /// Sets the logical length to n. Allocation-free (contents kept) when
  /// the padded capacity already matches; otherwise reallocates and
  /// zero-initializes everything. A shrink zeroes the lanes leaving the
  /// logical range so the padding invariant holds for the new length.
  void Resize(int64_t n) {
    SNS_CHECK(n >= 0);
    const int64_t padded = Padded(n);
    if (padded == padded_) {
      if (n < size_) std::fill(data_ + n, data_ + size_, T(0));
      size_ = n;
      return;
    }
    Release();
    data_ = Allocate(padded);
    padded_ = padded;
    size_ = n;
  }

  /// Resizes to n and sets every logical lane to `value` (padding to zero).
  void Assign(int64_t n, T value) {
    Resize(n);
    std::fill(data_, data_ + size_, value);
    std::fill(data_ + size_, data_ + padded_, T(0));
  }

  /// True when every padding lane holds exactly zero (test hook for the
  /// zero-padding invariant).
  bool PaddingIsZero() const {
    for (int64_t i = size_; i < padded_; ++i) {
      if (data_[i] != T(0)) return false;
    }
    return true;
  }

 private:
  static T* Allocate(int64_t padded) {
    if (padded == 0) return nullptr;
    void* raw = ::operator new(static_cast<size_t>(padded) * sizeof(T),
                               std::align_val_t{kSimdByteAlignment});
    T* data = static_cast<T*>(raw);
    std::fill(data, data + padded, T(0));
    return data;
  }

  void Release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kSimdByteAlignment});
    }
    data_ = nullptr;
    size_ = 0;
    padded_ = 0;
  }

  void Swap(AlignedBuffer& other) {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(padded_, other.padded_);
  }

  T* data_ = nullptr;
  int64_t size_ = 0;
  int64_t padded_ = 0;
};

/// The double buffer every rank-R kernel operates on (stride quantum:
/// kRankPadDoubles).
using AlignedVector = AlignedBuffer<double, kRankPadDoubles>;

/// Float32 counterpart used by the mixed-precision factor mirrors (stride
/// quantum: kRankPadFloats; see linalg/matrix32.h).
using AlignedVector32 = AlignedBuffer<float, kRankPadFloats>;

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_SIMD_H_
