// Entry points of the intrinsic codelet TUs.
//
// codelets_avx2.cpp and codelets_avx512.cpp implement the RankKernelTable
// contract with explicit AVX2+FMA / AVX-512F intrinsics. Each TU is
// compiled with the matching -m flags (see CMakeLists.txt), so its code
// must only ever run after the cpuid probe confirmed support — which is
// guaranteed because the only way to reach it is through the tier-resolved
// tables of GetRankKernelTable (linalg/rank_dispatch.cpp). Everything
// inside those TUs lives in anonymous namespaces except the two getters
// below, so no inline symbol compiled with wide-vector flags can leak into
// baseline TUs through the linker.
//
// The getters are only linked into builds that define SNS_HAVE_X86_CODELETS
// (x86-64 with a GCC/Clang toolchain); rank_dispatch.cpp guards every
// reference accordingly.

#ifndef SLICENSTITCH_LINALG_CODELETS_CODELET_TABLES_H_
#define SLICENSTITCH_LINALG_CODELETS_CODELET_TABLES_H_

#include <cstdint>

#include "linalg/rank_dispatch.h"

namespace sns::codelets {

/// AVX2+FMA table for a padded rank (0 selects the runtime-bound table).
/// Static storage duration; requires avx2+fma at runtime.
const RankKernelTable& Avx2Table(int64_t padded_rank);

/// AVX-512F table for a padded rank (0 selects the runtime-bound table).
/// Static storage duration; requires avx512f (+avx2+fma) at runtime.
const RankKernelTable& Avx512Table(int64_t padded_rank);

}  // namespace sns::codelets

#endif  // SLICENSTITCH_LINALG_CODELETS_CODELET_TABLES_H_
