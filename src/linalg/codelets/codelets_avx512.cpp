// AVX-512F codelets for the rank-R kernel layer.
//
// Same contract and isolation rules as codelets_avx2.cpp (see its header
// comment); this TU is compiled with -mavx512f -mavx2 -mfma and reached
// only through the tier-resolved RankKernelTable after the cpuid probe
// confirmed avx512f.
//
// Padded ranks are multiples of 4 doubles, not 8, so every kernel runs an
// 8-wide (512-bit) main loop followed by at most one 4-wide (256-bit) step
// — e.g. padded rank 20 = 2×8 + 4 — and the P = 0 runtime-length
// instantiations add a scalar tail for the unaligned Cholesky suffixes.
// The dot kernel reduces eight partial-sum lanes, so its summation
// grouping differs from the generic/AVX2 four-lane scheme: dots agree to
// ulp-level tolerance across tiers, never bitwise (tests pin this).

#include "linalg/codelets/codelet_tables.h"

#ifdef SNS_HAVE_X86_CODELETS

#include <immintrin.h>

namespace sns::codelets {
namespace {

template <int64_t P>
inline int64_t Trip(int64_t n) {
  return P > 0 ? P : n;
}

template <int64_t P>
void Fill(double* dst, double value, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d v8 = _mm512_set1_pd(value);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) _mm512_storeu_pd(dst + r, v8);
  if (r + 4 <= m) {
    _mm256_storeu_pd(dst + r, _mm512_castpd512_pd256(v8));
    r += 4;
  }
  for (; r < m; ++r) dst[r] = value;
}

template <int64_t P>
void Copy(const double* src, double* dst, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    _mm512_storeu_pd(dst + r, _mm512_loadu_pd(src + r));
  }
  if (r + 4 <= m) {
    _mm256_storeu_pd(dst + r, _mm256_loadu_pd(src + r));
    r += 4;
  }
  for (; r < m; ++r) dst[r] = src[r];
}

template <int64_t P>
void Axpy(double alpha, const double* x, double* y, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d va8 = _mm512_set1_pd(alpha);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    _mm512_storeu_pd(y + r, _mm512_fmadd_pd(va8, _mm512_loadu_pd(x + r),
                                            _mm512_loadu_pd(y + r)));
  }
  if (r + 4 <= m) {
    const __m256d va4 = _mm512_castpd512_pd256(va8);
    _mm256_storeu_pd(y + r, _mm256_fmadd_pd(va4, _mm256_loadu_pd(x + r),
                                            _mm256_loadu_pd(y + r)));
    r += 4;
  }
  for (; r < m; ++r) y[r] += alpha * x[r];
}

template <int64_t P>
void Mul(const double* a, const double* b, double* out, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    _mm512_storeu_pd(out + r, _mm512_mul_pd(_mm512_loadu_pd(a + r),
                                            _mm512_loadu_pd(b + r)));
  }
  if (r + 4 <= m) {
    _mm256_storeu_pd(out + r, _mm256_mul_pd(_mm256_loadu_pd(a + r),
                                            _mm256_loadu_pd(b + r)));
    r += 4;
  }
  for (; r < m; ++r) out[r] = a[r] * b[r];
}

template <int64_t P>
void MulAccum(double* dst, const double* src, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    _mm512_storeu_pd(dst + r, _mm512_mul_pd(_mm512_loadu_pd(dst + r),
                                            _mm512_loadu_pd(src + r)));
  }
  if (r + 4 <= m) {
    _mm256_storeu_pd(dst + r, _mm256_mul_pd(_mm256_loadu_pd(dst + r),
                                            _mm256_loadu_pd(src + r)));
    r += 4;
  }
  for (; r < m; ++r) dst[r] *= src[r];
}

template <int64_t P>
void Fma3(double v, const double* a, const double* b, double* out, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d vv8 = _mm512_set1_pd(v);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const __m512d prod =
        _mm512_mul_pd(_mm512_loadu_pd(a + r), _mm512_loadu_pd(b + r));
    _mm512_storeu_pd(out + r,
                     _mm512_fmadd_pd(vv8, prod, _mm512_loadu_pd(out + r)));
  }
  if (r + 4 <= m) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + r), _mm256_loadu_pd(b + r));
    _mm256_storeu_pd(out + r, _mm256_fmadd_pd(_mm512_castpd512_pd256(vv8),
                                              prod, _mm256_loadu_pd(out + r)));
    r += 4;
  }
  for (; r < m; ++r) out[r] += v * (a[r] * b[r]);
}

template <int64_t P>
double Dot(const double* a, const double* b, int64_t n) {
  const int64_t m = Trip<P>(n);
  __m512d acc = _mm512_setzero_pd();
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + r), _mm512_loadu_pd(b + r), acc);
  }
  double sum = _mm512_reduce_add_pd(acc);
  if (r + 4 <= m) {
    const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(a + r),
                                    _mm256_loadu_pd(b + r));
    const __m128d pair =
        _mm_add_pd(_mm256_castpd256_pd128(p), _mm256_extractf128_pd(p, 1));
    sum += _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
    r += 4;
  }
  for (; r < m; ++r) sum += a[r] * b[r];
  return sum;
}

template <int64_t P>
void GramRowDelta(double new_i, const double* new_row, double old_i,
                  const double* old_row, double* g, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d vn8 = _mm512_set1_pd(new_i);
  const __m512d vo8 = _mm512_set1_pd(old_i);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    __m512d t = _mm512_mul_pd(vn8, _mm512_loadu_pd(new_row + r));
    t = _mm512_fnmadd_pd(vo8, _mm512_loadu_pd(old_row + r), t);
    _mm512_storeu_pd(g + r, _mm512_add_pd(_mm512_loadu_pd(g + r), t));
  }
  if (r + 4 <= m) {
    __m256d t = _mm256_mul_pd(_mm512_castpd512_pd256(vn8),
                              _mm256_loadu_pd(new_row + r));
    t = _mm256_fnmadd_pd(_mm512_castpd512_pd256(vo8),
                         _mm256_loadu_pd(old_row + r), t);
    _mm256_storeu_pd(g + r, _mm256_add_pd(_mm256_loadu_pd(g + r), t));
    r += 4;
  }
  for (; r < m; ++r) g[r] += new_i * new_row[r] - old_i * old_row[r];
}

template <int64_t P>
void ScaledDiffAccum(double p, const double* new_row, const double* prev_row,
                     double* g, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d vp8 = _mm512_set1_pd(p);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(new_row + r),
                                    _mm512_loadu_pd(prev_row + r));
    _mm512_storeu_pd(g + r, _mm512_fmadd_pd(vp8, d, _mm512_loadu_pd(g + r)));
  }
  if (r + 4 <= m) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(new_row + r),
                                    _mm256_loadu_pd(prev_row + r));
    _mm256_storeu_pd(g + r, _mm256_fmadd_pd(_mm512_castpd512_pd256(vp8), d,
                                            _mm256_loadu_pd(g + r)));
    r += 4;
  }
  for (; r < m; ++r) g[r] += p * (new_row[r] - prev_row[r]);
}

template <int64_t P>
void MulAccumF32(double* dst, const float* src, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const __m512d wide = _mm512_cvtps_pd(_mm256_loadu_ps(src + r));
    _mm512_storeu_pd(dst + r, _mm512_mul_pd(_mm512_loadu_pd(dst + r), wide));
  }
  if (r + 4 <= m) {
    const __m256d wide = _mm256_cvtps_pd(_mm_loadu_ps(src + r));
    _mm256_storeu_pd(dst + r, _mm256_mul_pd(_mm256_loadu_pd(dst + r), wide));
    r += 4;
  }
  for (; r < m; ++r) dst[r] *= static_cast<double>(src[r]);
}

template <int64_t P>
void Fma3F32(double v, const float* a, const float* b, double* out,
             int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m512d vv8 = _mm512_set1_pd(v);
  int64_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const __m512d wa = _mm512_cvtps_pd(_mm256_loadu_ps(a + r));
    const __m512d wb = _mm512_cvtps_pd(_mm256_loadu_ps(b + r));
    _mm512_storeu_pd(out + r, _mm512_fmadd_pd(vv8, _mm512_mul_pd(wa, wb),
                                              _mm512_loadu_pd(out + r)));
  }
  if (r + 4 <= m) {
    const __m256d wa = _mm256_cvtps_pd(_mm_loadu_ps(a + r));
    const __m256d wb = _mm256_cvtps_pd(_mm_loadu_ps(b + r));
    _mm256_storeu_pd(out + r,
                     _mm256_fmadd_pd(_mm512_castpd512_pd256(vv8),
                                     _mm256_mul_pd(wa, wb),
                                     _mm256_loadu_pd(out + r)));
    r += 4;
  }
  for (; r < m; ++r) {
    out[r] += v * (static_cast<double>(a[r]) * static_cast<double>(b[r]));
  }
}

template <int64_t P>
constexpr RankKernelTable kTable = {KernelTier::kAvx512,
                                    P,
                                    &Fill<P>,
                                    &Copy<P>,
                                    &Axpy<P>,
                                    &Mul<P>,
                                    &MulAccum<P>,
                                    &Fma3<P>,
                                    &Dot<P>,
                                    &GramRowDelta<P>,
                                    &ScaledDiffAccum<P>,
                                    &MulAccumF32<P>,
                                    &Fma3F32<P>};

}  // namespace

const RankKernelTable& Avx512Table(int64_t padded_rank) {
  return DispatchPaddedRank(padded_rank,
                            [](auto tag) -> const RankKernelTable& {
                              return kTable<decltype(tag)::value>;
                            });
}

}  // namespace sns::codelets

#endif  // SNS_HAVE_X86_CODELETS
