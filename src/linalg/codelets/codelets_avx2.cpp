// AVX2+FMA codelets for the rank-R kernel layer.
//
// This TU is compiled with -mavx2 -mfma (see CMakeLists.txt) and is only
// reachable through the tier-resolved RankKernelTable, after the cpuid
// probe (common/cpu_features.h) confirmed avx2+fma — never from baseline
// code paths. Everything except the exported Avx2Table getter lives in an
// anonymous namespace so the linker cannot substitute AVX2-compiled inline
// symbols into TUs built for baseline x86-64.
//
// Numeric contract (see rank_dispatch.h): elementwise kernels (fill, copy,
// mul, mul_accum, and the f32 widening reads) are bitwise identical to the
// generic tier — each lane is a single correctly-rounded operation.
// Multiply-accumulate kernels (axpy, fma3, gram_row_delta,
// scaled_diff_accum, dot) use fused multiply-adds, which drop one rounding
// per element relative to an uncontracted generic build, so they agree to
// a few ulps rather than bitwise. The dot kernel keeps the generic tier's
// fixed four-lane reduction grouping (s0+s2)+(s1+s3): vector lane l holds
// partial sum s_l, so the summation ORDER matches and only FMA contraction
// differs.
//
// Padded-buffer contract: P > 0 instantiations run exactly P lanes
// (P ≡ 0 mod 4, buffers padded with zeros per linalg/simd.h); the P = 0
// runtime-length instantiations handle arbitrary n with scalar tails —
// they serve the triangular Cholesky loops, whose row suffixes are
// unaligned, so every vector access uses unaligned loads/stores.

#include "linalg/codelets/codelet_tables.h"

#ifdef SNS_HAVE_X86_CODELETS

#include <immintrin.h>

namespace sns::codelets {
namespace {

template <int64_t P>
inline int64_t Trip(int64_t n) {
  return P > 0 ? P : n;
}

template <int64_t P>
void Fill(double* dst, double value, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d v = _mm256_set1_pd(value);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) _mm256_storeu_pd(dst + r, v);
  for (; r < m; ++r) dst[r] = value;
}

template <int64_t P>
void Copy(const double* src, double* dst, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    _mm256_storeu_pd(dst + r, _mm256_loadu_pd(src + r));
  }
  for (; r < m; ++r) dst[r] = src[r];
}

template <int64_t P>
void Axpy(double alpha, const double* x, double* y, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d vy =
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + r), _mm256_loadu_pd(y + r));
    _mm256_storeu_pd(y + r, vy);
  }
  for (; r < m; ++r) y[r] += alpha * x[r];
}

template <int64_t P>
void Mul(const double* a, const double* b, double* out, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    _mm256_storeu_pd(
        out + r, _mm256_mul_pd(_mm256_loadu_pd(a + r), _mm256_loadu_pd(b + r)));
  }
  for (; r < m; ++r) out[r] = a[r] * b[r];
}

template <int64_t P>
void MulAccum(double* dst, const double* src, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    _mm256_storeu_pd(dst + r, _mm256_mul_pd(_mm256_loadu_pd(dst + r),
                                            _mm256_loadu_pd(src + r)));
  }
  for (; r < m; ++r) dst[r] *= src[r];
}

template <int64_t P>
void Fma3(double v, const double* a, const double* b, double* out, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d vv = _mm256_set1_pd(v);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + r), _mm256_loadu_pd(b + r));
    _mm256_storeu_pd(out + r,
                     _mm256_fmadd_pd(vv, prod, _mm256_loadu_pd(out + r)));
  }
  for (; r < m; ++r) out[r] += v * (a[r] * b[r]);
}

template <int64_t P>
double Dot(const double* a, const double* b, int64_t n) {
  const int64_t m = Trip<P>(n);
  const int64_t m4 = m - m % 4;
  __m256d acc = _mm256_setzero_pd();
  int64_t r = 0;
  for (; r < m4; r += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + r), _mm256_loadu_pd(b + r), acc);
  }
  // (s0+s2)+(s1+s3): lane l of acc is exactly the generic tier's s_l.
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; r < m; ++r) sum += a[r] * b[r];
  return sum;
}

template <int64_t P>
void GramRowDelta(double new_i, const double* new_row, double old_i,
                  const double* old_row, double* g, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d vn = _mm256_set1_pd(new_i);
  const __m256d vo = _mm256_set1_pd(old_i);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    // t = new_i·new − old_i·old, then g += t: one FMA + one FNMA keeps the
    // subtraction inside the delta like the generic expression.
    __m256d t = _mm256_mul_pd(vn, _mm256_loadu_pd(new_row + r));
    t = _mm256_fnmadd_pd(vo, _mm256_loadu_pd(old_row + r), t);
    _mm256_storeu_pd(g + r, _mm256_add_pd(_mm256_loadu_pd(g + r), t));
  }
  for (; r < m; ++r) g[r] += new_i * new_row[r] - old_i * old_row[r];
}

template <int64_t P>
void ScaledDiffAccum(double p, const double* new_row, const double* prev_row,
                     double* g, int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d vp = _mm256_set1_pd(p);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(new_row + r),
                                    _mm256_loadu_pd(prev_row + r));
    _mm256_storeu_pd(g + r, _mm256_fmadd_pd(vp, d, _mm256_loadu_pd(g + r)));
  }
  for (; r < m; ++r) g[r] += p * (new_row[r] - prev_row[r]);
}

template <int64_t P>
void MulAccumF32(double* dst, const float* src, int64_t n) {
  const int64_t m = Trip<P>(n);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d wide = _mm256_cvtps_pd(_mm_loadu_ps(src + r));
    _mm256_storeu_pd(dst + r, _mm256_mul_pd(_mm256_loadu_pd(dst + r), wide));
  }
  for (; r < m; ++r) dst[r] *= static_cast<double>(src[r]);
}

template <int64_t P>
void Fma3F32(double v, const float* a, const float* b, double* out,
             int64_t n) {
  const int64_t m = Trip<P>(n);
  const __m256d vv = _mm256_set1_pd(v);
  int64_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d wa = _mm256_cvtps_pd(_mm_loadu_ps(a + r));
    const __m256d wb = _mm256_cvtps_pd(_mm_loadu_ps(b + r));
    _mm256_storeu_pd(
        out + r,
        _mm256_fmadd_pd(vv, _mm256_mul_pd(wa, wb), _mm256_loadu_pd(out + r)));
  }
  for (; r < m; ++r) {
    out[r] += v * (static_cast<double>(a[r]) * static_cast<double>(b[r]));
  }
}

template <int64_t P>
constexpr RankKernelTable kTable = {KernelTier::kAvx2,
                                    P,
                                    &Fill<P>,
                                    &Copy<P>,
                                    &Axpy<P>,
                                    &Mul<P>,
                                    &MulAccum<P>,
                                    &Fma3<P>,
                                    &Dot<P>,
                                    &GramRowDelta<P>,
                                    &ScaledDiffAccum<P>,
                                    &MulAccumF32<P>,
                                    &Fma3F32<P>};

}  // namespace

const RankKernelTable& Avx2Table(int64_t padded_rank) {
  return DispatchPaddedRank(padded_rank,
                            [](auto tag) -> const RankKernelTable& {
                              return kTable<decltype(tag)::value>;
                            });
}

}  // namespace sns::codelets

#endif  // SNS_HAVE_X86_CODELETS
