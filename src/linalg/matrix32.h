// Float32 mirror of a padded-stride factor matrix — the storage half of
// the mixed-precision mode (ContinuousCpdOptions::factor_precision =
// kFloat32Accum64).
//
// In mixed mode the double factor matrices remain the store of record for
// every cold path (queries, fitness, ALS, snapshots), but each committed
// row is quantized through float32 first, so the doubles only ever hold
// f32-representable values; this mirror holds the same values as actual
// floats and is what the hot read kernels (mul_accum_f32 / fma3_f32 in the
// RankKernelTable) consume — halving factor-row read traffic while all
// accumulation is widened back to double in-register.
//
// Layout: rows are separated by stride() = PaddedRank32(cols()) floats
// (a multiple of kRankPadFloats = 8, i.e. 32 bytes), with the padding
// lanes held at exactly 0.0f. Since PaddedRank32(R) >= PaddedRank(R), the
// double-padded trip count of the rank kernels is always in-bounds on
// these rows.

#ifndef SLICENSTITCH_LINALG_MATRIX32_H_
#define SLICENSTITCH_LINALG_MATRIX32_H_

#include <cstdint>

#include "common/check.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"

namespace sns {

class Matrix32 {
 public:
  Matrix32() = default;
  Matrix32(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), stride_(PaddedRank32(cols)),
        data_(rows * stride_) {
    SNS_CHECK(rows >= 0 && cols >= 0);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  /// Leading stride in floats: PaddedRank32(cols()).
  int64_t stride() const { return stride_; }

  float* Row(int64_t i) {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }
  const float* Row(int64_t i) const {
    SNS_DCHECK(i >= 0 && i < rows_);
    return data_.data() + i * stride_;
  }

  float& operator()(int64_t i, int64_t j) {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_.data()[i * stride_ + j];
  }
  float operator()(int64_t i, int64_t j) const {
    SNS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_.data()[i * stride_ + j];
  }

  /// Rounds one row of logical values into row i (padding lanes stay 0.0f).
  /// `src` must hold cols() doubles.
  void SetRowFromDouble(int64_t i, const double* src) {
    float* dst = Row(i);
    for (int64_t j = 0; j < cols_; ++j) dst[j] = static_cast<float>(src[j]);
  }

  /// Rebuilds the whole mirror from a same-shaped double matrix, rounding
  /// every logical entry. Reshapes if needed.
  void AssignFromDouble(const Matrix& src) {
    if (rows_ != src.rows() || cols_ != src.cols()) {
      *this = Matrix32(src.rows(), src.cols());
    }
    for (int64_t i = 0; i < rows_; ++i) SetRowFromDouble(i, src.Row(i));
  }

  /// True when every padding lane holds exactly 0.0f (the layout
  /// invariant; test hook).
  bool PaddingIsZero() const {
    for (int64_t i = 0; i < rows_; ++i) {
      const float* row = Row(i);
      for (int64_t j = cols_; j < stride_; ++j) {
        if (row[j] != 0.0f) return false;
      }
    }
    return true;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t stride_ = 0;
  AlignedVector32 data_;
};

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_MATRIX32_H_
