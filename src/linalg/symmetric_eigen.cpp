#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sns {

SymmetricEigen DecomposeSymmetric(const Matrix& a, double tolerance,
                                  int max_sweeps) {
  SNS_CHECK(a.rows() == a.cols());
  const int64_t n = a.rows();
  Matrix d = a;  // Working copy driven to diagonal form.
  Matrix v = Matrix::Identity(n);

  auto off_diag_norm = [&]() {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) sum += 2.0 * d(i, j) * d(i, j);
    }
    return std::sqrt(sum);
  };

  const double frob = std::max(a.FrobeniusNorm(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= tolerance * frob) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        // Rotation angle that zeroes d(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int64_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return d(x, x) > d(y, y); });

  SymmetricEigen result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    result.values[j] = d(order[j], order[j]);
    for (int64_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

}  // namespace sns
