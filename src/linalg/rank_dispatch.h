// Compile-time rank dispatch for the rank-R inner loops.
//
// The per-event cost of every SliceNStitch updater is dominated by length-R
// loops (R = CP rank, padded to a multiple of 4 — see linalg/simd.h). With a
// runtime trip count the autovectorizer must emit prologue/epilogue scalar
// tails and aliasing checks; with a compile-time padded trip count and
// __restrict pointers it emits clean full-width SIMD. This header provides:
//
//   - RankTag<P> / DispatchPaddedRank: a switch that maps the padded rank
//     (4, 8, ..., 32; every multiple of kRankPadDoubles up to 32) onto a
//     template instantiation, with RankTag<0> as the runtime-bound generic
//     fallback for larger ranks,
//   - the templated __restrict vector primitives every dense kernel is
//     built from (fill/copy/axpy/Hadamard/dot/rank-1 Gram deltas), and
//   - RankKernelTable: a function-pointer table over those primitives,
//     resolved ONCE at engine construction (UpdateWorkspace::Prepare) so
//     the row updaters pay no per-call dispatch.
//
// Contract shared by all padded primitives: pointer arguments reference
// buffers of at least the padded length, with the padding lanes holding
// exactly 0.0 (Matrix rows and AlignedVector buffers guarantee both).
// Differential coverage for every specialization and the generic fallback
// lives in tests/kernel_dispatch_test.cpp.

#ifndef SLICENSTITCH_LINALG_RANK_DISPATCH_H_
#define SLICENSTITCH_LINALG_RANK_DISPATCH_H_

#include <cstdint>

#include "common/cpu_features.h"
#include "linalg/simd.h"

namespace sns {

/// Tag carrying a compile-time padded rank; 0 means "runtime length".
template <int64_t kPadded>
struct RankTag {
  static constexpr int64_t value = kPadded;
};

/// Invokes fn(RankTag<P>{}) with P = padded_rank when a specialization
/// exists, RankTag<0> (generic runtime-bound kernels) otherwise.
template <typename Fn>
decltype(auto) DispatchPaddedRank(int64_t padded_rank, Fn&& fn) {
  switch (padded_rank) {
    case 4:
      return fn(RankTag<4>{});
    case 8:
      return fn(RankTag<8>{});
    case 12:
      return fn(RankTag<12>{});
    case 16:
      return fn(RankTag<16>{});
    case 20:
      return fn(RankTag<20>{});
    case 24:
      return fn(RankTag<24>{});
    case 28:
      return fn(RankTag<28>{});
    case 32:
      return fn(RankTag<32>{});
    default:
      return fn(RankTag<0>{});
  }
}

/// Loop bound of a primitive: the compile-time padded rank when
/// specialized, the runtime argument for the generic fallback.
template <int64_t P>
constexpr int64_t TripCount(int64_t n) {
  return P > 0 ? P : n;
}

// ---------------------------------------------------------------------------
// Vector primitives. `n` is the padded length; specialized instantiations
// (P > 0) ignore it.

/// dst[0..n) = value.
template <int64_t P>
inline void VecFill(double* SNS_RESTRICT dst, double value, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) dst[r] = value;
}

/// dst = src. src and dst must not overlap.
template <int64_t P>
inline void VecCopy(const double* SNS_RESTRICT src, double* SNS_RESTRICT dst,
                    int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) dst[r] = src[r];
}

/// y += alpha * x. x and y must not overlap.
template <int64_t P>
inline void VecAxpy(double alpha, const double* SNS_RESTRICT x,
                    double* SNS_RESTRICT y, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) y[r] += alpha * x[r];
}

/// out = a ∗ b elementwise. `out` MAY alias `a` or `b` (elementwise maps
/// with matching indices are alias-safe), so no __restrict here.
template <int64_t P>
inline void VecMul(const double* a, const double* b, double* out, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) out[r] = a[r] * b[r];
}

/// dst ∗= src elementwise. dst may alias src.
template <int64_t P>
inline void VecMulAccum(double* dst, const double* src, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) dst[r] *= src[r];
}

/// out += v · (a ∗ b): the fused 3-mode MTTKRP row accumulation. `a` and
/// `b` are read-only and may alias each other (e.g. a squared-row
/// accumulation passes the same row twice); `out` must not alias either.
template <int64_t P>
inline void VecFma3(double v, const double* a, const double* b,
                    double* SNS_RESTRICT out, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) out[r] += v * (a[r] * b[r]);
}

/// Σ a[r]·b[r]. a and b may point at the same data (reads only).
///
/// Accumulates into four independent partial sums (one per 256-bit lane
/// slot), combined as (s0+s2)+(s1+s3): a sequential dot is one
/// multiply-add dependency chain and bottlenecks on FMA latency — the
/// Cholesky factorize/solve loops live on this. The grouping is fixed, so
/// results are deterministic (identical everywhere this kernel is used,
/// which is every dot in the library — internal bitwise differentials
/// remain exact).
template <int64_t P>
inline double VecDot(const double* a, const double* b, int64_t n) {
  const int64_t m = TripCount<P>(n);
  const int64_t m4 = m - m % 4;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t r = 0;
  for (; r < m4; r += 4) {
    s0 += a[r] * b[r];
    s1 += a[r + 1] * b[r + 1];
    s2 += a[r + 2] * b[r + 2];
    s3 += a[r + 3] * b[r + 3];
  }
  double sum = (s0 + s2) + (s1 + s3);
  for (; r < m; ++r) sum += a[r] * b[r];
  return sum;
}

/// g[j] += new_i·new_row[j] − old_i·old_row[j]: one row of the Gram rank-1
/// update Q ← Q − p'p + a'a (Eq. 13). g must not alias the row arguments.
template <int64_t P>
inline void VecGramRowDelta(double new_i, const double* SNS_RESTRICT new_row,
                            double old_i, const double* SNS_RESTRICT old_row,
                            double* SNS_RESTRICT g, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t j = 0; j < m; ++j) {
    g[j] += new_i * new_row[j] - old_i * old_row[j];
  }
}

/// g[j] += p·(new_row[j] − prev_row[j]): one row of the prev-Gram update
/// U ← U − p'p + p'a (Eq. 17 / Eq. 26). g must not alias the row arguments.
template <int64_t P>
inline void VecScaledDiffAccum(double p, const double* SNS_RESTRICT new_row,
                               const double* SNS_RESTRICT prev_row,
                               double* SNS_RESTRICT g, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t j = 0; j < m; ++j) g[j] += p * (new_row[j] - prev_row[j]);
}

// ---------------------------------------------------------------------------
// Float32-read primitives of the mixed-precision mode (factor rows stored
// as float32, accumulation widened to double in-register — see
// linalg/matrix32.h). `n` is the DOUBLE padded length PaddedRank(R); the
// float rows' stride PaddedRank32(R) is always >= n, with zero lanes past
// the logical rank, so the double trip count is in-bounds and tail-free.

/// dst[r] *= (double)src[r]: Hadamard row accumulation from a float32 row.
template <int64_t P>
inline void VecMulAccumF32(double* SNS_RESTRICT dst,
                           const float* SNS_RESTRICT src, int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) dst[r] *= static_cast<double>(src[r]);
}

/// out[r] += v · ((double)a[r] · (double)b[r]): fused 3-mode MTTKRP row
/// accumulation from two float32 rows.
template <int64_t P>
inline void VecFma3F32(double v, const float* SNS_RESTRICT a,
                       const float* SNS_RESTRICT b, double* SNS_RESTRICT out,
                       int64_t n) {
  const int64_t m = TripCount<P>(n);
  for (int64_t r = 0; r < m; ++r) {
    out[r] += v * (static_cast<double>(a[r]) * static_cast<double>(b[r]));
  }
}

// ---------------------------------------------------------------------------
// Function-pointer table over the primitives, resolved once per engine.

/// The row-level kernel set the per-event updaters call directly. Resolved
/// by GetRankKernelTable at engine construction (UpdateWorkspace::Prepare)
/// and cached, so steady-state events perform no dispatch at all. Every
/// function takes the padded length as its trailing argument; specialized
/// tables (padded_rank > 0) ignore it.
///
/// Three tiers of the same contract exist (common/cpu_features.h): the
/// generic tier points at the templated primitives above; the AVX2 and
/// AVX-512 tiers point at the intrinsic codelets of linalg/codelets/,
/// compiled in dedicated TUs with the matching -m flags and only reachable
/// through this table (so a baseline build never executes them on hosts
/// without the extensions). Intrinsic tiers may fuse multiply-adds, so they
/// match the generic tier to a few ulps, not bitwise; elementwise kernels
/// (fill/copy/mul/mul_accum) are bitwise across tiers.
struct RankKernelTable {
  KernelTier tier;      // Which implementation tier this table points at.
  int64_t padded_rank;  // 0 for the runtime-bound table of this tier.
  void (*fill)(double* dst, double value, int64_t n);
  void (*copy)(const double* src, double* dst, int64_t n);
  void (*axpy)(double alpha, const double* x, double* y, int64_t n);
  void (*mul)(const double* a, const double* b, double* out, int64_t n);
  void (*mul_accum)(double* dst, const double* src, int64_t n);
  void (*fma3)(double v, const double* a, const double* b, double* out,
               int64_t n);
  double (*dot)(const double* a, const double* b, int64_t n);
  void (*gram_row_delta)(double new_i, const double* new_row, double old_i,
                         const double* old_row, double* g, int64_t n);
  void (*scaled_diff_accum)(double p, const double* new_row,
                            const double* prev_row, double* g, int64_t n);
  // Mixed-precision factor reads (float32 rows, double accumulation).
  void (*mul_accum_f32)(double* dst, const float* src, int64_t n);
  void (*fma3_f32)(double v, const float* a, const float* b, double* out,
                   int64_t n);
};

/// The auto-tier table for a given padded rank: a specialization for every
/// padded rank with a RankTag case above, the runtime-bound table
/// otherwise, from the tier ResolveKernelTier() picked for this process.
/// The returned reference has static storage duration.
const RankKernelTable& GetRankKernelTable(int64_t padded_rank);

/// Same, pinned to an explicit tier. Falls back tier-by-tier (AVX-512 →
/// AVX2 → generic) when the requested tier is not compiled into the build,
/// so the returned table is always callable on a host that supports the
/// requested tier.
const RankKernelTable& GetRankKernelTable(int64_t padded_rank,
                                          KernelTier tier);

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_RANK_DISPATCH_H_
