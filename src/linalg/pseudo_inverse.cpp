#include "linalg/pseudo_inverse.h"

#include <cmath>

#include "linalg/symmetric_eigen.h"

namespace sns {

Matrix PseudoInverseSymmetric(const Matrix& a, double rel_tolerance) {
  SNS_CHECK(a.rows() == a.cols());
  const int64_t n = a.rows();
  SymmetricEigen eig = DecomposeSymmetric(a);

  double max_abs = 0.0;
  for (double v : eig.values) max_abs = std::max(max_abs, std::fabs(v));
  const double cutoff = rel_tolerance * max_abs;

  // pinv = V diag(1/λ or 0) V'.
  Matrix out(n, n);
  for (int64_t k = 0; k < n; ++k) {
    const double lambda = eig.values[k];
    if (std::fabs(lambda) <= cutoff || lambda == 0.0) continue;
    const double inv = 1.0 / lambda;
    for (int64_t i = 0; i < n; ++i) {
      const double vik = eig.vectors(i, k) * inv;
      if (vik == 0.0) continue;
      for (int64_t j = 0; j < n; ++j) {
        out(i, j) += vik * eig.vectors(j, k);
      }
    }
  }
  return out;
}

void SolveRowSystem(const Matrix& h_pinv, const double* b, double* x) {
  // H symmetric ⇒ b H† is h_pinv applied from the left or right identically.
  RowTimesMatrix(b, h_pinv, x);
}

}  // namespace sns
