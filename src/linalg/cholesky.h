// Cholesky (LL') factorization for symmetric positive-definite systems.
// Used as the fast path for solving Gram systems when they are well
// conditioned; callers fall back to the pseudoinverse (pseudo_inverse.h)
// when factorization fails.

#ifndef SLICENSTITCH_LINALG_CHOLESKY_H_
#define SLICENSTITCH_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace sns {

struct RankKernelTable;  // linalg/rank_dispatch.h

/// Allocation-free factorization into a caller-owned n×n `lower` (only the
/// lower triangle including the diagonal is written and later read; entries
/// above the diagonal are left untouched, so a reused buffer may carry stale
/// values there). Returns false when a non-positive or non-finite pivot is
/// found — `lower` is then partially written and must not be solved against.
bool CholeskyFactorizeInto(const Matrix& a, Matrix& lower);

/// In-place solve A x = b against a factorization produced by
/// CholeskyFactorizeInto (or Cholesky::lower()): `x` holds b on entry and
/// the solution on exit (n = lower order values).
void CholeskySolveInPlace(const Matrix& lower, double* x);

/// Right-looking factorization A = U'U with U upper-triangular in row-major
/// storage — the hot-path form used by GramSolver. Storing the transposed
/// factor makes every inner loop a CONTIGUOUS row-suffix operation: the
/// trailing update subtracts u_ki · U(k, i..n) from U(i, i..n) (an
/// independent-element axpy the autovectorizer handles at full width),
/// where the classic lower/left-looking form walks strided columns or
/// latency-bound sequential dots. Only the upper triangle including the
/// diagonal is written and later read; entries below the diagonal may
/// carry stale values in a reused buffer. Returns false on a non-positive
/// or non-finite pivot. Rounds differently than CholeskyFactorizeInto
/// (incremental vs deferred subtraction), so the two factorization paths
/// agree to solver tolerance, not bitwise.
///
/// The table-taking overloads run the suffix axpys/dots through a
/// RUNTIME-LENGTH RankKernelTable (padded_rank == 0 — the row suffixes are
/// unaligned and of arbitrary length), letting the engine pin a kernel
/// tier; the plain overloads resolve the process-wide auto tier per call.
bool CholeskyFactorizeUpperInto(const Matrix& a, Matrix& upper);
bool CholeskyFactorizeUpperInto(const Matrix& a, Matrix& upper,
                                const RankKernelTable& kr);

/// In-place solve A x = b against CholeskyFactorizeUpperInto's factor:
/// U' y = b by forward elimination over row suffixes of U, then U x = y by
/// back substitution with contiguous row-suffix dots.
void CholeskySolveUpperInPlace(const Matrix& upper, double* x);
void CholeskySolveUpperInPlace(const Matrix& upper, double* x,
                               const RankKernelTable& kr);

/// Cholesky factorization of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorizes `a` (only the lower triangle is read). Fails with
  /// FailedPrecondition if a non-positive pivot is found.
  static StatusOr<Cholesky> Factorize(const Matrix& a);

  /// Solves A x = b for a single right-hand side (b.size() == n).
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B columnwise; B is n×m, the result is n×m.
  Matrix Solve(const Matrix& b) const;

  /// The lower-triangular factor L with A = L L'.
  const Matrix& lower() const { return lower_; }

 private:
  explicit Cholesky(Matrix lower) : lower_(std::move(lower)) {}
  Matrix lower_;
};

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_CHOLESKY_H_
