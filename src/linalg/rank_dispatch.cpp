#include "linalg/rank_dispatch.h"

#ifdef SNS_HAVE_X86_CODELETS
#include "linalg/codelets/codelet_tables.h"
#endif

namespace sns {
namespace {

template <int64_t P>
constexpr RankKernelTable kGenericTable = {KernelTier::kGeneric,
                                           P,
                                           &VecFill<P>,
                                           &VecCopy<P>,
                                           &VecAxpy<P>,
                                           &VecMul<P>,
                                           &VecMulAccum<P>,
                                           &VecFma3<P>,
                                           &VecDot<P>,
                                           &VecGramRowDelta<P>,
                                           &VecScaledDiffAccum<P>,
                                           &VecMulAccumF32<P>,
                                           &VecFma3F32<P>};

const RankKernelTable& GenericTable(int64_t padded_rank) {
  // Reuses DispatchPaddedRank so the specialization set lives in exactly
  // one place (the RankTag switch in rank_dispatch.h).
  return DispatchPaddedRank(
      padded_rank, [](auto tag) -> const RankKernelTable& {
        return kGenericTable<decltype(tag)::value>;
      });
}

}  // namespace

const RankKernelTable& GetRankKernelTable(int64_t padded_rank,
                                          KernelTier tier) {
#ifdef SNS_HAVE_X86_CODELETS
  switch (tier) {
    case KernelTier::kAvx512:
      return codelets::Avx512Table(padded_rank);
    case KernelTier::kAvx2:
      return codelets::Avx2Table(padded_rank);
    case KernelTier::kGeneric:
      break;
  }
#else
  (void)tier;  // Codelet TUs not in this build: every tier is generic.
#endif
  return GenericTable(padded_rank);
}

const RankKernelTable& GetRankKernelTable(int64_t padded_rank) {
  return GetRankKernelTable(padded_rank, ResolveKernelTier());
}

}  // namespace sns
