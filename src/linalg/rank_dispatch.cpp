#include "linalg/rank_dispatch.h"

namespace sns {
namespace {

template <int64_t P>
constexpr RankKernelTable kTable = {P,           &VecFill<P>,     &VecCopy<P>,
                                    &VecAxpy<P>, &VecMulAccum<P>, &VecDot<P>};

}  // namespace

const RankKernelTable& GetRankKernelTable(int64_t padded_rank) {
  // Reuses DispatchPaddedRank so the specialization set lives in exactly
  // one place (the RankTag switch in rank_dispatch.h).
  return DispatchPaddedRank(
      padded_rank, [](auto tag) -> const RankKernelTable& {
        return kTable<decltype(tag)::value>;
      });
}

}  // namespace sns
