// Moore–Penrose pseudoinverse for symmetric matrices, the H† of every
// SliceNStitch update rule (Eqs. 4, 9, 12, 15–16). Gram matrices of factor
// matrices are symmetric PSD but can be rank-deficient (e.g. duplicated
// components, cold-start rows), so the pseudoinverse — not a plain inverse —
// is required for the update rules to stay well-defined.

#ifndef SLICENSTITCH_LINALG_PSEUDO_INVERSE_H_
#define SLICENSTITCH_LINALG_PSEUDO_INVERSE_H_

#include "linalg/matrix.h"

namespace sns {

/// Pseudoinverse of a symmetric matrix via eigendecomposition: eigenvalues
/// with |λ| ≤ rel_tolerance·max|λ| are treated as zero. The result is again
/// symmetric.
Matrix PseudoInverseSymmetric(const Matrix& a, double rel_tolerance = 1e-10);

/// Solves x H = b for a row vector (i.e. x = b H†) where H is symmetric.
/// Convenience wrapper used by row update rules; `x` and `b` have H.rows()
/// entries and may not alias.
void SolveRowSystem(const Matrix& h_pinv, const double* b, double* x);

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_PSEUDO_INVERSE_H_
