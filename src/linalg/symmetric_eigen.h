// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// The Gram matrices H = ∗ A'A that SliceNStitch inverts are R×R symmetric
// positive semi-definite with R ≈ 20, a regime where Jacobi is simple,
// numerically robust (it never loses symmetry), and fast enough.

#ifndef SLICENSTITCH_LINALG_SYMMETRIC_EIGEN_H_
#define SLICENSTITCH_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace sns {

/// Result of decomposing symmetric A as V diag(values) V'.
struct SymmetricEigen {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Decomposes a symmetric matrix (only assumed symmetric, not definite).
/// Sweeps until off-diagonal mass is below `tolerance` relative to the
/// Frobenius norm, or `max_sweeps` cyclic sweeps have run.
SymmetricEigen DecomposeSymmetric(const Matrix& a, double tolerance = 1e-12,
                                  int max_sweeps = 64);

}  // namespace sns

#endif  // SLICENSTITCH_LINALG_SYMMETRIC_EIGEN_H_
