#include "api/stream_handle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/serial.h"
#include "durability/checkpoint.h"
#include "tensor/mode_index.h"

namespace sns {
namespace {

/// Ranks all rows of one factor by `score(i)`, best first, keeping k.
template <typename ScoreFn>
std::vector<TopEntry> RankTop(int64_t rows, int k, ScoreFn&& score) {
  std::vector<TopEntry> ranking(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    ranking[static_cast<size_t>(i)] = {i, score(i)};
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), ranking.size());
  std::partial_sort(ranking.begin(), ranking.begin() + keep, ranking.end(),
                    [](const TopEntry& a, const TopEntry& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.index < b.index;  // Deterministic ties.
                    });
  ranking.resize(keep);
  return ranking;
}

}  // namespace

StatusOr<StreamHandle> StreamHandle::Create(
    std::string name, std::vector<int64_t> mode_dims,
    const ContinuousCpdOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  auto engine = ContinuousCpd::Create(mode_dims, options);
  if (!engine.ok()) return engine.status();
  return StreamHandle(std::move(name), std::move(mode_dims),
                      std::move(engine).value());
}

StreamHandle::StreamHandle(std::string name, std::vector<int64_t> mode_dims,
                           std::unique_ptr<ContinuousCpd> engine)
    : name_(std::move(name)),
      mode_dims_(std::move(mode_dims)),
      engine_(std::move(engine)),
      fanout_(std::make_unique<SinkFanout>()) {
  // The closure captures the fan-out's stable address, not `this`: the
  // handle may move, the engine and fan-out allocations never do.
  SinkFanout* fan = fanout_.get();
  engine_->SetEventObserver([fan](const WindowDelta& delta,
                                  const KruskalModel& model,
                                  const SparseTensor& window,
                                  double outlier_capture) {
    if (fan->sinks.empty()) return;
    const StreamEvent event(&delta, &model, &window, outlier_capture);
    for (EventSink* sink : fan->sinks) sink->OnStreamEvent(event);
  });
}

Status StreamHandle::ValidateBatch(std::span<const Tuple> tuples) const {
  const int arity = static_cast<int>(mode_dims_.size());
  int64_t prev_time = last_time_;
  for (size_t n = 0; n < tuples.size(); ++n) {
    const Tuple& tuple = tuples[n];
    if (tuple.index.size() != arity) {
      return Status::InvalidArgument(
          "tuple " + std::to_string(n) + " arity " +
          std::to_string(tuple.index.size()) + " != stream arity " +
          std::to_string(arity));
    }
    for (int m = 0; m < arity; ++m) {
      if (tuple.index[m] < 0 ||
          tuple.index[m] >= mode_dims_[static_cast<size_t>(m)]) {
        return Status::InvalidArgument("tuple " + std::to_string(n) +
                                       " index out of range in mode " +
                                       std::to_string(m));
      }
    }
    // Hostile-input guard: a NaN/Inf value would be silently dropped by the
    // window tensor at apply time (SparseTensor::Set erases non-finite),
    // desynchronizing journal replay from caller intent. Reject the whole
    // batch up front instead.
    if (!std::isfinite(tuple.value)) {
      return Status::InvalidArgument(
          "tuple " + std::to_string(n) +
          " has a non-finite value; stream values must be finite");
    }
    if (tuple.time < prev_time) {
      return Status::FailedPrecondition(
          "tuple " + std::to_string(n) + " regresses in time (" +
          std::to_string(tuple.time) + " < " + std::to_string(prev_time) +
          "); streams are strictly chronological");
    }
    prev_time = tuple.time;
  }
  return Status::OK();
}

Status StreamHandle::Warmup(std::span<const Tuple> tuples) {
  if (initialized_) {
    return Status::FailedPrecondition(
        "stream '" + name_ + "' is already live; Warmup only precedes "
        "Initialize");
  }
  SNS_RETURN_IF_ERROR(ValidateBatch(tuples));
  for (const Tuple& tuple : tuples) {
    engine_->IngestOnly(tuple);
    last_time_ = tuple.time;
  }
  return Status::OK();
}

Status StreamHandle::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("stream '" + name_ +
                                      "' is already initialized");
  }
  engine_->InitializeWithAls();
  initialized_ = true;
  return Status::OK();
}

Status StreamHandle::Ingest(std::span<const Tuple> tuples) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "stream '" + name_ + "' is not initialized; Warmup + Initialize "
        "before live ingestion");
  }
  SNS_RETURN_IF_ERROR(ValidateBatch(tuples));
  if (tuples.empty()) return Status::OK();
  engine_->ProcessBatch(tuples);
  last_time_ = tuples.back().time;
  return Status::OK();
}

Status StreamHandle::Ingest(const Tuple& tuple) {
  return Ingest(std::span<const Tuple>(&tuple, 1));
}

Status StreamHandle::AdvanceTo(int64_t time) {
  if (time < last_time_) {
    return Status::FailedPrecondition("cannot advance stream '" + name_ +
                                      "' backwards in time");
  }
  engine_->AdvanceTo(time);
  last_time_ = time;
  return Status::OK();
}

StatusOr<double> StreamHandle::Reconstruct(const ModeIndex& window_cell) const {
  if (window_cell.size() != num_modes()) {
    return Status::InvalidArgument(
        "window cell has " + std::to_string(window_cell.size()) +
        " coordinates; expected " + std::to_string(num_modes()) +
        " (non-time indices + time slice)");
  }
  for (size_t m = 0; m < mode_dims_.size(); ++m) {
    if (window_cell[static_cast<int>(m)] < 0 ||
        window_cell[static_cast<int>(m)] >= mode_dims_[m]) {
      return Status::OutOfRange("cell index out of range in mode " +
                                std::to_string(m));
    }
  }
  const int time_index = window_cell[num_modes() - 1];
  if (time_index < 0 || time_index >= window_size()) {
    return Status::OutOfRange("time slice out of range (window size " +
                              std::to_string(window_size()) + ")");
  }
  return engine_->model().Evaluate(window_cell);
}

StatusOr<std::vector<double>> StreamHandle::ComponentActivity() const {
  const KruskalModel& model = engine_->model();
  const Matrix& time_factor = model.factor(model.num_modes() - 1);
  const int64_t newest = time_factor.rows() - 1;
  std::vector<double> activity(static_cast<size_t>(model.rank()));
  for (int64_t r = 0; r < model.rank(); ++r) {
    activity[static_cast<size_t>(r)] =
        model.lambda()[static_cast<size_t>(r)] * time_factor(newest, r);
  }
  return activity;
}

StatusOr<std::vector<TopEntry>> StreamHandle::TopK(int mode, int k) const {
  if (mode < 0 || mode >= static_cast<int>(mode_dims_.size())) {
    return Status::InvalidArgument(
        "TopK addresses non-time modes 0.." +
        std::to_string(mode_dims_.size() - 1) +
        " (use ComponentActivity for the time mode)");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  auto activity = ComponentActivity();
  if (!activity.ok()) return activity.status();
  const Matrix& factor = engine_->model().factor(mode);
  const std::vector<double>& weights = activity.value();
  return RankTop(factor.rows(), k, [&](int64_t i) {
    const double* row = factor.Row(i);
    double score = 0.0;
    for (size_t r = 0; r < weights.size(); ++r) {
      score += row[r] * weights[r];
    }
    return score;
  });
}

StatusOr<std::vector<TopEntry>> StreamHandle::TopKForComponent(
    int mode, int64_t component, int k) const {
  if (mode < 0 || mode >= static_cast<int>(mode_dims_.size())) {
    return Status::InvalidArgument("TopKForComponent addresses non-time modes");
  }
  if (component < 0 || component >= rank()) {
    return Status::OutOfRange("component out of range (rank " +
                              std::to_string(rank()) + ")");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const Matrix& factor = engine_->model().factor(mode);
  return RankTop(factor.rows(), k,
                 [&](int64_t i) { return factor(i, component); });
}

Status StreamHandle::ValidateFactorQuery(int mode, int64_t row) const {
  if (mode < 0 || mode >= num_modes()) {
    return Status::InvalidArgument("mode out of range (tensor has " +
                                   std::to_string(num_modes()) + " modes)");
  }
  const int64_t rows = engine_->model().factor(mode).rows();
  if (row < 0 || row >= rows) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range in mode " + std::to_string(mode) +
                              " (" + std::to_string(rows) + " rows)");
  }
  return Status::OK();
}

StatusOr<FactorRowView> StreamHandle::FactorRow(int mode, int64_t row) const {
  SNS_RETURN_IF_ERROR(ValidateFactorQuery(mode, row));
  const Matrix& factor = engine_->model().factor(mode);
  return FactorRowView(factor.Row(row), factor.cols());
}

StatusOr<std::vector<TopEntry>> StreamHandle::OutlierActivity(int mode,
                                                              int k) const {
  if (!engine_->options().robust.enabled) {
    return Status::FailedPrecondition(
        "stream '" + name_ + "' runs without robust mode; OutlierActivity "
        "requires ContinuousCpdOptions::robust.enabled");
  }
  if (mode < 0 || mode >= static_cast<int>(mode_dims_.size())) {
    return Status::InvalidArgument(
        "OutlierActivity addresses non-time modes 0.." +
        std::to_string(mode_dims_.size() - 1));
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  // Fold |S| onto the queried mode: one pass over the (capacity-bounded)
  // store, then the same ranking used by TopK.
  std::vector<double> mass(
      static_cast<size_t>(mode_dims_[static_cast<size_t>(mode)]), 0.0);
  for (const auto& [cell, value] : engine_->outliers().entries()) {
    mass[static_cast<size_t>(cell[mode])] += std::fabs(value);
  }
  return RankTop(mode_dims_[static_cast<size_t>(mode)], k,
                 [&](int64_t i) { return mass[static_cast<size_t>(i)]; });
}

Status StreamHandle::AddSink(EventSink* sink) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  auto& sinks = fanout_->sinks;
  if (std::find(sinks.begin(), sinks.end(), sink) != sinks.end()) {
    return Status::FailedPrecondition("sink is already attached");
  }
  sinks.push_back(sink);
  return Status::OK();
}

Status StreamHandle::RemoveSink(EventSink* sink) {
  auto& sinks = fanout_->sinks;
  auto it = std::find(sinks.begin(), sinks.end(), sink);
  if (it == sinks.end()) {
    return Status::NotFound("sink is not attached to stream '" + name_ + "'");
  }
  sinks.erase(it);
  return Status::OK();
}

void StreamHandle::MoveSinksFrom(StreamHandle& other) {
  fanout_->sinks = std::move(other.fanout_->sinks);
  other.fanout_->sinks.clear();
}

void StreamHandle::NotifyHealthTransition(const HealthTransition& transition) {
  for (EventSink* sink : fanout_->sinks) {
    sink->OnHealthTransition(transition);
  }
}

void StreamHandle::NotifyMetrics(const telemetry::StreamMetricsSnapshot& metrics) {
  for (EventSink* sink : fanout_->sinks) {
    sink->OnMetrics(metrics);
  }
}

Status StreamHandle::Checkpoint(serial::ByteSink& sink) const {
  return durability::WriteStreamCheckpoint(*this, /*sequence=*/0, sink);
}

StatusOr<StreamHandle> StreamHandle::Restore(serial::ByteSource& source) {
  auto restored = durability::ReadStreamCheckpoint(source);
  if (!restored.ok()) return restored.status();
  return std::move(restored).value().handle;
}

Status StreamHandle::SerializeState(serial::Writer& w) const {
  w.Str(name_);
  w.U32(static_cast<uint32_t>(mode_dims_.size()));
  for (int64_t dim : mode_dims_) w.I64(dim);
  const ContinuousCpdOptions& opt = engine_->options();
  w.I64(opt.rank);
  w.I32(opt.window_size);
  w.I64(opt.period);
  w.U8(static_cast<uint8_t>(opt.variant));
  w.I64(opt.sample_threshold);
  w.F64(opt.clip_bound);
  w.U8(opt.nonnegative_factors ? 1 : 0);
  w.I64(opt.expected_nnz);
  w.I64(opt.fitness_resync_interval);
  w.U8(static_cast<uint8_t>(opt.factor_precision));
  w.U8(opt.force_generic_kernels ? 1 : 0);
  w.I32(opt.init.max_iterations);
  w.F64(opt.init.fitness_tolerance);
  w.U8(opt.init.normalize_columns ? 1 : 0);
  w.U64(opt.seed);
  if (engine_->UsesExtendedState()) {
    // Version-2 extension: the loss/robust configuration must round-trip so
    // restore rebuilds the same engine. Gaussian non-robust streams skip
    // this block, keeping their payload byte-identical to version-1
    // checkpoints from pre-loss builds.
    w.U8(static_cast<uint8_t>(opt.loss));
    w.U8(opt.robust.enabled ? 1 : 0);
    w.F64(opt.robust.threshold);
    w.F64(opt.robust.decay);
    w.I64(opt.robust.capacity);
  }
  w.I64(last_time_);
  w.U8(initialized_ ? 1 : 0);
  engine_->SerializeTo(w);
  return w.status();
}

StatusOr<StreamHandle> StreamHandle::DeserializeState(serial::Reader& r,
                                                      uint32_t format_version) {
  std::string name;
  SNS_RETURN_IF_ERROR(r.Str(&name));
  uint32_t num_dims = 0;
  SNS_RETURN_IF_ERROR(r.U32(&num_dims));
  if (num_dims < 1 || num_dims >= static_cast<uint32_t>(kMaxTensorModes)) {
    return Status::DataLoss("checkpoint stream has " +
                            std::to_string(num_dims) + " non-time modes");
  }
  std::vector<int64_t> mode_dims(num_dims);
  for (uint32_t m = 0; m < num_dims; ++m) {
    SNS_RETURN_IF_ERROR(r.I64(&mode_dims[m]));
  }
  ContinuousCpdOptions opt;
  uint8_t variant = 0;
  uint8_t nonnegative = 0;
  uint8_t precision = 0;
  uint8_t force_generic = 0;
  uint8_t normalize = 0;
  SNS_RETURN_IF_ERROR(r.I64(&opt.rank));
  SNS_RETURN_IF_ERROR(r.I32(&opt.window_size));
  SNS_RETURN_IF_ERROR(r.I64(&opt.period));
  SNS_RETURN_IF_ERROR(r.U8(&variant));
  SNS_RETURN_IF_ERROR(r.I64(&opt.sample_threshold));
  SNS_RETURN_IF_ERROR(r.F64(&opt.clip_bound));
  SNS_RETURN_IF_ERROR(r.U8(&nonnegative));
  SNS_RETURN_IF_ERROR(r.I64(&opt.expected_nnz));
  SNS_RETURN_IF_ERROR(r.I64(&opt.fitness_resync_interval));
  SNS_RETURN_IF_ERROR(r.U8(&precision));
  SNS_RETURN_IF_ERROR(r.U8(&force_generic));
  SNS_RETURN_IF_ERROR(r.I32(&opt.init.max_iterations));
  SNS_RETURN_IF_ERROR(r.F64(&opt.init.fitness_tolerance));
  SNS_RETURN_IF_ERROR(r.U8(&normalize));
  SNS_RETURN_IF_ERROR(r.U64(&opt.seed));
  if (format_version >= 2) {
    // Version-2 payloads name their loss/robust configuration explicitly.
    // Version-1 payloads predate the loss subsystem and keep the Gaussian
    // non-robust defaults already in `opt` — by construction they can only
    // have been written by a Gaussian stream, so this is a faithful
    // restore, not a guess.
    uint8_t loss = 0;
    uint8_t robust_enabled = 0;
    SNS_RETURN_IF_ERROR(r.U8(&loss));
    SNS_RETURN_IF_ERROR(r.U8(&robust_enabled));
    SNS_RETURN_IF_ERROR(r.F64(&opt.robust.threshold));
    SNS_RETURN_IF_ERROR(r.F64(&opt.robust.decay));
    SNS_RETURN_IF_ERROR(r.I64(&opt.robust.capacity));
    if (loss > static_cast<uint8_t>(LossKind::kBernoulliLogit)) {
      return Status::DataLoss("checkpoint names unknown loss kind " +
                              std::to_string(loss));
    }
    opt.loss = static_cast<LossKind>(loss);
    opt.robust.enabled = robust_enabled != 0;
  }
  if (variant > static_cast<uint8_t>(SnsVariant::kRndPlus)) {
    return Status::DataLoss("checkpoint names unknown variant " +
                            std::to_string(variant));
  }
  if (precision > static_cast<uint8_t>(FactorPrecision::kFloat32Accum64)) {
    return Status::DataLoss("checkpoint names unknown factor precision " +
                            std::to_string(precision));
  }
  opt.variant = static_cast<SnsVariant>(variant);
  opt.nonnegative_factors = nonnegative != 0;
  opt.factor_precision = static_cast<FactorPrecision>(precision);
  opt.force_generic_kernels = force_generic != 0;
  opt.init.normalize_columns = normalize != 0;
  auto handle = StreamHandle::Create(std::move(name), std::move(mode_dims),
                                     opt);
  if (!handle.ok()) return handle.status();
  int64_t last_time = 0;
  uint8_t initialized = 0;
  SNS_RETURN_IF_ERROR(r.I64(&last_time));
  SNS_RETURN_IF_ERROR(r.U8(&initialized));
  SNS_RETURN_IF_ERROR(handle.value().engine_->RestoreFrom(r));
  handle.value().last_time_ = last_time;
  handle.value().initialized_ = initialized != 0;
  return handle;
}

StreamStats StreamHandle::Stats() const {
  StreamStats stats;
  stats.events_processed = engine_->events_processed();
  stats.mean_update_micros = engine_->MeanUpdateMicros();
  stats.update_seconds = engine_->update_seconds();
  stats.window_nnz = engine_->window().nnz();
  stats.active_tuples = engine_->window_model().ActiveTupleCount();
  stats.last_time = last_time_ == INT64_MIN ? 0 : last_time_;
  stats.has_ingested = last_time_ != INT64_MIN;
  stats.initialized = initialized_;
  const OutlierStore& outliers = engine_->outliers();
  stats.outlier_cells = static_cast<int64_t>(outliers.size());
  stats.outlier_magnitude = outliers.TotalMagnitude();
  stats.outlier_captures = outliers.captures();
  stats.outlier_evictions = outliers.evictions();
  return stats;
}

}  // namespace sns
