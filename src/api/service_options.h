// ServiceOptions — configuration of the SnsService runtime: how many worker
// shards execute stream operations, and what happens when a shard's mailbox
// is full.
//
// The default (shards = 0) is the degenerate inline configuration: every
// entry point executes synchronously on the caller's thread, exactly as the
// pre-runtime service did. With shards >= 1 the service spawns that many
// worker threads; each stream is pinned to one shard at creation and every
// operation on it runs there, so per-stream order — and therefore factor
// state — is bitwise identical to the inline path.

#ifndef SLICENSTITCH_API_SERVICE_OPTIONS_H_
#define SLICENSTITCH_API_SERVICE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sns {

/// What a producer experiences when the owning shard's mailbox is full.
enum class BackpressurePolicy {
  /// Block the producer until the shard makes room. Lossless; the natural
  /// choice when producers can afford to slow down to the shard's pace.
  kBlock,
  /// Refuse the operation: the returned Ticket completes immediately with
  /// StatusCode::kResourceExhausted and nothing is enqueued. Lossy but
  /// non-blocking; the caller decides whether to retry, shed, or spill.
  kReject,
};

/// Telemetry configuration (src/telemetry/). The layer is always compiled
/// in; `enabled` decides whether the service allocates metric domains and
/// the instrumentation sites record into them. Disabled, every site costs a
/// single null-pointer test.
struct MetricsOptions {
  /// Master switch: allocate the MetricsRegistry and record metrics.
  bool enabled = false;

  /// Interval of the periodic exporter thread, milliseconds. 0 (default)
  /// disables it; > 0 requires `enabled` and makes the service deliver an
  /// OnMetrics event to every stream's sinks each interval (and write a
  /// JSON line when json_path is set).
  int64_t export_interval_ms = 0;

  /// Path of a JSON-lines capture file, truncated at service creation and
  /// appended each export interval. Empty (default) disables the file;
  /// non-empty requires export_interval_ms > 0.
  std::string json_path;
};

/// Runtime configuration of an SnsService.
struct ServiceOptions {
  /// Worker shards executing stream operations. 0 = inline synchronous
  /// execution on the caller's thread (no runtime threads at all).
  int shards = 0;

  /// Policy when an owning shard's mailbox is at max_queue_depth.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Per-shard mailbox capacity, counted in tasks (one ingest batch, one
  /// advance, or one query hop each — never per tuple).
  int64_t max_queue_depth = 1024;

  /// Telemetry: metric recording and periodic export. Off by default.
  MetricsOptions metrics;

  /// Validates ranges; returned by SnsService::Create on failure.
  Status Validate() const;
};

/// Short display name, e.g. "block", "reject". SNS_CHECK-fails on values
/// outside the enum.
const char* BackpressurePolicyName(BackpressurePolicy policy);

}  // namespace sns

#endif  // SLICENSTITCH_API_SERVICE_OPTIONS_H_
