// Typed event delivery of the service facade: StreamEvent + EventSink.
//
// Replaces the engine's single std::function observer with a fan-out of
// subscriber objects. Each window event is delivered to every sink attached
// to the stream, wrapped in a StreamEvent that answers the questions
// downstream consumers actually ask (observed vs predicted value at the
// event's cell) without handing out the raw window/state internals.

#ifndef SLICENSTITCH_API_STREAM_EVENT_H_
#define SLICENSTITCH_API_STREAM_EVENT_H_

#include <cmath>
#include <cstdint>

#include "api/stream_health.h"
#include "stream/event.h"
#include "telemetry/metrics_registry.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Read-only view of one window event, valid only for the duration of the
/// sink callback. Sinks observe the moment after the event's delta has been
/// applied to the window but before the factor update — the point where
/// |observed − predicted| is the event's reconstruction error (§VI-G).
class StreamEvent {
 public:
  /// Arrival, slide, or expiry (§IV-B).
  EventKind kind() const { return delta_->kind; }
  /// Stream time at which the event occurred.
  int64_t time() const { return delta_->time; }
  /// The originating stream tuple (non-time mode indices + value).
  const Tuple& tuple() const { return delta_->tuple; }
  /// True when the event changed no window cell (zero-valued tuple).
  bool empty() const { return delta_->cells.empty(); }

  /// The event's primary window cell: where the value landed (the newest
  /// slice for arrivals, the slice entered for slides) or left (expiries).
  ModeIndex Cell() const;

  /// Window value at the primary cell, delta already applied.
  double ObservedValue() const { return window_->Get(Cell()); }
  /// Pre-update model reconstruction at the primary cell.
  double PredictedValue() const { return model_->Evaluate(Cell()); }
  /// |observed − predicted|: the event's reconstruction error.
  double AbsError() const {
    return std::fabs(ObservedValue() - PredictedValue());
  }

  /// Signed outlier mass the robust mode (ContinuousCpdOptions::robust)
  /// diverted from this arrival into the sparse outlier structure S — the
  /// model-separated anomaly signal. 0 when robust mode is off, for
  /// slide/expiry events, and for arrivals the model explains within the
  /// soft threshold.
  double OutlierCapture() const { return outlier_capture_; }

  /// Raw change record (Definition 6) — escape hatch for advanced sinks.
  const WindowDelta& raw_delta() const { return *delta_; }

 private:
  friend class StreamHandle;
  StreamEvent(const WindowDelta* delta, const KruskalModel* model,
              const SparseTensor* window, double outlier_capture)
      : delta_(delta),
        model_(model),
        window_(window),
        outlier_capture_(outlier_capture) {}

  const WindowDelta* delta_;
  const KruskalModel* model_;
  const SparseTensor* window_;
  double outlier_capture_;
};

inline ModeIndex StreamEvent::Cell() const {
  if (!delta_->cells.empty()) {
    // Slides carry two cells: [0] the slice left (−v), [1] the slice
    // entered (+v). Arrivals and expiries carry one.
    const size_t slot = delta_->kind == EventKind::kSlide ? 1 : 0;
    return delta_->cells[slot].index;
  }
  // Zero-valued arrival: the newest-slice cell it would have landed in.
  return delta_->tuple.index.WithAppended(
      static_cast<int32_t>(window_->dim(window_->num_modes() - 1) - 1));
}

/// Subscriber interface for window events. Attach any number of sinks to a
/// StreamHandle with AddSink; each event is delivered to all of them in
/// attachment order. Sinks are borrowed, never owned — they must outlive
/// their registration (or be removed with RemoveSink first) and must not
/// ingest into or reconfigure the stream from inside the callback.
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void OnStreamEvent(const StreamEvent& event) = 0;

  /// Health state-machine edge of the stream (quarantine, recovery attempt,
  /// healed, failed — api/stream_health.h). Delivered on the stream's
  /// owning shard as the transition happens; the default ignores it, so
  /// sinks that only care about window events need no change.
  virtual void OnHealthTransition(const HealthTransition& transition) {
    (void)transition;
  }

  /// Periodic metrics sample for the stream, fired every
  /// ServiceOptions::metrics.export_interval_ms when the periodic exporter
  /// is configured. Delivered on the stream's owning shard (sharded
  /// service) or on the exporter thread (inline service, shards = 0). The
  /// default ignores it.
  virtual void OnMetrics(const telemetry::StreamMetricsSnapshot& metrics) {
    (void)metrics;
  }
};

}  // namespace sns

#endif  // SLICENSTITCH_API_STREAM_EVENT_H_
