#include "api/stream_health.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sns {
namespace {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix for the
/// deterministic jitter — not a statistical RNG, just decorrelation of
/// (seed, attempt) pairs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* StreamHealthName(StreamHealth health) {
  switch (health) {
    case StreamHealth::kHealthy:
      return "healthy";
    case StreamHealth::kQuarantined:
      return "quarantined";
    case StreamHealth::kRecovering:
      return "recovering";
    case StreamHealth::kFailed:
      return "failed";
  }
  SNS_CHECK(false && "StreamHealthName: value outside the StreamHealth enum");
  return "unknown";
}

int64_t RecoveryPolicy::BackoffMs(int attempt) const {
  SNS_CHECK(attempt >= 1);
  double backoff = static_cast<double>(initial_backoff_ms) *
                   std::pow(backoff_multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(max_backoff_ms));
  // Deterministic jitter in [0.5, 1.0): same seed + attempt, same backoff.
  const uint64_t h = Mix64(jitter_seed ^ static_cast<uint64_t>(attempt));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(h >> 11) / 9007199254740992.0);
  return static_cast<int64_t>(backoff * jitter);
}

}  // namespace sns
