// StreamHandle — one continuously decomposed stream behind a typed surface.
//
// The handle owns a pinned ContinuousCpd engine (unique_ptr pimpl, so the
// handle itself moves freely while the updaters' internal pointers into
// CpdState stay valid) and layers three things on top of it:
//   - validated, batched ingestion: Warmup / Initialize / Ingest(span) with
//     whole-batch validation before any mutation and event ordering
//     identical to per-tuple processing,
//   - a typed query surface (Reconstruct, TopK, ComponentActivity,
//     FactorRow, RunningFitness) replacing raw CpdState / SparseTensor
//     access,
//   - multi-subscriber event delivery (EventSink fan-out).
// Handles are created standalone (StreamHandle::Create) or pooled and
// routed by name through SnsService (api/sns_service.h).

#ifndef SLICENSTITCH_API_STREAM_HANDLE_H_
#define SLICENSTITCH_API_STREAM_HANDLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/stream_event.h"
#include "common/status.h"
#include "core/continuous_cpd.h"
#include "core/options.h"

namespace sns {

namespace serial {
class ByteSink;
class ByteSource;
class Writer;
class Reader;
}  // namespace serial

/// One ranked result of a TopK query.
struct TopEntry {
  int64_t index = 0;  // Row index within the queried mode.
  double score = 0.0;
};

/// Non-owning view of one factor row — the live R-dimensional embedding of
/// one entity. The pointed-to storage is stable for the lifetime of the
/// stream (factor shapes never change after creation), but the values
/// refresh with every processed event; copy the row if a snapshot is needed.
class FactorRowView {
 public:
  FactorRowView() = default;

  int64_t rank() const { return rank_; }
  double operator[](int64_t r) const {
    SNS_DCHECK(r >= 0 && r < rank_);
    return data_[r];
  }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + rank_; }

 private:
  friend class StreamHandle;
  FactorRowView(const double* data, int64_t rank)
      : data_(data), rank_(rank) {}

  const double* data_ = nullptr;
  int64_t rank_ = 0;
};

/// Point-in-time counters of one stream.
struct StreamStats {
  int64_t events_processed = 0;  // Window events that updated the factors.
  double mean_update_micros = 0.0;
  double update_seconds = 0.0;
  int64_t window_nnz = 0;        // Non-zeros currently in the window.
  int64_t active_tuples = 0;     // Tuples inside the window span.
  int64_t last_time = 0;         // Largest stream time seen (0 before any).
  bool has_ingested = false;     // Any Warmup/Ingest/AdvanceTo happened.
  bool initialized = false;      // InitializeWithAls has run.
  // Robust-mode counters (all 0 when robust mode is off).
  int64_t outlier_cells = 0;          // Entries currently held in S.
  double outlier_magnitude = 0.0;     // Σ|S| over those entries.
  uint64_t outlier_captures = 0;      // Arrivals that fed mass into S.
  uint64_t outlier_evictions = 0;     // Entries displaced at capacity.
};

/// Facade over one continuous CP decomposition. Move-only.
///
/// Lifecycle: Create → Warmup(tuples of the first window span) →
/// Initialize → Ingest live tuples (single or batched) — the protocol of
/// §VI-A. Ingestion is strictly chronological across all calls; every
/// mutating entry point validates its whole input against the stream schema
/// before touching the engine, so a failed call leaves the stream unchanged.
class StreamHandle {
 public:
  /// Validates options/schema and builds an uninitialized stream over the
  /// given non-time mode sizes.
  static StatusOr<StreamHandle> Create(std::string name,
                                       std::vector<int64_t> mode_dims,
                                       const ContinuousCpdOptions& options);

  StreamHandle(StreamHandle&&) = default;
  StreamHandle& operator=(StreamHandle&&) = default;

  // --- Ingestion --------------------------------------------------------

  /// Applies tuples to the window only (no factor updates). Valid before
  /// Initialize; typically fed the first window span of the stream.
  Status Warmup(std::span<const Tuple> tuples);

  /// Fits the initial factors to the warmed-up window with batch ALS and
  /// switches the stream live. Fails once initialized (the engine refits
  /// only through a fresh stream).
  Status Initialize();

  /// Processes one chronological batch of live tuples. Event order is
  /// identical to ingesting tuple-by-tuple (pinned by tests); shared
  /// slide/expiry draining is batched through the engine's cached schedule
  /// bound. The whole span is validated first — on error nothing was
  /// ingested.
  Status Ingest(std::span<const Tuple> tuples);

  /// Single-tuple convenience form of Ingest.
  Status Ingest(const Tuple& tuple);

  /// Drains scheduled slide/expiry events due at or before `time` (factor
  /// updates included once initialized). Time must not regress.
  Status AdvanceTo(int64_t time);

  // --- Typed queries ----------------------------------------------------

  /// Model reconstruction x̃ at one full window coordinate (non-time indices
  /// + time index in [0, W), 0 = oldest slice).
  StatusOr<double> Reconstruct(const ModeIndex& window_cell) const;

  /// Top-k entities of one non-time mode by current activity-weighted
  /// loading: score_i = Σ_r A(mode)(i, r) · ComponentActivity()[r]. Returns
  /// min(k, mode size) entries, best first.
  StatusOr<std::vector<TopEntry>> TopK(int mode, int k) const;

  /// Top-k entities of one non-time mode by raw loading in a single
  /// component — the interpretable "what is this pattern made of" query.
  StatusOr<std::vector<TopEntry>> TopKForComponent(int mode,
                                                   int64_t component,
                                                   int k) const;

  /// Current per-component activity: λ_r times the newest time-mode factor
  /// row — how strongly each recurring pattern expresses right now.
  StatusOr<std::vector<double>> ComponentActivity() const;

  /// Live factor row (embedding) of entity `row` in mode `mode`. Non-time
  /// modes address entities; the time mode addresses window slices.
  StatusOr<FactorRowView> FactorRow(int mode, int64_t row) const;

  /// Top-k entities of one non-time mode by accumulated outlier mass:
  /// score_i = Σ |S(J)| over stored outlier cells J with J[mode] = i — the
  /// "which entities is the model currently refusing to explain" query.
  /// Requires ContinuousCpdOptions::robust.enabled (kFailedPrecondition
  /// otherwise). Returns min(k, mode size) entries, best first.
  StatusOr<std::vector<TopEntry>> OutlierActivity(int mode, int k) const;

  /// Incrementally maintained fitness estimate — O(M·R²) per query, no
  /// window rescan. 0 before Initialize.
  double RunningFitness() const { return engine_->RunningFitness(); }

  /// Exact fitness 1 − ‖X̃ − X‖_F/‖X‖_F — a full O(nnz·M·R) rescan.
  double ExactFitness() const { return engine_->Fitness(); }

  // --- Event sinks ------------------------------------------------------

  /// Subscribes a sink to every window event (delivery in attachment
  /// order). The sink is borrowed and must stay alive until removed.
  Status AddSink(EventSink* sink);

  /// Unsubscribes a previously added sink.
  Status RemoveSink(EventSink* sink);

  /// Takes over `other`'s sink subscriptions (this handle's own list is
  /// replaced). Recovery uses this to carry live subscriptions onto a
  /// rebuilt handle — sinks are process-local wiring, not stream state.
  void MoveSinksFrom(StreamHandle& other);

  /// Delivers one health state-machine edge to every attached sink
  /// (EventSink::OnHealthTransition), in attachment order. Called by the
  /// service's supervisor on the owning shard.
  void NotifyHealthTransition(const HealthTransition& transition);

  /// Delivers one periodic metrics sample to every attached sink
  /// (EventSink::OnMetrics), in attachment order. Called by the service's
  /// periodic exporter on the owning shard.
  void NotifyMetrics(const telemetry::StreamMetricsSnapshot& metrics);

  // --- Durability -------------------------------------------------------

  /// Writes a versioned, CRC-guarded checkpoint of the complete stream
  /// state (durability/checkpoint.h envelope) with sequence token 0 — the
  /// standalone-handle form; SnsService::Checkpoint stamps the stream's
  /// live token instead.
  Status Checkpoint(serial::ByteSink& sink) const;

  /// Rebuilds a stream from a Checkpoint byte stream. After an OK return
  /// the restored stream's observable behavior — every factor value, query
  /// result, and future trajectory — is bitwise identical to the stream the
  /// checkpoint was taken from. Corrupt input fails with a typed Status
  /// (kDataLoss / kInvalidArgument / kFailedPrecondition), never a crash.
  static StatusOr<StreamHandle> Restore(serial::ByteSource& source);

  /// Raw state payload (schema, options, clock, engine) without the
  /// checkpoint envelope; durability/checkpoint.h wraps it with the magic /
  /// version / CRC frame. Event sinks are not serialized — subscriptions
  /// are process-local wiring and must be re-attached after Restore.
  Status SerializeState(serial::Writer& w) const;

  /// Inverse of SerializeState. Only safe over CRC-verified bytes — the
  /// decoder validates shapes and enum ranges but trusts verified payloads.
  /// `format_version` is the checkpoint envelope version the bytes were
  /// framed under: version 1 payloads (pre-loss builds) carry no loss/robust
  /// fields and always restore as Gaussian; version 2 payloads carry them
  /// explicitly, so a non-Gaussian stream can never be silently
  /// misinterpreted as Gaussian.
  static StatusOr<StreamHandle> DeserializeState(serial::Reader& r,
                                                 uint32_t format_version = 1);

  /// True when the stream's checkpoint payload carries loss/robust state
  /// beyond the Gaussian baseline and therefore needs the version-2
  /// envelope. Gaussian non-robust streams keep writing version-1 bytes.
  bool UsesExtendedState() const { return engine_->UsesExtendedState(); }

  // --- Introspection ----------------------------------------------------

  const std::string& name() const { return name_; }
  /// Sizes of the non-time modes (the stream schema).
  const std::vector<int64_t>& mode_dims() const { return mode_dims_; }
  /// Modes of the window tensor (non-time modes + time).
  int num_modes() const { return static_cast<int>(mode_dims_.size()) + 1; }
  int64_t rank() const { return engine_->options().rank; }
  int window_size() const { return engine_->options().window_size; }
  int64_t period() const { return engine_->options().period; }
  std::string_view variant_name() const { return engine_->updater_name(); }
  bool initialized() const { return initialized_; }
  const ContinuousCpdOptions& options() const { return engine_->options(); }
  /// Monotone robust-mode counters (0 when robust mode is off). The service
  /// layer diffs them around each mutation to feed per-stream telemetry.
  uint64_t OutlierCaptures() const { return engine_->outliers().captures(); }
  uint64_t OutlierEvictions() const { return engine_->outliers().evictions(); }

  StreamStats Stats() const;

 private:
  StreamHandle(std::string name, std::vector<int64_t> mode_dims,
               std::unique_ptr<ContinuousCpd> engine);

  /// Whole-batch schema/chronology validation; on OK the batch is safe to
  /// apply atomically.
  Status ValidateBatch(std::span<const Tuple> tuples) const;
  Status ValidateFactorQuery(int mode, int64_t row) const;

  // The sink list lives behind its own stable allocation: the engine's
  // observer closure captures its address, which must survive handle moves.
  struct SinkFanout {
    std::vector<EventSink*> sinks;
  };

  std::string name_;
  std::vector<int64_t> mode_dims_;
  std::unique_ptr<ContinuousCpd> engine_;
  std::unique_ptr<SinkFanout> fanout_;
  int64_t last_time_ = INT64_MIN;
  bool initialized_ = false;
};

}  // namespace sns

#endif  // SLICENSTITCH_API_STREAM_HANDLE_H_
