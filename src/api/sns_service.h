// SnsService — a pool of independently configured, named decomposition
// streams behind one ingest/query front door, executed by an asynchronous
// sharded runtime.
//
// The paper frames SliceNStitch as the engine of always-on applications; a
// deployment serves many of them at once (one stream per city, per metric,
// per tenant...). The service owns one StreamHandle per name — each with
// its own schema, options, and engine — and routes ingestion and queries by
// stream id.
//
// Execution model (src/runtime/): the service spawns ServiceOptions::shards
// worker shards, each a thread draining a bounded MPSC mailbox. Every
// stream is pinned to exactly one shard at creation (round-robin), and
// every operation on the stream executes on that shard's thread in FIFO
// order — so per-stream event order, and therefore every factor value, is
// bitwise identical to synchronous execution, while distinct streams
// proceed in parallel. shards = 0 (the default) is the degenerate inline
// configuration: no threads, every call runs synchronously on the caller,
// exactly the pre-runtime behavior.
//
// Entry points:
//   - IngestAsync / AdvanceToAsync enqueue onto the owning shard and return
//     a completion Ticket carrying the operation's per-stream sequence
//     token. A full mailbox either blocks the producer or rejects the
//     ticket (StatusCode::kResourceExhausted), per BackpressurePolicy; an
//     optional deadline bounds the blocking wait, completing the ticket
//     with kDeadlineExceeded (nothing enqueued, no token consumed) when a
//     wedged shard cannot admit the operation in time.
//   - The synchronous forms (Warmup, Initialize, Ingest, AdvanceTo) and the
//     typed queries (Reconstruct, TopK, ComponentActivity, RunningFitness,
//     Stats, generic Query) execute as request/reply hops on the owning
//     shard: the call enqueues, waits for the reply, and returns the
//     result. Because queries ride the same FIFO mailbox as mutations, a
//     query observes every ingest whose ticket was issued before the query
//     call — the sequence-consistency guarantee. Hops always block for
//     room (the caller self-throttles on the reply), so backpressure
//     policy applies to the ticketed async path only.
//   - Drain() flushes every mailbox; Shutdown() drains, stops the shards,
//     and joins their threads. The destructor shuts down before any handle
//     is destroyed, so no task ever touches a dead stream. After Shutdown,
//     mutations fail (kFailedPrecondition) and queries execute inline —
//     the threads are gone, so inline reads are race-free.
//
// Failure containment (api/stream_health.h): every stream carries a health
// state. A failed write-ahead append quarantines the stream — mutations
// are refused with a typed, retryable status and nothing further touches
// the journal, while queries keep serving last-good state. With
// EnableAutoRecovery configured, the owning shard heals the stream in
// place: bounded, backed-off retries rebuild it from the last checkpoint +
// journal suffix (durability::RecoverHandle), pin the rebuilt state
// bitwise against the live state, reopen the journal, and re-append the
// failed record — on success the failure is invisible to the caller.
// Exhausted retries (or no recovery config) end in StreamHealth::kFailed:
// terminal, mutations fail kDataLoss, queries still work. The supervisor
// surface (Health) reads per-stream health, retry counters, and the last
// error lock-free — usable even while a shard is wedged — and every health
// edge is delivered to the stream's EventSinks.
//
// Telemetry (src/telemetry/): with ServiceOptions::metrics.enabled the
// service owns a MetricsRegistry — one lock-free domain per shard (mailbox
// traffic, queue depth, per-task apply time, ingest-to-ticket latency) plus
// one per stream (tuples, journal/checkpoint bytes and latency, health
// counters) — preallocated up front, so recording never allocates and costs
// a null-check plus a relaxed atomic add per event. Metrics() returns a
// merged, sequence-consistent ServiceMetricsSnapshot (every shard is
// drained of already-issued work first). metrics.export_interval_ms > 0
// additionally starts an exporter thread that periodically delivers an
// OnMetrics event to every stream's sinks on its owning shard and, with
// metrics.json_path set, appends one JSON line per interval. Disabled
// (default), the instrumentation sites cost one null-pointer test each and
// factor state stays bitwise identical either way (pinned by tests).
//
// Hostile-input admission control: Warmup/Ingest batches are validated
// against the stream schema at submission — arity, coordinate range, and
// value finiteness (NaN/Inf) — and rejected whole-batch with
// kInvalidArgument BEFORE a sequence token is issued or a journal record
// written. Chronology violations are detected at apply time (they depend
// on stream state) and are journaled like any acknowledged request.
//
// Thread safety (sharded mode): all entry points may be called from any
// number of threads concurrently, except that CreateStream / Remove /
// AdvanceAllTo / Shutdown must not race with submissions to the affected
// streams, and Find()'s raw StreamHandle* must not be dereferenced while
// shards are live — route access through the service instead. Handles live
// behind stable allocations: pointers returned by CreateStream/Find stay
// valid until that stream is removed, across pool mutations and moves of
// the service itself.

#ifndef SLICENSTITCH_API_SNS_SERVICE_H_
#define SLICENSTITCH_API_SNS_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/service_options.h"
#include "api/stream_handle.h"
#include "api/stream_health.h"
#include "common/status.h"
#include "core/options.h"
#include "runtime/sharded_executor.h"
#include "runtime/ticket.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/scoped_timer.h"

namespace sns {

namespace serial {
class ByteSink;
class ByteSource;
}  // namespace serial

namespace durability {
class JournalWriter;
struct JournalOptions;
enum class JournalOpType : uint8_t;
}  // namespace durability

/// Multi-stream service facade over the sharded runtime. Move-only; streams
/// and shard threads are owned by the service.
class SnsService {
 public:
  /// Inline service (shards = 0): no runtime threads, synchronous calls.
  SnsService();

  /// Service with an explicit runtime configuration. SNS_CHECK-fails on
  /// invalid options; use Create for a Status-returning path.
  explicit SnsService(const ServiceOptions& options);

  /// Validating factory form of the options constructor.
  static StatusOr<SnsService> Create(const ServiceOptions& options);

  /// Moves leave `other` as a valid empty inline service (fresh registry,
  /// no runtime), so accidental use of a moved-from service degrades to
  /// "no streams" instead of undefined behavior.
  SnsService(SnsService&& other);
  SnsService& operator=(SnsService&& other);

  /// Shuts the runtime down (draining all mailboxes) before destroying any
  /// stream handle.
  ~SnsService();

  const ServiceOptions& service_options() const { return options_; }
  /// Worker shards executing stream operations (0 = inline).
  int shards() const { return options_.shards; }

  // --- Pool management --------------------------------------------------

  /// Registers a new stream under a unique name and pins it to a shard.
  /// Fails (leaving the pool unchanged) on duplicate names or invalid
  /// schema/options. The returned handle pointer is owned by the service
  /// and stable until Remove.
  StatusOr<StreamHandle*> CreateStream(std::string name,
                                       std::vector<int64_t> mode_dims,
                                       const ContinuousCpdOptions& options);

  /// The stream registered under `name`, or nullptr. In sharded mode the
  /// raw handle must not be dereferenced while shards are live (its engine
  /// runs on the owning shard's thread); route through the service instead.
  StreamHandle* Find(std::string_view name);
  const StreamHandle* Find(std::string_view name) const;

  /// Destroys one stream (its handle pointers become invalid) after
  /// draining the owning shard. Must not race with submissions to it.
  Status Remove(std::string_view name);

  /// Registered stream names, sorted.
  std::vector<std::string> StreamNames() const;

  int64_t stream_count() const;
  bool empty() const { return stream_count() == 0; }

  // --- Asynchronous ingestion -------------------------------------------
  // Enqueue onto the owning shard and return immediately. The ticket
  // completes with the operation's Status once the shard applies it.
  // Under BackpressurePolicy::kReject a full mailbox completes the ticket
  // immediately with kResourceExhausted and enqueues nothing; under kBlock
  // the call waits for room — bounded by `deadline` when one is given: a
  // shard still full at the deadline completes the ticket with
  // kDeadlineExceeded, enqueueing nothing and consuming no token, so the
  // stream is left exactly as if the call never happened. (Inline services
  // have no queue; deadlines never fire there.) Unknown streams, hostile
  // input (admission control), unhealthy streams, and a shut-down service
  // also complete immediately with their typed status.

  /// Processes one chronological batch of live tuples (copied into the
  /// task). Semantics of the applied operation match StreamHandle::Ingest.
  Ticket IngestAsync(
      std::string_view stream, std::span<const Tuple> tuples,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// Move-in form: avoids copying the batch.
  Ticket IngestAsync(
      std::string_view stream, std::vector<Tuple> tuples,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// Drains scheduled window events due at or before `time`.
  Ticket AdvanceToAsync(
      std::string_view stream, int64_t time,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  // --- Synchronous routed ingestion -------------------------------------
  // Name-addressed forms of the StreamHandle entry points; unknown names
  // return NotFound, everything else carries the handle's own Status.
  // Equivalent to the async forms followed by Ticket::Wait(): executed on
  // the owning shard, consuming a sequence token, but always blocking for
  // mailbox room (the caller self-throttles on completion, so kReject
  // never applies) and refused with kFailedPrecondition after Shutdown.

  Status Warmup(std::string_view stream, std::span<const Tuple> tuples);
  Status Initialize(std::string_view stream);
  Status Ingest(std::string_view stream, std::span<const Tuple> tuples);
  Status Ingest(std::string_view stream, const Tuple& tuple);
  Status AdvanceTo(std::string_view stream, int64_t time);

  /// Advances every stream whose clock is behind `time`. Streams already
  /// past the horizon and streams that never saw input (whose warm-up must
  /// remain possible with earlier tuples) are left untouched. Used to flush
  /// all windows to a common horizon, e.g. at shutdown or a checkpoint;
  /// must not race with concurrent submissions or pool mutations
  /// (CreateStream / Remove). Every stream is attempted; the first
  /// per-stream failure (e.g. a journal append error — kIOError, or a
  /// failed stream — kDataLoss) is returned. After Shutdown the typed
  /// refusal degrades to an OK no-op.
  Status AdvanceAllTo(int64_t time);

  // --- Sequence-consistent queries --------------------------------------
  // Executed on the owning shard via a request/reply hop: the caller
  // blocks for the reply, and the query observes every ingest whose ticket
  // was issued before the query call (same FIFO mailbox). Queries serve
  // regardless of stream health — a quarantined or failed stream still
  // answers from its last-good state.

  /// Model reconstruction x̃ at one full window coordinate.
  StatusOr<double> Reconstruct(std::string_view stream,
                               const ModeIndex& window_cell);

  /// Top-k entities of one non-time mode by activity-weighted loading.
  StatusOr<std::vector<TopEntry>> TopK(std::string_view stream, int mode,
                                       int k);

  /// Current per-component activity (λ_r · newest time-factor row).
  StatusOr<std::vector<double>> ComponentActivity(std::string_view stream);

  /// Top-k entities of one non-time mode by accumulated outlier mass in the
  /// robust mode's sparse structure S (StreamHandle::OutlierActivity).
  /// kFailedPrecondition when the stream runs without robust mode.
  StatusOr<std::vector<TopEntry>> OutlierActivity(std::string_view stream,
                                                  int mode, int k);

  /// Incrementally maintained fitness estimate.
  StatusOr<double> RunningFitness(std::string_view stream);

  /// Point-in-time counters of one stream.
  StatusOr<StreamStats> Stats(std::string_view stream);

  /// Generic hop: runs `fn(const StreamHandle&)` on the owning shard and
  /// returns its result. `fn` may capture caller-stack references — the
  /// caller blocks until the reply. NotFound for unknown streams.
  template <typename Fn>
  auto Query(std::string_view stream, Fn&& fn)
      -> StatusOr<std::invoke_result_t<Fn&, const StreamHandle&>> {
    StreamEntry* entry = ResolveEntry(stream);
    if (entry == nullptr) return NoSuchStream(stream);
    return RunOnShard(*entry, [&fn](StreamHandle& handle) {
      return fn(static_cast<const StreamHandle&>(handle));
    });
  }

  /// Sequence token of the last ticketed operation the stream has applied
  /// (0 before any). Monotone; once a ticket is done(), AppliedSequence is
  /// >= its sequence(). Lock-free — no shard hop.
  StatusOr<uint64_t> AppliedSequence(std::string_view stream) const;

  // --- Supervision ------------------------------------------------------

  /// Merged telemetry snapshot of the whole service: every shard domain,
  /// every stream domain, and the cross-shard ingest-latency / apply-time
  /// histogram merges. Sequence-consistent like the typed queries: every
  /// shard is first drained of the work already issued to it (one blocking
  /// barrier task per shard), so the snapshot covers every operation whose
  /// ticket was issued before this call. kFailedPrecondition when metrics
  /// are disabled (ServiceOptions::metrics.enabled = false).
  StatusOr<telemetry::ServiceMetricsSnapshot> Metrics();

  /// True when this service records metrics (metrics.enabled at creation).
  bool metrics_enabled() const { return metrics_ != nullptr; }

  /// Supervisor snapshot of one stream's health: state-machine position,
  /// quarantine/recovery counters, and the most recent failure cause. Read
  /// from counters the owning shard maintains — no shard hop, so it works
  /// even while the shard is wedged mid-recovery.
  StatusOr<StreamHealthInfo> Health(std::string_view stream) const;

  /// Arms in-place auto-recovery for one journaled stream: after a failed
  /// write-ahead append, the owning shard rebuilds the stream from the
  /// checkpoint at `checkpoint_path` plus the journal suffix, verifies the
  /// rebuilt state bitwise against the live state, reopens the journal,
  /// and retries the failed append — up to policy.max_attempts times with
  /// jittered exponential backoff (api/stream_health.h). The checkpoint
  /// must cover the journal's start (the usual order: CreateStream/Restore
  /// → EnableJournal → CheckpointToFile → EnableAutoRecovery). Requires an
  /// attached journal; must not race with submissions to the stream.
  Status EnableAutoRecovery(std::string_view stream,
                            const std::string& checkpoint_path,
                            const RecoveryPolicy& policy = {});

  // --- Durability -------------------------------------------------------

  /// Writes a versioned, CRC-guarded checkpoint of one stream into `sink`
  /// (durability/checkpoint.h envelope), stamped with the stream's applied
  /// sequence token. Runs as a request/reply hop on the owning shard, so it
  /// captures a consistent sequence point even during live async ingest:
  /// exactly the operations whose tickets were enqueued before the
  /// checkpoint call are included. After Shutdown the service refuses with
  /// kFailedPrecondition — checkpoint before shutting down.
  Status Checkpoint(std::string_view stream, serial::ByteSink& sink);

  /// Checkpoint into a file, atomically: the envelope is written to a
  /// temporary sibling, fsynced, and renamed over `path`, so a crash or
  /// write failure mid-checkpoint never clobbers the previous good
  /// checkpoint — the invariant auto-recovery depends on.
  Status CheckpointToFile(std::string_view stream, const std::string& path);

  /// Rebuilds a stream from a Checkpoint byte stream and registers it under
  /// its serialized name (like CreateStream: duplicate names fail, the
  /// stream is pinned to a shard, the returned pointer is service-owned).
  /// The stream resumes at its checkpointed sequence token, so attaching a
  /// journal and replaying (durability::RecoverStream) continues the exact
  /// token sequence.
  StatusOr<StreamHandle*> Restore(serial::ByteSource& source);

  /// Attaches a write-ahead event journal to one stream: every subsequent
  /// ticketed mutation is appended to `directory` (durability/journal.h)
  /// before it is applied. The owning shard is drained first, so the
  /// journal starts at a clean sequence point; for crash recovery, enable
  /// journaling right after CreateStream/Restore and checkpoint afterwards.
  /// Fails if the stream already journals, is not healthy, or the service
  /// is shut down. Must not race with submissions to the stream. A failed
  /// append quarantines the stream (see the class comment): the failing
  /// operation is not applied, and whether the stream heals or fails
  /// permanently is decided by EnableAutoRecovery's policy.
  Status EnableJournal(std::string_view stream, const std::string& directory);
  Status EnableJournal(std::string_view stream, const std::string& directory,
                       const durability::JournalOptions& options);

  // --- Runtime lifecycle ------------------------------------------------

  /// Blocks until every accepted task on every shard has executed. With
  /// producers paused, all issued tickets are done afterwards. No-op
  /// inline.
  void Drain();

  /// Drains, stops accepting mutations, and joins every shard thread.
  /// Idempotent. Afterwards mutations fail with kFailedPrecondition and
  /// queries execute inline on the caller.
  void Shutdown();

 private:
  /// Auto-recovery configuration of one stream (set by EnableAutoRecovery;
  /// defined in the .cpp — durability::JournalOptions is incomplete here).
  struct AutoRecoveryConfig;

  /// One registered stream: its handle plus runtime bookkeeping. Heap-
  /// allocated so shard tasks hold stable pointers across pool mutations
  /// and service moves.
  struct StreamEntry {
    StreamEntry();   // Out-of-line: JournalWriter is incomplete here.
    ~StreamEntry();

    std::unique_ptr<StreamHandle> handle;
    int shard = -1;  // Pinned owning shard; -1 inline.
    std::mutex submit_mu;    // Serializes ticket issue + enqueue.
    uint64_t issued_seq = 0;  // Guarded by submit_mu.
    std::atomic<uint64_t> applied_seq{0};  // Written on the owning shard.

    /// Immutable copies of the stream identity/schema, readable from any
    /// thread without touching the handle (which recovery may be swapping
    /// on the owning shard): set once at CreateStream/Restore.
    std::string name;
    std::vector<int64_t> mode_dims;

    /// Write-ahead journal, or null. Like the handle, touched only on the
    /// owning shard once attached (EnableJournal drains before attaching);
    /// recovery closes and reopens it in place.
    std::unique_ptr<durability::JournalWriter> journal;
    /// Auto-recovery config, or null (quarantine is then terminal).
    std::unique_ptr<AutoRecoveryConfig> auto_recovery;

    /// Health state machine (api/stream_health.h). Written on the owning
    /// shard, read lock-free everywhere (submit gate, supervisor).
    /// Telemetry domains, or null when metrics are disabled. Stable heap
    /// pointers into the service's MetricsRegistry, set once at
    /// CreateStream/Restore; recording through them is lock-free.
    telemetry::ShardMetrics* shard_metrics = nullptr;
    telemetry::StreamMetrics* stream_metrics = nullptr;

    std::atomic<StreamHealth> health{StreamHealth::kHealthy};
    std::atomic<uint64_t> quarantine_count{0};
    std::atomic<uint64_t> recovery_attempts{0};
    std::atomic<uint64_t> recoveries_completed{0};
    std::mutex health_mu;  // Guards last_error only.
    Status last_error;     // Most recent failure cause; guarded by health_mu.
  };

  /// The stream registry, heap-allocated behind the service so shard tasks
  /// and returned handle pointers survive service moves. The map keeps
  /// names sorted for free; unique_ptr values keep entry addresses stable.
  /// The shutdown flag lives here (not on the service) so it stays
  /// lock-free-readable yet movable with the pool.
  struct Registry {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<StreamEntry>, std::less<>> streams;
    std::atomic<bool> shutdown{false};
  };

  StreamEntry* ResolveEntry(std::string_view name) const;

  /// Points a freshly registered entry at its telemetry domains (no-op when
  /// metrics are disabled). Called under the registry lock by
  /// CreateStream/Restore, after the entry's shard is pinned.
  void AttachMetrics(StreamEntry& entry);
  static Status NoSuchStream(std::string_view name) {
    return Status::NotFound("no stream named '" + std::string(name) + "'");
  }

  /// Submit-time health gate: the typed refusal for a stream that is not
  /// accepting mutations, or OK. Reads one atomic; no token is consumed
  /// and nothing is journaled for refused submissions.
  static Status HealthGate(const StreamEntry& entry);

  /// Hostile-input admission control: validates a batch against the
  /// entry's immutable schema copy (arity, coordinate range, finiteness).
  /// Violations are kInvalidArgument and happen BEFORE a token is issued,
  /// so nothing is journaled. Chronology is apply-time (state-dependent).
  static Status ValidateAdmission(const StreamEntry& entry,
                                  std::span<const Tuple> tuples);

  /// Issues a ticket for `op(StreamEntry&, uint64_t seq) -> Status` and
  /// enqueues it on the owning shard (or runs it inline). The only entry
  /// point that consumes sequence tokens; ops receive their token so they
  /// can journal write-ahead before applying. Honors BackpressurePolicy
  /// unless `force_block` — the synchronous mutation forms, whose callers
  /// self-throttle by waiting on the ticket anyway. A rejected submission
  /// (health gate / backpressure / deadline / shutdown) consumes no token
  /// and journals nothing, so tokens and journal records stay 1:1.
  template <typename Op>
  Ticket SubmitOp(
      StreamEntry& entry, Op op, bool force_block = false,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// The body every ticketed mutation runs on the owning shard: health
  /// check, write-ahead journal append (with quarantine + auto-recovery on
  /// failure), then the handle operation itself.
  static Status ExecuteMutation(StreamEntry& entry, uint64_t sequence,
                                durability::JournalOpType op, int64_t time,
                                std::span<const Tuple> tuples);

  /// Write-ahead append of one ticketed operation to the stream's journal
  /// (no-op without one). Runs on the owning shard; an error means the op
  /// must not be applied.
  static Status AppendJournal(StreamEntry& entry, uint64_t sequence,
                              durability::JournalOpType op, int64_t time,
                              std::span<const Tuple> tuples);

  /// Quarantine + bounded-retry recovery after a failed append. Returns OK
  /// if the stream healed and the record was re-appended (the caller then
  /// applies the op normally); otherwise the terminal failure cause, with
  /// the stream left kFailed. Runs on the owning shard.
  static Status HandleAppendFailure(StreamEntry& entry, uint64_t sequence,
                                    durability::JournalOpType op,
                                    int64_t time,
                                    std::span<const Tuple> tuples,
                                    Status cause);

  /// One recovery attempt: rebuild from checkpoint + journal suffix,
  /// verify bitwise against live state, swap in, reopen the journal.
  static Status AttemptRecovery(StreamEntry& entry);

  /// Drives the health state machine: stores the cause, publishes the new
  /// state, and notifies the stream's sinks. Owning shard only.
  static void SetHealth(StreamEntry& entry, StreamHealth to,
                        const Status& cause, int attempt);

  /// Blocking request/reply hop: runs `fn(StreamHandle&) -> R` on the
  /// owning shard and returns R. Always blocks for mailbox room; falls back
  /// to inline execution when the runtime is shut down (threads gone) or
  /// absent.
  template <typename Fn>
  auto RunOnShard(StreamEntry& entry, Fn fn)
      -> std::invoke_result_t<Fn&, StreamHandle&>;

  /// Periodic exporter thread state (defined in the .cpp). Heap-allocated
  /// so the thread's captures stay valid across service moves.
  struct PeriodicExporter;

  /// Starts the exporter thread when metrics.export_interval_ms > 0.
  void StartExporter();
  /// Stops and joins the exporter thread. Must run before the executor
  /// shuts down (the exporter submits OnMetrics delivery tasks).
  void StopExporter();

  ServiceOptions options_;
  std::unique_ptr<Registry> registry_;
  /// Metric domains; null when metrics are disabled. Heap-allocated so
  /// instrumentation pointers survive service moves. Declared before the
  /// executor, whose shards record into it.
  std::unique_ptr<telemetry::MetricsRegistry> metrics_;
  std::unique_ptr<ShardedExecutor> executor_;  // Null inline.
  std::unique_ptr<PeriodicExporter> exporter_;  // Null without an interval.
};

// --- Template implementations -------------------------------------------

template <typename Op>
Ticket SnsService::SubmitOp(StreamEntry& entry, Op op, bool force_block,
                            std::optional<std::chrono::milliseconds> deadline) {
  {
    Status gate = HealthGate(entry);
    if (!gate.ok()) return Ticket::Completed(std::move(gate));
  }
  std::lock_guard<std::mutex> lock(entry.submit_mu);
  const uint64_t seq = entry.issued_seq + 1;
  if (executor_ == nullptr) {
    // Inline: apply on the caller's thread, sequence numbers, shutdown
    // fencing and all, so the ticketed surface behaves identically at
    // shards = 0. No queue exists, so deadlines cannot expire here.
    if (registry_->shutdown.load(std::memory_order_acquire)) {
      return Ticket::Completed(
          Status::FailedPrecondition("service is shut down"));
    }
    entry.issued_seq = seq;
    Status status;
    if (entry.shard_metrics != nullptr) {
      // Inline parity with the worker-shard instrumentation: the applied
      // operation is both the "task" and the whole issue→complete span.
      const int64_t start_ns = telemetry::MonotonicNanos();
      status = op(entry, seq);
      const int64_t elapsed_ns = telemetry::MonotonicNanos() - start_ns;
      entry.shard_metrics->apply_ns.Record(elapsed_ns);
      entry.shard_metrics->ingest_latency_ns.Record(elapsed_ns);
      entry.shard_metrics->tasks_executed.Add(1);
    } else {
      status = op(entry, seq);
    }
    entry.applied_seq.store(seq, std::memory_order_release);
    auto record = std::make_shared<internal::TicketRecord>(seq);
    record->Complete(std::move(status));
    return Ticket(std::move(record));
  }
  std::optional<Mailbox::Deadline> absolute;
  if (deadline.has_value()) {
    absolute = std::chrono::steady_clock::now() + *deadline;
  }
  auto record = std::make_shared<internal::TicketRecord>(seq);
  StreamEntry* e = &entry;
  // Ingest-to-ticket latency: issue time is taken before the push, so the
  // recorded span covers any backpressure wait plus queueing delay plus the
  // apply itself — the latency an async producer actually experiences.
  telemetry::LatencyHistogram* latency =
      entry.shard_metrics != nullptr
          ? &entry.shard_metrics->ingest_latency_ns
          : nullptr;
  const int64_t issued_ns =
      latency != nullptr ? telemetry::MonotonicNanos() : 0;
  const Mailbox::PushResult result = executor_->Submit(
      entry.shard,
      Task([e, record, latency, issued_ns, op = std::move(op)]() mutable {
        Status status = op(*e, record->sequence());
        e->applied_seq.store(record->sequence(), std::memory_order_release);
        if (latency != nullptr) {
          latency->Record(telemetry::MonotonicNanos() - issued_ns);
        }
        record->Complete(std::move(status));
      }),
      force_block || options_.backpressure == BackpressurePolicy::kBlock,
      absolute);
  switch (result) {
    case Mailbox::PushResult::kFull:
      return Ticket::Completed(Status::ResourceExhausted(
          "shard " + std::to_string(entry.shard) + " mailbox is full (depth " +
          std::to_string(options_.max_queue_depth) + ")"));
    case Mailbox::PushResult::kTimedOut:
      return Ticket::Completed(Status::DeadlineExceeded(
          "shard " + std::to_string(entry.shard) +
          " could not admit the operation before its deadline"));
    case Mailbox::PushResult::kClosed:
      return Ticket::Completed(
          Status::FailedPrecondition("service is shut down"));
    case Mailbox::PushResult::kOk:
      break;
  }
  entry.issued_seq = seq;
  return Ticket(std::move(record));
}

template <typename Fn>
auto SnsService::RunOnShard(StreamEntry& entry, Fn fn)
    -> std::invoke_result_t<Fn&, StreamHandle&> {
  using R = std::invoke_result_t<Fn&, StreamHandle&>;
  static_assert(!std::is_void_v<R>, "shard hops must return a value");
  if (executor_ == nullptr) return fn(*entry.handle);
  std::optional<R> slot;
  auto done = std::make_shared<internal::TicketRecord>();
  StreamEntry* e = &entry;
  const Mailbox::PushResult result = executor_->Submit(
      entry.shard,
      Task([e, &slot, done, &fn] {
        slot.emplace(fn(*e->handle));
        done->Complete(Status::OK());
      }),
      /*block=*/true);
  if (result != Mailbox::PushResult::kOk) {
    // Shut down: the shard threads are joined, so inline access is safe.
    return fn(*entry.handle);
  }
  done->Wait();
  return std::move(*slot);
}

}  // namespace sns

#endif  // SLICENSTITCH_API_SNS_SERVICE_H_
