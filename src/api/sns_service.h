// SnsService — a pool of independently configured, named decomposition
// streams behind one ingest/query front door.
//
// The paper frames SliceNStitch as the engine of always-on applications; a
// deployment serves many of them at once (one stream per city, per metric,
// per tenant...). The service owns one StreamHandle per name — each with its
// own schema, options, and engine — and routes batched ingestion and
// queries by stream id. Handles live behind stable allocations: pointers
// returned by CreateStream/Find stay valid until that stream is removed,
// regardless of other pool mutations.

#ifndef SLICENSTITCH_API_SNS_SERVICE_H_
#define SLICENSTITCH_API_SNS_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/stream_handle.h"
#include "common/status.h"
#include "core/options.h"

namespace sns {

/// Multi-stream facade. Move-only; streams are owned by the service.
class SnsService {
 public:
  SnsService() = default;
  SnsService(SnsService&&) = default;
  SnsService& operator=(SnsService&&) = default;

  // --- Pool management --------------------------------------------------

  /// Registers a new stream under a unique name. Fails (leaving the pool
  /// unchanged) on duplicate names or invalid schema/options. The returned
  /// handle pointer is owned by the service and stable until Remove.
  StatusOr<StreamHandle*> CreateStream(std::string name,
                                       std::vector<int64_t> mode_dims,
                                       const ContinuousCpdOptions& options);

  /// The stream registered under `name`, or nullptr.
  StreamHandle* Find(std::string_view name);
  const StreamHandle* Find(std::string_view name) const;

  /// Destroys one stream (its handle pointers become invalid).
  Status Remove(std::string_view name);

  /// Registered stream names, sorted.
  std::vector<std::string> StreamNames() const;

  int64_t stream_count() const {
    return static_cast<int64_t>(streams_.size());
  }
  bool empty() const { return streams_.empty(); }

  // --- Routed ingestion -------------------------------------------------
  // Name-addressed forms of the StreamHandle entry points; unknown names
  // return NotFound, everything else carries the handle's own Status.

  Status Warmup(std::string_view stream, std::span<const Tuple> tuples);
  Status Initialize(std::string_view stream);
  Status Ingest(std::string_view stream, std::span<const Tuple> tuples);
  Status Ingest(std::string_view stream, const Tuple& tuple);
  Status AdvanceTo(std::string_view stream, int64_t time);

  /// Advances every stream whose clock is behind `time`. Streams already
  /// past the horizon and streams that never saw input (whose warm-up must
  /// remain possible with earlier tuples) are left untouched. Used to flush
  /// all windows to a common horizon, e.g. at shutdown or a checkpoint.
  void AdvanceAllTo(int64_t time);

 private:
  StatusOr<StreamHandle*> Resolve(std::string_view name);

  // Sorted names for free; unique_ptr values keep handle addresses stable
  // across rehash-free map mutations.
  std::map<std::string, std::unique_ptr<StreamHandle>, std::less<>> streams_;
};

}  // namespace sns

#endif  // SLICENSTITCH_API_SNS_SERVICE_H_
