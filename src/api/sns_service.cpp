#include "api/sns_service.h"

namespace sns {

StatusOr<StreamHandle*> SnsService::CreateStream(
    std::string name, std::vector<int64_t> mode_dims,
    const ContinuousCpdOptions& options) {
  if (streams_.find(name) != streams_.end()) {
    return Status::FailedPrecondition("stream '" + name +
                                      "' already exists");
  }
  auto handle = StreamHandle::Create(name, std::move(mode_dims), options);
  if (!handle.ok()) return handle.status();
  auto owned = std::make_unique<StreamHandle>(std::move(handle).value());
  StreamHandle* raw = owned.get();
  streams_.emplace(std::move(name), std::move(owned));
  return raw;
}

StreamHandle* SnsService::Find(std::string_view name) {
  auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second.get();
}

const StreamHandle* SnsService::Find(std::string_view name) const {
  auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second.get();
}

Status SnsService::Remove(std::string_view name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(name) + "'");
  }
  streams_.erase(it);
  return Status::OK();
}

std::vector<std::string> SnsService::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, handle] : streams_) names.push_back(name);
  return names;
}

StatusOr<StreamHandle*> SnsService::Resolve(std::string_view name) {
  StreamHandle* handle = Find(name);
  if (handle == nullptr) {
    return Status::NotFound("no stream named '" + std::string(name) + "'");
  }
  return handle;
}

Status SnsService::Warmup(std::string_view stream,
                          std::span<const Tuple> tuples) {
  auto handle = Resolve(stream);
  if (!handle.ok()) return handle.status();
  return handle.value()->Warmup(tuples);
}

Status SnsService::Initialize(std::string_view stream) {
  auto handle = Resolve(stream);
  if (!handle.ok()) return handle.status();
  return handle.value()->Initialize();
}

Status SnsService::Ingest(std::string_view stream,
                          std::span<const Tuple> tuples) {
  auto handle = Resolve(stream);
  if (!handle.ok()) return handle.status();
  return handle.value()->Ingest(tuples);
}

Status SnsService::Ingest(std::string_view stream, const Tuple& tuple) {
  auto handle = Resolve(stream);
  if (!handle.ok()) return handle.status();
  return handle.value()->Ingest(tuple);
}

Status SnsService::AdvanceTo(std::string_view stream, int64_t time) {
  auto handle = Resolve(stream);
  if (!handle.ok()) return handle.status();
  return handle.value()->AdvanceTo(time);
}

void SnsService::AdvanceAllTo(int64_t time) {
  for (auto& [name, handle] : streams_) {
    const StreamStats stats = handle->Stats();
    // Streams that never saw input are left untouched — advancing their
    // clock would forbid warming them up with earlier tuples later. Streams
    // ahead of the horizon are skipped, so AdvanceTo never fails here.
    if (!stats.has_ingested || stats.last_time > time) continue;
    Status status = handle->AdvanceTo(time);
    SNS_CHECK(status.ok());
  }
}

}  // namespace sns
