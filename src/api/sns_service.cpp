#include "api/sns_service.h"

#include <cstdio>

#include "common/serial.h"
#include "durability/checkpoint.h"
#include "durability/journal.h"

namespace sns {

SnsService::StreamEntry::StreamEntry() = default;
SnsService::StreamEntry::~StreamEntry() = default;

Status SnsService::AppendJournal(StreamEntry& entry, uint64_t sequence,
                                 durability::JournalOpType op, int64_t time,
                                 std::span<const Tuple> tuples) {
  if (entry.journal == nullptr) return Status::OK();
  if (entry.journal_poisoned) {
    return Status::DataLoss(
        "stream journal is poisoned by an earlier append failure");
  }
  Status status = entry.journal->Append(sequence, op, time, tuples);
  // Sticky: skipping one record and appending the next would leave a
  // sequence gap that replay could not tell from corruption.
  if (!status.ok()) entry.journal_poisoned = true;
  return status;
}

SnsService::SnsService() : registry_(std::make_unique<Registry>()) {}

SnsService::SnsService(const ServiceOptions& options)
    : options_(options), registry_(std::make_unique<Registry>()) {
  const Status valid = options_.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "SnsService: %s\n", valid.ToString().c_str());
    SNS_CHECK(valid.ok());
  }
  if (options_.shards > 0) {
    executor_ = std::make_unique<ShardedExecutor>(options_.shards,
                                                  options_.max_queue_depth);
  }
}

StatusOr<SnsService> SnsService::Create(const ServiceOptions& options) {
  SNS_RETURN_IF_ERROR(options.Validate());
  return SnsService(options);
}

SnsService::SnsService(SnsService&& other)
    : options_(other.options_),
      registry_(std::move(other.registry_)),
      executor_(std::move(other.executor_)) {
  // Leave `other` a valid empty inline service, not a null-registry husk.
  other.options_ = ServiceOptions();
  other.registry_ = std::make_unique<Registry>();
}

SnsService& SnsService::operator=(SnsService&& other) {
  if (this != &other) {
    // Quiesce and join our own runtime before the registry its tasks point
    // into is replaced.
    if (executor_ != nullptr) executor_->Shutdown();
    executor_ = std::move(other.executor_);
    registry_ = std::move(other.registry_);
    options_ = other.options_;
    other.options_ = ServiceOptions();
    other.registry_ = std::make_unique<Registry>();
  }
  return *this;
}

SnsService::~SnsService() {
  // Flush and join the shard threads while every stream handle is still
  // alive; only then may the registry (and the handles in it) die.
  if (executor_ != nullptr) executor_->Shutdown();
}

// --- Pool management ------------------------------------------------------

StatusOr<StreamHandle*> SnsService::CreateStream(
    std::string name, std::vector<int64_t> mode_dims,
    const ContinuousCpdOptions& options) {
  {
    // Cheap duplicate check before the (expensive) engine build; the
    // post-build re-check below closes the unlock window.
    std::lock_guard<std::mutex> lock(registry_->mu);
    if (registry_->streams.find(name) != registry_->streams.end()) {
      return Status::FailedPrecondition("stream '" + name +
                                        "' already exists");
    }
  }
  auto handle = StreamHandle::Create(name, std::move(mode_dims), options);
  if (!handle.ok()) return handle.status();
  std::lock_guard<std::mutex> lock(registry_->mu);
  if (registry_->streams.find(name) != registry_->streams.end()) {
    return Status::FailedPrecondition("stream '" + name +
                                      "' already exists");
  }
  auto entry = std::make_unique<StreamEntry>();
  entry->handle = std::make_unique<StreamHandle>(std::move(handle).value());
  if (executor_ != nullptr) entry->shard = executor_->AssignShard();
  StreamHandle* raw = entry->handle.get();
  registry_->streams.emplace(std::move(name), std::move(entry));
  return raw;
}

SnsService::StreamEntry* SnsService::ResolveEntry(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  auto it = registry_->streams.find(name);
  return it == registry_->streams.end() ? nullptr : it->second.get();
}

StreamHandle* SnsService::Find(std::string_view name) {
  StreamEntry* entry = ResolveEntry(name);
  return entry == nullptr ? nullptr : entry->handle.get();
}

const StreamHandle* SnsService::Find(std::string_view name) const {
  StreamEntry* entry = ResolveEntry(name);
  return entry == nullptr ? nullptr : entry->handle.get();
}

Status SnsService::Remove(std::string_view name) {
  // Two-phase: read the pinned shard under the lock, drain unlocked, then
  // re-resolve before erasing — never touching the entry outside the lock,
  // so a concurrent Remove of the same name safely loses with NotFound.
  int shard = -1;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto it = registry_->streams.find(name);
    if (it == registry_->streams.end()) return NoSuchStream(name);
    shard = it->second->shard;
  }
  // Flush the owning shard so no in-flight task still references the
  // handle we are about to destroy. (Submissions racing with Remove are a
  // caller error — see the class comment.)
  if (executor_ != nullptr && shard >= 0) executor_->DrainShard(shard);
  std::lock_guard<std::mutex> lock(registry_->mu);
  auto it = registry_->streams.find(name);
  if (it == registry_->streams.end()) return NoSuchStream(name);
  registry_->streams.erase(it);
  return Status::OK();
}

std::vector<std::string> SnsService::StreamNames() const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  std::vector<std::string> names;
  names.reserve(registry_->streams.size());
  for (const auto& [name, entry] : registry_->streams) {
    names.push_back(name);
  }
  return names;
}

int64_t SnsService::stream_count() const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  return static_cast<int64_t>(registry_->streams.size());
}

// --- Asynchronous ingestion -----------------------------------------------

Ticket SnsService::IngestAsync(std::string_view stream,
                               std::span<const Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  if (executor_ == nullptr) {
    // Inline: applied synchronously before returning, so the span needs no
    // owning copy.
    return SubmitOp(*entry, [tuples](StreamEntry& e, uint64_t seq) {
      SNS_RETURN_IF_ERROR(AppendJournal(
          e, seq, durability::JournalOpType::kIngest, 0, tuples));
      return e.handle->Ingest(tuples);
    });
  }
  return SubmitOp(
      *entry,
      [batch = std::vector<Tuple>(tuples.begin(), tuples.end())](
          StreamEntry& e, uint64_t seq) {
        SNS_RETURN_IF_ERROR(AppendJournal(
            e, seq, durability::JournalOpType::kIngest, 0, batch));
        return e.handle->Ingest(std::span<const Tuple>(batch));
      });
}

Ticket SnsService::IngestAsync(std::string_view stream,
                               std::vector<Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  return SubmitOp(*entry,
                  [batch = std::move(tuples)](StreamEntry& e, uint64_t seq) {
                    SNS_RETURN_IF_ERROR(AppendJournal(
                        e, seq, durability::JournalOpType::kIngest, 0, batch));
                    return e.handle->Ingest(std::span<const Tuple>(batch));
                  });
}

Ticket SnsService::AdvanceToAsync(std::string_view stream, int64_t time) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  return SubmitOp(*entry, [time](StreamEntry& e, uint64_t seq) {
    SNS_RETURN_IF_ERROR(AppendJournal(
        e, seq, durability::JournalOpType::kAdvanceTo, time, {}));
    return e.handle->AdvanceTo(time);
  });
}

// --- Synchronous routed ingestion -----------------------------------------
// Ticketed ops the caller immediately waits on: the span stays alive for
// the whole call, so closures capture it by value (a span copy, not the
// tuples) instead of copying the batch like the async forms must.

Status SnsService::Warmup(std::string_view stream,
                          std::span<const Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [tuples](StreamEntry& e, uint64_t seq) {
               SNS_RETURN_IF_ERROR(AppendJournal(
                   e, seq, durability::JournalOpType::kWarmup, 0, tuples));
               return e.handle->Warmup(tuples);
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Initialize(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [](StreamEntry& e, uint64_t seq) {
               SNS_RETURN_IF_ERROR(AppendJournal(
                   e, seq, durability::JournalOpType::kInitialize, 0, {}));
               return e.handle->Initialize();
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Ingest(std::string_view stream,
                          std::span<const Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [tuples](StreamEntry& e, uint64_t seq) {
               SNS_RETURN_IF_ERROR(AppendJournal(
                   e, seq, durability::JournalOpType::kIngest, 0, tuples));
               return e.handle->Ingest(tuples);
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Ingest(std::string_view stream, const Tuple& tuple) {
  return Ingest(stream, std::span<const Tuple>(&tuple, 1));
}

Status SnsService::AdvanceTo(std::string_view stream, int64_t time) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [time](StreamEntry& e, uint64_t seq) {
               SNS_RETURN_IF_ERROR(AppendJournal(
                   e, seq, durability::JournalOpType::kAdvanceTo, time, {}));
               return e.handle->AdvanceTo(time);
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::AdvanceAllTo(int64_t time) {
  std::vector<StreamEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    entries.reserve(registry_->streams.size());
    for (const auto& [name, entry] : registry_->streams) {
      entries.push_back(entry.get());
    }
  }
  Status first_error;
  for (StreamEntry* entry : entries) {
    // Streams that never saw input are left untouched — advancing their
    // clock would forbid warming them up with earlier tuples later — and
    // streams ahead of the horizon are skipped. The decision happens in a
    // query hop BEFORE any ticket is issued: skipped streams must consume
    // no sequence token, or their journals would carry a record-less token
    // (an undetectable replay gap). Racing submissions are a caller error
    // (see the class comment), so the two hops observe a stable clock.
    const StreamStats stats = RunOnShard(
        *entry, [](StreamHandle& handle) { return handle.Stats(); });
    if (!stats.has_ingested || stats.last_time > time) continue;
    const Status status =
        SubmitOp(
            *entry,
            [time](StreamEntry& e, uint64_t seq) {
              SNS_RETURN_IF_ERROR(AppendJournal(
                  e, seq, durability::JournalOpType::kAdvanceTo, time, {}));
              return e.handle->AdvanceTo(time);
            },
            /*force_block=*/true)
            .Wait();
    // The horizon guard above rules out engine-side failures, but the
    // write-ahead journal append can still fail (disk full, poisoned
    // journal): surface the first such error after attempting every
    // stream. The typed shutdown refusal degrades to a no-op.
    if (!status.ok() &&
        status.code() != StatusCode::kFailedPrecondition &&
        first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

// --- Sequence-consistent queries ------------------------------------------

StatusOr<double> SnsService::Reconstruct(std::string_view stream,
                                         const ModeIndex& window_cell) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [&window_cell](StreamHandle& handle) {
    return handle.Reconstruct(window_cell);
  });
}

StatusOr<std::vector<TopEntry>> SnsService::TopK(std::string_view stream,
                                                 int mode, int k) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [mode, k](StreamHandle& handle) {
    return handle.TopK(mode, k);
  });
}

StatusOr<std::vector<double>> SnsService::ComponentActivity(
    std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [](StreamHandle& handle) {
    return handle.ComponentActivity();
  });
}

StatusOr<double> SnsService::RunningFitness(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [](StreamHandle& handle) {
    return handle.RunningFitness();
  });
}

StatusOr<StreamStats> SnsService::Stats(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry,
                    [](StreamHandle& handle) { return handle.Stats(); });
}

StatusOr<uint64_t> SnsService::AppliedSequence(
    std::string_view stream) const {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return entry->applied_seq.load(std::memory_order_acquire);
}

// --- Durability -----------------------------------------------------------

Status SnsService::Checkpoint(std::string_view stream,
                              serial::ByteSink& sink) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "service is shut down; checkpoint streams before Shutdown");
  }
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  StreamEntry* e = entry;
  // The hop rides the owning shard's FIFO mailbox, so by the time it runs,
  // exactly the mutations enqueued before this call have been applied —
  // applied_seq read on the shard IS the checkpoint's sequence point.
  return RunOnShard(*entry, [e, &sink](StreamHandle& handle) {
    return durability::WriteStreamCheckpoint(
        handle, e->applied_seq.load(std::memory_order_acquire), sink);
  });
}

StatusOr<StreamHandle*> SnsService::Restore(serial::ByteSource& source) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  auto restored = durability::ReadStreamCheckpoint(source);
  if (!restored.ok()) return restored.status();
  const uint64_t sequence = restored.value().sequence;
  std::string name = restored.value().handle.name();
  std::lock_guard<std::mutex> lock(registry_->mu);
  if (registry_->streams.find(name) != registry_->streams.end()) {
    return Status::FailedPrecondition("stream '" + name +
                                      "' already exists");
  }
  auto entry = std::make_unique<StreamEntry>();
  entry->handle = std::make_unique<StreamHandle>(
      std::move(restored).value().handle);
  if (executor_ != nullptr) entry->shard = executor_->AssignShard();
  entry->issued_seq = sequence;
  entry->applied_seq.store(sequence, std::memory_order_release);
  StreamHandle* raw = entry->handle.get();
  registry_->streams.emplace(std::move(name), std::move(entry));
  return raw;
}

Status SnsService::EnableJournal(std::string_view stream,
                                 const std::string& directory) {
  return EnableJournal(stream, directory, durability::JournalOptions());
}

Status SnsService::EnableJournal(std::string_view stream,
                                 const std::string& directory,
                                 const durability::JournalOptions& options) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  if (entry->journal != nullptr) {
    return Status::FailedPrecondition(
        "stream '" + std::string(stream) + "' already journals to '" +
        entry->journal->directory() + "'");
  }
  auto writer = durability::JournalWriter::Open(directory, options);
  if (!writer.ok()) return writer.status();
  // Quiesce the owning shard so the journal attaches at a sequence point:
  // every in-flight ticket lands un-journaled (covered by the caller's
  // checkpoint), every later one is journaled.
  if (executor_ != nullptr && entry->shard >= 0) {
    executor_->DrainShard(entry->shard);
  }
  entry->journal = std::move(writer).value();
  entry->journal_poisoned = false;
  return Status::OK();
}

// --- Runtime lifecycle ----------------------------------------------------

void SnsService::Drain() {
  if (executor_ != nullptr) executor_->Drain();
}

void SnsService::Shutdown() {
  registry_->shutdown.store(true, std::memory_order_release);
  if (executor_ != nullptr) executor_->Shutdown();
}

}  // namespace sns
