#include "api/sns_service.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <thread>

#include "common/failpoint.h"
#include "common/serial.h"
#include "durability/checkpoint.h"
#include "durability/journal.h"
#include "telemetry/json_exporter.h"

namespace sns {

/// Frozen at EnableAutoRecovery time so a recovery attempt needs no locks
/// and no live journal writer to know where its durable truth lives.
struct SnsService::AutoRecoveryConfig {
  std::string checkpoint_path;
  std::string journal_directory;
  durability::JournalOptions journal_options;
  RecoveryPolicy policy;
};

SnsService::StreamEntry::StreamEntry() = default;
SnsService::StreamEntry::~StreamEntry() = default;

/// State shared between the service and its periodic exporter thread. Heap-
/// allocated so the thread's captures (and the pointers it holds into the
/// registry / metrics / executor heap objects) survive service moves.
struct SnsService::PeriodicExporter {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;  // Guarded by mu.
  std::optional<telemetry::JsonLinesExporter> file;
};

// --- Health machine -------------------------------------------------------

Status SnsService::HealthGate(const StreamEntry& entry) {
  switch (entry.health.load(std::memory_order_acquire)) {
    case StreamHealth::kHealthy:
      return Status::OK();
    case StreamHealth::kQuarantined:
    case StreamHealth::kRecovering:
      return Status::Unavailable(
          "stream '" + entry.name +
          "' is quarantined pending recovery; retry after it heals");
    case StreamHealth::kFailed:
      return Status::DataLoss(
          "stream '" + entry.name +
          "' failed permanently after a journal append failure; rebuild it "
          "from a checkpoint");
  }
  return Status::Internal("stream health outside the StreamHealth enum");
}

void SnsService::SetHealth(StreamEntry& entry, StreamHealth to,
                           const Status& cause, int attempt) {
  const StreamHealth from = entry.health.load(std::memory_order_relaxed);
  if (!cause.ok()) {
    std::lock_guard<std::mutex> lock(entry.health_mu);
    entry.last_error = cause;
  }
  entry.health.store(to, std::memory_order_release);
  HealthTransition transition;
  transition.stream = entry.name;
  transition.from = from;
  transition.to = to;
  transition.attempt = attempt;
  transition.cause = cause;
  // Always called on the owning shard, so the handle (and its sink list)
  // is safe to touch even mid-recovery.
  entry.handle->NotifyHealthTransition(transition);
}

Status SnsService::AttemptRecovery(StreamEntry& entry) {
  const AutoRecoveryConfig& cfg = *entry.auto_recovery;
  // Release the wounded writer FIRST: its in-memory cursor no longer
  // matches the disk after a failed append, and replay's torn-tail repair
  // truncates the very segment it still holds open.
  entry.journal.reset();
  auto source = serial::FileSource::Open(cfg.checkpoint_path);
  if (!source.ok()) return source.status();
  auto recovered =
      durability::RecoverHandle(source.value(), cfg.journal_directory);
  if (!recovered.ok()) return recovered.status();
  durability::RecoveredHandle rebuilt = std::move(recovered).value();

  // Bitwise pin: the failed append left the live engine untouched, so the
  // durable state must reproduce it exactly — token for token, byte for
  // byte. A divergence means checkpoint + journal do not describe this
  // stream; adopting the rebuilt state would silently fork history.
  const uint64_t live_seq = entry.applied_seq.load(std::memory_order_acquire);
  if (rebuilt.report.last_sequence != live_seq) {
    return Status::Internal(
        "recovered state stops at token " +
        std::to_string(rebuilt.report.last_sequence) +
        " but the live stream applied token " + std::to_string(live_seq));
  }
  serial::StringSink live_bytes;
  {
    serial::Writer w(live_bytes);
    SNS_RETURN_IF_ERROR(entry.handle->SerializeState(w));
  }
  serial::StringSink rebuilt_bytes;
  {
    serial::Writer w(rebuilt_bytes);
    SNS_RETURN_IF_ERROR(rebuilt.handle.SerializeState(w));
  }
  if (live_bytes.data() != rebuilt_bytes.data()) {
    return Status::Internal(
        "recovered stream state diverges bitwise from the live state");
  }
  // Adopt the rebuilt stream (it IS the durable truth) and carry the live
  // subscriptions over — sinks are process wiring, not stream state. The
  // entry's handle allocation stays stable, so raw pointers survive.
  rebuilt.handle.MoveSinksFrom(*entry.handle);
  *entry.handle = std::move(rebuilt.handle);
  // Fresh writer LAST: replay repaired any torn tail, and a new writer
  // always opens a fresh segment after the highest on disk.
  auto writer = durability::JournalWriter::Open(cfg.journal_directory,
                                                cfg.journal_options);
  if (!writer.ok()) return writer.status();
  entry.journal = std::move(writer).value();
  return Status::OK();
}

Status SnsService::HandleAppendFailure(StreamEntry& entry, uint64_t sequence,
                                       durability::JournalOpType op,
                                       int64_t time,
                                       std::span<const Tuple> tuples,
                                       Status cause) {
  entry.quarantine_count.fetch_add(1, std::memory_order_relaxed);
  if (entry.stream_metrics != nullptr) {
    entry.stream_metrics->quarantines.Add(1);
  }
  SetHealth(entry, StreamHealth::kQuarantined, cause, 0);
  if (entry.auto_recovery == nullptr) {
    // No recovery configured: the quarantine is terminal. The writer's
    // on-disk state is unknown (a partial record may sit at its tail), so
    // no further append may ever touch this journal.
    SetHealth(entry, StreamHealth::kFailed, cause, 0);
    return cause;
  }
  const RecoveryPolicy& policy = entry.auto_recovery->policy;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    entry.recovery_attempts.fetch_add(1, std::memory_order_relaxed);
    SetHealth(entry, StreamHealth::kRecovering, cause, attempt);
    const int64_t backoff_ms = policy.BackoffMs(attempt);
    if (policy.sleep_fn) {
      policy.sleep_fn(backoff_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    Status attempt_status = AttemptRecovery(entry);
    if (attempt_status.ok()) {
      // The stream is rebuilt and the journal reopened; retry this op's
      // write-ahead append. Success heals the stream and the failure stays
      // invisible to the caller — the op applies normally.
      attempt_status = AppendJournal(entry, sequence, op, time, tuples);
      if (attempt_status.ok()) {
        entry.recoveries_completed.fetch_add(1, std::memory_order_relaxed);
        if (entry.stream_metrics != nullptr) {
          entry.stream_metrics->recoveries.Add(1);
        }
        SetHealth(entry, StreamHealth::kHealthy, Status::OK(), attempt);
        return Status::OK();
      }
    }
    cause = std::move(attempt_status);
    SetHealth(entry, StreamHealth::kQuarantined, cause, attempt);
  }
  SetHealth(entry, StreamHealth::kFailed, cause, policy.max_attempts);
  return cause;
}

Status SnsService::ExecuteMutation(StreamEntry& entry, uint64_t sequence,
                                   durability::JournalOpType op, int64_t time,
                                   std::span<const Tuple> tuples) {
  // Ops queued behind an exhausted recovery still hold tokens; refusing
  // them here — journaling nothing, applying nothing — simply ends the
  // journal at the last healthy token, gap-free.
  if (entry.health.load(std::memory_order_acquire) == StreamHealth::kFailed) {
    return HealthGate(entry);
  }
  telemetry::StreamMetrics* metrics = entry.stream_metrics;
  Status append;
  if (metrics != nullptr && entry.journal != nullptr) {
    // Byte/rotation deltas bracket only this direct append — a recovery in
    // HandleAppendFailure swaps in a fresh writer whose cursors restart.
    const int64_t bytes_before = entry.journal->bytes_appended();
    const int64_t segments_before = entry.journal->segments_opened();
    const int64_t start_ns = telemetry::MonotonicNanos();
    append = AppendJournal(entry, sequence, op, time, tuples);
    metrics->journal_append_ns.Record(telemetry::MonotonicNanos() - start_ns);
    if (append.ok()) {
      metrics->journal_appends.Add(1);
      metrics->journal_bytes.Add(static_cast<uint64_t>(
          entry.journal->bytes_appended() - bytes_before));
      metrics->journal_rotations.Add(static_cast<uint64_t>(
          entry.journal->segments_opened() - segments_before));
    }
  } else {
    append = AppendJournal(entry, sequence, op, time, tuples);
  }
  if (!append.ok()) {
    append = HandleAppendFailure(entry, sequence, op, time, tuples,
                                 std::move(append));
  }
  if (!append.ok()) return append;
  // Streams on a generalized loss or robust mode get their apply cost and
  // outlier traffic attributed per stream: the outlier counters are diffed
  // around the apply (the handle's tallies are monotone), and the wall time
  // lands in loss_update_ns next to the shard-wide apply_ns.
  const bool track_loss =
      metrics != nullptr && entry.handle->UsesExtendedState();
  const uint64_t captures_before =
      track_loss ? entry.handle->OutlierCaptures() : 0;
  const uint64_t evictions_before =
      track_loss ? entry.handle->OutlierEvictions() : 0;
  const int64_t loss_start_ns = track_loss ? telemetry::MonotonicNanos() : 0;
  Status applied;
  switch (op) {
    case durability::JournalOpType::kWarmup:
      applied = entry.handle->Warmup(tuples);
      break;
    case durability::JournalOpType::kInitialize:
      applied = entry.handle->Initialize();
      break;
    case durability::JournalOpType::kIngest:
      applied = entry.handle->Ingest(tuples);
      break;
    case durability::JournalOpType::kAdvanceTo:
      applied = entry.handle->AdvanceTo(time);
      break;
    default:
      return Status::Internal("journal op outside the JournalOpType enum");
  }
  if (track_loss) {
    metrics->loss_update_ns.Record(telemetry::MonotonicNanos() -
                                   loss_start_ns);
    metrics->outlier_captures.Add(entry.handle->OutlierCaptures() -
                                  captures_before);
    metrics->outlier_evictions.Add(entry.handle->OutlierEvictions() -
                                   evictions_before);
  }
  if (metrics != nullptr && applied.ok()) {
    metrics->batches_applied.Add(1);
    if (!tuples.empty()) metrics->tuples_ingested.Add(tuples.size());
  }
  return applied;
}

Status SnsService::AppendJournal(StreamEntry& entry, uint64_t sequence,
                                 durability::JournalOpType op, int64_t time,
                                 std::span<const Tuple> tuples) {
  if (entry.journal == nullptr) return Status::OK();
  return entry.journal->Append(sequence, op, time, tuples);
}

Status SnsService::ValidateAdmission(const StreamEntry& entry,
                                     std::span<const Tuple> tuples) {
  // Validated against the entry's immutable schema copy — never the handle,
  // which the owning shard may be rebuilding — so admission is safe from
  // any producer thread. Whole-batch: a refused batch changes nothing.
  const size_t arity = entry.mode_dims.size();
  for (size_t n = 0; n < tuples.size(); ++n) {
    const Tuple& tuple = tuples[n];
    if (static_cast<size_t>(tuple.index.size()) != arity) {
      return Status::InvalidArgument(
          "tuple " + std::to_string(n) + " has " +
          std::to_string(tuple.index.size()) + " mode indices; stream '" +
          entry.name + "' has " + std::to_string(arity) + " non-time modes");
    }
    for (size_t m = 0; m < arity; ++m) {
      if (tuple.index[m] < 0 || tuple.index[m] >= entry.mode_dims[m]) {
        return Status::InvalidArgument(
            "tuple " + std::to_string(n) + " index " +
            std::to_string(tuple.index[m]) + " is outside mode " +
            std::to_string(m) + " of size " +
            std::to_string(entry.mode_dims[m]));
      }
    }
    if (!std::isfinite(tuple.value)) {
      return Status::InvalidArgument(
          "tuple " + std::to_string(n) +
          " carries a non-finite value; stream values must be finite");
    }
  }
  return Status::OK();
}

// --- Construction / moves -------------------------------------------------

SnsService::SnsService() : registry_(std::make_unique<Registry>()) {}

SnsService::SnsService(const ServiceOptions& options)
    : options_(options), registry_(std::make_unique<Registry>()) {
  const Status valid = options_.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "SnsService: %s\n", valid.ToString().c_str());
    SNS_CHECK(valid.ok());
  }
  if (options_.metrics.enabled) {
    // One shard domain per worker shard; the inline service records into a
    // single domain 0. Allocated before the executor so shard threads can
    // record from their first task.
    metrics_ = std::make_unique<telemetry::MetricsRegistry>(
        std::max(1, options_.shards));
  }
  if (options_.shards > 0) {
    executor_ = std::make_unique<ShardedExecutor>(
        options_.shards, options_.max_queue_depth, metrics_.get());
  }
  StartExporter();
}

StatusOr<SnsService> SnsService::Create(const ServiceOptions& options) {
  SNS_RETURN_IF_ERROR(options.Validate());
  return SnsService(options);
}

SnsService::SnsService(SnsService&& other)
    : options_(other.options_),
      registry_(std::move(other.registry_)),
      metrics_(std::move(other.metrics_)),
      executor_(std::move(other.executor_)),
      exporter_(std::move(other.exporter_)) {
  // The exporter thread and all instrumentation sites hold raw pointers
  // into the registry / metrics / executor heap objects, which the
  // unique_ptrs above transfer without relocating — so the thread keeps
  // running across the move untouched.
  // Leave `other` a valid empty inline service, not a null-registry husk.
  other.options_ = ServiceOptions();
  other.registry_ = std::make_unique<Registry>();
}

SnsService& SnsService::operator=(SnsService&& other) {
  if (this != &other) {
    // Stop our own exporter before the executor it submits to, then
    // quiesce and join our own runtime before the registry its tasks point
    // into is replaced.
    StopExporter();
    if (executor_ != nullptr) executor_->Shutdown();
    exporter_ = std::move(other.exporter_);
    executor_ = std::move(other.executor_);
    metrics_ = std::move(other.metrics_);
    registry_ = std::move(other.registry_);
    options_ = other.options_;
    other.options_ = ServiceOptions();
    other.registry_ = std::make_unique<Registry>();
  }
  return *this;
}

SnsService::~SnsService() {
  // Exporter first (it submits to the executor), then flush and join the
  // shard threads while every stream handle is still alive; only then may
  // the registry (and the handles in it) die.
  StopExporter();
  if (executor_ != nullptr) executor_->Shutdown();
}

// --- Pool management ------------------------------------------------------

StatusOr<StreamHandle*> SnsService::CreateStream(
    std::string name, std::vector<int64_t> mode_dims,
    const ContinuousCpdOptions& options) {
  {
    // Cheap duplicate check before the (expensive) engine build; the
    // post-build re-check below closes the unlock window.
    std::lock_guard<std::mutex> lock(registry_->mu);
    if (registry_->streams.find(name) != registry_->streams.end()) {
      return Status::FailedPrecondition("stream '" + name +
                                        "' already exists");
    }
  }
  auto handle = StreamHandle::Create(name, std::move(mode_dims), options);
  if (!handle.ok()) return handle.status();
  std::lock_guard<std::mutex> lock(registry_->mu);
  if (registry_->streams.find(name) != registry_->streams.end()) {
    return Status::FailedPrecondition("stream '" + name +
                                      "' already exists");
  }
  auto entry = std::make_unique<StreamEntry>();
  entry->handle = std::make_unique<StreamHandle>(std::move(handle).value());
  entry->name = entry->handle->name();
  entry->mode_dims = entry->handle->mode_dims();
  if (executor_ != nullptr) entry->shard = executor_->AssignShard();
  AttachMetrics(*entry);
  StreamHandle* raw = entry->handle.get();
  registry_->streams.emplace(std::move(name), std::move(entry));
  return raw;
}

void SnsService::AttachMetrics(StreamEntry& entry) {
  if (metrics_ == nullptr) return;
  const int domain = entry.shard < 0 ? 0 : entry.shard;
  entry.shard_metrics = &metrics_->shard(domain);
  entry.stream_metrics = metrics_->RegisterStream(entry.name, domain);
}

SnsService::StreamEntry* SnsService::ResolveEntry(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  auto it = registry_->streams.find(name);
  return it == registry_->streams.end() ? nullptr : it->second.get();
}

StreamHandle* SnsService::Find(std::string_view name) {
  StreamEntry* entry = ResolveEntry(name);
  return entry == nullptr ? nullptr : entry->handle.get();
}

const StreamHandle* SnsService::Find(std::string_view name) const {
  StreamEntry* entry = ResolveEntry(name);
  return entry == nullptr ? nullptr : entry->handle.get();
}

Status SnsService::Remove(std::string_view name) {
  // Two-phase: read the pinned shard under the lock, drain unlocked, then
  // re-resolve before erasing — never touching the entry outside the lock,
  // so a concurrent Remove of the same name safely loses with NotFound.
  int shard = -1;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto it = registry_->streams.find(name);
    if (it == registry_->streams.end()) return NoSuchStream(name);
    shard = it->second->shard;
  }
  // Flush the owning shard so no in-flight task still references the
  // handle we are about to destroy. (Submissions racing with Remove are a
  // caller error — see the class comment.)
  if (executor_ != nullptr && shard >= 0) executor_->DrainShard(shard);
  std::lock_guard<std::mutex> lock(registry_->mu);
  auto it = registry_->streams.find(name);
  if (it == registry_->streams.end()) return NoSuchStream(name);
  registry_->streams.erase(it);
  return Status::OK();
}

std::vector<std::string> SnsService::StreamNames() const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  std::vector<std::string> names;
  names.reserve(registry_->streams.size());
  for (const auto& [name, entry] : registry_->streams) {
    names.push_back(name);
  }
  return names;
}

int64_t SnsService::stream_count() const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  return static_cast<int64_t>(registry_->streams.size());
}

// --- Asynchronous ingestion -----------------------------------------------

Ticket SnsService::IngestAsync(std::string_view stream,
                               std::span<const Tuple> tuples,
                               std::optional<std::chrono::milliseconds> deadline) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  Status admit = ValidateAdmission(*entry, tuples);
  if (!admit.ok()) {
    if (entry->stream_metrics != nullptr) {
      entry->stream_metrics->admission_rejects.Add(1);
    }
    return Ticket::Completed(std::move(admit));
  }
  if (executor_ == nullptr) {
    // Inline: applied synchronously before returning, so the span needs no
    // owning copy.
    return SubmitOp(*entry, [tuples](StreamEntry& e, uint64_t seq) {
      return ExecuteMutation(e, seq, durability::JournalOpType::kIngest, 0,
                             tuples);
    });
  }
  return SubmitOp(
      *entry,
      [batch = std::vector<Tuple>(tuples.begin(), tuples.end())](
          StreamEntry& e, uint64_t seq) {
        return ExecuteMutation(e, seq, durability::JournalOpType::kIngest, 0,
                               batch);
      },
      /*force_block=*/false, deadline);
}

Ticket SnsService::IngestAsync(std::string_view stream,
                               std::vector<Tuple> tuples,
                               std::optional<std::chrono::milliseconds> deadline) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  Status admit = ValidateAdmission(*entry, tuples);
  if (!admit.ok()) {
    if (entry->stream_metrics != nullptr) {
      entry->stream_metrics->admission_rejects.Add(1);
    }
    return Ticket::Completed(std::move(admit));
  }
  return SubmitOp(
      *entry,
      [batch = std::move(tuples)](StreamEntry& e, uint64_t seq) {
        return ExecuteMutation(e, seq, durability::JournalOpType::kIngest, 0,
                               batch);
      },
      /*force_block=*/false, deadline);
}

Ticket SnsService::AdvanceToAsync(std::string_view stream, int64_t time,
                                  std::optional<std::chrono::milliseconds> deadline) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return Ticket::Completed(NoSuchStream(stream));
  return SubmitOp(
      *entry,
      [time](StreamEntry& e, uint64_t seq) {
        return ExecuteMutation(e, seq, durability::JournalOpType::kAdvanceTo,
                               time, {});
      },
      /*force_block=*/false, deadline);
}

// --- Synchronous routed ingestion -----------------------------------------
// Ticketed ops the caller immediately waits on: the span stays alive for
// the whole call, so closures capture it by value (a span copy, not the
// tuples) instead of copying the batch like the async forms must.

Status SnsService::Warmup(std::string_view stream,
                          std::span<const Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  Status admit = ValidateAdmission(*entry, tuples);
  if (!admit.ok()) {
    if (entry->stream_metrics != nullptr) {
      entry->stream_metrics->admission_rejects.Add(1);
    }
    return admit;
  }
  return SubmitOp(
             *entry,
             [tuples](StreamEntry& e, uint64_t seq) {
               return ExecuteMutation(
                   e, seq, durability::JournalOpType::kWarmup, 0, tuples);
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Initialize(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [](StreamEntry& e, uint64_t seq) {
               return ExecuteMutation(
                   e, seq, durability::JournalOpType::kInitialize, 0, {});
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Ingest(std::string_view stream,
                          std::span<const Tuple> tuples) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  Status admit = ValidateAdmission(*entry, tuples);
  if (!admit.ok()) {
    if (entry->stream_metrics != nullptr) {
      entry->stream_metrics->admission_rejects.Add(1);
    }
    return admit;
  }
  return SubmitOp(
             *entry,
             [tuples](StreamEntry& e, uint64_t seq) {
               return ExecuteMutation(
                   e, seq, durability::JournalOpType::kIngest, 0, tuples);
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::Ingest(std::string_view stream, const Tuple& tuple) {
  return Ingest(stream, std::span<const Tuple>(&tuple, 1));
}

Status SnsService::AdvanceTo(std::string_view stream, int64_t time) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return SubmitOp(
             *entry,
             [time](StreamEntry& e, uint64_t seq) {
               return ExecuteMutation(
                   e, seq, durability::JournalOpType::kAdvanceTo, time, {});
             },
             /*force_block=*/true)
      .Wait();
}

Status SnsService::AdvanceAllTo(int64_t time) {
  std::vector<StreamEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    entries.reserve(registry_->streams.size());
    for (const auto& [name, entry] : registry_->streams) {
      entries.push_back(entry.get());
    }
  }
  Status first_error;
  for (StreamEntry* entry : entries) {
    // Streams that never saw input are left untouched — advancing their
    // clock would forbid warming them up with earlier tuples later — and
    // streams ahead of the horizon are skipped. The decision happens in a
    // query hop BEFORE any ticket is issued: skipped streams must consume
    // no sequence token, or their journals would carry a record-less token
    // (an undetectable replay gap). Racing submissions are a caller error
    // (see the class comment), so the two hops observe a stable clock.
    const StreamStats stats = RunOnShard(
        *entry, [](StreamHandle& handle) { return handle.Stats(); });
    if (!stats.has_ingested || stats.last_time > time) continue;
    const Status status =
        SubmitOp(
            *entry,
            [time](StreamEntry& e, uint64_t seq) {
              return ExecuteMutation(
                  e, seq, durability::JournalOpType::kAdvanceTo, time, {});
            },
            /*force_block=*/true)
            .Wait();
    // The horizon guard above rules out engine-side failures, but the
    // write-ahead journal append can still fail (disk full, quarantined or
    // failed stream): surface the first such error after attempting every
    // stream. The typed shutdown refusal degrades to a no-op.
    if (!status.ok() &&
        status.code() != StatusCode::kFailedPrecondition &&
        first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

// --- Sequence-consistent queries ------------------------------------------

StatusOr<double> SnsService::Reconstruct(std::string_view stream,
                                         const ModeIndex& window_cell) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [&window_cell](StreamHandle& handle) {
    return handle.Reconstruct(window_cell);
  });
}

StatusOr<std::vector<TopEntry>> SnsService::TopK(std::string_view stream,
                                                 int mode, int k) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [mode, k](StreamHandle& handle) {
    return handle.TopK(mode, k);
  });
}

StatusOr<std::vector<double>> SnsService::ComponentActivity(
    std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [](StreamHandle& handle) {
    return handle.ComponentActivity();
  });
}

StatusOr<std::vector<TopEntry>> SnsService::OutlierActivity(
    std::string_view stream, int mode, int k) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [mode, k](StreamHandle& handle) {
    return handle.OutlierActivity(mode, k);
  });
}

StatusOr<double> SnsService::RunningFitness(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry, [](StreamHandle& handle) {
    return handle.RunningFitness();
  });
}

StatusOr<StreamStats> SnsService::Stats(std::string_view stream) {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return RunOnShard(*entry,
                    [](StreamHandle& handle) { return handle.Stats(); });
}

StatusOr<uint64_t> SnsService::AppliedSequence(
    std::string_view stream) const {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  return entry->applied_seq.load(std::memory_order_acquire);
}

// --- Telemetry ------------------------------------------------------------

StatusOr<telemetry::ServiceMetricsSnapshot> SnsService::Metrics() {
  if (metrics_ == nullptr) {
    return Status::FailedPrecondition(
        "metrics are disabled; create the service with "
        "ServiceOptions::metrics.enabled");
  }
  if (executor_ != nullptr &&
      !registry_->shutdown.load(std::memory_order_acquire)) {
    // Sequence barrier: one blocking no-op task per shard. Each shard's
    // mailbox is FIFO, so once the barrier runs, every operation issued to
    // that shard before this call has been applied — the same consistency
    // the typed queries give, without stalling the other shards behind a
    // full Drain. A kClosed push (shutdown racing in) degrades gracefully:
    // the shard is quiescing anyway.
    std::vector<std::shared_ptr<internal::TicketRecord>> barriers;
    barriers.reserve(static_cast<size_t>(executor_->num_shards()));
    for (int shard = 0; shard < executor_->num_shards(); ++shard) {
      auto done = std::make_shared<internal::TicketRecord>();
      const Mailbox::PushResult result = executor_->Submit(
          shard, Task([done] { done->Complete(Status::OK()); }),
          /*block=*/true);
      if (result == Mailbox::PushResult::kOk) {
        barriers.push_back(std::move(done));
      }
    }
    for (const auto& barrier : barriers) barrier->Wait();
  }
  return metrics_->Snapshot();
}

void SnsService::StartExporter() {
  if (options_.metrics.export_interval_ms <= 0) return;
  exporter_ = std::make_unique<PeriodicExporter>();
  PeriodicExporter* state = exporter_.get();
  if (!options_.metrics.json_path.empty()) {
    auto file = telemetry::JsonLinesExporter::Open(options_.metrics.json_path);
    if (file.ok()) {
      state->file.emplace(std::move(file).value());
    } else {
      // A capture file that cannot open degrades to event-only export; the
      // service itself stays healthy.
      std::fprintf(stderr, "SnsService: metrics capture disabled: %s\n",
                   file.status().ToString().c_str());
    }
  }
  // Raw pointers into heap objects the service's unique_ptrs own: stable
  // across service moves; StopExporter joins this thread before any of the
  // pointees can die.
  Registry* registry = registry_.get();
  telemetry::MetricsRegistry* metrics = metrics_.get();
  ShardedExecutor* executor = executor_.get();
  const auto interval =
      std::chrono::milliseconds(options_.metrics.export_interval_ms);
  state->thread = std::thread([state, registry, metrics, executor, interval] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait_for(lock, interval, [state] { return state->stop; });
        if (state->stop) break;
      }
      telemetry::ServiceMetricsSnapshot snapshot = metrics->Snapshot();
      if (state->file.has_value()) {
        const Status io = state->file->Append(snapshot);
        if (!io.ok()) {
          std::fprintf(stderr, "SnsService: metrics capture stopped: %s\n",
                       io.ToString().c_str());
          state->file.reset();
        }
      }
      // Per-stream OnMetrics delivery on the owning shard. Non-blocking
      // push: a shard under backpressure simply skips this tick rather
      // than wedging the exporter (the next interval retries). kClosed
      // means shutdown is racing in — drop likewise. Inline services have
      // no shard thread, so delivery happens right here on the exporter
      // thread (documented in EventSink::OnMetrics).
      struct Delivery {
        StreamHandle* handle;
        int shard;
        const telemetry::StreamMetricsSnapshot* sample;
      };
      std::vector<Delivery> deliveries;
      {
        std::lock_guard<std::mutex> lock(registry->mu);
        for (const telemetry::StreamMetricsSnapshot& sample :
             snapshot.streams) {
          auto it = registry->streams.find(sample.name);
          if (it == registry->streams.end()) continue;  // Removed stream.
          deliveries.push_back(
              {it->second->handle.get(), it->second->shard, &sample});
        }
      }
      for (const Delivery& delivery : deliveries) {
        if (executor != nullptr && delivery.shard >= 0) {
          StreamHandle* handle = delivery.handle;
          (void)executor->Submit(
              delivery.shard,
              Task([handle, sample = *delivery.sample] {
                handle->NotifyMetrics(sample);
              }),
              /*block=*/false);
        } else {
          delivery.handle->NotifyMetrics(*delivery.sample);
        }
      }
    }
  });
}

void SnsService::StopExporter() {
  if (exporter_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(exporter_->mu);
    exporter_->stop = true;
  }
  exporter_->cv.notify_all();
  if (exporter_->thread.joinable()) exporter_->thread.join();
  if (exporter_->file.has_value()) {
    const Status io = exporter_->file->Close();
    if (!io.ok()) {
      std::fprintf(stderr, "SnsService: metrics capture close: %s\n",
                   io.ToString().c_str());
    }
  }
  exporter_.reset();
}

// --- Supervision ----------------------------------------------------------

StatusOr<StreamHealthInfo> SnsService::Health(std::string_view stream) const {
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  StreamHealthInfo info;
  info.health = entry->health.load(std::memory_order_acquire);
  info.quarantine_count =
      entry->quarantine_count.load(std::memory_order_relaxed);
  info.recovery_attempts =
      entry->recovery_attempts.load(std::memory_order_relaxed);
  info.recoveries_completed =
      entry->recoveries_completed.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(entry->health_mu);
    info.last_error = entry->last_error;
  }
  return info;
}

Status SnsService::EnableAutoRecovery(std::string_view stream,
                                      const std::string& checkpoint_path,
                                      const RecoveryPolicy& policy) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument(
        "RecoveryPolicy::max_attempts must be >= 1, got " +
        std::to_string(policy.max_attempts));
  }
  if (entry->journal == nullptr) {
    return Status::FailedPrecondition(
        "stream '" + std::string(stream) +
        "' has no journal; auto-recovery replays checkpoint + journal "
        "(EnableJournal first)");
  }
  {
    // Fail fast on a misconfigured path — a recovery that cannot even open
    // its checkpoint should be caught here, not mid-incident.
    auto probe = serial::FileSource::Open(checkpoint_path);
    if (!probe.ok()) return probe.status();
  }
  // Quiesce the owning shard so the config attaches at a sequence point.
  if (executor_ != nullptr && entry->shard >= 0) {
    executor_->DrainShard(entry->shard);
  }
  auto cfg = std::make_unique<AutoRecoveryConfig>();
  cfg->checkpoint_path = checkpoint_path;
  cfg->journal_directory = entry->journal->directory();
  cfg->journal_options = entry->journal->options();
  cfg->policy = policy;
  entry->auto_recovery = std::move(cfg);
  return Status::OK();
}

// --- Durability -----------------------------------------------------------

Status SnsService::Checkpoint(std::string_view stream,
                              serial::ByteSink& sink) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "service is shut down; checkpoint streams before Shutdown");
  }
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  StreamEntry* e = entry;
  // The hop rides the owning shard's FIFO mailbox, so by the time it runs,
  // exactly the mutations enqueued before this call have been applied —
  // applied_seq read on the shard IS the checkpoint's sequence point.
  return RunOnShard(*entry, [e, &sink](StreamHandle& handle) {
    return durability::WriteStreamCheckpoint(
        handle, e->applied_seq.load(std::memory_order_acquire), sink);
  });
}

Status SnsService::CheckpointToFile(std::string_view stream,
                                    const std::string& path) {
  StreamEntry* entry = ResolveEntry(stream);
  telemetry::StreamMetrics* metrics =
      entry != nullptr ? entry->stream_metrics : nullptr;
  const int64_t start_ns =
      metrics != nullptr ? telemetry::MonotonicNanos() : 0;
  serial::StringSink envelope;
  SNS_RETURN_IF_ERROR(Checkpoint(stream, envelope));
  // Write-to-temporary + rename: a failure anywhere before the rename
  // leaves the previous checkpoint at `path` untouched — the invariant
  // auto-recovery depends on.
  const std::string tmp = path + ".tmp";
  auto sink = serial::FileSink::Open(tmp);
  if (!sink.ok()) return sink.status();
  Status io = sink.value().Write(envelope.data().data(),
                                 envelope.data().size());
  if (io.ok()) io = sink.value().Flush(/*sync_to_disk=*/true);
  if (io.ok()) io = sink.value().Close();
  if (io.ok() && SNS_FAILPOINT("checkpoint.rename")) {
    io = failpoint::InjectedFailure("checkpoint.rename");
  }
  if (io.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    io = Status::IOError("failed to rename checkpoint '" + tmp +
                         "' over '" + path + "'");
  }
  if (!io.ok()) {
    std::remove(tmp.c_str());
    return io;
  }
  if (metrics != nullptr) {
    // The recorded span covers the whole durable write: serialize (shard
    // hop included), temp-file write, fsync, rename.
    metrics->checkpoint_writes.Add(1);
    metrics->checkpoint_bytes.Add(envelope.data().size());
    metrics->checkpoint_write_ns.Record(telemetry::MonotonicNanos() -
                                        start_ns);
  }
  return Status::OK();
}

StatusOr<StreamHandle*> SnsService::Restore(serial::ByteSource& source) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  auto restored = durability::ReadStreamCheckpoint(source);
  if (!restored.ok()) return restored.status();
  const uint64_t sequence = restored.value().sequence;
  std::string name = restored.value().handle.name();
  std::lock_guard<std::mutex> lock(registry_->mu);
  if (registry_->streams.find(name) != registry_->streams.end()) {
    return Status::FailedPrecondition("stream '" + name +
                                      "' already exists");
  }
  auto entry = std::make_unique<StreamEntry>();
  entry->handle = std::make_unique<StreamHandle>(
      std::move(restored).value().handle);
  entry->name = entry->handle->name();
  entry->mode_dims = entry->handle->mode_dims();
  if (executor_ != nullptr) entry->shard = executor_->AssignShard();
  AttachMetrics(*entry);
  entry->issued_seq = sequence;
  entry->applied_seq.store(sequence, std::memory_order_release);
  StreamHandle* raw = entry->handle.get();
  registry_->streams.emplace(std::move(name), std::move(entry));
  return raw;
}

Status SnsService::EnableJournal(std::string_view stream,
                                 const std::string& directory) {
  return EnableJournal(stream, directory, durability::JournalOptions());
}

Status SnsService::EnableJournal(std::string_view stream,
                                 const std::string& directory,
                                 const durability::JournalOptions& options) {
  if (registry_->shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  StreamEntry* entry = ResolveEntry(stream);
  if (entry == nullptr) return NoSuchStream(stream);
  if (entry->journal != nullptr) {
    return Status::FailedPrecondition(
        "stream '" + std::string(stream) + "' already journals to '" +
        entry->journal->directory() + "'");
  }
  if (entry->health.load(std::memory_order_acquire) !=
      StreamHealth::kHealthy) {
    return Status::FailedPrecondition(
        "stream '" + std::string(stream) +
        "' is not healthy; rebuild it from a checkpoint before attaching a "
        "journal");
  }
  auto writer = durability::JournalWriter::Open(directory, options);
  if (!writer.ok()) return writer.status();
  // Quiesce the owning shard so the journal attaches at a sequence point:
  // every in-flight ticket lands un-journaled (covered by the caller's
  // checkpoint), every later one is journaled.
  if (executor_ != nullptr && entry->shard >= 0) {
    executor_->DrainShard(entry->shard);
  }
  entry->journal = std::move(writer).value();
  return Status::OK();
}

// --- Runtime lifecycle ----------------------------------------------------

void SnsService::Drain() {
  if (executor_ != nullptr) executor_->Drain();
}

void SnsService::Shutdown() {
  // The exporter submits OnMetrics tasks; stop it before the executor it
  // submits to goes away.
  StopExporter();
  registry_->shutdown.store(true, std::memory_order_release);
  if (executor_ != nullptr) executor_->Shutdown();
}

}  // namespace sns
