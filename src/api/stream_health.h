// Per-stream health: the state machine behind the service's self-healing.
//
// Every stream carries a health state the supervisor (SnsService) drives:
//
//     kHealthy ──append fails──▶ kQuarantined ──attempt──▶ kRecovering
//        ▲                           ▲                          │
//        │ recovery + retried        │ attempt failed           │
//        │ append succeed            └──────────────────────────┤
//        │                                                      │
//        └──────────────────────────────────────────────────────┤
//                                                               ▼
//                          attempts exhausted / no recovery ▶ kFailed
//
// While quarantined / recovering, mutations are refused with kUnavailable
// (retryable — the stream may heal) and nothing is journaled, so the
// token/journal 1:1 invariant holds; queries keep serving from last-good
// state. kFailed is terminal: mutations fail kDataLoss, queries still work.
// Transitions are reported to the stream's EventSinks via
// EventSink::OnHealthTransition and aggregated in StreamHealthInfo
// (SnsService::Health).

#ifndef SLICENSTITCH_API_STREAM_HEALTH_H_
#define SLICENSTITCH_API_STREAM_HEALTH_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace sns {

/// Health of one stream; drives what its mutation entry points do.
enum class StreamHealth : uint8_t {
  kHealthy = 0,      // Mutations and queries flow normally.
  kQuarantined = 1,  // Mutations refused (kUnavailable); recovery pending.
  kRecovering = 2,   // A recovery attempt is executing on the owning shard.
  kFailed = 3,       // Terminal: recovery exhausted; mutations fail kDataLoss.
};

/// Short display name, e.g. "healthy". SNS_CHECK-fails outside the enum.
const char* StreamHealthName(StreamHealth health);

/// One edge of the health state machine, delivered to EventSinks as it
/// happens (on the stream's owning shard). Views are valid only for the
/// duration of the callback.
struct HealthTransition {
  std::string_view stream;  // Stream name.
  StreamHealth from = StreamHealth::kHealthy;
  StreamHealth to = StreamHealth::kHealthy;
  /// Recovery attempt number (1-based) for kRecovering/kQuarantined edges
  /// of the retry loop; 0 for the initial quarantine.
  int attempt = 0;
  /// The error that caused this edge (OK for a completed recovery).
  Status cause;
};

/// Bounded-retry policy of stream auto-recovery. The backoff before
/// attempt k (1-based) is
///
///   min(max_backoff_ms, initial_backoff_ms * multiplier^(k-1)) * jitter
///
/// with jitter a deterministic factor in [0.5, 1.0) derived from
/// jitter_seed and k — deterministic so recovery timing is reproducible in
/// tests, jittered so fleets of streams do not retry in lockstep.
struct RecoveryPolicy {
  int max_attempts = 3;
  int64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 1000;
  uint64_t jitter_seed = 0;
  /// Injectable clock: recovery sleeps by calling this with the jittered
  /// backoff in milliseconds. Null = std::this_thread::sleep_for. Tests
  /// substitute a recording no-op to run instantly and observe the
  /// schedule.
  std::function<void(int64_t backoff_ms)> sleep_fn;

  /// The jittered backoff before attempt k (1-based), in milliseconds.
  int64_t BackoffMs(int attempt) const;
};

/// Supervisor snapshot of one stream's health (SnsService::Health). Read
/// lock-free from counters the owning shard maintains — works even while
/// the shard is wedged mid-recovery.
struct StreamHealthInfo {
  StreamHealth health = StreamHealth::kHealthy;
  uint64_t quarantine_count = 0;      // Times the stream left kHealthy.
  uint64_t recovery_attempts = 0;     // Recovery attempts ever started.
  uint64_t recoveries_completed = 0;  // Attempts that restored kHealthy.
  Status last_error;                  // Most recent failure cause (or OK).
};

}  // namespace sns

#endif  // SLICENSTITCH_API_STREAM_HEALTH_H_
