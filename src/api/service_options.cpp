#include "api/service_options.h"

#include "common/check.h"

namespace sns {

Status ServiceOptions::Validate() const {
  if (shards < 0) {
    return Status::InvalidArgument("shards must be >= 0 (0 = inline)");
  }
  if (max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (backpressure != BackpressurePolicy::kBlock &&
      backpressure != BackpressurePolicy::kReject) {
    return Status::InvalidArgument("unknown backpressure policy");
  }
  if (metrics.export_interval_ms < 0) {
    return Status::InvalidArgument("metrics.export_interval_ms must be >= 0");
  }
  if (metrics.export_interval_ms > 0 && !metrics.enabled) {
    return Status::InvalidArgument(
        "metrics.export_interval_ms requires metrics.enabled");
  }
  if (!metrics.json_path.empty() && metrics.export_interval_ms == 0) {
    return Status::InvalidArgument(
        "metrics.json_path requires metrics.export_interval_ms > 0");
  }
  return Status::OK();
}

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  SNS_CHECK(false &&
            "BackpressurePolicyName: value outside the BackpressurePolicy enum");
}

}  // namespace sns
