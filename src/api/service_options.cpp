#include "api/service_options.h"

#include "common/check.h"

namespace sns {

Status ServiceOptions::Validate() const {
  if (shards < 0) {
    return Status::InvalidArgument("shards must be >= 0 (0 = inline)");
  }
  if (max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (backpressure != BackpressurePolicy::kBlock &&
      backpressure != BackpressurePolicy::kReject) {
    return Status::InvalidArgument("unknown backpressure policy");
  }
  return Status::OK();
}

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  SNS_CHECK(false &&
            "BackpressurePolicyName: value outside the BackpressurePolicy enum");
}

}  // namespace sns
