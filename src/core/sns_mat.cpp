#include "core/sns_mat.h"

namespace sns {

void SnsMatUpdater::OnEvent(const SparseTensor& window,
                            const WindowDelta& delta, CpdState& state) {
  if (delta.cells.empty()) return;  // Zero-valued tuple: window unchanged.
  if (loss_ != nullptr && loss_->kind() != LossKind::kGaussian) {
    // GCP analog of Alg. 2: one damped Newton step per occupied factor row
    // instead of the least-squares sweep. λ stays 1 (absorbed at init), so
    // no column normalization; the sweep leaves the Grams stale and they
    // are refreshed here — wholesale, like the Gaussian sweep's
    // normalization path — before the next event reads them.
    GcpSweep(window, state, *loss_, gcp_ws_);
    if (state.mixed()) {
      state.QuantizeFactorsToF32();  // Recomputes the Grams as a side effect.
    } else {
      state.RecomputeGrams();
    }
    return;
  }
  // The maintained factors are a strong warm start, so a single ALS sweep
  // with column normalization (Alg. 2) suffices per event.
  AlsSweep(window, state, /*normalize_columns=*/true, ws_);
  // Mixed precision quantizes at sweep granularity (the sweep itself runs
  // in double): round every factor through float32, refresh the mirrors,
  // and recompute the Grams from the quantized factors.
  if (state.mixed()) state.QuantizeFactorsToF32();
}

}  // namespace sns
