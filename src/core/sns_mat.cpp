#include "core/sns_mat.h"

namespace sns {

void SnsMatUpdater::OnEvent(const SparseTensor& window,
                            const WindowDelta& delta, CpdState& state) {
  if (delta.cells.empty()) return;  // Zero-valued tuple: window unchanged.
  // The maintained factors are a strong warm start, so a single ALS sweep
  // with column normalization (Alg. 2) suffices per event.
  AlsSweep(window, state, /*normalize_columns=*/true, ws_);
}

}  // namespace sns
