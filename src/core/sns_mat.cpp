#include "core/sns_mat.h"

namespace sns {

void SnsMatUpdater::OnEvent(const SparseTensor& window,
                            const WindowDelta& delta, CpdState& state) {
  if (delta.cells.empty()) return;  // Zero-valued tuple: window unchanged.
  // The maintained factors are a strong warm start, so a single ALS sweep
  // with column normalization (Alg. 2) suffices per event.
  AlsSweep(window, state, /*normalize_columns=*/true, ws_);
  // Mixed precision quantizes at sweep granularity (the sweep itself runs
  // in double): round every factor through float32, refresh the mirrors,
  // and recompute the Grams from the quantized factors.
  if (state.mixed()) state.QuantizeFactorsToF32();
}

}  // namespace sns
