// Preallocated per-event scratch space of the row-update hot path.
//
// Every buffer a row updater touches during one event lives here, sized
// once (or when the model shape changes) by Prepare and reused event after
// event, so steady-state event processing performs zero heap allocations
// (guarded by the counting-allocator test in tests/hot_path_test.cpp).
// Owned by RowUpdaterBase and threaded through every UpdateRow
// implementation; SNS-MAT's ALS sweep uses the sibling AlsWorkspace
// (core/als.h).
//
// All rank-length scratch is 64-byte-aligned and padded to PaddedRank(R)
// with zero padding lanes (linalg/simd.h), so the padded rank-dispatch
// kernels may read and write the full stride. Prepare also resolves the
// RankKernelTable for the model's padded rank exactly once — the
// compile-time-specialized kernel set every updater calls per row.

#ifndef SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_
#define SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_

#include <vector>

#include "core/gram_solve.h"
#include "core/slice_sampler.h"
#include "linalg/matrix.h"
#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"

namespace sns {

struct UpdateWorkspace {
  /// (Re)sizes every buffer for the given shape and resolves the rank
  /// kernel tables for `tier`. No-op — and in particular allocation-free —
  /// when the shape and tier are unchanged. sample_capacity bounds the
  /// number of cells SampleSliceCellsInto may produce per row (0 for
  /// variants that never sample).
  void Prepare(int num_modes, int64_t rank, int64_t sample_capacity,
               KernelTier tier = ResolveKernelTier());

  /// Compile-time-rank kernel set for padded_rank at the prepared tier,
  /// resolved once by Prepare (i.e. at engine construction). Null before
  /// the first Prepare.
  const RankKernelTable* kernels = nullptr;
  /// PaddedRank(rank): the trip count of every padded kernel call.
  int64_t padded_rank = 0;

  /// ∗_{n≠m} Q(n) for the row currently being updated — preloaded by
  /// RowUpdaterBase::OnEvent (via GramProductCache) before each UpdateRow.
  Matrix h;
  /// ∗_{n≠m} U(n) of the sampled paths, written by
  /// RowUpdaterBase::HadamardOfPrevGramsExcept.
  Matrix h_prev;
  /// One reconstructed prev-Gram U(n) = Q(n) + Σ (p−a)'a.
  Matrix u_scratch;
  /// Cholesky-backed row solver (allocation-free fast path).
  GramSolver solver;

  AlignedVector old_row;   // Event-start value of the row in flight.
  AlignedVector rhs;       // Right-hand side / numerator accumulator.
  AlignedVector solution;  // Solve output before the factor write.
  AlignedVector had;       // Per-entry Hadamard row product.
  std::vector<SampledCell> samples;  // θ-sample output (RND variants).

 private:
  int num_modes_ = 0;
  int64_t rank_ = 0;
  int64_t sample_capacity_ = 0;
  KernelTier tier_ = KernelTier::kGeneric;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_
