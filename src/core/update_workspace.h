// Preallocated per-event scratch space of the row-update hot path.
//
// Every buffer a row updater touches during one event lives here, sized
// once (or when the model shape changes) by Prepare and reused event after
// event, so steady-state event processing performs zero heap allocations
// (guarded by the counting-allocator test in tests/hot_path_test.cpp).
// Owned by RowUpdaterBase and threaded through every UpdateRow
// implementation; SNS-MAT's ALS sweep uses the sibling AlsWorkspace
// (core/als.h).

#ifndef SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_
#define SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_

#include <vector>

#include "core/gram_solve.h"
#include "core/slice_sampler.h"
#include "linalg/matrix.h"

namespace sns {

struct UpdateWorkspace {
  /// (Re)sizes every buffer for the given shape. No-op — and in particular
  /// allocation-free — when the shape is unchanged. sample_capacity bounds
  /// the number of cells SampleSliceCellsInto may produce per row (0 for
  /// variants that never sample).
  void Prepare(int num_modes, int64_t rank, int64_t sample_capacity);

  /// ∗_{n≠m} Q(n) for the row currently being updated — preloaded by
  /// RowUpdaterBase::OnEvent (via GramProductCache) before each UpdateRow.
  Matrix h;
  /// ∗_{n≠m} U(n) of the sampled paths, written by
  /// RowUpdaterBase::HadamardOfPrevGramsExcept.
  Matrix h_prev;
  /// One reconstructed prev-Gram U(n) = Q(n) + Σ (p−a)'a.
  Matrix u_scratch;
  /// Cholesky-backed row solver (allocation-free fast path).
  GramSolver solver;

  std::vector<double> old_row;   // Event-start value of the row in flight.
  std::vector<double> rhs;       // Right-hand side / numerator accumulator.
  std::vector<double> solution;  // Solve output before the factor write.
  std::vector<double> had;       // Per-entry Hadamard row product.
  std::vector<SampledCell> samples;  // θ-sample output (RND variants).

 private:
  int num_modes_ = 0;
  int64_t rank_ = 0;
  int64_t sample_capacity_ = 0;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_UPDATE_WORKSPACE_H_
