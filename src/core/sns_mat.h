// SNS-MAT (Alg. 2): the naive extension of ALS to the continuous model —
// one full normalized ALS sweep over the whole window per event. Most
// accurate and most expensive of the family (Theorem 3).

#ifndef SLICENSTITCH_CORE_SNS_MAT_H_
#define SLICENSTITCH_CORE_SNS_MAT_H_

#include "core/als.h"
#include "core/updater.h"
#include "losses/gcp_row_update.h"

namespace sns {

class SnsMatUpdater : public EventUpdater {
 public:
  std::string_view name() const override { return "SNS-MAT"; }

  void OnEvent(const SparseTensor& window, const WindowDelta& delta,
               CpdState& state) override;

  void set_kernel_tier(KernelTier tier) override { ws_.tier = tier; }

  /// Non-Gaussian losses swap the per-event ALS sweep for a GCP Newton
  /// sweep (losses/gcp_row_update.h). Gaussian (default) is untouched.
  void set_loss(const LossFunction* loss) override { loss_ = loss; }

 private:
  // Reused sweep scratch: per-event sweeps allocate nothing once warm.
  AlsWorkspace ws_;
  // GCP sweep scratch; zero footprint under the Gaussian default.
  GcpRowWorkspace gcp_ws_;
  const LossFunction* loss_ = nullptr;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_MAT_H_
