// SNS-MAT (Alg. 2): the naive extension of ALS to the continuous model —
// one full normalized ALS sweep over the whole window per event. Most
// accurate and most expensive of the family (Theorem 3).

#ifndef SLICENSTITCH_CORE_SNS_MAT_H_
#define SLICENSTITCH_CORE_SNS_MAT_H_

#include "core/als.h"
#include "core/updater.h"

namespace sns {

class SnsMatUpdater : public EventUpdater {
 public:
  std::string_view name() const override { return "SNS-MAT"; }

  void OnEvent(const SparseTensor& window, const WindowDelta& delta,
               CpdState& state) override;

  void set_kernel_tier(KernelTier tier) override { ws_.tier = tier; }

 private:
  // Reused sweep scratch: per-event sweeps allocate nothing once warm.
  AlsWorkspace ws_;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_MAT_H_
