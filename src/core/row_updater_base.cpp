#include "core/row_updater_base.h"

#include <algorithm>

namespace sns {

void RowUpdaterBase::OnEvent(const SparseTensor& window,
                             const WindowDelta& delta, CpdState& state) {
  if (delta.cells.empty()) return;  // Zero-valued tuple.
  BeginEvent(delta, state);

  const int time_mode = state.num_modes() - 1;
  const int w_size = static_cast<int>(state.model.factor(time_mode).rows());
  const int w = delta.w;

  // Time-mode rows first (Alg. 3 lines 3-6; 0-based indices). For a slide
  // both the slice the value left (W−w) and the one it entered (W−w−1) are
  // refreshed; arrivals touch only W−1, expiries only 0.
  if (w > 0) UpdateRow(time_mode, w_size - w, window, delta, state);
  if (w < w_size) UpdateRow(time_mode, w_size - w - 1, window, delta, state);

  // Then the i_m-th row of every non-time factor (Alg. 3 lines 7-8).
  for (int m = 0; m < time_mode; ++m) {
    UpdateRow(m, delta.tuple.index[m], window, delta, state);
  }
}

void RowUpdaterBase::BeginEvent(const WindowDelta& delta,
                                const CpdState& state) {
  if (NeedsPrevGrams()) prev_grams_ = state.grams;  // Alg. 3 line 1.

  snapshots_.clear();
  const int time_mode = state.num_modes() - 1;
  auto snapshot = [&](int mode, int64_t row) {
    const Matrix& factor = state.model.factor(mode);
    const double* data = factor.Row(row);
    snapshots_.push_back(
        {mode, row, std::vector<double>(data, data + factor.cols())});
  };
  for (const DeltaCell& cell : delta.cells) {
    snapshot(time_mode, cell.index[time_mode]);
  }
  for (int m = 0; m < time_mode; ++m) snapshot(m, delta.tuple.index[m]);
}

const double* RowUpdaterBase::PrevRow(int mode, int64_t row,
                                      const CpdState& state) const {
  for (const RowSnapshot& snap : snapshots_) {
    if (snap.mode == mode && snap.row == row) return snap.values.data();
  }
  return state.model.factor(mode).Row(row);
}

double RowUpdaterBase::EvaluatePrevModel(const ModeIndex& index,
                                         const CpdState& state) const {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  const double* rows[kMaxTensorModes];
  for (int m = 0; m < modes; ++m) rows[m] = PrevRow(m, index[m], state);
  double sum = 0.0;
  for (int64_t r = 0; r < rank; ++r) {
    double prod = 1.0;
    for (int m = 0; m < modes; ++m) prod *= rows[m][r];
    sum += prod;
  }
  return sum;
}

void RowUpdaterBase::CommitRow(int mode, int64_t row,
                               const std::vector<double>& old_row,
                               CpdState& state) {
  const double* new_row = state.model.factor(mode).Row(row);
  ApplyGramRowUpdate(state.grams[static_cast<size_t>(mode)], old_row.data(),
                     new_row);
  if (NeedsPrevGrams()) {
    // old_row is also the event-start (prev) row: rows update once per event.
    ApplyPrevGramRowUpdate(prev_grams_[static_cast<size_t>(mode)],
                           old_row.data(), new_row);
  }
}

}  // namespace sns
