#include "core/row_updater_base.h"

#include <algorithm>

#include "tensor/mttkrp.h"

namespace sns {

void RowUpdaterBase::OnEvent(const SparseTensor& window,
                             const WindowDelta& delta, CpdState& state) {
  if (delta.cells.empty()) return;  // Zero-valued tuple.
  BeginEvent(delta, state);

  const int time_mode = state.num_modes() - 1;
  const int w_size = static_cast<int>(state.model.factor(time_mode).rows());
  const int w = delta.w;

  auto update_row = [&](int mode, int64_t row) {
    gram_cache_.ProductExcept(mode, ws_.h);
    UpdateRow(mode, row, window, delta, state, ws_);
    gram_cache_.NotifyModeChanged(mode);
  };

  // Time-mode rows first (Alg. 3 lines 3-6; 0-based indices). For a slide
  // both the slice the value left (W−w) and the one it entered (W−w−1) are
  // refreshed; arrivals touch only W−1, expiries only 0.
  if (w > 0) update_row(time_mode, w_size - w);
  if (w < w_size) update_row(time_mode, w_size - w - 1);

  // Then the i_m-th row of every non-time factor (Alg. 3 lines 7-8).
  for (int m = 0; m < time_mode; ++m) {
    update_row(m, delta.tuple.index[m]);
  }
}

void RowUpdaterBase::BeginEvent(const WindowDelta& delta,
                                const CpdState& state) {
  time_mode_ = state.num_modes() - 1;
  snap_rank_ = state.rank();
  snap_stride_ = PaddedRank(snap_rank_);
  ws_.Prepare(state.num_modes(), snap_rank_, sample_capacity_, tier_);
  gram_cache_.set_kernels(ws_.kernels);
  gram_cache_.BeginEvent(state.grams);
  // No-ops (and allocation-free) once sized for this shape.
  snapshot_values_.Resize((kMaxTensorModes + 2) * snap_stride_);
  if (NeedsPrevGrams()) {
    delta_values_.Resize(2 * (kMaxTensorModes + 2) * snap_stride_);
  }
  num_gram_deltas_ = 0;

  auto copy_row = [&](int mode, int64_t row, int segment) {
    // Full padded stride: the factor row's zero padding lanes come along,
    // keeping each snapshot segment a valid padded row.
    const double* data = state.model.factor(mode).Row(row);
    ws_.kernels->copy(data, snapshot_values_.data() + segment * snap_stride_,
                      snap_stride_);
  };
  // Time-mode rows, deduplicated: a delta may reference the same time slice
  // more than once, and PrevRow must see exactly one snapshot per row. The
  // inline storage assumes at most TWO distinct time rows per delta (the
  // two slices a slide touches) — a delta spanning more would silently
  // lose its third snapshot, so fail loudly instead.
  num_time_snaps_ = 0;
  for (const DeltaCell& cell : delta.cells) {
    const int64_t row = cell.index[time_mode_];
    bool seen = false;
    for (int t = 0; t < num_time_snaps_; ++t) {
      if (time_snap_row_[static_cast<size_t>(t)] == row) seen = true;
    }
    if (seen) continue;
    SNS_DCHECK(num_time_snaps_ < 2);
    if (num_time_snaps_ >= 2) continue;
    time_snap_row_[static_cast<size_t>(num_time_snaps_)] = row;
    copy_row(time_mode_, row, kMaxTensorModes + num_time_snaps_);
    ++num_time_snaps_;
  }
  // One snapshot per non-time mode, indexed by mode.
  for (int m = 0; m < time_mode_; ++m) {
    mode_snap_row_[static_cast<size_t>(m)] = delta.tuple.index[m];
    copy_row(m, delta.tuple.index[m], m);
  }
}

bool RowUpdaterBase::GcpUpdateRow(int mode, int64_t row,
                                  const SparseTensor& window,
                                  const WindowDelta& delta, CpdState& state,
                                  double clip_min, double clip_max,
                                  int64_t sample_threshold, Rng* rng) {
  if (loss_ == nullptr || loss_->kind() == LossKind::kGaussian) return false;
  const bool sampled =
      sample_threshold > 0 && window.Degree(mode, row) > sample_threshold;
  if (sampled) {
    // θ-sampled restriction: uniformly drawn slice cells (zero cells
    // included — their ℓ(0, θ) terms pull spurious model mass down; delta
    // cells excluded by the sampler) plus the event's delta cells at their
    // live window values.
    SampleSliceCellsInto(window, mode, row, sample_threshold, delta, *rng,
                         gcp_ws_.cells);
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[mode] != row) continue;
      gcp_ws_.cells.push_back({cell.index, window.Get(cell.index)});
    }
    GcpNewtonRowUpdate(state, mode, row, *loss_, gcp_ws_.cells, clip_min,
                       clip_max, gcp_ws_);
  } else {
    GcpNewtonRowUpdateOnSlice(window, state, mode, row, *loss_, clip_min,
                              clip_max, gcp_ws_);
  }
  // Commit unconditionally: gcp_ws_.old_row holds the pre-update row either
  // way (GcpNewtonRowUpdate snapshots before deciding), and the Gram /
  // prev-Gram bookkeeping degenerates gracefully when the row is unchanged.
  CommitRow(mode, row, gcp_ws_.old_row.data(), state);
  return true;
}

const double* RowUpdaterBase::PrevRow(int mode, int64_t row,
                                      const CpdState& state) const {
  if (mode == time_mode_) {
    for (int t = 0; t < num_time_snaps_; ++t) {
      if (time_snap_row_[static_cast<size_t>(t)] == row) {
        return snapshot_values_.data() + (kMaxTensorModes + t) * snap_stride_;
      }
    }
  } else if (mode_snap_row_[static_cast<size_t>(mode)] == row) {
    return snapshot_values_.data() + mode * snap_stride_;
  }
  return state.model.factor(mode).Row(row);
}

double RowUpdaterBase::EvaluatePrevModel(const ModeIndex& index,
                                         const CpdState& state) const {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  const double* rows[kMaxTensorModes];
  for (int m = 0; m < modes; ++m) rows[m] = PrevRow(m, index[m], state);
  double sum = 0.0;
  for (int64_t r = 0; r < rank; ++r) {
    double prod = 1.0;
    for (int m = 0; m < modes; ++m) prod *= rows[m][r];
    sum += prod;
  }
  return sum;
}

void RowUpdaterBase::CommitRow(int mode, int64_t row, const double* old_row,
                               CpdState& state) {
  // Mixed precision: quantize the just-written row through float32 (and
  // sync its mirror) BEFORE the Gram update, so Q tracks the quantized
  // factors exactly. No-op in float64 mode.
  state.SyncRowToF32(mode, row);
  const double* new_row = state.model.factor(mode).Row(row);
  ApplyGramRowUpdate(state.grams[static_cast<size_t>(mode)], old_row, new_row,
                     *ws_.kernels);
  if (NeedsPrevGrams()) {
    // Record the rank-1 correction U(mode) = Q(mode) + (p−a)'a. old_row is
    // also the event-start (prev) row p: rows update once per event. Both
    // segments span the full padded stride (padding: 0 − 0 = 0).
    SNS_CHECK(num_gram_deltas_ < static_cast<int>(delta_mode_.size()));
    double* diff = delta_values_.data() + 2 * num_gram_deltas_ * snap_stride_;
    double* saved_new = diff + snap_stride_;
    for (int64_t r = 0; r < snap_stride_; ++r) {
      diff[r] = old_row[r] - new_row[r];
      saved_new[r] = new_row[r];
    }
    delta_mode_[static_cast<size_t>(num_gram_deltas_)] = mode;
    ++num_gram_deltas_;
  }
}

void RowUpdaterBase::HadamardOfPrevGramsExcept(const CpdState& state,
                                               int skip_mode,
                                               UpdateWorkspace& ws) const {
  ws.h_prev.Fill(1.0);
  for (int n = 0; n < state.num_modes(); ++n) {
    if (n == skip_mode) continue;
    const Matrix& gram = state.grams[static_cast<size_t>(n)];
    bool has_delta = false;
    for (int k = 0; k < num_gram_deltas_; ++k) {
      if (delta_mode_[static_cast<size_t>(k)] == n) has_delta = true;
    }
    if (!has_delta) {
      // No row of mode n committed yet this event: U(n) = Q(n).
      HadamardAccumulate(ws.h_prev, gram, *ws.kernels);
      continue;
    }
    ws.u_scratch.CopyFrom(gram);
    for (int k = 0; k < num_gram_deltas_; ++k) {
      if (delta_mode_[static_cast<size_t>(k)] != n) continue;
      const double* diff = delta_values_.data() + 2 * k * snap_stride_;
      AddOuterProduct(ws.u_scratch, diff, diff + snap_stride_, *ws.kernels);
    }
    HadamardAccumulate(ws.h_prev, ws.u_scratch, *ws.kernels);
  }
}

void RowUpdaterBase::HadamardRowDispatch(const CpdState& state,
                                         const ModeIndex& index, int skip_mode,
                                         double* out,
                                         UpdateWorkspace& ws) const {
  if (state.mixed()) {
    HadamardRowProduct32(state.factors32, index, skip_mode, out, *ws.kernels);
  } else {
    HadamardRowProduct(state.model.factors(), index, skip_mode, out,
                       *ws.kernels);
  }
}

void RowUpdaterBase::MttkrpRowDispatch(const SparseTensor& window,
                                       const CpdState& state, int mode,
                                       int64_t row, double* out, double* had,
                                       UpdateWorkspace& ws) const {
  if (state.mixed()) {
    MttkrpRow32(window, state.factors32, mode, row, out, had, *ws.kernels);
  } else {
    MttkrpRow(window, state.model.factors(), mode, row, out, had, *ws.kernels);
  }
}

}  // namespace sns
