// Uniform sampling of cells from one tensor slice for SNS-RND / SNS+RND
// (Alg. 4 line 12 / Alg. 5 line 10).
//
// S is drawn from the *full index grid* of the slice {J : J[mode] = row} —
// zero cells included — not merely from its non-zeros: the paper defines
// x̄_J = x_J − x̃_J "for any index J of X", and sampled zero cells (where
// x̄_J = −x̃_J) are what pulls spurious model mass back down. Cells changed
// by the current event are excluded per footnote 2.
//
// Sampled cells carry their window value, fetched exactly once here, so the
// consumers (sns_rnd, sns_rnd_plus) never re-hash the window per cell.

#ifndef SLICENSTITCH_CORE_SLICE_SAMPLER_H_
#define SLICENSTITCH_CORE_SLICE_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// One sampled slice cell: its window coordinate and current window value
/// (0.0 for the — typical — zero cells).
struct SampledCell {
  ModeIndex index;
  double value = 0.0;
};

/// Samples up to `count` distinct cells uniformly without replacement from
/// the slice grid {J : J[mode] = row} of `window`'s shape into `out`
/// (cleared first, capacity preserved), never returning a cell of `delta`.
/// If the slice grid (minus delta cells) has at most `count` cells, all of
/// them are returned — so at most count + delta.cells.size() cells are ever
/// produced. Each cell carries its window value. With `out` pre-reserved
/// (see UpdateWorkspace) this performs no heap allocation — the hot-path
/// form used by the RND updaters.
void SampleSliceCellsInto(const SparseTensor& window, int mode, int64_t row,
                          int64_t count, const WindowDelta& delta, Rng& rng,
                          std::vector<SampledCell>& out);

/// Allocating convenience wrapper over SampleSliceCellsInto.
std::vector<SampledCell> SampleSliceCells(const SparseTensor& window, int mode,
                                          int64_t row, int64_t count,
                                          const WindowDelta& delta, Rng& rng);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SLICE_SAMPLER_H_
