// SNS-VEC (Alg. 3 + Alg. 4 updateRowVec): updates only the affected factor
// rows. Time-mode rows use the model-approximation shortcut
// A(M) ← A(M) + ΔX_(M) K H† (Eq. 9); non-time rows solve their row least
// squares exactly (Eq. 12). Fast but — without normalization or clipping —
// prone to numerical blow-up (Observation 3 of the paper).

#ifndef SLICENSTITCH_CORE_SNS_VEC_H_
#define SLICENSTITCH_CORE_SNS_VEC_H_

#include "core/row_updater_base.h"

namespace sns {

class SnsVecUpdater : public RowUpdaterBase {
 public:
  std::string_view name() const override { return "SNS-VEC"; }

 protected:
  bool NeedsPrevGrams() const override { return false; }

  void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                 const WindowDelta& delta, CpdState& state,
                 UpdateWorkspace& ws) override;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_VEC_H_
