#include "core/als.h"

#include <cmath>

#include "linalg/rank_dispatch.h"
#include "tensor/mttkrp.h"

namespace sns {

void AlsWorkspace::Prepare(const CpdState& state) {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  if (static_cast<int>(mttkrp.size()) != modes) mttkrp.resize(modes);
  for (int m = 0; m < modes; ++m) {
    const int64_t rows = state.model.factor(m).rows();
    Matrix& out = mttkrp[static_cast<size_t>(m)];
    if (out.rows() != rows || out.cols() != rank) out = Matrix(rows, rank);
  }
  if (h.rows() != rank) h = Matrix(rank, rank);
  if (had.size() != rank) {
    had.Assign(rank, 0.0);
    col_norm_sq.Assign(rank, 0.0);
    col_scale.Assign(rank, 0.0);
  }
  solver.set_kernels(&GetRankKernelTable(0, tier));
  grams.set_kernels(&GetRankKernelTable(PaddedRank(rank), tier));
}

void AlsSweep(const SparseTensor& x, CpdState& state, bool normalize_columns,
              AlsWorkspace& ws) {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  ws.Prepare(state);
  ws.grams.BeginEvent(state.grams);
  const RankKernelTable& kr = GetRankKernelTable(PaddedRank(rank), ws.tier);
  for (int m = 0; m < modes; ++m) {
    Matrix& mttkrp = ws.mttkrp[static_cast<size_t>(m)];
    MttkrpInto(x, state.model.factors(), m, mttkrp, ws.had.data(), kr);
    ws.grams.ProductExcept(m, ws.h);  // H of Alg. 2.
    ws.solver.Factorize(ws.h);

    // A(m) ← U H† row by row, written in place: the MTTKRP of mode m never
    // reads A(m), and later modes want the updated factor.
    Matrix& factor = state.model.factor(m);
    for (int64_t i = 0; i < factor.rows(); ++i) {
      ws.solver.Solve(mttkrp.Row(i), factor.Row(i));
    }

    if (normalize_columns) {
      // λ_r = ‖column r‖₂; Ā gets unit columns (Alg. 2 lines 5-6). Zero
      // columns keep λ_r = 0 and stay zero (scaling by 0 below). Both
      // passes run row-major over the padded stride — per component the
      // accumulation order over i is unchanged, so this is bitwise
      // identical to the column-walk formulation.
      const int64_t padded = factor.stride();
      double* norm_sq = ws.col_norm_sq.data();
      double* scale = ws.col_scale.data();
      kr.fill(norm_sq, 0.0, padded);
      for (int64_t i = 0; i < factor.rows(); ++i) {
        const double* row = factor.Row(i);
        kr.fma3(1.0, row, row, norm_sq, padded);
      }
      for (int64_t r = 0; r < rank; ++r) {
        const double norm = std::sqrt(norm_sq[r]);
        state.model.lambda()[static_cast<size_t>(r)] = norm;
        scale[r] = norm > 0.0 ? 1.0 / norm : 0.0;
      }
      for (int64_t i = 0; i < factor.rows(); ++i) {
        kr.mul_accum(factor.Row(i), scale, padded);
      }
    }
    MultiplyTransposeAInto(factor, factor, state.grams[static_cast<size_t>(m)],
                           kr);
    ws.grams.NotifyModeChanged(m);
  }
}

void AlsSweep(const SparseTensor& x, CpdState& state,
              bool normalize_columns) {
  AlsWorkspace ws;
  AlsSweep(x, state, normalize_columns, ws);
}

KruskalModel AlsDecompose(const SparseTensor& x, int64_t rank,
                          const AlsOptions& options, Rng& rng,
                          KernelTier tier) {
  CpdState state(KruskalModel::Random(x.dims(), rank, rng), tier);
  AlsWorkspace ws;
  ws.tier = tier;
  double previous_fitness = state.model.Fitness(x);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    AlsSweep(x, state, options.normalize_columns, ws);
    const double fitness = state.model.Fitness(x);
    if (fitness - previous_fitness < options.fitness_tolerance &&
        iter > 0) {
      break;
    }
    previous_fitness = fitness;
  }
  return state.model;
}

double AlsReferenceFitness(const SparseTensor& x, int64_t rank,
                           const AlsOptions& options, Rng& rng) {
  if (x.nnz() == 0) return 0.0;
  return AlsDecompose(x, rank, options, rng).Fitness(x);
}

}  // namespace sns
