#include "core/als.h"

#include <cmath>

#include "core/gram_solve.h"
#include "tensor/mttkrp.h"

namespace sns {

void AlsSweep(const SparseTensor& x, CpdState& state, bool normalize_columns) {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  for (int m = 0; m < modes; ++m) {
    Matrix mttkrp = Mttkrp(x, state.model.factors(), m);     // U of Alg. 2.
    Matrix h = HadamardOfGramsExcept(state.grams, m);        // H of Alg. 2.
    Matrix updated = SolveRowsAgainstGram(h, mttkrp);        // U H†.

    if (normalize_columns) {
      // λ_r = ‖column r‖₂; Ā gets unit columns (Alg. 2 lines 5-6). Zero
      // columns keep λ_r = 0 and stay zero.
      for (int64_t r = 0; r < rank; ++r) {
        double norm_sq = 0.0;
        for (int64_t i = 0; i < updated.rows(); ++i) {
          norm_sq += updated(i, r) * updated(i, r);
        }
        const double norm = std::sqrt(norm_sq);
        state.model.lambda()[static_cast<size_t>(r)] = norm;
        if (norm > 0.0) {
          const double inv = 1.0 / norm;
          for (int64_t i = 0; i < updated.rows(); ++i) updated(i, r) *= inv;
        }
      }
    }
    state.model.factor(m) = std::move(updated);
    state.grams[m] =
        MultiplyTransposeA(state.model.factor(m), state.model.factor(m));
  }
}

KruskalModel AlsDecompose(const SparseTensor& x, int64_t rank,
                          const AlsOptions& options, Rng& rng) {
  CpdState state(KruskalModel::Random(x.dims(), rank, rng));
  double previous_fitness = state.model.Fitness(x);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    AlsSweep(x, state, options.normalize_columns);
    const double fitness = state.model.Fitness(x);
    if (fitness - previous_fitness < options.fitness_tolerance &&
        iter > 0) {
      break;
    }
    previous_fitness = fitness;
  }
  return state.model;
}

double AlsReferenceFitness(const SparseTensor& x, int64_t rank,
                           const AlsOptions& options, Rng& rng) {
  if (x.nnz() == 0) return 0.0;
  return AlsDecompose(x, rank, options, rng).Fitness(x);
}

}  // namespace sns
