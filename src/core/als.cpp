#include "core/als.h"

#include <cmath>

#include "tensor/mttkrp.h"

namespace sns {

void AlsWorkspace::Prepare(const CpdState& state) {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  if (static_cast<int>(mttkrp.size()) != modes) mttkrp.resize(modes);
  for (int m = 0; m < modes; ++m) {
    const int64_t rows = state.model.factor(m).rows();
    Matrix& out = mttkrp[static_cast<size_t>(m)];
    if (out.rows() != rows || out.cols() != rank) out = Matrix(rows, rank);
  }
  if (h.rows() != rank) h = Matrix(rank, rank);
  if (static_cast<int64_t>(had.size()) != rank) {
    had.assign(static_cast<size_t>(rank), 0.0);
  }
}

void AlsSweep(const SparseTensor& x, CpdState& state, bool normalize_columns,
              AlsWorkspace& ws) {
  const int modes = state.num_modes();
  const int64_t rank = state.rank();
  ws.Prepare(state);
  ws.grams.BeginEvent(state.grams);
  for (int m = 0; m < modes; ++m) {
    Matrix& mttkrp = ws.mttkrp[static_cast<size_t>(m)];
    MttkrpInto(x, state.model.factors(), m, mttkrp, ws.had.data());
    ws.grams.ProductExcept(m, ws.h);  // H of Alg. 2.
    ws.solver.Factorize(ws.h);

    // A(m) ← U H† row by row, written in place: the MTTKRP of mode m never
    // reads A(m), and later modes want the updated factor.
    Matrix& factor = state.model.factor(m);
    for (int64_t i = 0; i < factor.rows(); ++i) {
      ws.solver.Solve(mttkrp.Row(i), factor.Row(i));
    }

    if (normalize_columns) {
      // λ_r = ‖column r‖₂; Ā gets unit columns (Alg. 2 lines 5-6). Zero
      // columns keep λ_r = 0 and stay zero.
      for (int64_t r = 0; r < rank; ++r) {
        double norm_sq = 0.0;
        for (int64_t i = 0; i < factor.rows(); ++i) {
          norm_sq += factor(i, r) * factor(i, r);
        }
        const double norm = std::sqrt(norm_sq);
        state.model.lambda()[static_cast<size_t>(r)] = norm;
        if (norm > 0.0) {
          const double inv = 1.0 / norm;
          for (int64_t i = 0; i < factor.rows(); ++i) factor(i, r) *= inv;
        }
      }
    }
    MultiplyTransposeAInto(factor, factor,
                           state.grams[static_cast<size_t>(m)]);
    ws.grams.NotifyModeChanged(m);
  }
}

void AlsSweep(const SparseTensor& x, CpdState& state,
              bool normalize_columns) {
  AlsWorkspace ws;
  AlsSweep(x, state, normalize_columns, ws);
}

KruskalModel AlsDecompose(const SparseTensor& x, int64_t rank,
                          const AlsOptions& options, Rng& rng) {
  CpdState state(KruskalModel::Random(x.dims(), rank, rng));
  AlsWorkspace ws;
  double previous_fitness = state.model.Fitness(x);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    AlsSweep(x, state, options.normalize_columns, ws);
    const double fitness = state.model.Fitness(x);
    if (fitness - previous_fitness < options.fitness_tolerance &&
        iter > 0) {
      break;
    }
    previous_fitness = fitness;
  }
  return state.model;
}

double AlsReferenceFitness(const SparseTensor& x, int64_t rank,
                           const AlsOptions& options, Rng& rng) {
  if (x.nnz() == 0) return 0.0;
  return AlsDecompose(x, rank, options, rng).Fitness(x);
}

}  // namespace sns
