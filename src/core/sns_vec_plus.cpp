#include "core/sns_vec_plus.h"

#include <cmath>
#include <vector>

#include "tensor/mttkrp.h"

namespace sns {

void CoordinateDescentRow(double* row, int64_t rank, const Matrix& hq,
                          const double* numerator, double clip_min,
                          double clip_max) {
  for (int64_t k = 0; k < rank; ++k) {
    const double c_k = hq(k, k);
    if (!(c_k > 1e-300)) continue;  // Dead component: leave the entry.
    // d_k = Σ_{r≠k} row[r]·HQ(r,k) against the live (partially updated) row.
    double d_k = 0.0;
    for (int64_t r = 0; r < rank; ++r) d_k += row[r] * hq(r, k);
    d_k -= row[k] * c_k;
    double value = (numerator[k] - d_k) / c_k;
    // Clipping (Alg. 5 line 5): projection onto [clip_min, clip_max] never
    // increases the convex per-entry objective.
    if (value > clip_max) {
      value = clip_max;
    } else if (value < clip_min) {
      value = clip_min;
    }
    row[k] = value;
  }
}

void SnsVecPlusUpdater::UpdateRow(int mode, int64_t row,
                                  const SparseTensor& window,
                                  const WindowDelta& delta, CpdState& state) {
  const int64_t rank = state.rank();
  const int time_mode = state.num_modes() - 1;
  Matrix& factor = state.model.factor(mode);
  std::vector<double> old_row(factor.Row(row), factor.Row(row) + rank);

  const Matrix hq = HadamardOfGramsExcept(state.grams, mode);
  std::vector<double> numerator(static_cast<size_t>(rank), 0.0);

  if (mode == time_mode) {
    // Eq. 22: e_k + Σ_J Δx_J Π_{n≠M} a(n)_{j_n k}. Time rows are updated
    // first within an event, so U(n) = Q(n) for all n ≠ M and
    // e_k = Σ_r b_{i r} (∗_{n≠M} Q(n))(r, k) = (B row) · HQ(:,k).
    RowTimesMatrix(old_row.data(), hq, numerator.data());
    std::vector<double> had(static_cast<size_t>(rank));
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[time_mode] != row) continue;
      HadamardRowProduct(state.model.factors(), cell.index, time_mode,
                         had.data());
      for (int64_t r = 0; r < rank; ++r) {
        numerator[static_cast<size_t>(r)] +=
            cell.delta * had[static_cast<size_t>(r)];
      }
    }
  } else {
    // Eq. 21: Σ_{J∈Ω} (x_J + Δx_J) Π_{n≠m} a(n)_{j_n k} — the row MTTKRP
    // over the live window. It only involves other modes' rows, so it stays
    // constant across the coordinate loop.
    MttkrpRow(window, state.model.factors(), mode, row, numerator.data());
  }

  CoordinateDescentRow(factor.Row(row), rank, hq, numerator.data(), clip_min_,
                       clip_max_);
  CommitRow(mode, row, old_row, state);  // Eqs. 24-25.
}

}  // namespace sns
