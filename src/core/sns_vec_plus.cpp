#include "core/sns_vec_plus.h"

#include <cmath>

#include "linalg/rank_dispatch.h"
#include "tensor/mttkrp.h"

namespace sns {

void CoordinateDescentRow(double* row, int64_t rank, const Matrix& hq,
                          const double* numerator, double clip_min,
                          double clip_max) {
  CoordinateDescentRow(row, rank, hq, numerator, clip_min, clip_max,
                       GetRankKernelTable(hq.stride()));
}

void CoordinateDescentRow(double* row, int64_t rank, const Matrix& hq,
                          const double* numerator, double clip_min,
                          double clip_max, const RankKernelTable& kr) {
  for (int64_t k = 0; k < rank; ++k) {
    const double c_k = hq(k, k);
    if (!(c_k > 1e-300)) continue;  // Dead component: leave the entry.
    // d_k = Σ_{r≠k} row[r]·HQ(r,k) against the live (partially updated)
    // row. HQ is a Hadamard product of symmetric Grams, so HQ(r,k) =
    // HQ(k,r) bitwise — read row k instead of column k for contiguous
    // access. The dot runs to the padded bound (zero lanes on both sides).
    double d_k = kr.dot(row, hq.Row(k), hq.stride());
    d_k -= row[k] * c_k;
    double value = (numerator[k] - d_k) / c_k;
    // Clipping (Alg. 5 line 5): projection onto [clip_min, clip_max] never
    // increases the convex per-entry objective.
    if (value > clip_max) {
      value = clip_max;
    } else if (value < clip_min) {
      value = clip_min;
    }
    row[k] = value;
  }
}

void SnsVecPlusUpdater::UpdateRow(int mode, int64_t row,
                                  const SparseTensor& window,
                                  const WindowDelta& delta, CpdState& state,
                                  UpdateWorkspace& ws) {
  if (GcpUpdateRow(mode, row, window, delta, state, clip_min_, clip_max_,
                   /*sample_threshold=*/0, /*rng=*/nullptr)) {
    return;  // Non-Gaussian loss: clipped GCP Newton step replaces Eqs. 21/22.
  }
  const int64_t rank = state.rank();
  const int time_mode = state.num_modes() - 1;
  Matrix& factor = state.model.factor(mode);
  const RankKernelTable& kr = *ws.kernels;
  const int64_t padded = ws.padded_rank;
  kr.copy(factor.Row(row), ws.old_row.data(), padded);

  // ws.h = HQ(m) = ∗_{n≠m} Q(n), preloaded by the base.
  if (mode == time_mode) {
    // Eq. 22: e_k + Σ_J Δx_J Π_{n≠M} a(n)_{j_n k}. Time rows are updated
    // first within an event, so U(n) = Q(n) for all n ≠ M and
    // e_k = Σ_r b_{i r} (∗_{n≠M} Q(n))(r, k) = (B row) · HQ(:,k).
    RowTimesMatrixPadded(ws.old_row.data(), ws.h, ws.rhs.data(), kr);
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[time_mode] != row) continue;
      HadamardRowDispatch(state, cell.index, time_mode, ws.had.data(), ws);
      kr.axpy(cell.delta, ws.had.data(), ws.rhs.data(), padded);
    }
  } else {
    // Eq. 21: Σ_{J∈Ω} (x_J + Δx_J) Π_{n≠m} a(n)_{j_n k} — the row MTTKRP
    // over the live window. It only involves other modes' rows, so it stays
    // constant across the coordinate loop.
    MttkrpRowDispatch(window, state, mode, row, ws.rhs.data(), ws.had.data(),
                      ws);
  }

  CoordinateDescentRow(factor.Row(row), rank, ws.h, ws.rhs.data(), clip_min_,
                       clip_max_, kr);
  CommitRow(mode, row, ws.old_row.data(), state);  // Eqs. 24-25.
}

}  // namespace sns
