// Mutable decomposition state shared by every updater: the Kruskal model
// plus the incrementally maintained Gram matrices Q(m) = A(m)'A(m) that make
// the O(1)-style updates of §V possible.

#ifndef SLICENSTITCH_CORE_CPD_STATE_H_
#define SLICENSTITCH_CORE_CPD_STATE_H_

#include <vector>

#include "common/cpu_features.h"
#include "core/options.h"
#include "linalg/matrix.h"
#include "linalg/matrix32.h"
#include "tensor/kruskal.h"

namespace sns {

struct RankKernelTable;  // linalg/rank_dispatch.h

/// Factor matrices + Grams. The time mode is always the last mode.
struct CpdState {
  KruskalModel model;
  /// grams[m] = A(m)'A(m), kept in lockstep with the factors by the update
  /// rules (Eqs. 13, 24, 25) or recomputed wholesale after batch steps.
  std::vector<Matrix> grams;
  /// Mixed precision only (empty otherwise): float32 mirrors of the factors,
  /// read by the hot Hadamard/MTTKRP paths. The double factors remain the
  /// store of record — every committed row passes through float32 (see
  /// SyncRowToF32), so each mirror row equals its double row exactly.
  std::vector<Matrix32> factors32;
  /// Numeric storage mode; set through SetFactorPrecision.
  FactorPrecision precision = FactorPrecision::kFloat64;
  /// Tier the state's own kernels (RecomputeGrams, quantization refresh)
  /// run at. Engines construct their state with their resolved tier so a
  /// forced-generic run never touches an intrinsic codelet.
  KernelTier kernel_tier = ResolveKernelTier();

  CpdState() = default;
  explicit CpdState(KruskalModel m) : model(std::move(m)) { RecomputeGrams(); }
  CpdState(KruskalModel m, KernelTier tier)
      : model(std::move(m)), kernel_tier(tier) {
    RecomputeGrams();
  }

  int num_modes() const { return model.num_modes(); }
  int64_t rank() const { return model.rank(); }
  bool mixed() const { return precision == FactorPrecision::kFloat32Accum64; }

  /// Recomputes every Gram matrix from the factors (O(Σ N_m R²)).
  void RecomputeGrams();

  /// Folds λ into the factors (each mode absorbs λ^(1/M)) and resets λ = 1.
  /// The unnormalized variants (everything except SNS-MAT) operate on plain
  /// factors, so ALS-initialized models are de-normalized through this.
  void AbsorbLambda();

  /// Switches precision. Entering mixed mode quantizes the current factors
  /// (QuantizeFactorsToF32); leaving it drops the mirrors — the double
  /// factors keep their (quantized) values.
  void SetFactorPrecision(FactorPrecision p);

  /// Mixed mode: rounds EVERY factor entry through float32 (writing the
  /// rounded value back to the double factor), rebuilds the float32
  /// mirrors, and recomputes the Grams from the quantized factors. Called
  /// on entry to mixed mode and after whole-factor rewrites (ALS init,
  /// SNS-MAT sweeps). No-op in float64 mode.
  void QuantizeFactorsToF32();

  /// Mixed mode: rounds one factor row through float32 in place and syncs
  /// its mirror row. Called by CommitRow BEFORE the Gram row updates, so
  /// Grams stay in lockstep with the quantized factors. No-op in float64
  /// mode.
  void SyncRowToF32(int mode, int64_t row);
};

/// Eq. 13 (and Eqs. 24–25 taken together): Q ← Q − p'p + a'a after the row
/// of one factor changed from `old_row` to `new_row`. Padded-buffer
/// contract: both rows must reference gram.stride() doubles with zero
/// padding lanes (Matrix rows and AlignedVector buffers qualify). The
/// table-taking overloads run through the caller's cached RankKernelTable
/// (the hot-path form); the plain overloads resolve the process-wide auto
/// tier per call.
void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row);
void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row, const RankKernelTable& kr);

/// Eq. 17 / Eq. 26: U ← U − p'p + p'a for U = A'_prev A when the row changed
/// from `prev_row` (its value at event start) to `new_row`. Valid because
/// each row changes at most once per event. Same padded-buffer contract as
/// ApplyGramRowUpdate.
void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row);
void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row, const RankKernelTable& kr);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_CPD_STATE_H_
