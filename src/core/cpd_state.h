// Mutable decomposition state shared by every updater: the Kruskal model
// plus the incrementally maintained Gram matrices Q(m) = A(m)'A(m) that make
// the O(1)-style updates of §V possible.

#ifndef SLICENSTITCH_CORE_CPD_STATE_H_
#define SLICENSTITCH_CORE_CPD_STATE_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/kruskal.h"

namespace sns {

/// Factor matrices + Grams. The time mode is always the last mode.
struct CpdState {
  KruskalModel model;
  /// grams[m] = A(m)'A(m), kept in lockstep with the factors by the update
  /// rules (Eqs. 13, 24, 25) or recomputed wholesale after batch steps.
  std::vector<Matrix> grams;

  CpdState() = default;
  explicit CpdState(KruskalModel m) : model(std::move(m)) { RecomputeGrams(); }

  int num_modes() const { return model.num_modes(); }
  int64_t rank() const { return model.rank(); }

  /// Recomputes every Gram matrix from the factors (O(Σ N_m R²)).
  void RecomputeGrams();

  /// Folds λ into the factors (each mode absorbs λ^(1/M)) and resets λ = 1.
  /// The unnormalized variants (everything except SNS-MAT) operate on plain
  /// factors, so ALS-initialized models are de-normalized through this.
  void AbsorbLambda();
};

/// Eq. 13 (and Eqs. 24–25 taken together): Q ← Q − p'p + a'a after the row
/// of one factor changed from `old_row` to `new_row`. Padded-buffer
/// contract: both rows must reference gram.stride() doubles with zero
/// padding lanes (Matrix rows and AlignedVector buffers qualify).
void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row);

/// Eq. 17 / Eq. 26: U ← U − p'p + p'a for U = A'_prev A when the row changed
/// from `prev_row` (its value at event start) to `new_row`. Valid because
/// each row changes at most once per event. Same padded-buffer contract as
/// ApplyGramRowUpdate.
void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_CPD_STATE_H_
