// Interface every online updater implements: react to one window event
// (Problem 2 of the paper) by adjusting the factor matrices.

#ifndef SLICENSTITCH_CORE_UPDATER_H_
#define SLICENSTITCH_CORE_UPDATER_H_

#include <string_view>

#include "common/cpu_features.h"
#include "core/cpd_state.h"
#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

class Rng;           // common/random.h
class LossFunction;  // losses/loss_function.h

/// Processes window events. `window` is the live window with the delta
/// already applied, so it equals the X + ΔX of the update rules; `delta`
/// carries ΔX itself (Definition 6).
class EventUpdater {
 public:
  virtual ~EventUpdater() = default;

  /// Display name, e.g. "SNS+RND".
  virtual std::string_view name() const = 0;

  /// Updates `state` in response to one event.
  virtual void OnEvent(const SparseTensor& window, const WindowDelta& delta,
                       CpdState& state) = 0;

  /// Pins the kernel tier (common/cpu_features.h) this updater's rank
  /// kernels run at — set by the engine from its resolved options before
  /// any event. Default: ignored (updaters without SIMD-dispatched hot
  /// loops need no tier).
  virtual void set_kernel_tier(KernelTier /*tier*/) {}

  /// Pointwise loss the updater descends — set by the engine from its
  /// options before any event (never null afterwards; the engine always
  /// passes a process-lifetime singleton). Updaters branch on kind():
  /// Gaussian runs the verbatim least-squares paths, anything else routes
  /// through the GCP Newton row step (losses/gcp_row_update.h). Default:
  /// ignored, i.e. Gaussian-only behavior.
  virtual void set_loss(const LossFunction* /*loss*/) {}

  /// The updater's private sampling Rng, or nullptr for deterministic
  /// updaters. Durability checkpoints save and restore it so a restored
  /// stream draws the identical θ-sample sequence.
  virtual Rng* MutableRng() { return nullptr; }
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_UPDATER_H_
