// Interface every online updater implements: react to one window event
// (Problem 2 of the paper) by adjusting the factor matrices.

#ifndef SLICENSTITCH_CORE_UPDATER_H_
#define SLICENSTITCH_CORE_UPDATER_H_

#include <string_view>

#include "common/cpu_features.h"
#include "core/cpd_state.h"
#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

class Rng;  // common/random.h

/// Processes window events. `window` is the live window with the delta
/// already applied, so it equals the X + ΔX of the update rules; `delta`
/// carries ΔX itself (Definition 6).
class EventUpdater {
 public:
  virtual ~EventUpdater() = default;

  /// Display name, e.g. "SNS+RND".
  virtual std::string_view name() const = 0;

  /// Updates `state` in response to one event.
  virtual void OnEvent(const SparseTensor& window, const WindowDelta& delta,
                       CpdState& state) = 0;

  /// Pins the kernel tier (common/cpu_features.h) this updater's rank
  /// kernels run at — set by the engine from its resolved options before
  /// any event. Default: ignored (updaters without SIMD-dispatched hot
  /// loops need no tier).
  virtual void set_kernel_tier(KernelTier /*tier*/) {}

  /// The updater's private sampling Rng, or nullptr for deterministic
  /// updaters. Durability checkpoints save and restore it so a restored
  /// stream draws the identical θ-sample sequence.
  virtual Rng* MutableRng() { return nullptr; }
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_UPDATER_H_
