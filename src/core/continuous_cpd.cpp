#include "core/continuous_cpd.h"

#include <algorithm>

#include "core/als.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"

namespace sns {
namespace {

std::unique_ptr<EventUpdater> MakeUpdater(const ContinuousCpdOptions& options) {
  switch (options.variant) {
    case SnsVariant::kMat:
      return std::make_unique<SnsMatUpdater>();
    case SnsVariant::kVec:
      return std::make_unique<SnsVecUpdater>();
    case SnsVariant::kRnd:
      return std::make_unique<SnsRndUpdater>(options.sample_threshold,
                                             options.seed + 1);
    case SnsVariant::kVecPlus:
      return std::make_unique<SnsVecPlusUpdater>(options.clip_bound,
                                                 options.nonnegative_factors);
    case SnsVariant::kRndPlus:
      return std::make_unique<SnsRndPlusUpdater>(
          options.sample_threshold, options.clip_bound, options.seed + 1,
          options.nonnegative_factors);
  }
  // Unhandled SnsVariant (e.g. an enum value cast from a bad integer): fail
  // loudly here instead of returning nullptr and crashing at first use.
  SNS_CHECK(false && "MakeUpdater: unhandled SnsVariant");
  return nullptr;  // Unreachable.
}

std::vector<int64_t> WithTimeMode(std::vector<int64_t> mode_dims, int w) {
  mode_dims.push_back(w);
  return mode_dims;
}

}  // namespace

StatusOr<std::unique_ptr<ContinuousCpd>> ContinuousCpd::Create(
    std::vector<int64_t> mode_dims, const ContinuousCpdOptions& options) {
  SNS_RETURN_IF_ERROR(options.Validate());
  if (mode_dims.empty()) {
    return Status::InvalidArgument("at least one non-time mode is required");
  }
  if (static_cast<int>(mode_dims.size()) + 1 > kMaxTensorModes) {
    return Status::InvalidArgument("too many modes");
  }
  for (int64_t dim : mode_dims) {
    if (dim < 1) return Status::InvalidArgument("mode sizes must be >= 1");
  }
  // Not make_unique: the constructor is private, and the engine is pinned in
  // place (no copies/moves), so it is built directly behind the pointer.
  return std::unique_ptr<ContinuousCpd>(
      new ContinuousCpd(std::move(mode_dims), options));
}

ContinuousCpd::ContinuousCpd(std::vector<int64_t> mode_dims,
                             const ContinuousCpdOptions& options)
    : options_(options),
      window_(mode_dims, options.window_size, options.period,
              options.expected_nnz),
      rng_(options.seed) {
  state_ = CpdState(
      KruskalModel::Random(
          WithTimeMode(std::move(mode_dims), options.window_size),
          options.rank, rng_),
      ResolveKernelTier(options_.force_generic_kernels));
  state_.SetFactorPrecision(options_.factor_precision);
  updater_ = MakeUpdater(options_);
  SNS_CHECK(updater_ != nullptr);
  updater_->set_kernel_tier(
      ResolveKernelTier(options_.force_generic_kernels));
}

void ContinuousCpd::IngestOnly(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time);
  window_.Ingest(tuple);
}

void ContinuousCpd::InitializeWithAls() {
  const KernelTier tier = ResolveKernelTier(options_.force_generic_kernels);
  state_ = CpdState(
      AlsDecompose(window_.tensor(), options_.rank, options_.init, rng_, tier),
      tier);
  if (options_.variant != SnsVariant::kMat) {
    // The row variants operate on raw factors with λ = 1.
    state_.AbsorbLambda();
  }
  if (options_.nonnegative_factors) {
    // Project the unconstrained ALS initialization onto the feasible set;
    // subsequent updates keep factors in [0, η].
    for (int m = 0; m < state_.num_modes(); ++m) {
      Matrix& factor = state_.model.factor(m);
      for (int64_t i = 0; i < factor.rows(); ++i) {
        double* row = factor.Row(i);
        for (int64_t r = 0; r < factor.cols(); ++r) {
          if (row[r] < 0.0) row[r] = 0.0;
        }
      }
    }
    state_.RecomputeGrams();
  }
  // Re-enter the configured precision: ALS produced fresh double factors,
  // so mixed mode re-quantizes them and rebuilds the float32 mirrors.
  state_.SetFactorPrecision(options_.factor_precision);
  fitness_tracker_.Reset(window_.tensor(), state_,
                         options_.fitness_resync_interval);
  updates_enabled_ = true;
}

void ContinuousCpd::HandleEvent(const WindowDelta& delta) {
  if (!updates_enabled_) return;
  if (observer_) observer_(delta, state_.model, window_.tensor());
  fitness_tracker_.OnWindowDelta(delta, window_.tensor(), state_);
  Stopwatch timer;
  updater_->OnEvent(window_.tensor(), delta, state_);
  update_seconds_ += timer.ElapsedSeconds();
  ++events_processed_;
  fitness_tracker_.OnFactorsUpdated(state_);
}

void ContinuousCpd::ProcessTuple(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
  WindowDelta delta = window_.Ingest(tuple);
  HandleEvent(delta);
}

void ContinuousCpd::ProcessBatch(std::span<const Tuple> tuples) {
  // Same event order as per-tuple processing (scheduled events due at or
  // before each arrival drain first), but the earliest due time is cached
  // across the batch: a tuple only touches the schedule heap when an event
  // is actually due. Ingest schedules the tuple's first slide at
  // t + period, which is folded into the cached bound without re-reading
  // the heap.
  int64_t next_due = window_.NextScheduledTime();
  for (const Tuple& tuple : tuples) {
    if (next_due <= tuple.time) {
      window_.AdvanceTo(
          tuple.time, [this](const WindowDelta& delta) { HandleEvent(delta); });
      next_due = window_.NextScheduledTime();
    }
    WindowDelta delta = window_.Ingest(tuple);
    if (!delta.cells.empty()) {
      next_due = std::min(next_due, tuple.time + options_.period);
    }
    HandleEvent(delta);
  }
}

void ContinuousCpd::AdvanceTo(int64_t time) {
  window_.AdvanceTo(time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
}

}  // namespace sns
