#include "core/continuous_cpd.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/serial.h"
#include "core/als.h"
#include "losses/loss_function.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"

namespace sns {
namespace {

std::unique_ptr<EventUpdater> MakeUpdater(const ContinuousCpdOptions& options) {
  switch (options.variant) {
    case SnsVariant::kMat:
      return std::make_unique<SnsMatUpdater>();
    case SnsVariant::kVec:
      return std::make_unique<SnsVecUpdater>();
    case SnsVariant::kRnd:
      return std::make_unique<SnsRndUpdater>(options.sample_threshold,
                                             options.seed + 1);
    case SnsVariant::kVecPlus:
      return std::make_unique<SnsVecPlusUpdater>(options.clip_bound,
                                                 options.nonnegative_factors);
    case SnsVariant::kRndPlus:
      return std::make_unique<SnsRndPlusUpdater>(
          options.sample_threshold, options.clip_bound, options.seed + 1,
          options.nonnegative_factors);
  }
  // Unhandled SnsVariant (e.g. an enum value cast from a bad integer): fail
  // loudly here instead of returning nullptr and crashing at first use.
  SNS_CHECK(false && "MakeUpdater: unhandled SnsVariant");
  return nullptr;  // Unreachable.
}

std::vector<int64_t> WithTimeMode(std::vector<int64_t> mode_dims, int w) {
  mode_dims.push_back(w);
  return mode_dims;
}

// Section tags of the engine snapshot: cheap structural self-checks that
// turn a decoder/format drift into a typed failure instead of garbage state.
constexpr uint32_t kTagWindow = 0x444E4957;    // "WIND"
constexpr uint32_t kTagModel = 0x53445043;     // "CPDS"
constexpr uint32_t kTagFitness = 0x4E544946;   // "FITN"
constexpr uint32_t kTagRng = 0x53474E52;       // "RNGS"
constexpr uint32_t kTagCounters = 0x52544E43;  // "CNTR"
// Trailing section present only when UsesExtendedState(): generalized-loss
// fitness sums, the outlier decay schedule, and the sparse outlier store.
// Gaussian non-robust engines never write it, keeping their snapshots
// byte-identical to pre-loss builds.
constexpr uint32_t kTagLoss = 0x53534F4C;      // "LOSS"

Status ExpectTag(serial::Reader& r, uint32_t want, const char* what) {
  uint32_t got = 0;
  SNS_RETURN_IF_ERROR(r.U32(&got));
  if (got != want) {
    return Status::DataLoss(std::string("engine snapshot is missing its ") +
                            what + " section");
  }
  return Status::OK();
}

void WriteMatrixEntries(serial::Writer& w, const Matrix& m) {
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* row = m.Row(i);
    for (int64_t j = 0; j < m.cols(); ++j) w.F64(row[j]);
  }
}

Status ReadMatrixEntries(serial::Reader& r, Matrix& m) {
  for (int64_t i = 0; i < m.rows(); ++i) {
    double* row = m.Row(i);
    for (int64_t j = 0; j < m.cols(); ++j) {
      SNS_RETURN_IF_ERROR(r.F64(&row[j]));
    }
  }
  return Status::OK();
}

void WriteRngState(serial::Writer& w, const RngState& s) {
  for (uint64_t word : s.state) w.U64(word);
  w.U8(s.has_cached_normal ? 1 : 0);
  w.F64(s.cached_normal);
}

Status ReadRngState(serial::Reader& r, RngState& s) {
  for (uint64_t& word : s.state) SNS_RETURN_IF_ERROR(r.U64(&word));
  uint8_t has_cached = 0;
  SNS_RETURN_IF_ERROR(r.U8(&has_cached));
  s.has_cached_normal = has_cached != 0;
  return r.F64(&s.cached_normal);
}

}  // namespace

StatusOr<std::unique_ptr<ContinuousCpd>> ContinuousCpd::Create(
    std::vector<int64_t> mode_dims, const ContinuousCpdOptions& options) {
  SNS_RETURN_IF_ERROR(options.Validate());
  if (mode_dims.empty()) {
    return Status::InvalidArgument("at least one non-time mode is required");
  }
  if (static_cast<int>(mode_dims.size()) + 1 > kMaxTensorModes) {
    return Status::InvalidArgument("too many modes");
  }
  for (int64_t dim : mode_dims) {
    if (dim < 1) return Status::InvalidArgument("mode sizes must be >= 1");
  }
  // Not make_unique: the constructor is private, and the engine is pinned in
  // place (no copies/moves), so it is built directly behind the pointer.
  return std::unique_ptr<ContinuousCpd>(
      new ContinuousCpd(std::move(mode_dims), options));
}

ContinuousCpd::ContinuousCpd(std::vector<int64_t> mode_dims,
                             const ContinuousCpdOptions& options)
    : options_(options),
      window_(mode_dims, options.window_size, options.period,
              options.expected_nnz),
      rng_(options.seed) {
  state_ = CpdState(
      KruskalModel::Random(
          WithTimeMode(std::move(mode_dims), options.window_size),
          options.rank, rng_),
      ResolveKernelTier(options_.force_generic_kernels));
  state_.SetFactorPrecision(options_.factor_precision);
  updater_ = MakeUpdater(options_);
  SNS_CHECK(updater_ != nullptr);
  updater_->set_kernel_tier(
      ResolveKernelTier(options_.force_generic_kernels));
  loss_ = &GetLossFunction(options_.loss);
  if (options_.loss != LossKind::kGaussian) {
    // The Gaussian default deliberately leaves the updater and tracker
    // untouched (null loss) so their hot paths stay bitwise-identical.
    updater_->set_loss(loss_);
    fitness_tracker_.SetLoss(loss_);
  }
  if (options_.robust.enabled) {
    outliers_.Configure(options_.robust.threshold, options_.robust.decay,
                        options_.robust.capacity);
  }
}

void ContinuousCpd::IngestOnly(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time);
  window_.Ingest(tuple);
}

void ContinuousCpd::InitializeWithAls() {
  const KernelTier tier = ResolveKernelTier(options_.force_generic_kernels);
  state_ = CpdState(
      AlsDecompose(window_.tensor(), options_.rank, options_.init, rng_, tier),
      tier);
  if (options_.variant != SnsVariant::kMat ||
      options_.loss != LossKind::kGaussian) {
    // The row variants operate on raw factors with λ = 1. The GCP sweep
    // used by non-Gaussian SNS-MAT also skips column normalization, so it
    // absorbs λ here too.
    state_.AbsorbLambda();
  }
  if (options_.nonnegative_factors) {
    // Project the unconstrained ALS initialization onto the feasible set;
    // subsequent updates keep factors in [0, η].
    for (int m = 0; m < state_.num_modes(); ++m) {
      Matrix& factor = state_.model.factor(m);
      for (int64_t i = 0; i < factor.rows(); ++i) {
        double* row = factor.Row(i);
        for (int64_t r = 0; r < factor.cols(); ++r) {
          if (row[r] < 0.0) row[r] = 0.0;
        }
      }
    }
    state_.RecomputeGrams();
  }
  // Re-enter the configured precision: ALS produced fresh double factors,
  // so mixed mode re-quantizes them and rebuilds the float32 mirrors.
  state_.SetFactorPrecision(options_.factor_precision);
  fitness_tracker_.Reset(window_.tensor(), state_,
                         options_.fitness_resync_interval);
  // Robust mode restarts from a clean slate: (re)initialization explains the
  // whole window with L, and the decay clock re-arms on the next arrival.
  // Keeps restore-then-replay deterministic.
  outliers_.Clear();
  outlier_decay_armed_ = false;
  next_outlier_decay_ = 0;
  updates_enabled_ = true;
}

void ContinuousCpd::HandleEvent(const WindowDelta& delta,
                                double outlier_capture) {
  if (!updates_enabled_) return;
  if (observer_) {
    observer_(delta, state_.model, window_.tensor(), outlier_capture);
  }
  fitness_tracker_.OnWindowDelta(delta, window_.tensor(), state_);
  Stopwatch timer;
  updater_->OnEvent(window_.tensor(), delta, state_);
  update_seconds_ += timer.ElapsedSeconds();
  ++events_processed_;
  fitness_tracker_.OnFactorsUpdated(state_);
}

double ContinuousCpd::MaybeCaptureOutlier(Tuple& tuple) {
  if (!options_.robust.enabled || !updates_enabled_) return 0.0;
  MaybeDecayOutliers(tuple.time);
  // Residual of the post-arrival cell value against the model's predicted
  // mean μ = Link(θ) at the newest slice. Evaluated after AdvanceTo so
  // slide/expiry events due before this arrival have already been applied.
  const ModeIndex cell = tuple.index.WithAppended(options_.window_size - 1);
  const double theta = state_.model.Evaluate(cell);
  const double mu = loss_->Link(theta);
  const double observed = window_.tensor().Get(cell) + tuple.value;
  const double residual = observed - mu;
  // Bound the capture by the observed mass: S separates observed data, never
  // the model's own prediction. Without the bound, an over-predicting
  // exponential link (Poisson) captures its huge negative residual and the
  // cleaned ingest v − s ≈ μ writes the blown-up prediction back into the
  // window as fake mass, which the next row fit chases even higher.
  const double limit = std::fabs(observed) + options_.robust.threshold;
  const double captured =
      outliers_.Capture(tuple.index, std::clamp(residual, -limit, limit));
  tuple.value -= captured;  // Only the cleaned part reaches the window.
  return captured;
}

void ContinuousCpd::MaybeDecayOutliers(int64_t time) {
  if (!outlier_decay_armed_) {
    // Arm on the first robust arrival: decay periods are counted from the
    // first captured-against timestamp, not from an absolute epoch.
    outlier_decay_armed_ = true;
    next_outlier_decay_ = time + options_.period;
    return;
  }
  while (time >= next_outlier_decay_) {
    outliers_.Decay();
    next_outlier_decay_ += options_.period;
  }
}

void ContinuousCpd::ProcessTuple(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
  if (options_.robust.enabled && updates_enabled_) {
    Tuple cleaned = tuple;
    const double captured = MaybeCaptureOutlier(cleaned);
    WindowDelta delta = window_.Ingest(cleaned);
    HandleEvent(delta, captured);
    return;
  }
  WindowDelta delta = window_.Ingest(tuple);
  HandleEvent(delta);
}

void ContinuousCpd::ProcessBatch(std::span<const Tuple> tuples) {
  // Same event order as per-tuple processing (scheduled events due at or
  // before each arrival drain first), but the earliest due time is cached
  // across the batch: a tuple only touches the schedule heap when an event
  // is actually due. Ingest schedules the tuple's first slide at
  // t + period, which is folded into the cached bound without re-reading
  // the heap.
  int64_t next_due = window_.NextScheduledTime();
  for (const Tuple& tuple : tuples) {
    if (next_due <= tuple.time) {
      window_.AdvanceTo(
          tuple.time, [this](const WindowDelta& delta) { HandleEvent(delta); });
      next_due = window_.NextScheduledTime();
    }
    if (options_.robust.enabled && updates_enabled_) {
      Tuple cleaned = tuple;
      const double captured = MaybeCaptureOutlier(cleaned);
      WindowDelta delta = window_.Ingest(cleaned);
      if (!delta.cells.empty()) {
        next_due = std::min(next_due, tuple.time + options_.period);
      }
      HandleEvent(delta, captured);
      continue;
    }
    WindowDelta delta = window_.Ingest(tuple);
    if (!delta.cells.empty()) {
      next_due = std::min(next_due, tuple.time + options_.period);
    }
    HandleEvent(delta);
  }
}

void ContinuousCpd::AdvanceTo(int64_t time) {
  window_.AdvanceTo(time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
}

void ContinuousCpd::SerializeTo(serial::Writer& w) const {
  w.U32(kTagWindow);
  window_.SerializeTo(w);

  w.U32(kTagModel);
  const KruskalModel& model = state_.model;
  const int modes = state_.num_modes();
  const int64_t rank = state_.rank();
  w.U32(static_cast<uint32_t>(modes));
  w.I64(rank);
  for (int m = 0; m < modes; ++m) {
    const Matrix& factor = model.factor(m);
    w.I64(factor.rows());
    WriteMatrixEntries(w, factor);
  }
  for (double lambda : model.lambda()) w.F64(lambda);
  // Grams verbatim: they are maintained incrementally (Eq. 13) and
  // accumulate rounding in event order, so they bitwise-differ from a fresh
  // recomputation; restoring a recomputed Gram would fork the trajectory.
  for (const Matrix& gram : state_.grams) WriteMatrixEntries(w, gram);
  w.U8(static_cast<uint8_t>(state_.precision));

  w.U32(kTagFitness);
  const FitnessAccumulators acc = fitness_tracker_.SaveAccumulators();
  w.F64(acc.norm_x_sq);
  w.F64(acc.inner);
  w.I64(acc.events_since_resync);

  w.U32(kTagRng);
  WriteRngState(w, rng_.SaveState());
  const Rng* updater_rng = updater_->MutableRng();
  w.U8(updater_rng != nullptr ? 1 : 0);
  if (updater_rng != nullptr) WriteRngState(w, updater_rng->SaveState());

  w.U32(kTagCounters);
  w.U8(updates_enabled_ ? 1 : 0);
  w.I64(events_processed_);

  if (UsesExtendedState()) {
    w.U32(kTagLoss);
    w.F64(acc.loss_sum);
    w.F64(acc.baseline_sum);
    w.U8(outlier_decay_armed_ ? 1 : 0);
    w.I64(next_outlier_decay_);
    outliers_.SerializeTo(w);
  }
}

Status ContinuousCpd::RestoreFrom(serial::Reader& r) {
  SNS_RETURN_IF_ERROR(ExpectTag(r, kTagWindow, "window"));
  SNS_RETURN_IF_ERROR(window_.RestoreFrom(r));

  SNS_RETURN_IF_ERROR(ExpectTag(r, kTagModel, "model"));
  KruskalModel& model = state_.model;
  const int modes = state_.num_modes();
  const int64_t rank = state_.rank();
  uint32_t stored_modes = 0;
  int64_t stored_rank = 0;
  SNS_RETURN_IF_ERROR(r.U32(&stored_modes));
  SNS_RETURN_IF_ERROR(r.I64(&stored_rank));
  if (static_cast<int>(stored_modes) != modes || stored_rank != rank) {
    return Status::DataLoss(
        "snapshot model shape (" + std::to_string(stored_modes) + " modes, "
        "rank " + std::to_string(stored_rank) + ") does not match the "
        "engine (" + std::to_string(modes) + " modes, rank " +
        std::to_string(rank) + ")");
  }
  for (int m = 0; m < modes; ++m) {
    Matrix& factor = model.factor(m);
    int64_t rows = 0;
    SNS_RETURN_IF_ERROR(r.I64(&rows));
    if (rows != factor.rows()) {
      return Status::DataLoss("snapshot factor " + std::to_string(m) +
                              " has " + std::to_string(rows) +
                              " rows; engine expects " +
                              std::to_string(factor.rows()));
    }
    SNS_RETURN_IF_ERROR(ReadMatrixEntries(r, factor));
  }
  for (double& lambda : model.lambda()) SNS_RETURN_IF_ERROR(r.F64(&lambda));
  // Mixed precision: the serialized doubles already hold float32-
  // representable values, so re-quantizing is an identity on them — it only
  // rebuilds the float32 mirrors. Runs before the Grams are read because it
  // recomputes them as a side effect.
  if (state_.mixed()) state_.QuantizeFactorsToF32();
  for (Matrix& gram : state_.grams) SNS_RETURN_IF_ERROR(ReadMatrixEntries(r, gram));
  uint8_t stored_precision = 0;
  SNS_RETURN_IF_ERROR(r.U8(&stored_precision));
  if (stored_precision != static_cast<uint8_t>(options_.factor_precision)) {
    return Status::DataLoss(
        "snapshot factor precision does not match the engine options");
  }

  SNS_RETURN_IF_ERROR(ExpectTag(r, kTagFitness, "fitness"));
  FitnessAccumulators acc;
  SNS_RETURN_IF_ERROR(r.F64(&acc.norm_x_sq));
  SNS_RETURN_IF_ERROR(r.F64(&acc.inner));
  SNS_RETURN_IF_ERROR(r.I64(&acc.events_since_resync));

  SNS_RETURN_IF_ERROR(ExpectTag(r, kTagRng, "rng"));
  RngState engine_rng;
  SNS_RETURN_IF_ERROR(ReadRngState(r, engine_rng));
  rng_.RestoreState(engine_rng);
  uint8_t has_updater_rng = 0;
  SNS_RETURN_IF_ERROR(r.U8(&has_updater_rng));
  Rng* updater_rng = updater_->MutableRng();
  if ((has_updater_rng != 0) != (updater_rng != nullptr)) {
    return Status::DataLoss(
        "snapshot updater rng presence does not match the engine variant");
  }
  if (updater_rng != nullptr) {
    RngState sampling_rng;
    SNS_RETURN_IF_ERROR(ReadRngState(r, sampling_rng));
    updater_rng->RestoreState(sampling_rng);
  }

  SNS_RETURN_IF_ERROR(ExpectTag(r, kTagCounters, "counter"));
  uint8_t updates_enabled = 0;
  SNS_RETURN_IF_ERROR(r.U8(&updates_enabled));
  updates_enabled_ = updates_enabled != 0;
  SNS_RETURN_IF_ERROR(r.I64(&events_processed_));
  if (events_processed_ < 0) {
    return Status::DataLoss("snapshot event counter is negative");
  }

  if (UsesExtendedState()) {
    SNS_RETURN_IF_ERROR(ExpectTag(r, kTagLoss, "loss"));
    SNS_RETURN_IF_ERROR(r.F64(&acc.loss_sum));
    SNS_RETURN_IF_ERROR(r.F64(&acc.baseline_sum));
    uint8_t decay_armed = 0;
    SNS_RETURN_IF_ERROR(r.U8(&decay_armed));
    outlier_decay_armed_ = decay_armed != 0;
    SNS_RETURN_IF_ERROR(r.I64(&next_outlier_decay_));
    SNS_RETURN_IF_ERROR(outliers_.RestoreFrom(r));
  }
  // Wall-clock latency telemetry restarts at zero — it is nondeterministic
  // by nature and deliberately not part of the snapshot.
  update_seconds_ = 0.0;

  // Rebind the fitness tracker last: Reset sizes its scratch against the
  // restored model and runs an exact resync, whose terms are then replaced
  // by the snapshot's accumulators to resume the estimate mid-interval.
  if (updates_enabled_) {
    fitness_tracker_.Reset(window_.tensor(), state_,
                           options_.fitness_resync_interval);
  }
  fitness_tracker_.RestoreAccumulators(acc);
  return Status::OK();
}

}  // namespace sns
