#include "core/continuous_cpd.h"

#include "core/als.h"
#include "core/sns_mat.h"
#include "core/sns_rnd.h"
#include "core/sns_rnd_plus.h"
#include "core/sns_vec.h"
#include "core/sns_vec_plus.h"

namespace sns {
namespace {

std::unique_ptr<EventUpdater> MakeUpdater(const ContinuousCpdOptions& options) {
  switch (options.variant) {
    case SnsVariant::kMat:
      return std::make_unique<SnsMatUpdater>();
    case SnsVariant::kVec:
      return std::make_unique<SnsVecUpdater>();
    case SnsVariant::kRnd:
      return std::make_unique<SnsRndUpdater>(options.sample_threshold,
                                             options.seed + 1);
    case SnsVariant::kVecPlus:
      return std::make_unique<SnsVecPlusUpdater>(options.clip_bound,
                                                 options.nonnegative_factors);
    case SnsVariant::kRndPlus:
      return std::make_unique<SnsRndPlusUpdater>(
          options.sample_threshold, options.clip_bound, options.seed + 1,
          options.nonnegative_factors);
  }
  // Unhandled SnsVariant (e.g. an enum value cast from a bad integer): fail
  // loudly here instead of returning nullptr and crashing at first use.
  SNS_CHECK(false && "MakeUpdater: unhandled SnsVariant");
  return nullptr;  // Unreachable.
}

std::vector<int64_t> WithTimeMode(std::vector<int64_t> mode_dims, int w) {
  mode_dims.push_back(w);
  return mode_dims;
}

}  // namespace

StatusOr<ContinuousCpd> ContinuousCpd::Create(
    std::vector<int64_t> mode_dims, const ContinuousCpdOptions& options) {
  SNS_RETURN_IF_ERROR(options.Validate());
  if (mode_dims.empty()) {
    return Status::InvalidArgument("at least one non-time mode is required");
  }
  if (static_cast<int>(mode_dims.size()) + 1 > kMaxTensorModes) {
    return Status::InvalidArgument("too many modes");
  }
  for (int64_t dim : mode_dims) {
    if (dim < 1) return Status::InvalidArgument("mode sizes must be >= 1");
  }
  return ContinuousCpd(std::move(mode_dims), options);
}

ContinuousCpd::ContinuousCpd(std::vector<int64_t> mode_dims,
                             const ContinuousCpdOptions& options)
    : options_(options),
      window_(mode_dims, options.window_size, options.period,
              options.expected_nnz),
      rng_(options.seed) {
  state_ = CpdState(KruskalModel::Random(
      WithTimeMode(std::move(mode_dims), options.window_size), options.rank,
      rng_));
  updater_ = MakeUpdater(options_);
  SNS_CHECK(updater_ != nullptr);
}

void ContinuousCpd::IngestOnly(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time);
  window_.Ingest(tuple);
}

void ContinuousCpd::InitializeWithAls() {
  state_ =
      CpdState(AlsDecompose(window_.tensor(), options_.rank, options_.init,
                            rng_));
  if (options_.variant != SnsVariant::kMat) {
    // The row variants operate on raw factors with λ = 1.
    state_.AbsorbLambda();
  }
  if (options_.nonnegative_factors) {
    // Project the unconstrained ALS initialization onto the feasible set;
    // subsequent updates keep factors in [0, η].
    for (int m = 0; m < state_.num_modes(); ++m) {
      Matrix& factor = state_.model.factor(m);
      for (int64_t i = 0; i < factor.rows(); ++i) {
        double* row = factor.Row(i);
        for (int64_t r = 0; r < factor.cols(); ++r) {
          if (row[r] < 0.0) row[r] = 0.0;
        }
      }
    }
    state_.RecomputeGrams();
  }
  updates_enabled_ = true;
}

void ContinuousCpd::HandleEvent(const WindowDelta& delta) {
  if (!updates_enabled_) return;
  if (observer_) observer_(delta, state_.model, window_.tensor());
  Stopwatch timer;
  updater_->OnEvent(window_.tensor(), delta, state_);
  update_seconds_ += timer.ElapsedSeconds();
  ++events_processed_;
}

void ContinuousCpd::ProcessTuple(const Tuple& tuple) {
  window_.AdvanceTo(tuple.time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
  WindowDelta delta = window_.Ingest(tuple);
  HandleEvent(delta);
}

void ContinuousCpd::AdvanceTo(int64_t time) {
  window_.AdvanceTo(time,
                    [this](const WindowDelta& delta) { HandleEvent(delta); });
}

}  // namespace sns
