// Common outline of SNS-VEC / SNS-RND / SNS+VEC / SNS+RND (Algorithm 3).
//
// Per event, only the rows that approximate changed cells are touched:
// first the affected time-mode row(s) (the slice the value left and the
// slice it entered), then the i_m-th row of every non-time factor. This base
// class implements that dispatch plus the bookkeeping the variants share:
//   - Gram maintenance Q(m) = A(m)'A(m) after each row commit (Eq. 13),
//   - the event-start products U(m) = A(m)'_prev A(m) (Alg. 3 line 1,
//     Eqs. 17/26) for the sampling variants — maintained as per-event rank-1
//     delta records (U(m) = Q(m) + Σ (p−a)'a over this event's committed
//     rows) instead of the O(N·R²) deep copy the algorithm literally asks
//     for,
//   - deduplicated row snapshots (inline storage, O(1) lookup) so the
//     pre-event model X̃ = ⟦B(1)…B(M)⟧ can be evaluated exactly while rows
//     are being overwritten (needed by the residual corrections
//     x̄_J = x_J − x̃_J of Eqs. 16/23),
//   - the per-event UpdateWorkspace and the GramProductCache that hands each
//     UpdateRow its Hadamard-of-Grams product in O(R²) amortized.
//
// The steady-state event path performs zero heap allocations (guarded by
// tests/hot_path_test.cpp).

#ifndef SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_
#define SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_

#include <array>
#include <vector>

#include "core/gram_product_cache.h"
#include "core/update_workspace.h"
#include "core/updater.h"
#include "losses/gcp_row_update.h"

namespace sns {

class RowUpdaterBase : public EventUpdater {
 public:
  void OnEvent(const SparseTensor& window, const WindowDelta& delta,
               CpdState& state) final;

  /// Engine-resolved kernel tier for every rank kernel this updater runs
  /// (workspace table, Gram cache, Cholesky solver). Takes effect at the
  /// next event's workspace Prepare.
  void set_kernel_tier(KernelTier tier) final { tier_ = tier; }

  /// Engine-configured pointwise loss. Gaussian (the default) changes
  /// nothing anywhere — GcpUpdateRow below bails out before touching any
  /// loss machinery, keeping the least-squares paths bitwise intact.
  void set_loss(const LossFunction* loss) final { loss_ = loss; }

 protected:
  /// sample_capacity: upper bound on the cells one SampleSliceCellsInto call
  /// may produce (θ plus delta-cell slack); 0 for variants that never
  /// sample. Pre-reserves the workspace sample buffer.
  explicit RowUpdaterBase(int64_t sample_capacity = 0)
      : sample_capacity_(sample_capacity) {}

  /// True for the RND variants, which need U(m) = A(m)'_prev A(m).
  virtual bool NeedsPrevGrams() const = 0;

  /// Updates A(mode)(row, :) in `state` (factor write + CommitRow call).
  /// On entry ws.h holds ∗_{n≠mode} Q(n) for the current Gram state; the
  /// other ws buffers are free scratch.
  virtual void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                         const WindowDelta& delta, CpdState& state,
                         UpdateWorkspace& ws) = 0;

  /// The value A(mode)(row, :) had at event start (snapshot for rows being
  /// updated, live row otherwise). O(1): non-time snapshots are indexed by
  /// mode, time-mode snapshots are at most two slots.
  const double* PrevRow(int mode, int64_t row, const CpdState& state) const;

  /// X̃ at one cell using the event-start factors B(m) (λ is 1 for all row
  /// variants).
  double EvaluatePrevModel(const ModeIndex& index,
                           const CpdState& state) const;

  /// After writing the new row into state.model, updates Q(mode) (Eq. 13 /
  /// Eqs. 24-25) and, when NeedsPrevGrams(), records the rank-1 delta that
  /// lets U(mode) be reconstructed from Q(mode) (Eq. 17 / Eq. 26).
  /// `old_row` is the row content from immediately before this update, which
  /// equals its event-start value because each row updates once per event.
  void CommitRow(int mode, int64_t row, const double* old_row,
                 CpdState& state);

  /// ws.h_prev = ∗_{n≠skip_mode} U(n), with each U(n) reconstructed from the
  /// live Q(n) and this event's committed-row deltas:
  /// U(n) = Q(n) + Σ_rows (p−a)'a. Only valid when NeedsPrevGrams().
  void HadamardOfPrevGramsExcept(const CpdState& state, int skip_mode,
                                 UpdateWorkspace& ws) const;

  /// Non-Gaussian escape hatch shared by every row variant, called first
  /// thing in each UpdateRow: returns false (doing nothing) under the
  /// Gaussian default, so the variant runs its exact least-squares rule
  /// unchanged. For any other loss it performs one damped Newton GCP step
  /// on the row (losses/gcp_row_update.h) — over the full window slice, or
  /// over θ-sampled cells plus the event's delta cells when
  /// sample_threshold > 0 and the slice is heavier than it (the RND
  /// variants' contract) — commits the row through the usual Gram
  /// maintenance, and returns true.
  bool GcpUpdateRow(int mode, int64_t row, const SparseTensor& window,
                    const WindowDelta& delta, CpdState& state, double clip_min,
                    double clip_max, int64_t sample_threshold, Rng* rng);

  /// Number of distinct rows snapshotted for the current event (test hook
  /// for the dedup guarantee).
  int snapshot_count() const { return num_time_snaps_ + time_mode_; }

  /// Precision-dispatched per-row kernels shared by every variant: mixed
  /// precision reads the float32 factor mirrors with double accumulation,
  /// float64 reads the double factors. Both run through ws.kernels (the
  /// engine's pinned tier).
  void HadamardRowDispatch(const CpdState& state, const ModeIndex& index,
                           int skip_mode, double* out,
                           UpdateWorkspace& ws) const;
  void MttkrpRowDispatch(const SparseTensor& window, const CpdState& state,
                         int mode, int64_t row, double* out, double* had,
                         UpdateWorkspace& ws) const;

 private:
  void BeginEvent(const WindowDelta& delta, const CpdState& state);

  UpdateWorkspace ws_;
  GramProductCache gram_cache_;
  // GCP scratch of the non-Gaussian path; never Prepared (zero footprint)
  // under the Gaussian default.
  GcpRowWorkspace gcp_ws_;
  const LossFunction* loss_ = nullptr;
  KernelTier tier_ = ResolveKernelTier();
  int64_t sample_capacity_;
  int time_mode_ = 0;
  int64_t snap_rank_ = 0;
  // Segment stride of the snapshot/delta arenas: PaddedRank(rank), so each
  // segment is a valid padded row (zero padding copied straight from the
  // factor rows) that the padded Gram kernels may read in full.
  int64_t snap_stride_ = 0;

  // Deduplicated row snapshots with inline storage: one slot per non-time
  // mode (every non-time mode snapshots exactly its i_m-th row) plus at
  // most two time-mode slots (the two slices a slide touches). Values live
  // in the flat snapshot_values_ arena: non-time mode m at segment m, time
  // slot t at segment kMaxTensorModes + t.
  std::array<int64_t, kMaxTensorModes> mode_snap_row_;
  std::array<int64_t, 2> time_snap_row_;
  int num_time_snaps_ = 0;
  AlignedVector snapshot_values_;

  // Per-event Gram delta records replacing the prev-Gram deep copy: each
  // committed row stores (p − a) and a back to back in delta_values_.
  std::array<int, kMaxTensorModes + 2> delta_mode_;
  int num_gram_deltas_ = 0;
  AlignedVector delta_values_;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_
