// Common outline of SNS-VEC / SNS-RND / SNS+VEC / SNS+RND (Algorithm 3).
//
// Per event, only the rows that approximate changed cells are touched:
// first the affected time-mode row(s) (the slice the value left and the
// slice it entered), then the i_m-th row of every non-time factor. This base
// class implements that dispatch plus the bookkeeping the variants share:
//   - Gram maintenance Q(m) = A(m)'A(m) after each row commit (Eq. 13),
//   - the event-start copy U(m) = A(m)'_prev A(m) and its maintenance
//     (Alg. 3 line 1, Eqs. 17/26) for the sampling variants,
//   - row snapshots so the pre-event model X̃ = ⟦B(1)…B(M)⟧ can be evaluated
//     exactly while rows are being overwritten (needed by the residual
//     corrections x̄_J = x_J − x̃_J of Eqs. 16/23).

#ifndef SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_
#define SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_

#include <vector>

#include "core/updater.h"

namespace sns {

class RowUpdaterBase : public EventUpdater {
 public:
  void OnEvent(const SparseTensor& window, const WindowDelta& delta,
               CpdState& state) final;

 protected:
  /// True for the RND variants, which need U(m) = A(m)'_prev A(m).
  virtual bool NeedsPrevGrams() const = 0;

  /// Updates A(mode)(row, :) in `state` (factor write + CommitRow call).
  virtual void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                         const WindowDelta& delta, CpdState& state) = 0;

  /// U(m) matrices copied from Q(m) at event start and maintained by
  /// CommitRow. Only valid when NeedsPrevGrams().
  const std::vector<Matrix>& prev_grams() const { return prev_grams_; }

  /// The value A(mode)(row, :) had at event start (snapshot for rows being
  /// updated, live row otherwise).
  const double* PrevRow(int mode, int64_t row, const CpdState& state) const;

  /// X̃ at one cell using the event-start factors B(m) (λ is 1 for all row
  /// variants).
  double EvaluatePrevModel(const ModeIndex& index,
                           const CpdState& state) const;

  /// After writing the new row into state.model, updates Q(mode) (Eq. 13 /
  /// Eqs. 24-25) and, when applicable, U(mode) (Eq. 17 / Eq. 26).
  /// `old_row` is the row content from immediately before this update, which
  /// equals its event-start value because each row updates once per event.
  void CommitRow(int mode, int64_t row, const std::vector<double>& old_row,
                 CpdState& state);

 private:
  struct RowSnapshot {
    int mode;
    int64_t row;
    std::vector<double> values;
  };

  void BeginEvent(const WindowDelta& delta, const CpdState& state);

  std::vector<Matrix> prev_grams_;
  std::vector<RowSnapshot> snapshots_;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_ROW_UPDATER_BASE_H_
