// Alternating Least Squares (Eq. 4) — the standard batch CP decomposition.
//
// ALS plays three roles in the reproduction, exactly as in the paper:
//   1. factor initialization on the initial tensor window (§VI-A),
//   2. the offline accuracy reference of "relative fitness" (§VI),
//   3. a single sweep of it is the body of SNS-MAT (Alg. 2).

#ifndef SLICENSTITCH_CORE_ALS_H_
#define SLICENSTITCH_CORE_ALS_H_

#include <vector>

#include "common/cpu_features.h"
#include "common/random.h"
#include "core/cpd_state.h"
#include "core/gram_product_cache.h"
#include "core/gram_solve.h"
#include "core/options.h"
#include "linalg/simd.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Preallocated scratch space of one ALS sweep, reused across sweeps (and
/// across events by SNS-MAT, whose per-event sweep performs zero heap
/// allocations once the workspace is warm — guarded by
/// tests/hot_path_test.cpp). Rank-length scratch is aligned and padded
/// (linalg/simd.h) so the padded rank-dispatch kernels apply.
struct AlsWorkspace {
  /// (Re)sizes the buffers for `state`'s shape and pins the solver / Gram
  /// chain to `tier`; allocation-free no-op when the shape is unchanged.
  void Prepare(const CpdState& state);

  /// Kernel tier every rank kernel of the sweep runs at. Set before
  /// Prepare (SNS-MAT threads the engine's resolved tier through here).
  KernelTier tier = ResolveKernelTier();

  std::vector<Matrix> mttkrp;  // Per-mode MTTKRP output (factor-shaped).
  Matrix h;                    // Hadamard-of-Grams of the current mode.
  AlignedVector had;           // Per-entry Hadamard row scratch.
  AlignedVector col_norm_sq;   // Per-component ‖column‖² accumulator.
  AlignedVector col_scale;     // Per-component 1/‖column‖ (0 for dead cols).
  GramSolver solver;
  GramProductCache grams;
};

/// One full alternating sweep over every mode of `x` (Alg. 2 lines 1-7):
/// A(m) ← X_(m)(⊙_{n≠m} A(n)) H†, optionally followed by column
/// normalization into λ. Grams are refreshed per mode. All scratch comes
/// from `ws` — the hot-path form SNS-MAT calls once per event.
void AlsSweep(const SparseTensor& x, CpdState& state, bool normalize_columns,
              AlsWorkspace& ws);

/// Convenience overload with a throwaway workspace.
void AlsSweep(const SparseTensor& x, CpdState& state, bool normalize_columns);

/// Batch CP decomposition of `x` with random Uniform[0,1) initialization:
/// sweeps until the fitness gain drops below options.fitness_tolerance or
/// options.max_iterations is hit. `tier` pins the sweep kernels (the
/// fitness evaluations of the stopping rule run at the auto tier).
KruskalModel AlsDecompose(const SparseTensor& x, int64_t rank,
                          const AlsOptions& options, Rng& rng,
                          KernelTier tier = ResolveKernelTier());

/// Fitness reached by a fresh batch ALS on `x` — the denominator of the
/// paper's relative-fitness metric.
double AlsReferenceFitness(const SparseTensor& x, int64_t rank,
                           const AlsOptions& options, Rng& rng);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_ALS_H_
