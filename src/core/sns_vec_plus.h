// SNS+VEC (Alg. 5 updateRowVec+): the numerically stable variant of
// SNS-VEC. Rows are refreshed entry-by-entry with coordinate descent — the
// closed-form minimizer of Eq. 19 (Eq. 21 for non-time modes, Eq. 22 with
// the model approximation for the time mode) — and every updated entry is
// clipped to [−η, η]. Coordinate descent plus clipping never increases the
// local objective, which is what rescues the method from the blow-ups of
// SNS-VEC (Observation 3).

#ifndef SLICENSTITCH_CORE_SNS_VEC_PLUS_H_
#define SLICENSTITCH_CORE_SNS_VEC_PLUS_H_

#include "core/row_updater_base.h"

namespace sns {

class SnsVecPlusUpdater : public RowUpdaterBase {
 public:
  /// clip_bound is the paper's η > 0. With nonnegative=true, entries are
  /// clipped to [0, η] instead of [−η, η] — projected coordinate descent,
  /// giving NMF-style factors (extension; see DESIGN.md).
  explicit SnsVecPlusUpdater(double clip_bound, bool nonnegative = false)
      : clip_min_(nonnegative ? 0.0 : -clip_bound), clip_max_(clip_bound) {
    SNS_CHECK(clip_bound > 0.0);
  }

  std::string_view name() const override { return "SNS+VEC"; }

 protected:
  bool NeedsPrevGrams() const override { return false; }

  void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                 const WindowDelta& delta, CpdState& state,
                 UpdateWorkspace& ws) override;

 private:
  double clip_min_;
  double clip_max_;
};

/// Shared coordinate-descent inner loop of the + variants. For each k it
/// computes a(m)_{i,k} ← (numerator_k − d_k) / c_k, clipped to
/// [clip_min, clip_max], where c_k = HQ(k,k), d_k = Σ_{r≠k} row[r]·HQ(r,k)
/// uses the live row (Eq. 20), and numerator_k is the variant-specific data
/// term (Σ x·Πa of Eq. 21, or e + Σ Δx·Πa of Eq. 22, or e + Σ (x̄+Δx)·Πa of
/// Eq. 23). One-dimensional projection onto [clip_min, clip_max] never
/// increases the convex per-entry objective. Entries with c_k ≈ 0 (dead
/// component) are left unchanged.
///
/// Padded-buffer contract: `row` must reference hq.stride() doubles with
/// zero padding lanes (factor rows qualify) — the d_k dot runs tail-free to
/// the padded bound. `numerator` only needs `rank` values.
///
/// The table-taking overload runs the d_k dots through the caller's cached
/// RankKernelTable (which must match hq.stride()); the plain overload
/// resolves the process-wide auto tier per call.
void CoordinateDescentRow(double* row, int64_t rank, const Matrix& hq,
                          const double* numerator, double clip_min,
                          double clip_max);
void CoordinateDescentRow(double* row, int64_t rank, const Matrix& hq,
                          const double* numerator, double clip_min,
                          double clip_max, const RankKernelTable& kr);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_VEC_PLUS_H_
