// ContinuousCpd — the internal continuous-decomposition engine.
//
// Owns the continuous tensor window (Algorithm 1), the decomposition state,
// and one of the five online updaters (§V), and keeps the factor matrices in
// sync with every window event. Applications should use the service facade
// in api/ (SnsService / StreamHandle, re-exported by slicenstitch.h), which
// wraps one engine per stream behind a typed ingest/query surface. Direct
// use remains supported for embedding and tests:
//
//   ContinuousCpdOptions options;
//   options.period = 3600;                      // T = 1 hour
//   options.variant = SnsVariant::kRndPlus;
//   auto engine = ContinuousCpd::Create({265, 265}, options);
//   for (tuple : warmup_tuples) engine.value()->IngestOnly(tuple);
//   engine.value()->InitializeWithAls();         // factors from the window
//   engine.value()->ProcessBatch(live_tuples);
//   double fit = engine.value()->Fitness();

#ifndef SLICENSTITCH_CORE_CONTINUOUS_CPD_H_
#define SLICENSTITCH_CORE_CONTINUOUS_CPD_H_

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/cpd_state.h"
#include "core/fitness_tracker.h"
#include "core/options.h"
#include "core/updater.h"
#include "losses/outlier_store.h"
#include "stream/continuous_window.h"

namespace sns {

namespace serial {
class Writer;
class Reader;
}  // namespace serial

/// Continuous CP decomposition of one multi-aspect data stream.
///
/// Pinned in place (copies AND moves deleted): the updaters' caches hold
/// pointers into CpdState between events (GramProductCache binds to
/// state_.grams), so a moved-from engine would leave the updater aimed at a
/// dead member. Create hands out a unique_ptr; holders that must themselves
/// be movable (api/StreamHandle) keep the engine behind that pointer.
class ContinuousCpd {
 public:
  /// Validates options and builds an engine over the given non-time mode
  /// sizes. Factors start as random Uniform[0,1); call InitializeWithAls()
  /// after warming the window up to match the paper's protocol.
  static StatusOr<std::unique_ptr<ContinuousCpd>> Create(
      std::vector<int64_t> mode_dims, const ContinuousCpdOptions& options);

  ContinuousCpd(const ContinuousCpd&) = delete;
  ContinuousCpd& operator=(const ContinuousCpd&) = delete;
  ContinuousCpd(ContinuousCpd&&) = delete;
  ContinuousCpd& operator=(ContinuousCpd&&) = delete;

  /// Applies a tuple (and any earlier-due slide events) to the window only —
  /// the factors are untouched. Used for the warm-up phase.
  void IngestOnly(const Tuple& tuple);

  /// Runs batch ALS on the current window to (re)initialize the factors and
  /// enables per-event updates. For the unnormalized variants λ is folded
  /// back into the factors.
  void InitializeWithAls();

  /// Processes one arriving tuple: drains scheduled slide/expiry events due
  /// before it (each updating the factors), then the arrival event.
  void ProcessTuple(const Tuple& tuple);

  /// Processes a chronological batch of tuples with event ordering identical
  /// to calling ProcessTuple per tuple (pinned by tests), but the scheduled
  /// due time is kept in a register across the batch, so tuples that trigger
  /// no slide/expiry skip the schedule heap entirely.
  void ProcessBatch(std::span<const Tuple> tuples);

  /// Drains scheduled events due at or before `time` with factor updates.
  void AdvanceTo(int64_t time);

  const SparseTensor& window() const { return window_.tensor(); }
  const ContinuousTensorWindow& window_model() const { return window_; }
  const KruskalModel& model() const { return state_.model; }
  const CpdState& state() const { return state_; }
  const ContinuousCpdOptions& options() const { return options_; }
  std::string_view updater_name() const { return updater_->name(); }

  /// Exact fitness of the current factors against the current window —
  /// a full O(nnz·M·R) rescan.
  double Fitness() const { return state_.model.Fitness(window_.tensor()); }

  /// Incrementally maintained fitness estimate (core/fitness_tracker.h):
  /// O(M·R²) per query — plus the amortized exact resync, which runs lazily
  /// here rather than on the ingest path — instead of the full rescan per
  /// query. 0 before InitializeWithAls.
  double RunningFitness() const {
    return fitness_tracker_.RunningFitness(window_.tensor(), state_);
  }

  /// Observer invoked for every window event after the delta has been
  /// applied to the window but before the factor update — the point where
  /// prediction errors |x − x̃| are meaningful for anomaly detection (§VI-G).
  /// The final argument is the signed outlier mass the robust mode diverted
  /// from this event into the sparse outlier structure S (0 when robust mode
  /// is off or the event is a slide/expiry rather than an arrival).
  using EventObserver =
      std::function<void(const WindowDelta&, const KruskalModel&,
                         const SparseTensor&, double)>;
  void SetEventObserver(EventObserver observer) {
    observer_ = std::move(observer);
  }

  /// Number of window events that triggered factor updates.
  int64_t events_processed() const { return events_processed_; }
  /// Total wall-clock time spent inside factor updates.
  double update_seconds() const { return update_seconds_; }
  /// Mean factor-update latency in microseconds (0 before any event).
  double MeanUpdateMicros() const {
    return events_processed_ == 0
               ? 0.0
               : update_seconds_ * 1e6 /
                     static_cast<double>(events_processed_);
  }

  /// Sparse outlier structure S maintained by the robust mode (empty when
  /// options().robust.enabled is false).
  const OutlierStore& outliers() const { return outliers_; }

  /// True when the engine snapshot carries loss/robust state beyond the
  /// Gaussian baseline — the trigger for the v2 checkpoint envelope. The
  /// Gaussian non-robust default serializes byte-identically to pre-loss
  /// builds.
  bool UsesExtendedState() const {
    return options_.loss != LossKind::kGaussian || options_.robust.enabled;
  }

  /// Serializes the complete deterministic engine state: window (tensor
  /// layout + schedule), factors, λ, Grams (verbatim — they are maintained
  /// incrementally and bitwise-differ from a recomputation), fitness
  /// accumulators, both Rngs (engine + updater sampling), and the event
  /// counters — plus, only when UsesExtendedState(), a trailing loss section
  /// (generalized fitness sums, outlier decay schedule, and S).
  /// update_seconds_ is wall-clock and deliberately excluded, so equal
  /// trajectories always serialize to equal bytes.
  void SerializeTo(serial::Writer& w) const;

  /// Restores into a freshly Created engine with identical mode_dims and
  /// options. After an OK return, processing any tuple sequence is bitwise
  /// identical to the engine the snapshot was taken from processing it.
  /// Corrupt or mismatched input fails with a typed Status (mostly
  /// kDataLoss); the engine must then be discarded.
  Status RestoreFrom(serial::Reader& r);

 private:
  ContinuousCpd(std::vector<int64_t> mode_dims,
                const ContinuousCpdOptions& options);

  void HandleEvent(const WindowDelta& delta, double outlier_capture = 0.0);
  /// Robust mode (X = L + S): splits the arriving tuple's residual against
  /// the model's predicted mean into a soft-thresholded outlier part
  /// (captured into outliers_) and a cleaned part left in the tuple for
  /// ingestion. Returns the signed captured mass (0 when robust mode is off
  /// or updates are not yet enabled).
  double MaybeCaptureOutlier(Tuple& tuple);
  /// Applies the once-per-period multiplicative decay to S as stream time
  /// crosses period boundaries.
  void MaybeDecayOutliers(int64_t time);

  ContinuousCpdOptions options_;
  ContinuousTensorWindow window_;
  CpdState state_;
  std::unique_ptr<EventUpdater> updater_;
  EventObserver observer_;
  RunningFitnessTracker fitness_tracker_;
  Rng rng_;
  const LossFunction* loss_ = nullptr;
  OutlierStore outliers_;
  int64_t next_outlier_decay_ = 0;
  bool outlier_decay_armed_ = false;
  bool updates_enabled_ = false;
  int64_t events_processed_ = 0;
  double update_seconds_ = 0.0;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_CONTINUOUS_CPD_H_
