#include "core/gram_product_cache.h"

#include <algorithm>

#include "linalg/rank_dispatch.h"

namespace sns {

void GramProductCache::BeginEvent(const std::vector<Matrix>& grams) {
  SNS_CHECK(!grams.empty());
  grams_ = &grams;
  const int n = static_cast<int>(grams.size());
  const int64_t rank = grams[0].rows();
  if (static_cast<int>(prefix_.size()) != n + 1 ||
      prefix_[0].rows() != rank) {
    prefix_.assign(static_cast<size_t>(n) + 1, Matrix(rank, rank));
    suffix_.assign(static_cast<size_t>(n) + 1, Matrix(rank, rank));
    prefix_[0].Fill(1.0);
    suffix_[static_cast<size_t>(n)].Fill(1.0);
  }
  prefix_valid_ = 0;
  suffix_valid_ = n;
}

void GramProductCache::NotifyModeChanged(int mode) {
  SNS_CHECK(grams_ != nullptr);
  SNS_DCHECK(mode >= 0 && mode < static_cast<int>(grams_->size()));
  // prefix_[i] depends on Q(n < i); suffix_[i] depends on Q(n ≥ i).
  prefix_valid_ = std::min(prefix_valid_, mode);
  suffix_valid_ = std::max(suffix_valid_, mode + 1);
}

void GramProductCache::ProductExcept(int mode, Matrix& out) {
  SNS_CHECK(grams_ != nullptr);
  const std::vector<Matrix>& grams = *grams_;
  const int n = static_cast<int>(grams.size());
  SNS_DCHECK(mode >= 0 && mode <= n);
  const RankKernelTable& kr =
      kr_ ? *kr_ : GetRankKernelTable(grams[0].stride());
  for (int i = prefix_valid_ + 1; i <= mode; ++i) {
    HadamardInto(prefix_[i - 1], grams[i - 1], prefix_[i], kr);
  }
  prefix_valid_ = std::max(prefix_valid_, mode);
  for (int i = suffix_valid_ - 1; i >= mode + 1; --i) {
    HadamardInto(grams[i], suffix_[i + 1], suffix_[i], kr);
  }
  suffix_valid_ = std::min(suffix_valid_, mode + 1);
  if (mode < n) {
    HadamardInto(prefix_[mode], suffix_[mode + 1], out, kr);
  } else {
    out.CopyFrom(prefix_[n]);
  }
}

}  // namespace sns
