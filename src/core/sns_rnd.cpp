#include "core/sns_rnd.h"

#include <vector>

#include "core/gram_solve.h"
#include "core/slice_sampler.h"
#include "tensor/mttkrp.h"

namespace sns {

void SnsRndUpdater::UpdateRow(int mode, int64_t row,
                              const SparseTensor& window,
                              const WindowDelta& delta, CpdState& state) {
  const int64_t rank = state.rank();
  Matrix& factor = state.model.factor(mode);
  std::vector<double> old_row(factor.Row(row), factor.Row(row) + rank);

  const Matrix h = HadamardOfGramsExcept(state.grams, mode);
  std::vector<double> rhs(static_cast<size_t>(rank), 0.0);
  std::vector<double> solution(static_cast<size_t>(rank));
  const int64_t degree = window.Degree(mode, row);

  if (degree <= sample_threshold_) {
    // Exact path (Alg. 4 lines 9-10): Eq. 12, identical to SNS-VEC's
    // non-time rule, applied to every mode including time.
    MttkrpRow(window, state.model.factors(), mode, row, rhs.data());
  } else {
    // Sampled path (Alg. 4 lines 11-14): Eq. 16.
    // First term: A(m)(row,:) H_prev with H_prev = ∗_{n≠m} U(n). The row is
    // still at its event-start value B(m)(row,:) here.
    const Matrix h_prev = HadamardOfGramsExcept(prev_grams(), mode);
    RowTimesMatrix(old_row.data(), h_prev, rhs.data());

    // Residual corrections x̄_J = x_J − x̃_J at θ cells sampled uniformly
    // from the slice grid (zero cells included — they pull spurious model
    // mass down), with x̃ evaluated under the pre-event factors.
    std::vector<double> had(static_cast<size_t>(rank));
    for (const SampledCell& cell : SampleSliceCells(
             window, mode, row, sample_threshold_, delta, rng_)) {
      const double residual =
          cell.value - EvaluatePrevModel(cell.index, state);
      HadamardRowProduct(state.model.factors(), cell.index, mode, had.data());
      for (int64_t r = 0; r < rank; ++r) {
        rhs[static_cast<size_t>(r)] += residual * had[static_cast<size_t>(r)];
      }
    }

    // ΔX term of Eq. 16.
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[mode] != row) continue;
      HadamardRowProduct(state.model.factors(), cell.index, mode, had.data());
      for (int64_t r = 0; r < rank; ++r) {
        rhs[static_cast<size_t>(r)] +=
            cell.delta * had[static_cast<size_t>(r)];
      }
    }
  }

  SolveRowAgainstGram(h, rhs.data(), solution.data());
  double* target = factor.Row(row);
  for (int64_t r = 0; r < rank; ++r) {
    target[r] = solution[static_cast<size_t>(r)];
  }

  CommitRow(mode, row, old_row, state);  // Eq. 13 + Eq. 17.
}

}  // namespace sns
