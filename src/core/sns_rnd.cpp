#include "core/sns_rnd.h"

#include <limits>

#include "core/slice_sampler.h"
#include "tensor/mttkrp.h"

namespace sns {

void SnsRndUpdater::UpdateRow(int mode, int64_t row,
                              const SparseTensor& window,
                              const WindowDelta& delta, CpdState& state,
                              UpdateWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (GcpUpdateRow(mode, row, window, delta, state, -kInf, kInf,
                   sample_threshold_, &rng_)) {
    return;  // Non-Gaussian loss: θ-sampled GCP Newton step replaces Eq. 16.
  }
  Matrix& factor = state.model.factor(mode);
  const RankKernelTable& kr = *ws.kernels;
  const int64_t padded = ws.padded_rank;
  kr.copy(factor.Row(row), ws.old_row.data(), padded);

  const int64_t degree = window.Degree(mode, row);

  if (degree <= sample_threshold_) {
    // Exact path (Alg. 4 lines 9-10): Eq. 12, identical to SNS-VEC's
    // non-time rule, applied to every mode including time.
    MttkrpRowDispatch(window, state, mode, row, ws.rhs.data(), ws.had.data(),
                      ws);
  } else {
    // Sampled path (Alg. 4 lines 11-14): Eq. 16.
    // First term: A(m)(row,:) H_prev with H_prev = ∗_{n≠m} U(n), each U(n)
    // reconstructed from Q(n) and this event's committed-row deltas. The
    // row is still at its event-start value B(m)(row,:) here.
    HadamardOfPrevGramsExcept(state, mode, ws);
    RowTimesMatrixPadded(ws.old_row.data(), ws.h_prev, ws.rhs.data(), kr);

    // Residual corrections x̄_J = x_J − x̃_J at θ cells sampled uniformly
    // from the slice grid (zero cells included — they pull spurious model
    // mass down), with x̃ evaluated under the pre-event factors.
    SampleSliceCellsInto(window, mode, row, sample_threshold_, delta, rng_,
                         ws.samples);
    for (const SampledCell& cell : ws.samples) {
      const double residual =
          cell.value - EvaluatePrevModel(cell.index, state);
      HadamardRowDispatch(state, cell.index, mode, ws.had.data(), ws);
      kr.axpy(residual, ws.had.data(), ws.rhs.data(), padded);
    }

    // ΔX term of Eq. 16.
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[mode] != row) continue;
      HadamardRowDispatch(state, cell.index, mode, ws.had.data(), ws);
      kr.axpy(cell.delta, ws.had.data(), ws.rhs.data(), padded);
    }
  }

  ws.solver.Factorize(ws.h);  // H(m) = ∗_{n≠m} Q(n), preloaded by the base.
  ws.solver.Solve(ws.rhs.data(), ws.solution.data());
  kr.copy(ws.solution.data(), factor.Row(row), padded);

  CommitRow(mode, row, ws.old_row.data(), state);  // Eq. 13 + Eq. 17.
}

}  // namespace sns
