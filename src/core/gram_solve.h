// Row solve against a Gram matrix: x = b H† (Eqs. 4, 9, 12, 16).
//
// H = ∗ A'A is symmetric PSD. The fast path is a Cholesky solve (identical
// result when H is safely positive definite); when H is singular or
// ill-conditioned the solve falls back to the symmetric eigendecomposition
// pseudoinverse, which is what the paper's H† denotes.

#ifndef SLICENSTITCH_CORE_GRAM_SOLVE_H_
#define SLICENSTITCH_CORE_GRAM_SOLVE_H_

#include "linalg/matrix.h"

namespace sns {

struct RankKernelTable;  // linalg/rank_dispatch.h

/// Reusable Gram solver: factorize H once, then solve any number of rows
/// against it. The Cholesky fast path performs zero heap allocations once
/// the internal buffer matches H's order, which makes this the solver of
/// the per-event update hot path (owned by UpdateWorkspace / AlsWorkspace).
/// Singular / ill-conditioned H falls back to the (allocating, rare)
/// symmetric-eigen pseudoinverse — the paper's H†.
class GramSolver {
 public:
  /// Factorizes symmetric PSD `h` (order n), replacing any previous
  /// factorization.
  void Factorize(const Matrix& h);

  /// x = b H† for the last Factorize'd H. `b` and `x` hold n values and
  /// must not alias.
  void Solve(const double* b, double* x) const;

  /// Pins the RUNTIME-LENGTH kernel table (padded_rank == 0) the Cholesky
  /// row-suffix loops run through — set by UpdateWorkspace::Prepare to the
  /// engine's kernel tier. Unset, each Factorize/Solve resolves the
  /// process-wide auto tier.
  void set_kernels(const RankKernelTable* rt) { rt_ = rt; }

 private:
  Matrix upper_;  // A = U'U factor (row-suffix kernels; linalg/cholesky.h).
  Matrix pinv_;
  bool use_pinv_ = false;
  const RankKernelTable* rt_ = nullptr;
};

/// Computes x = b H† for symmetric PSD H (order n). `b` and `x` hold n
/// values and must not alias. One-shot convenience over GramSolver.
void SolveRowAgainstGram(const Matrix& h, const double* b, double* x);

/// Computes X = B H† for a full matrix of right-hand rows (B is m×n, H is
/// n×n). Used by batch ALS / SNS-MAT.
Matrix SolveRowsAgainstGram(const Matrix& h, const Matrix& b);

}  // namespace sns

#endif  // SLICENSTITCH_CORE_GRAM_SOLVE_H_
