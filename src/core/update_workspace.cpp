#include "core/update_workspace.h"

namespace sns {

void UpdateWorkspace::Prepare(int num_modes, int64_t rank,
                              int64_t sample_capacity, KernelTier tier) {
  if (num_modes == num_modes_ && rank == rank_ &&
      sample_capacity == sample_capacity_ && tier == tier_) {
    return;
  }
  num_modes_ = num_modes;
  rank_ = rank;
  sample_capacity_ = sample_capacity;
  tier_ = tier;

  padded_rank = PaddedRank(rank);
  kernels = &GetRankKernelTable(padded_rank, tier);
  solver.set_kernels(&GetRankKernelTable(0, tier));

  h = Matrix(rank, rank);
  h_prev = Matrix(rank, rank);
  u_scratch = Matrix(rank, rank);
  old_row.Assign(rank, 0.0);
  rhs.Assign(rank, 0.0);
  solution.Assign(rank, 0.0);
  had.Assign(rank, 0.0);
  samples.clear();
  samples.reserve(static_cast<size_t>(sample_capacity));
}

}  // namespace sns
