#include "core/slice_sampler.h"

namespace sns {
namespace {

bool IsDeltaCell(const WindowDelta& delta, const ModeIndex& index) {
  for (const DeltaCell& cell : delta.cells) {
    if (cell.index == index) return true;
  }
  return false;
}

bool AlreadySampled(const std::vector<SampledCell>& cells,
                    const ModeIndex& index) {
  // θ is a small constant (Table III uses 20), so a linear scan beats a
  // hash set here.
  for (const SampledCell& cell : cells) {
    if (cell.index == index) return true;
  }
  return false;
}

}  // namespace

std::vector<SampledCell> SampleSliceCells(const SparseTensor& window, int mode,
                                          int64_t row, int64_t count,
                                          const WindowDelta& delta, Rng& rng) {
  std::vector<SampledCell> cells;
  SampleSliceCellsInto(window, mode, row, count, delta, rng, cells);
  return cells;
}

void SampleSliceCellsInto(const SparseTensor& window, int mode, int64_t row,
                          int64_t count, const WindowDelta& delta, Rng& rng,
                          std::vector<SampledCell>& out) {
  const int modes = window.num_modes();
  // Size of the slice grid (product of the other modes' extents).
  double grid_size = 1.0;
  for (int n = 0; n < modes; ++n) {
    if (n != mode) grid_size *= static_cast<double>(window.dim(n));
  }

  std::vector<SampledCell>& cells = out;
  cells.clear();
  if (grid_size <= static_cast<double>(count) + delta.cells.size()) {
    // Tiny slice: enumerate every cell (odometer over the other modes).
    ModeIndex index;
    for (int n = 0; n < modes; ++n) index.PushBack(0);
    index[mode] = static_cast<int32_t>(row);
    while (true) {
      if (!IsDeltaCell(delta, index)) {
        cells.push_back({index, window.Get(index)});
      }
      int n = modes - 1;
      while (n >= 0) {
        if (n == mode) {
          --n;
          continue;
        }
        if (++index[n] < window.dim(n)) break;
        index[n] = 0;
        --n;
      }
      if (n < 0) break;
    }
    return;
  }

  // Rejection sampling without replacement; duplicates are rare because the
  // grid dwarfs `count`.
  cells.reserve(static_cast<size_t>(count));
  int attempts = 0;
  const int max_attempts = static_cast<int>(count) * 20 + 64;
  while (static_cast<int64_t>(cells.size()) < count &&
         attempts++ < max_attempts) {
    ModeIndex index;
    for (int n = 0; n < modes; ++n) {
      index.PushBack(n == mode ? static_cast<int32_t>(row)
                               : static_cast<int32_t>(rng.UniformInt(
                                     0, window.dim(n) - 1)));
    }
    if (IsDeltaCell(delta, index)) continue;
    if (AlreadySampled(cells, index)) continue;
    cells.push_back({index, window.Get(index)});
  }
}

}  // namespace sns
