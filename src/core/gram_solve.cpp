#include "core/gram_solve.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/pseudo_inverse.h"

namespace sns {
namespace {

// Minimum acceptable ratio between the smallest and largest Cholesky pivot:
// below this the Gram is treated as numerically singular and the
// pseudoinverse path is used instead.
constexpr double kPivotRatioFloor = 1e-7;

bool CholeskyIsWellConditioned(const Cholesky& chol) {
  const Matrix& lower = chol.lower();
  double min_pivot = lower(0, 0), max_pivot = lower(0, 0);
  for (int64_t i = 1; i < lower.rows(); ++i) {
    min_pivot = std::min(min_pivot, lower(i, i));
    max_pivot = std::max(max_pivot, lower(i, i));
  }
  return max_pivot > 0.0 && min_pivot / max_pivot > kPivotRatioFloor;
}

}  // namespace

void SolveRowAgainstGram(const Matrix& h, const double* b, double* x) {
  const int64_t n = h.rows();
  auto chol = Cholesky::Factorize(h);
  if (chol.ok() && CholeskyIsWellConditioned(chol.value())) {
    // H symmetric: b H† == (H⁻¹ b')' for nonsingular H.
    std::vector<double> rhs(b, b + n);
    std::vector<double> sol = chol.value().Solve(rhs);
    for (int64_t i = 0; i < n; ++i) x[i] = sol[static_cast<size_t>(i)];
    return;
  }
  Matrix pinv = PseudoInverseSymmetric(h);
  RowTimesMatrix(b, pinv, x);
}

Matrix SolveRowsAgainstGram(const Matrix& h, const Matrix& b) {
  SNS_CHECK(b.cols() == h.rows());
  Matrix x(b.rows(), b.cols());
  auto chol = Cholesky::Factorize(h);
  if (chol.ok() && CholeskyIsWellConditioned(chol.value())) {
    std::vector<double> rhs(static_cast<size_t>(b.cols()));
    for (int64_t i = 0; i < b.rows(); ++i) {
      const double* b_row = b.Row(i);
      std::copy(b_row, b_row + b.cols(), rhs.begin());
      std::vector<double> sol = chol.value().Solve(rhs);
      std::copy(sol.begin(), sol.end(), x.Row(i));
    }
    return x;
  }
  Matrix pinv = PseudoInverseSymmetric(h);
  return Multiply(b, pinv);
}

}  // namespace sns
