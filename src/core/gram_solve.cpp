#include "core/gram_solve.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/pseudo_inverse.h"
#include "linalg/rank_dispatch.h"

namespace sns {
namespace {

// Minimum acceptable ratio between the smallest and largest Cholesky pivot:
// below this the Gram is treated as numerically singular and the
// pseudoinverse path is used instead.
constexpr double kPivotRatioFloor = 1e-7;

bool FactorIsWellConditioned(const Matrix& factor) {
  double min_pivot = factor(0, 0), max_pivot = factor(0, 0);
  for (int64_t i = 1; i < factor.rows(); ++i) {
    min_pivot = std::min(min_pivot, factor(i, i));
    max_pivot = std::max(max_pivot, factor(i, i));
  }
  return max_pivot > 0.0 && min_pivot / max_pivot > kPivotRatioFloor;
}

}  // namespace

void GramSolver::Factorize(const Matrix& h) {
  const int64_t n = h.rows();
  if (upper_.rows() != n) upper_ = Matrix(n, n);
  const RankKernelTable& rt = rt_ ? *rt_ : GetRankKernelTable(0);
  // Row-suffix (U'U) factorization: every inner loop contiguous — see
  // CholeskyFactorizeUpperInto.
  use_pinv_ = !(CholeskyFactorizeUpperInto(h, upper_, rt) &&
                FactorIsWellConditioned(upper_));
  if (use_pinv_) pinv_ = PseudoInverseSymmetric(h);
}

void GramSolver::Solve(const double* b, double* x) const {
  if (use_pinv_) {
    RowTimesMatrix(b, pinv_, x);
    return;
  }
  // H symmetric: b H† == (H⁻¹ b')' for nonsingular H.
  const int64_t n = upper_.rows();
  std::copy(b, b + n, x);
  CholeskySolveUpperInPlace(upper_, x,
                            rt_ ? *rt_ : GetRankKernelTable(0));
}

void SolveRowAgainstGram(const Matrix& h, const double* b, double* x) {
  GramSolver solver;
  solver.Factorize(h);
  solver.Solve(b, x);
}

Matrix SolveRowsAgainstGram(const Matrix& h, const Matrix& b) {
  SNS_CHECK(b.cols() == h.rows());
  GramSolver solver;
  solver.Factorize(h);
  Matrix x(b.rows(), b.cols());
  for (int64_t i = 0; i < b.rows(); ++i) solver.Solve(b.Row(i), x.Row(i));
  return x;
}

}  // namespace sns
