#include "core/options.h"

namespace sns {

std::string VariantName(SnsVariant variant) {
  switch (variant) {
    case SnsVariant::kMat:
      return "SNS-MAT";
    case SnsVariant::kVec:
      return "SNS-VEC";
    case SnsVariant::kRnd:
      return "SNS-RND";
    case SnsVariant::kVecPlus:
      return "SNS+VEC";
    case SnsVariant::kRndPlus:
      return "SNS+RND";
  }
  // Out-of-range SnsVariant (e.g. an enum value cast from a bad integer):
  // fail loudly like MakeUpdater instead of silently naming it "SNS-?" and
  // letting the bad value flow into reports and bench labels.
  SNS_CHECK(false && "VariantName: unhandled SnsVariant");
  return "";  // Unreachable.
}

std::string FactorPrecisionName(FactorPrecision precision) {
  switch (precision) {
    case FactorPrecision::kFloat64:
      return "f64";
    case FactorPrecision::kFloat32Accum64:
      return "f32a64";
  }
  SNS_CHECK(false && "FactorPrecisionName: unhandled FactorPrecision");
  return "";  // Unreachable.
}

Status ContinuousCpdOptions::Validate() const {
  if (rank < 1) return Status::InvalidArgument("rank must be >= 1");
  if (window_size < 1) {
    return Status::InvalidArgument("window_size must be >= 1");
  }
  if (period < 1) return Status::InvalidArgument("period must be >= 1");
  if (sample_threshold < 1) {
    return Status::InvalidArgument("sample_threshold must be >= 1");
  }
  if (clip_bound <= 0.0) {
    return Status::InvalidArgument("clip_bound must be positive");
  }
  if (expected_nnz < 0) {
    return Status::InvalidArgument("expected_nnz must be >= 0");
  }
  if (fitness_resync_interval < 0) {
    return Status::InvalidArgument("fitness_resync_interval must be >= 0");
  }
  if (nonnegative_factors && variant != SnsVariant::kVecPlus &&
      variant != SnsVariant::kRndPlus) {
    return Status::InvalidArgument(
        "nonnegative_factors requires a clipped variant (SNS+VEC / SNS+RND)");
  }
  if (robust.enabled) {
    if (!(robust.threshold > 0.0)) {
      return Status::InvalidArgument("robust.threshold must be positive");
    }
    if (!(robust.decay >= 0.0 && robust.decay <= 1.0)) {
      return Status::InvalidArgument("robust.decay must be in [0, 1]");
    }
    if (robust.capacity < 1) {
      return Status::InvalidArgument("robust.capacity must be >= 1");
    }
  }
  if (init.max_iterations < 1) {
    return Status::InvalidArgument("init.max_iterations must be >= 1");
  }
  if (init.fitness_tolerance < 0.0) {
    return Status::InvalidArgument("init.fitness_tolerance must be >= 0");
  }
  return Status::OK();
}

}  // namespace sns
