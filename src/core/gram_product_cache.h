// Incremental Hadamard-of-Grams products H(m) = ∗_{n≠m} Q(n) (Eqs. 4/12).
//
// Every row update rule needs H(m) for the mode it touches, and a single
// event (or ALS sweep) reads H for every mode while committing Gram changes
// mode-by-mode in between. Recomputing each product from scratch costs
// O(N²·R²) Hadamard work per event; this cache maintains lazily revalidated
// prefix products P(i) = ∗_{n<i} Q(n) and suffix products S(i) = ∗_{n≥i}
// Q(n), so the same event costs O(N·R²): a changed mode only invalidates the
// chain entries that depend on it, and ProductExcept recomputes exactly the
// missing links.
//
// All chain matrices are preallocated in BeginEvent (reallocation only when
// the mode count or rank changes), so the steady state performs zero heap
// allocations — part of the per-event zero-allocation guarantee tested in
// tests/hot_path_test.cpp.

#ifndef SLICENSTITCH_CORE_GRAM_PRODUCT_CACHE_H_
#define SLICENSTITCH_CORE_GRAM_PRODUCT_CACHE_H_

#include <vector>

#include "linalg/matrix.h"

namespace sns {

struct RankKernelTable;  // linalg/rank_dispatch.h

/// Contract: BeginEvent binds the cache to one Gram vector and invalidates
/// everything (the grams may have changed arbitrarily since the last event);
/// between BeginEvent and the next BeginEvent the bound grams may only
/// change through matching NotifyModeChanged calls.
class GramProductCache {
 public:
  /// Binds to `grams` (N square R×R matrices, which must outlive the
  /// binding) and invalidates all cached products.
  void BeginEvent(const std::vector<Matrix>& grams);

  /// Declares that grams[mode] changed; invalidates the dependent prefix
  /// and suffix chain entries (O(1), no recomputation until the next read).
  void NotifyModeChanged(int mode);

  /// out = ∗_{n≠mode} grams[n] into a preallocated R×R `out`. Recomputes
  /// only the invalidated chain links. mode = N behaves like "skip nothing
  /// past the end": the product over all modes.
  void ProductExcept(int mode, Matrix& out);

  /// Pins the kernel table (matching the Grams' padded stride) the chain
  /// Hadamards run through — set by RowUpdaterBase to the engine's tier.
  /// Unset, each ProductExcept resolves the process-wide auto tier.
  void set_kernels(const RankKernelTable* kr) { kr_ = kr; }

 private:
  const std::vector<Matrix>* grams_ = nullptr;
  const RankKernelTable* kr_ = nullptr;
  std::vector<Matrix> prefix_;  // prefix_[i] = ∗_{n<i} Q(n); prefix_[0] = 1.
  std::vector<Matrix> suffix_;  // suffix_[i] = ∗_{n≥i} Q(n); suffix_[N] = 1.
  int prefix_valid_ = 0;        // prefix_[0..prefix_valid_] are valid.
  int suffix_valid_ = 0;        // suffix_[suffix_valid_..N] are valid.
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_GRAM_PRODUCT_CACHE_H_
