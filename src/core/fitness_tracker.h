// Incremental running-fitness estimator.
//
// Exact fitness 1 − ‖X̃ − X‖_F / ‖X‖_F costs a full O(nnz·M·R) rescan of the
// window per query (KruskalModel::Fitness). Always-on serving wants the
// number per event, so this tracker maintains the three terms of
// ‖X̃ − X‖² = ‖X̃‖² − 2⟨X̃, X⟩ + ‖X‖² incrementally:
//   - ‖X‖² exactly: each delta cell changes it by x_new² − x_old², O(1).
//   - ⟨X̃, X⟩ as an estimate: window deltas contribute δ_J·X̃(J) exactly
//     (O(M·R) per cell); the factor update's effect is approximated by
//     re-evaluating X̃ at the event's delta cells only — the cells the update
//     targeted — leaving the drift of untouched cells to an amortized exact
//     resync every `resync_interval` events.
//   - ‖X̃‖² at query time via the Gram identity λ'(∗_m Q(m))λ, O(M·R²),
//     reusing the Gram matrices the updaters already maintain.
// Per-event cost is O(|cells|·M·R) ⊂ O(R²); queries cost O(M·R²) plus the
// amortized resync (which runs lazily at query time, never on the ingest
// path); no heap allocations after Reset.
//
// Accuracy contract: the estimate is EXACT at every resync boundary (and
// with resync_interval = 1 it degenerates into the exact computation —
// pinned by tests/fitness_tracker_test.cpp). Between resyncs only the
// delta-cell share of each factor update is accounted, so the estimate is a
// responsive trend signal whose drift grows with factor churn; exact
// accounting of a row update's effect on its whole slice would cost
// O(deg·M·R) per event, which is precisely the work the θ-sampled variants
// exist to avoid. Callers needing the exact number call Fitness().

#ifndef SLICENSTITCH_CORE_FITNESS_TRACKER_H_
#define SLICENSTITCH_CORE_FITNESS_TRACKER_H_

#include <array>
#include <cstdint>

#include "core/cpd_state.h"
#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

class LossFunction;

/// Snapshot of the tracker's incremental accumulators, taken between events
/// (durability checkpoints). Restoring them after Reset reproduces the
/// tracker's exact estimate trajectory instead of restarting it from an
/// exact resync.
struct FitnessAccumulators {
  double norm_x_sq = 0.0;
  double inner = 0.0;
  int64_t events_since_resync = 0;
  // Generalized-loss terms (losses/): Σℓ(x, x̃) and Σℓ(x, 0) over the window
  // nonzeros. Unused (and not serialized — kTagFitness bytes are unchanged)
  // under the Gaussian default.
  double loss_sum = 0.0;
  double baseline_sum = 0.0;
};

/// Maintains a running estimate of the model-vs-window fitness. Owned by
/// ContinuousCpd; Reset at (re)initialization, fed once per window event.
class RunningFitnessTracker {
 public:
  /// Binds to the current window/model shape, recomputes the exact terms,
  /// and preallocates the query scratch. resync_interval: events between
  /// exact recomputations of ⟨X̃, X⟩ and ‖X‖² (0 = never resync).
  void Reset(const SparseTensor& window, const CpdState& state,
             int64_t resync_interval);

  /// Switches the tracked objective to a generalized loss (losses/):
  /// fitness becomes 1 − Σℓ(x, x̃)/Σℓ(x, 0) over the window nonzeros,
  /// maintained with the same delta-cell increments + amortized exact
  /// resync. nullptr (the default) keeps the Gaussian Frobenius path
  /// byte-for-byte untouched. Call before Reset.
  void SetLoss(const LossFunction* loss) { loss_ = loss; }

  /// Accounts one event's window change. Call after the delta has been
  /// applied to `window` but before the factor update (the model still is
  /// the pre-event model).
  void OnWindowDelta(const WindowDelta& delta, const SparseTensor& window,
                     const CpdState& state);

  /// Accounts the factor update of the same event (must follow the matching
  /// OnWindowDelta). O(|cells|·M·R) — no rescans ever happen here.
  void OnFactorsUpdated(const CpdState& state);

  /// Current fitness estimate, clamped to finite arithmetic: 0 when the
  /// window is empty, otherwise 1 − √(max(0, ‖X̃‖² − 2⟨X̃,X⟩est + ‖X‖²))/‖X‖.
  /// Runs the amortized exact resync lazily when one is due (≥
  /// resync_interval events since the last), so callers that never query
  /// never pay the O(nnz·M·R) rescan on the ingest path.
  double RunningFitness(const SparseTensor& window,
                        const CpdState& state) const;

  /// Events accounted since the last exact resync (test hook).
  int64_t events_since_resync() const { return events_since_resync_; }

  /// Snapshot / restore of the incremental terms, valid between events
  /// (no delta in flight). Restore must follow a Reset against the same
  /// window/model the snapshot was taken over.
  FitnessAccumulators SaveAccumulators() const {
    return {norm_x_sq_, inner_, events_since_resync_, loss_sum_,
            baseline_sum_};
  }
  void RestoreAccumulators(const FitnessAccumulators& acc) {
    norm_x_sq_ = acc.norm_x_sq;
    inner_ = acc.inner;
    events_since_resync_ = acc.events_since_resync;
    loss_sum_ = acc.loss_sum;
    baseline_sum_ = acc.baseline_sum;
    num_cells_ = 0;
  }

 private:
  void ResyncExact(const SparseTensor& window, const CpdState& state) const;

  // Resyncs are a query-side cache refresh, so the terms are mutable and
  // RunningFitness stays const for read-only callers.
  mutable double norm_x_sq_ = 0.0;  // ‖X‖², exact up to fp accumulation.
  mutable double inner_ = 0.0;      // Estimate of ⟨X̃, X⟩.
  // Generalized-loss terms, maintained instead of the two above when a
  // non-Gaussian loss is set.
  mutable double loss_sum_ = 0.0;      // Estimate of Σℓ(x, x̃) over nnz.
  mutable double baseline_sum_ = 0.0;  // Σℓ(x, 0) over nnz, exact.
  const LossFunction* loss_ = nullptr;
  int64_t resync_interval_ = 0;
  mutable int64_t events_since_resync_ = 0;

  // Delta cells of the event in flight: 1 for arrival/expiry, 2 for a slide
  // (WindowDelta's documented maximum).
  std::array<ModeIndex, 2> cells_;
  std::array<double, 2> new_values_;
  std::array<double, 2> pre_predictions_;
  int num_cells_ = 0;

  mutable Matrix gram_product_;  // R×R query scratch for λ'(∗Q)λ.
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_FITNESS_TRACKER_H_
