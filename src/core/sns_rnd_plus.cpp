#include "core/sns_rnd_plus.h"

#include <vector>

#include "core/slice_sampler.h"
#include "core/sns_vec_plus.h"
#include "tensor/mttkrp.h"

namespace sns {

void SnsRndPlusUpdater::UpdateRow(int mode, int64_t row,
                                  const SparseTensor& window,
                                  const WindowDelta& delta, CpdState& state) {
  const int64_t rank = state.rank();
  Matrix& factor = state.model.factor(mode);
  std::vector<double> old_row(factor.Row(row), factor.Row(row) + rank);

  const Matrix hq = HadamardOfGramsExcept(state.grams, mode);
  std::vector<double> numerator(static_cast<size_t>(rank), 0.0);
  const int64_t degree = window.Degree(mode, row);

  if (degree <= sample_threshold_) {
    // Exact coordinate rule (Alg. 5 line 13 → Eq. 21) for every mode.
    MttkrpRow(window, state.model.factors(), mode, row, numerator.data());
  } else {
    // Sampled coordinate rule (Alg. 5 lines 9-11, 14 → Eq. 23):
    // e_k + Σ (x̄_J + Δx_J)·Π_{n≠m} a(n)_{j_n k} with
    // e_k = Σ_r b_{i r} (∗_{n≠m} U(n))(r, k).
    const Matrix hu = HadamardOfGramsExcept(prev_grams(), mode);
    RowTimesMatrix(old_row.data(), hu, numerator.data());

    // θ cells sampled uniformly from the slice grid, zero cells included
    // (their x̄ = −x̃ pulls spurious mass down); delta cells excluded per
    // footnote 2.
    std::vector<double> had(static_cast<size_t>(rank));
    for (const SampledCell& cell : SampleSliceCells(
             window, mode, row, sample_threshold_, delta, rng_)) {
      const double residual =
          cell.value - EvaluatePrevModel(cell.index, state);
      HadamardRowProduct(state.model.factors(), cell.index, mode, had.data());
      for (int64_t r = 0; r < rank; ++r) {
        numerator[static_cast<size_t>(r)] +=
            residual * had[static_cast<size_t>(r)];
      }
    }
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[mode] != row) continue;
      HadamardRowProduct(state.model.factors(), cell.index, mode, had.data());
      for (int64_t r = 0; r < rank; ++r) {
        numerator[static_cast<size_t>(r)] +=
            cell.delta * had[static_cast<size_t>(r)];
      }
    }
  }

  CoordinateDescentRow(factor.Row(row), rank, hq, numerator.data(), clip_min_,
                       clip_max_);
  CommitRow(mode, row, old_row, state);  // Eqs. 24-26.
}

}  // namespace sns
