#include "core/sns_rnd_plus.h"

#include "core/slice_sampler.h"
#include "core/sns_vec_plus.h"
#include "tensor/mttkrp.h"

namespace sns {

void SnsRndPlusUpdater::UpdateRow(int mode, int64_t row,
                                  const SparseTensor& window,
                                  const WindowDelta& delta, CpdState& state,
                                  UpdateWorkspace& ws) {
  if (GcpUpdateRow(mode, row, window, delta, state, clip_min_, clip_max_,
                   sample_threshold_, &rng_)) {
    return;  // Non-Gaussian loss: clipped θ-sampled GCP step replaces Eq. 23.
  }
  const int64_t rank = state.rank();
  Matrix& factor = state.model.factor(mode);
  const RankKernelTable& kr = *ws.kernels;
  const int64_t padded = ws.padded_rank;
  kr.copy(factor.Row(row), ws.old_row.data(), padded);

  // ws.h = HQ(m) = ∗_{n≠m} Q(n), preloaded by the base.
  const int64_t degree = window.Degree(mode, row);

  if (degree <= sample_threshold_) {
    // Exact coordinate rule (Alg. 5 line 13 → Eq. 21) for every mode.
    MttkrpRowDispatch(window, state, mode, row, ws.rhs.data(), ws.had.data(),
                      ws);
  } else {
    // Sampled coordinate rule (Alg. 5 lines 9-11, 14 → Eq. 23):
    // e_k + Σ (x̄_J + Δx_J)·Π_{n≠m} a(n)_{j_n k} with
    // e_k = Σ_r b_{i r} (∗_{n≠m} U(n))(r, k), U(n) reconstructed from Q(n)
    // and this event's committed-row deltas.
    HadamardOfPrevGramsExcept(state, mode, ws);
    RowTimesMatrixPadded(ws.old_row.data(), ws.h_prev, ws.rhs.data(), kr);

    // θ cells sampled uniformly from the slice grid, zero cells included
    // (their x̄ = −x̃ pulls spurious mass down); delta cells excluded per
    // footnote 2.
    SampleSliceCellsInto(window, mode, row, sample_threshold_, delta, rng_,
                         ws.samples);
    for (const SampledCell& cell : ws.samples) {
      const double residual =
          cell.value - EvaluatePrevModel(cell.index, state);
      HadamardRowDispatch(state, cell.index, mode, ws.had.data(), ws);
      kr.axpy(residual, ws.had.data(), ws.rhs.data(), padded);
    }
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[mode] != row) continue;
      HadamardRowDispatch(state, cell.index, mode, ws.had.data(), ws);
      kr.axpy(cell.delta, ws.had.data(), ws.rhs.data(), padded);
    }
  }

  CoordinateDescentRow(factor.Row(row), rank, ws.h, ws.rhs.data(), clip_min_,
                       clip_max_, kr);
  CommitRow(mode, row, ws.old_row.data(), state);  // Eqs. 24-26.
}

}  // namespace sns
