// SNS+RND (Alg. 5 updateRowRan+): the paper's recommended default — the
// θ-sampled update of SNS-RND made stable with coordinate descent and
// clipping. Light rows (deg ≤ θ) use the exact coordinate rule (Eq. 21);
// heavy rows replace X with X̃ + X̄ and use Eq. 23, where the e-term flows
// through the incrementally maintained U(m) = A(m)'_prev A(m) (Eq. 26).
// Per-event cost O(M²Rθ + M²R²): constant for fixed M, R, θ (Theorem 7).

#ifndef SLICENSTITCH_CORE_SNS_RND_PLUS_H_
#define SLICENSTITCH_CORE_SNS_RND_PLUS_H_

#include "common/random.h"
#include "core/row_updater_base.h"

namespace sns {

class SnsRndPlusUpdater : public RowUpdaterBase {
 public:
  /// sample_threshold is θ ≥ 1; clip_bound is η > 0. With nonnegative=true,
  /// entries are clipped to [0, η] (projected coordinate descent).
  SnsRndPlusUpdater(int64_t sample_threshold, double clip_bound, uint64_t seed,
                    bool nonnegative = false)
      : RowUpdaterBase(sample_threshold + 4),
        sample_threshold_(sample_threshold),
        clip_min_(nonnegative ? 0.0 : -clip_bound),
        clip_max_(clip_bound),
        rng_(seed) {
    SNS_CHECK(sample_threshold_ >= 1);
    SNS_CHECK(clip_bound > 0.0);
  }

  std::string_view name() const override { return "SNS+RND"; }

  Rng* MutableRng() override { return &rng_; }

 protected:
  bool NeedsPrevGrams() const override { return true; }

  void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                 const WindowDelta& delta, CpdState& state,
                 UpdateWorkspace& ws) override;

 private:
  int64_t sample_threshold_;
  double clip_min_;
  double clip_max_;
  Rng rng_;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_RND_PLUS_H_
