// Configuration of the continuous CPD engine: which SliceNStitch variant to
// run and its hyperparameters (Table III of the paper).

#ifndef SLICENSTITCH_CORE_OPTIONS_H_
#define SLICENSTITCH_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sns {

/// The five online updaters of §V.
enum class SnsVariant {
  kMat,      // SNS-MAT: one full ALS sweep per event (Alg. 2).
  kVec,      // SNS-VEC: affected-row least squares (Alg. 3+4).
  kRnd,      // SNS-RND: θ-sampled affected-row updates (Alg. 3+4).
  kVecPlus,  // SNS+VEC: coordinate descent + clipping (Alg. 5).
  kRndPlus,  // SNS+RND: θ-sampled coordinate descent + clipping (Alg. 5).
};

/// Short display name, e.g. "SNS-MAT", "SNS+RND".
std::string VariantName(SnsVariant variant);

/// Options controlling batch ALS (initialization and the offline baseline).
struct AlsOptions {
  /// Maximum number of full alternating sweeps.
  int max_iterations = 50;
  /// Stop when the fitness improvement of a sweep drops below this.
  double fitness_tolerance = 1e-5;
  /// Column-normalize factors after each mode update (Alg. 2 line 6).
  bool normalize_columns = true;
};

/// Full configuration of a continuous CPD engine.
struct ContinuousCpdOptions {
  /// Decomposition rank R.
  int64_t rank = 20;
  /// Number of time-mode indices W.
  int window_size = 10;
  /// Period T in stream time units.
  int64_t period = 3600;
  /// Which updater processes window events.
  SnsVariant variant = SnsVariant::kRndPlus;
  /// θ: sampling threshold of the RND variants (Alg. 4/5).
  int64_t sample_threshold = 20;
  /// η: clipping bound of the + variants (Alg. 5 line 5).
  double clip_bound = 1000.0;
  /// Extension (not in the paper): constrain factors of the + variants to be
  /// non-negative by clipping to [0, η] — projected coordinate descent,
  /// giving NMF-style interpretable factors for count data. Only valid with
  /// kVecPlus / kRndPlus.
  bool nonnegative_factors = false;
  /// Hint: expected number of simultaneous window non-zeros. Pre-sizes the
  /// window tensor's entry pool and hash index so warm-up ingestion avoids
  /// rehash/realloc storms. 0 = unset: the engine does no pre-sizing and
  /// callers that know the stream (e.g. the experiment harness) may fill in
  /// a derived hint. Never a correctness knob.
  int64_t expected_nnz = 0;
  /// Events between exact resyncs of the running-fitness estimator
  /// (core/fitness_tracker.h): smaller bounds the estimator's drift tighter
  /// at a higher amortized O(nnz·M·R) rescan cost. Resyncs run lazily
  /// inside RunningFitness() queries — callers that never query never pay
  /// them. 0 disables resyncs (the estimate then drifts with factor churn
  /// until the next ALS initialization). Affects RunningFitness() only,
  /// never the factors.
  int64_t fitness_resync_interval = 128;
  /// ALS settings used by InitializeWithAls().
  AlsOptions init;
  /// Seed for factor initialization and θ-sampling.
  uint64_t seed = 0x5115e9;

  /// Validates ranges; returned by ContinuousCpd::Create on failure.
  Status Validate() const;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_OPTIONS_H_
