// Configuration of the continuous CPD engine: which SliceNStitch variant to
// run and its hyperparameters (Table III of the paper).

#ifndef SLICENSTITCH_CORE_OPTIONS_H_
#define SLICENSTITCH_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "losses/loss_function.h"

namespace sns {

/// The five online updaters of §V.
enum class SnsVariant {
  kMat,      // SNS-MAT: one full ALS sweep per event (Alg. 2).
  kVec,      // SNS-VEC: affected-row least squares (Alg. 3+4).
  kRnd,      // SNS-RND: θ-sampled affected-row updates (Alg. 3+4).
  kVecPlus,  // SNS+VEC: coordinate descent + clipping (Alg. 5).
  kRndPlus,  // SNS+RND: θ-sampled coordinate descent + clipping (Alg. 5).
};

/// Short display name, e.g. "SNS-MAT", "SNS+RND".
std::string VariantName(SnsVariant variant);

/// Numeric storage mode of the factor matrices.
enum class FactorPrecision {
  /// Factors stored and read as float64 — the paper's arithmetic.
  kFloat64,
  /// Mixed precision: every committed factor row is quantized to float32
  /// (the double factors then hold exactly float32-representable values and
  /// remain the store of record for snapshots, deltas, Grams and solves),
  /// and the per-event hot reads — Hadamard row products and row MTTKRPs —
  /// consume a float32 mirror of the factors with float64 in-register
  /// accumulation. Halves hot-loop factor read traffic at a bounded
  /// accuracy cost (see README "Kernel tiers and mixed precision").
  kFloat32Accum64,
};

/// Short display name: "f64", "f32a64".
std::string FactorPrecisionName(FactorPrecision precision);

/// Robust (outlier-separating) mode: X = L + S following Hawkins & Zhang's
/// robust streaming factorization (see losses/outlier_store.h). At every
/// arrival the residual of the observation against the model's predicted
/// mean is soft-thresholded; the captured part accumulates in a bounded
/// sparse outlier store keyed by the tuple's non-time coordinate and is
/// subtracted from the ingested value, so outliers stop being absorbed
/// into the factors. Works with any loss (the prediction runs through the
/// loss's link function).
struct RobustOptions {
  /// Master switch. Off (the default) leaves the ingest path byte-for-byte
  /// identical to the non-robust engine.
  bool enabled = false;
  /// τ > 0: residual magnitude below which nothing is captured. In units
  /// of the data values.
  double threshold = 3.0;
  /// Per-period multiplier in [0, 1] applied to every stored entry as the
  /// window advances, draining stale outlier mass. 1 never decays; 0
  /// forgets each period.
  double decay = 0.5;
  /// Maximum number of live outlier entries; the smallest-magnitude entry
  /// is evicted on overflow. Must be >= 1.
  int64_t capacity = 4096;
};

/// Options controlling batch ALS (initialization and the offline baseline).
struct AlsOptions {
  /// Maximum number of full alternating sweeps.
  int max_iterations = 50;
  /// Stop when the fitness improvement of a sweep drops below this.
  double fitness_tolerance = 1e-5;
  /// Column-normalize factors after each mode update (Alg. 2 line 6).
  bool normalize_columns = true;
};

/// Full configuration of a continuous CPD engine.
struct ContinuousCpdOptions {
  /// Decomposition rank R.
  int64_t rank = 20;
  /// Number of time-mode indices W.
  int window_size = 10;
  /// Period T in stream time units.
  int64_t period = 3600;
  /// Which updater processes window events.
  SnsVariant variant = SnsVariant::kRndPlus;
  /// θ: sampling threshold of the RND variants (Alg. 4/5).
  int64_t sample_threshold = 20;
  /// η: clipping bound of the + variants (Alg. 5 line 5).
  double clip_bound = 1000.0;
  /// Extension (not in the paper): constrain factors of the + variants to be
  /// non-negative by clipping to [0, η] — projected coordinate descent,
  /// giving NMF-style interpretable factors for count data. Only valid with
  /// kVecPlus / kRndPlus.
  bool nonnegative_factors = false;
  /// Hint: expected number of simultaneous window non-zeros. Pre-sizes the
  /// window tensor's entry pool and hash index so warm-up ingestion avoids
  /// rehash/realloc storms. 0 = unset: the engine does no pre-sizing and
  /// callers that know the stream (e.g. the experiment harness) may fill in
  /// a derived hint. Never a correctness knob.
  int64_t expected_nnz = 0;
  /// Events between exact resyncs of the running-fitness estimator
  /// (core/fitness_tracker.h): smaller bounds the estimator's drift tighter
  /// at a higher amortized O(nnz·M·R) rescan cost. Resyncs run lazily
  /// inside RunningFitness() queries — callers that never query never pay
  /// them. 0 disables resyncs (the estimate then drifts with factor churn
  /// until the next ALS initialization). Affects RunningFitness() only,
  /// never the factors.
  int64_t fitness_resync_interval = 128;
  /// Numeric storage mode of the factors (see FactorPrecision).
  FactorPrecision factor_precision = FactorPrecision::kFloat64;
  /// Pin the engine's rank kernels to the portable generic tier, ignoring
  /// any SIMD codelets the host supports. Diagnostic knob: a forced-generic
  /// engine and the process-wide SNS_FORCE_GENERIC_KERNELS env override run
  /// bit-identical trajectories. Never a correctness knob on its own — the
  /// elementwise kernels are bitwise tier-invariant and the FMA kernels
  /// agree to a few ulps (linalg/rank_dispatch.h).
  bool force_generic_kernels = false;
  /// Pointwise loss the engine minimizes (losses/loss_function.h). The
  /// Gaussian default reproduces the paper's least-squares engine exactly
  /// (bitwise — regression-guarded by tests/losses_gaussian_bitwise_test);
  /// Poisson / Bernoulli-logit run the damped-Newton GCP row updates of
  /// losses/gcp_row_update.h instead of the closed-form Gaussian rules.
  LossKind loss = LossKind::kGaussian;
  /// Outlier-separating robust mode (see RobustOptions).
  RobustOptions robust;
  /// ALS settings used by InitializeWithAls().
  AlsOptions init;
  /// Seed for factor initialization and θ-sampling.
  uint64_t seed = 0x5115e9;

  /// Validates ranges; returned by ContinuousCpd::Create on failure.
  Status Validate() const;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_OPTIONS_H_
