#include "core/sns_vec.h"

#include <algorithm>

#include "tensor/mttkrp.h"

namespace sns {

void SnsVecUpdater::UpdateRow(int mode, int64_t row,
                              const SparseTensor& window,
                              const WindowDelta& delta, CpdState& state,
                              UpdateWorkspace& ws) {
  const int64_t rank = state.rank();
  const int time_mode = state.num_modes() - 1;
  Matrix& factor = state.model.factor(mode);
  std::copy(factor.Row(row), factor.Row(row) + rank, ws.old_row.begin());

  ws.solver.Factorize(ws.h);  // H(m) = ∗_{n≠m} Q(n), preloaded by the base.

  if (mode == time_mode) {
    // Eq. 9: A(M)(row,:) += ΔX_(M)(row,:) K(M) H(M)†. The matricized delta
    // row has at most one non-zero — the delta cell living in this slice —
    // and its K(M) row is the Hadamard of the non-time factor rows.
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[time_mode] != row) continue;
      HadamardRowProduct(state.model.factors(), cell.index, time_mode,
                         ws.had.data());
      for (int64_t r = 0; r < rank; ++r) {
        ws.rhs[static_cast<size_t>(r)] +=
            cell.delta * ws.had[static_cast<size_t>(r)];
      }
    }
    ws.solver.Solve(ws.rhs.data(), ws.solution.data());
    double* target = factor.Row(row);
    for (int64_t r = 0; r < rank; ++r) {
      target[r] += ws.solution[static_cast<size_t>(r)];
    }
  } else {
    // Eq. 12: A(m)(row,:) ← (X + ΔX)_(m)(row,:) K(m) H(m)†. The window
    // already contains the delta, so the row MTTKRP is the full right side.
    MttkrpRow(window, state.model.factors(), mode, row, ws.rhs.data(),
              ws.had.data());
    ws.solver.Solve(ws.rhs.data(), ws.solution.data());
    double* target = factor.Row(row);
    for (int64_t r = 0; r < rank; ++r) {
      target[r] = ws.solution[static_cast<size_t>(r)];
    }
  }

  CommitRow(mode, row, ws.old_row.data(), state);  // Eq. 13.
}

}  // namespace sns
