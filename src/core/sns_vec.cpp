#include "core/sns_vec.h"

#include <limits>

#include "tensor/mttkrp.h"

namespace sns {

void SnsVecUpdater::UpdateRow(int mode, int64_t row,
                              const SparseTensor& window,
                              const WindowDelta& delta, CpdState& state,
                              UpdateWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (GcpUpdateRow(mode, row, window, delta, state, -kInf, kInf,
                   /*sample_threshold=*/0, /*rng=*/nullptr)) {
    return;  // Non-Gaussian loss: the GCP Newton step replaces Eqs. 9/12.
  }
  const int time_mode = state.num_modes() - 1;
  Matrix& factor = state.model.factor(mode);
  const RankKernelTable& kr = *ws.kernels;
  const int64_t padded = ws.padded_rank;
  kr.copy(factor.Row(row), ws.old_row.data(), padded);

  ws.solver.Factorize(ws.h);  // H(m) = ∗_{n≠m} Q(n), preloaded by the base.

  if (mode == time_mode) {
    // Eq. 9: A(M)(row,:) += ΔX_(M)(row,:) K(M) H(M)†. The matricized delta
    // row has at most one non-zero — the delta cell living in this slice —
    // and its K(M) row is the Hadamard of the non-time factor rows.
    kr.fill(ws.rhs.data(), 0.0, padded);
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[time_mode] != row) continue;
      HadamardRowDispatch(state, cell.index, time_mode, ws.had.data(), ws);
      kr.axpy(cell.delta, ws.had.data(), ws.rhs.data(), padded);
    }
    ws.solver.Solve(ws.rhs.data(), ws.solution.data());
    kr.axpy(1.0, ws.solution.data(), factor.Row(row), padded);
  } else {
    // Eq. 12: A(m)(row,:) ← (X + ΔX)_(m)(row,:) K(m) H(m)†. The window
    // already contains the delta, so the row MTTKRP is the full right side.
    MttkrpRowDispatch(window, state, mode, row, ws.rhs.data(), ws.had.data(),
                      ws);
    ws.solver.Solve(ws.rhs.data(), ws.solution.data());
    kr.copy(ws.solution.data(), factor.Row(row), padded);
  }

  CommitRow(mode, row, ws.old_row.data(), state);  // Eq. 13.
}

}  // namespace sns
