#include "core/sns_vec.h"

#include <vector>

#include "core/gram_solve.h"
#include "tensor/mttkrp.h"

namespace sns {

void SnsVecUpdater::UpdateRow(int mode, int64_t row,
                              const SparseTensor& window,
                              const WindowDelta& delta, CpdState& state) {
  const int64_t rank = state.rank();
  const int time_mode = state.num_modes() - 1;
  Matrix& factor = state.model.factor(mode);
  std::vector<double> old_row(factor.Row(row), factor.Row(row) + rank);

  const Matrix h = HadamardOfGramsExcept(state.grams, mode);
  std::vector<double> solution(static_cast<size_t>(rank));

  if (mode == time_mode) {
    // Eq. 9: A(M)(row,:) += ΔX_(M)(row,:) K(M) H(M)†. The matricized delta
    // row has at most one non-zero — the delta cell living in this slice —
    // and its K(M) row is the Hadamard of the non-time factor rows.
    std::vector<double> g(static_cast<size_t>(rank), 0.0);
    std::vector<double> had(static_cast<size_t>(rank));
    for (const DeltaCell& cell : delta.cells) {
      if (cell.index[time_mode] != row) continue;
      HadamardRowProduct(state.model.factors(), cell.index, time_mode,
                         had.data());
      for (int64_t r = 0; r < rank; ++r) {
        g[static_cast<size_t>(r)] += cell.delta * had[static_cast<size_t>(r)];
      }
    }
    SolveRowAgainstGram(h, g.data(), solution.data());
    double* target = factor.Row(row);
    for (int64_t r = 0; r < rank; ++r) {
      target[r] += solution[static_cast<size_t>(r)];
    }
  } else {
    // Eq. 12: A(m)(row,:) ← (X + ΔX)_(m)(row,:) K(m) H(m)†. The window
    // already contains the delta, so the row MTTKRP is the full right side.
    std::vector<double> b(static_cast<size_t>(rank));
    MttkrpRow(window, state.model.factors(), mode, row, b.data());
    SolveRowAgainstGram(h, b.data(), solution.data());
    double* target = factor.Row(row);
    for (int64_t r = 0; r < rank; ++r) {
      target[r] = solution[static_cast<size_t>(r)];
    }
  }

  CommitRow(mode, row, old_row, state);  // Eq. 13.
}

}  // namespace sns
