#include "core/cpd_state.h"

#include <cmath>

#include "linalg/rank_dispatch.h"

namespace sns {

void CpdState::RecomputeGrams() {
  grams.clear();
  grams.reserve(static_cast<size_t>(num_modes()));
  for (int m = 0; m < num_modes(); ++m) {
    grams.push_back(MultiplyTransposeA(model.factor(m), model.factor(m)));
  }
}

void CpdState::AbsorbLambda() {
  const int modes = num_modes();
  const int64_t r = rank();
  for (int64_t k = 0; k < r; ++k) {
    double& lambda_k = model.lambda()[static_cast<size_t>(k)];
    if (lambda_k == 1.0) continue;
    // Distribute the magnitude evenly; the sign goes to the first mode.
    const double magnitude =
        std::pow(std::fabs(lambda_k), 1.0 / static_cast<double>(modes));
    const double sign = lambda_k < 0.0 ? -1.0 : 1.0;
    for (int m = 0; m < modes; ++m) {
      Matrix& factor = model.factor(m);
      const double scale = (m == 0) ? sign * magnitude : magnitude;
      for (int64_t i = 0; i < factor.rows(); ++i) factor(i, k) *= scale;
    }
    lambda_k = 1.0;
  }
  RecomputeGrams();
}

void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row) {
  const int64_t r = gram.rows();
  DispatchPaddedRank(gram.stride(), [&](auto tag) {
    constexpr int64_t P = decltype(tag)::value;
    for (int64_t i = 0; i < r; ++i) {
      VecGramRowDelta<P>(new_row[i], new_row, old_row[i], old_row,
                         gram.Row(i), gram.stride());
    }
  });
}

void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row) {
  const int64_t r = prev_gram.rows();
  DispatchPaddedRank(prev_gram.stride(), [&](auto tag) {
    constexpr int64_t P = decltype(tag)::value;
    for (int64_t i = 0; i < r; ++i) {
      const double prev_i = prev_row[i];
      if (prev_i == 0.0) continue;
      VecScaledDiffAccum<P>(prev_i, new_row, prev_row, prev_gram.Row(i),
                            prev_gram.stride());
    }
  });
}

}  // namespace sns
