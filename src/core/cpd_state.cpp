#include "core/cpd_state.h"

#include <cmath>

namespace sns {

void CpdState::RecomputeGrams() {
  grams.clear();
  grams.reserve(static_cast<size_t>(num_modes()));
  for (int m = 0; m < num_modes(); ++m) {
    grams.push_back(MultiplyTransposeA(model.factor(m), model.factor(m)));
  }
}

void CpdState::AbsorbLambda() {
  const int modes = num_modes();
  const int64_t r = rank();
  for (int64_t k = 0; k < r; ++k) {
    double& lambda_k = model.lambda()[static_cast<size_t>(k)];
    if (lambda_k == 1.0) continue;
    // Distribute the magnitude evenly; the sign goes to the first mode.
    const double magnitude =
        std::pow(std::fabs(lambda_k), 1.0 / static_cast<double>(modes));
    const double sign = lambda_k < 0.0 ? -1.0 : 1.0;
    for (int m = 0; m < modes; ++m) {
      Matrix& factor = model.factor(m);
      const double scale = (m == 0) ? sign * magnitude : magnitude;
      for (int64_t i = 0; i < factor.rows(); ++i) factor(i, k) *= scale;
    }
    lambda_k = 1.0;
  }
  RecomputeGrams();
}

void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row) {
  const int64_t r = gram.rows();
  for (int64_t i = 0; i < r; ++i) {
    double* gram_row = gram.Row(i);
    const double new_i = new_row[i];
    const double old_i = old_row[i];
    for (int64_t j = 0; j < r; ++j) {
      gram_row[j] += new_i * new_row[j] - old_i * old_row[j];
    }
  }
}

void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row) {
  const int64_t r = prev_gram.rows();
  for (int64_t i = 0; i < r; ++i) {
    double* gram_row = prev_gram.Row(i);
    const double prev_i = prev_row[i];
    if (prev_i == 0.0) continue;
    for (int64_t j = 0; j < r; ++j) {
      gram_row[j] += prev_i * (new_row[j] - prev_row[j]);
    }
  }
}

}  // namespace sns
