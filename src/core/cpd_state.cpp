#include "core/cpd_state.h"

#include <cmath>

#include "linalg/rank_dispatch.h"

namespace sns {

void CpdState::RecomputeGrams() {
  const int modes = num_modes();
  if (modes == 0) {
    grams.clear();
    return;
  }
  const int64_t r = rank();
  // In place when already shaped (keeps SNS-MAT's per-event quantization
  // refresh allocation-free); (re)allocate otherwise.
  if (static_cast<int>(grams.size()) != modes || grams[0].rows() != r) {
    grams.assign(static_cast<size_t>(modes), Matrix(r, r));
  }
  const RankKernelTable& kr = GetRankKernelTable(PaddedRank(r), kernel_tier);
  for (int m = 0; m < modes; ++m) {
    const Matrix& f = model.factor(m);
    MultiplyTransposeAInto(f, f, grams[static_cast<size_t>(m)], kr);
  }
}

void CpdState::AbsorbLambda() {
  const int modes = num_modes();
  const int64_t r = rank();
  for (int64_t k = 0; k < r; ++k) {
    double& lambda_k = model.lambda()[static_cast<size_t>(k)];
    if (lambda_k == 1.0) continue;
    // Distribute the magnitude evenly; the sign goes to the first mode.
    const double magnitude =
        std::pow(std::fabs(lambda_k), 1.0 / static_cast<double>(modes));
    const double sign = lambda_k < 0.0 ? -1.0 : 1.0;
    for (int m = 0; m < modes; ++m) {
      Matrix& factor = model.factor(m);
      const double scale = (m == 0) ? sign * magnitude : magnitude;
      for (int64_t i = 0; i < factor.rows(); ++i) factor(i, k) *= scale;
    }
    lambda_k = 1.0;
  }
  RecomputeGrams();
}

void CpdState::SetFactorPrecision(FactorPrecision p) {
  precision = p;
  if (mixed()) {
    QuantizeFactorsToF32();
  } else {
    factors32.clear();
  }
}

void CpdState::QuantizeFactorsToF32() {
  if (!mixed() || num_modes() == 0) return;
  factors32.resize(static_cast<size_t>(num_modes()));
  const int64_t r = rank();
  for (int m = 0; m < num_modes(); ++m) {
    Matrix& f = model.factor(m);
    Matrix32& f32 = factors32[static_cast<size_t>(m)];
    if (f32.rows() != f.rows() || f32.cols() != r) {
      f32 = Matrix32(f.rows(), r);
    }
    for (int64_t i = 0; i < f.rows(); ++i) {
      double* d = f.Row(i);
      float* s = f32.Row(i);
      for (int64_t k = 0; k < r; ++k) {
        const float q = static_cast<float>(d[k]);
        s[k] = q;
        d[k] = static_cast<double>(q);
      }
    }
  }
  RecomputeGrams();
}

void CpdState::SyncRowToF32(int mode, int64_t row) {
  if (!mixed()) return;
  double* d = model.factor(mode).Row(row);
  float* s = factors32[static_cast<size_t>(mode)].Row(row);
  const int64_t r = rank();
  for (int64_t k = 0; k < r; ++k) {
    const float q = static_cast<float>(d[k]);
    s[k] = q;
    d[k] = static_cast<double>(q);
  }
}

void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row) {
  ApplyGramRowUpdate(gram, old_row, new_row,
                     GetRankKernelTable(gram.stride()));
}

void ApplyGramRowUpdate(Matrix& gram, const double* old_row,
                        const double* new_row, const RankKernelTable& kr) {
  const int64_t r = gram.rows();
  for (int64_t i = 0; i < r; ++i) {
    kr.gram_row_delta(new_row[i], new_row, old_row[i], old_row, gram.Row(i),
                      gram.stride());
  }
}

void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row) {
  ApplyPrevGramRowUpdate(prev_gram, prev_row, new_row,
                         GetRankKernelTable(prev_gram.stride()));
}

void ApplyPrevGramRowUpdate(Matrix& prev_gram, const double* prev_row,
                            const double* new_row,
                            const RankKernelTable& kr) {
  const int64_t r = prev_gram.rows();
  for (int64_t i = 0; i < r; ++i) {
    const double prev_i = prev_row[i];
    if (prev_i == 0.0) continue;
    kr.scaled_diff_accum(prev_i, new_row, prev_row, prev_gram.Row(i),
                         prev_gram.stride());
  }
}

}  // namespace sns
