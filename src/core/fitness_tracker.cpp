#include "core/fitness_tracker.h"

#include <cmath>

#include "losses/loss_function.h"
#include "losses/reference_objective.h"

namespace sns {

void RunningFitnessTracker::Reset(const SparseTensor& window,
                                  const CpdState& state,
                                  int64_t resync_interval) {
  resync_interval_ = resync_interval;
  num_cells_ = 0;
  const int64_t rank = state.rank();
  if (gram_product_.rows() != rank || gram_product_.cols() != rank) {
    gram_product_ = Matrix(rank, rank);
  }
  ResyncExact(window, state);
}

void RunningFitnessTracker::OnWindowDelta(const WindowDelta& delta,
                                          const SparseTensor& window,
                                          const CpdState& state) {
  // The correction arrays hold WindowDelta's documented maximum of two
  // cells; a wider delta would corrupt the estimate silently, so fail loud
  // in every build (once per event, the check is free next to the O(M·R)
  // cell work below).
  SNS_CHECK(delta.cells.size() <= cells_.size());
  num_cells_ = 0;
  for (const DeltaCell& cell : delta.cells) {
    const double x_new = window.Get(cell.index);
    const double x_old = x_new - cell.delta;
    const double predicted = state.model.Evaluate(cell.index);
    if (loss_ != nullptr) {
      // Generalized objective: the cell leaves/enters the window's nonzero
      // support, so its ℓ terms move between the sums. θ is the pre-update
      // prediction; OnFactorsUpdated corrects for the factor step below.
      if (x_old != 0.0) {
        loss_sum_ -= loss_->Value(x_old, predicted);
        baseline_sum_ -= loss_->Value(x_old, 0.0);
      }
      if (x_new != 0.0) {
        loss_sum_ += loss_->Value(x_new, predicted);
        baseline_sum_ += loss_->Value(x_new, 0.0);
      }
    } else {
      norm_x_sq_ += x_new * x_new - x_old * x_old;
      inner_ += cell.delta * predicted;
    }
    if (num_cells_ >= static_cast<int>(cells_.size())) continue;
    const size_t slot = static_cast<size_t>(num_cells_);
    cells_[slot] = cell.index;
    new_values_[slot] = x_new;
    pre_predictions_[slot] = predicted;
    ++num_cells_;
  }
}

void RunningFitnessTracker::OnFactorsUpdated(const CpdState& state) {
  // Local correction: the update's effect on X̃ at the cells it targeted.
  for (int c = 0; c < num_cells_; ++c) {
    const size_t slot = static_cast<size_t>(c);
    if (loss_ != nullptr) {
      if (new_values_[slot] == 0.0) continue;  // Left the nonzero support.
      loss_sum_ +=
          loss_->Value(new_values_[slot], state.model.Evaluate(cells_[slot])) -
          loss_->Value(new_values_[slot], pre_predictions_[slot]);
    } else {
      inner_ += new_values_[slot] *
                (state.model.Evaluate(cells_[slot]) - pre_predictions_[slot]);
    }
  }
  num_cells_ = 0;
  ++events_since_resync_;
}

double RunningFitnessTracker::RunningFitness(const SparseTensor& window,
                                             const CpdState& state) const {
  if (resync_interval_ > 0 && events_since_resync_ >= resync_interval_) {
    ResyncExact(window, state);
  }
  if (loss_ != nullptr) {
    // Generalized fitness 1 − Σℓ(x, x̃)/Σℓ(x, 0): the GCP analog of the
    // Frobenius formula, agreeing with it for Gaussian up to the √.
    if (baseline_sum_ <= 0.0) return 0.0;
    return 1.0 - loss_sum_ / baseline_sum_;
  }
  if (norm_x_sq_ <= 0.0) return 0.0;
  // ‖X̃‖² = λ'(∗_m Q(m))λ over the incrementally maintained Grams.
  gram_product_.Fill(1.0);
  for (const Matrix& gram : state.grams) {
    HadamardAccumulate(gram_product_, gram);
  }
  const std::vector<double>& lambda = state.model.lambda();
  double model_norm_sq = 0.0;
  for (int64_t r = 0; r < gram_product_.rows(); ++r) {
    const double* row = gram_product_.Row(r);
    double partial = 0.0;
    for (int64_t s = 0; s < gram_product_.cols(); ++s) {
      partial += row[s] * lambda[static_cast<size_t>(s)];
    }
    model_norm_sq += lambda[static_cast<size_t>(r)] * partial;
  }
  const double residual_sq =
      std::max(0.0, model_norm_sq - 2.0 * inner_ + norm_x_sq_);
  return 1.0 - std::sqrt(residual_sq) / std::sqrt(norm_x_sq_);
}

void RunningFitnessTracker::ResyncExact(const SparseTensor& window,
                                        const CpdState& state) const {
  if (loss_ != nullptr) {
    loss_sum_ = WindowLoss(window, state.model, *loss_);
    baseline_sum_ = WindowLossBaseline(window, *loss_);
    events_since_resync_ = 0;
    return;
  }
  norm_x_sq_ = window.FrobeniusNormSquared();
  inner_ = state.model.InnerProduct(window);
  events_since_resync_ = 0;
}

}  // namespace sns
