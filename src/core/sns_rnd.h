// SNS-RND (Alg. 3 + Alg. 4 updateRowRan): caps the per-row work of SNS-VEC
// at a user constant θ. Rows with deg ≤ θ use the exact rule (Eq. 12); heavy
// rows approximate X by X̃ + X̄ — the pre-event model plus residual
// corrections at θ sampled non-zeros — giving the update rule
// A(m)(i,:) ← A(m)(i,:) H_prev H† + (X̄+ΔX)_(m)(i,:) K H† (Eq. 16) with
// H_prev = ∗_{n≠m} A(n)'_prev A(n) maintained incrementally (Eq. 17).
// Per-event cost is O(M²Rθ + M²R² + MR³): constant in the data size
// (Theorem 5).

#ifndef SLICENSTITCH_CORE_SNS_RND_H_
#define SLICENSTITCH_CORE_SNS_RND_H_

#include "common/random.h"
#include "core/row_updater_base.h"

namespace sns {

class SnsRndUpdater : public RowUpdaterBase {
 public:
  /// sample_threshold is the paper's θ ≥ 1. The workspace sample buffer is
  /// pre-reserved for θ plus the ≤2 delta cells a tiny-slice enumeration
  /// may add, keeping the sampled path allocation-free.
  SnsRndUpdater(int64_t sample_threshold, uint64_t seed)
      : RowUpdaterBase(sample_threshold + 4),
        sample_threshold_(sample_threshold),
        rng_(seed) {
    SNS_CHECK(sample_threshold_ >= 1);
  }

  std::string_view name() const override { return "SNS-RND"; }

  Rng* MutableRng() override { return &rng_; }

 protected:
  bool NeedsPrevGrams() const override { return true; }

  void UpdateRow(int mode, int64_t row, const SparseTensor& window,
                 const WindowDelta& delta, CpdState& state,
                 UpdateWorkspace& ws) override;

 private:
  int64_t sample_threshold_;
  Rng rng_;
};

}  // namespace sns

#endif  // SLICENSTITCH_CORE_SNS_RND_H_
