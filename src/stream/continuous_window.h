// Event-driven implementation of the continuous tensor model (Algorithm 1).
//
// The window D(t, W) is an M-mode sparse tensor whose last mode is time with
// W indices (0 = oldest unit, W−1 = newest). Each ingested tuple immediately
// adds its value to the newest slice and schedules its first slide; pops of
// the schedule heap move the value backwards one slice per period until it
// expires, exactly reproducing events S.1–S.3. Complexity matches Theorems
// 1–2: O(M) per event, O(W+1) events per tuple, space linear in the active
// tuples.

#ifndef SLICENSTITCH_STREAM_CONTINUOUS_WINDOW_H_
#define SLICENSTITCH_STREAM_CONTINUOUS_WINDOW_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/status.h"
#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

namespace serial {
class Writer;
class Reader;
}  // namespace serial

/// Maintains the up-to-date tensor window of a multi-aspect data stream
/// under the continuous tensor model.
///
/// Callers interleave Ingest (tuple arrivals, chronological) with draining
/// scheduled events: before ingesting a tuple at time t, drain every
/// scheduled event due at or before t (AdvanceTo(t)) so window state always
/// reflects D(t, W). Scheduled events due exactly at an arrival's timestamp
/// are processed before the arrival, making replays deterministic.
class ContinuousTensorWindow {
 public:
  /// mode_dims: sizes of the M−1 non-time modes. window_size: W ≥ 1 time
  /// indices. period: T ≥ 1 time units per tensor unit. expected_nnz
  /// (optional) pre-sizes the window tensor for that many simultaneous
  /// non-zeros, avoiding rehash/realloc storms during warm-up ingestion.
  ContinuousTensorWindow(std::vector<int64_t> mode_dims, int window_size,
                         int64_t period, int64_t expected_nnz = 0);

  /// The live window tensor X = D(t, W); last mode is time.
  const SparseTensor& tensor() const { return window_; }

  int window_size() const { return window_size_; }
  int64_t period() const { return period_; }
  /// Number of modes of the window tensor (M = non-time modes + 1).
  int num_modes() const { return window_.num_modes(); }
  const std::vector<int64_t>& mode_dims() const { return window_.dims(); }

  /// Applies S.1 for a tuple: adds v at slice W−1, schedules the next event.
  /// Tuples must arrive in non-decreasing time order and only after all
  /// earlier-due scheduled events have been drained. Zero-valued tuples
  /// produce an empty delta and schedule nothing.
  WindowDelta Ingest(const Tuple& tuple);

  /// Validating wrapper around Ingest for API-boundary use.
  Status IngestChecked(const Tuple& tuple, WindowDelta* delta);

  bool HasScheduled() const { return !schedule_.empty(); }

  /// Due time of the earliest scheduled slide/expiry event;
  /// int64_t max when none are pending.
  int64_t NextScheduledTime() const;

  /// Pops the earliest scheduled event, applies it (S.2 or S.3), schedules
  /// the follow-up, and returns its delta. Requires HasScheduled().
  WindowDelta PopScheduled();

  /// Applies every scheduled event due at or before `time`, invoking
  /// `on_event(delta)` after each application. Statically dispatched so the
  /// per-event path carries no std::function indirection.
  template <typename Fn>
  void AdvanceTo(int64_t time, Fn&& on_event) {
    while (!schedule_.empty() && schedule_.top().due <= time) {
      on_event(PopScheduled());
    }
  }

  /// Applies every scheduled event due at or before `time`.
  void AdvanceTo(int64_t time) {
    while (!schedule_.empty() && schedule_.top().due <= time) PopScheduled();
  }

  /// Number of tuples currently inside the window span (active tuples).
  int64_t ActiveTupleCount() const {
    return static_cast<int64_t>(schedule_.size());
  }

  /// Serializes the window tensor (with storage layout), the event clock,
  /// and the pending schedule in deterministic (due, seq) order.
  void SerializeTo(serial::Writer& w) const;

  /// Restores into this window, which must be freshly constructed with the
  /// same shape/period. Replays are then bitwise identical: the schedule
  /// heap pops in the strict (due, seq) order the snapshot recorded.
  /// Corrupt input fails with kDataLoss.
  Status RestoreFrom(serial::Reader& r);

 private:
  struct Scheduled {
    int64_t due;
    uint64_t seq;  // FIFO tie-break for equal due times.
    Tuple tuple;
    int w;  // Which update this is: 1..W (W = expiry).
  };
  struct ScheduledLater {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  /// Applies the w-th update of a tuple to the window, returns the delta.
  WindowDelta ApplyScheduled(const Scheduled& event);

  SparseTensor window_;
  int window_size_;
  int64_t period_;
  uint64_t next_seq_ = 0;
  int64_t last_event_time_ = INT64_MIN;
  std::priority_queue<Scheduled, std::vector<Scheduled>, ScheduledLater>
      schedule_;
};

}  // namespace sns

#endif  // SLICENSTITCH_STREAM_CONTINUOUS_WINDOW_H_
