#include "stream/periodic_window.h"

namespace sns {

PeriodicTensorWindow::PeriodicTensorWindow(std::vector<int64_t> mode_dims,
                                           int window_size, int64_t period)
    : mode_dims_(std::move(mode_dims)),
      window_size_(window_size),
      period_(period) {
  SNS_CHECK(window_size_ >= 1);
  SNS_CHECK(period_ >= 1);
}

void PeriodicTensorWindow::AddTuple(const Tuple& tuple) {
  SNS_CHECK(tuple.index.size() == static_cast<int>(mode_dims_.size()));
  // A tuple at time t belongs to the unit covering (kT, (k+1)T] ∋ t. Close
  // any fully elapsed periods first.
  while (tuple.time > next_unit_start_ + period_) CloseOnePeriod();
  if (tuple.value != 0.0) accumulating_[tuple.index] += tuple.value;
}

void PeriodicTensorWindow::CloseUpTo(int64_t time) {
  while (next_unit_start_ + period_ <= time) CloseOnePeriod();
}

void PeriodicTensorWindow::CloseOnePeriod() {
  units_.push_back(std::move(accumulating_));
  accumulating_.clear();
  next_unit_start_ += period_;
  if (static_cast<int>(units_.size()) > window_size_) units_.pop_front();
}

SparseTensor PeriodicTensorWindow::WindowTensor() const {
  std::vector<int64_t> dims = mode_dims_;
  dims.push_back(window_size_);
  int64_t total_nnz = 0;
  for (const UnitMap& unit : units_) {
    total_nnz += static_cast<int64_t>(unit.size());
  }
  SparseTensor window(dims, total_nnz);
  // Newest unit at index W−1; units_ is oldest-first.
  const int count = static_cast<int>(units_.size());
  for (int u = 0; u < count; ++u) {
    const int time_index = window_size_ - count + u;
    if (time_index < 0) continue;
    for (const auto& [index, value] : units_[static_cast<size_t>(u)]) {
      window.Add(index.WithAppended(time_index), value);
    }
  }
  return window;
}

SparseTensor PeriodicTensorWindow::NewestUnit() const {
  SparseTensor unit(
      mode_dims_,
      units_.empty() ? 0 : static_cast<int64_t>(units_.back().size()));
  if (!units_.empty()) {
    for (const auto& [index, value] : units_.back()) unit.Add(index, value);
  }
  return unit;
}

}  // namespace sns
