// In-memory multi-aspect data stream (Definition 1): a chronological
// sequence of timestamped tuples over fixed non-time mode sizes.

#ifndef SLICENSTITCH_STREAM_DATA_STREAM_H_
#define SLICENSTITCH_STREAM_DATA_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace sns {

/// Owns the tuples of a stream plus its schema (sizes of the M−1 non-time
/// modes). Tuples must be appended in non-decreasing time order.
class DataStream {
 public:
  explicit DataStream(std::vector<int64_t> mode_dims)
      : mode_dims_(std::move(mode_dims)) {
    SNS_CHECK(!mode_dims_.empty());
  }

  /// Sizes of the non-time modes (N_1, …, N_{M-1}).
  const std::vector<int64_t>& mode_dims() const { return mode_dims_; }
  int num_modes() const { return static_cast<int>(mode_dims_.size()); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Time stamps of the first/last tuple (0 when empty).
  int64_t start_time() const { return empty() ? 0 : tuples_.front().time; }
  int64_t end_time() const { return empty() ? 0 : tuples_.back().time; }

  /// Appends one tuple; fails if indices are out of range or time regresses.
  Status Append(const Tuple& tuple) {
    if (tuple.index.size() != num_modes()) {
      return Status::InvalidArgument("tuple arity mismatch");
    }
    for (int m = 0; m < num_modes(); ++m) {
      if (tuple.index[m] < 0 || tuple.index[m] >= mode_dims_[m]) {
        return Status::OutOfRange("tuple index out of range in mode " +
                                  std::to_string(m));
      }
    }
    if (!tuples_.empty() && tuple.time < tuples_.back().time) {
      return Status::FailedPrecondition("tuples must be chronological");
    }
    tuples_.push_back(tuple);
    return Status::OK();
  }

  void Reserve(int64_t n) { tuples_.reserve(static_cast<size_t>(n)); }

  /// Number of tuples with time ≤ `time` (binary search; tuples are
  /// chronological). Used to pre-size tensor windows before replaying a
  /// stream prefix — e.g. ContinuousCpdOptions::expected_nnz for the
  /// warm-up span.
  int64_t CountTuplesThrough(int64_t time) const {
    auto it = std::upper_bound(
        tuples_.begin(), tuples_.end(), time,
        [](int64_t t, const Tuple& tuple) { return t < tuple.time; });
    return static_cast<int64_t>(it - tuples_.begin());
  }

 private:
  std::vector<int64_t> mode_dims_;
  std::vector<Tuple> tuples_;
};

}  // namespace sns

#endif  // SLICENSTITCH_STREAM_DATA_STREAM_H_
