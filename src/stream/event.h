// Event types of the continuous tensor model.
//
// A timestamped tuple (Definition 1) causes W+1 window events (§IV-B):
// its arrival (S.1), W−1 slides between adjacent tensor units (S.2), and
// its expiry (S.3). WindowDelta captures the resulting change ΔX of the
// tensor window (Definition 6) that the updaters consume.

#ifndef SLICENSTITCH_STREAM_EVENT_H_
#define SLICENSTITCH_STREAM_EVENT_H_

#include <cstdint>
#include <vector>

#include "tensor/mode_index.h"

namespace sns {

/// One record of a multi-aspect data stream: (i_1, …, i_{M-1}, v) at time t.
/// `index` holds the M−1 categorical (non-time) mode indices.
struct Tuple {
  ModeIndex index;
  double value = 0.0;
  int64_t time = 0;
};

/// Kind of window event caused by a tuple.
enum class EventKind {
  kArrival,  // S.1: +v at time slice W−1 (0-based newest).
  kSlide,    // S.2: −v at slice W−w, +v at slice W−w−1 (0-based), 1 ≤ w < W.
  kExpiry,   // S.3: −v at slice 0.
};

/// One changed cell of the window: full M-mode coordinate and signed delta.
struct DeltaCell {
  ModeIndex index;  // Window coordinate (non-time indices + time index).
  double delta = 0.0;
};

/// The change ΔX in the window due to one event (Definition 6): one cell for
/// arrival/expiry, two for a slide. `w = (t − t_n)/T` distinguishes the
/// cases (0 = arrival, 1..W−1 = slide, W = expiry).
struct WindowDelta {
  EventKind kind = EventKind::kArrival;
  int w = 0;
  int64_t time = 0;      // When the event occurred.
  Tuple tuple;           // Originating stream tuple.
  std::vector<DeltaCell> cells;
};

}  // namespace sns

#endif  // SLICENSTITCH_STREAM_EVENT_H_
