#include "stream/continuous_window.h"

#include <limits>

namespace sns {
namespace {

std::vector<int64_t> WindowDims(std::vector<int64_t> mode_dims,
                                int window_size) {
  mode_dims.push_back(window_size);
  return mode_dims;
}

}  // namespace

ContinuousTensorWindow::ContinuousTensorWindow(std::vector<int64_t> mode_dims,
                                               int window_size, int64_t period,
                                               int64_t expected_nnz)
    : window_(WindowDims(std::move(mode_dims), window_size), expected_nnz),
      window_size_(window_size),
      period_(period) {
  SNS_CHECK(window_size_ >= 1);
  SNS_CHECK(period_ >= 1);
}

WindowDelta ContinuousTensorWindow::Ingest(const Tuple& tuple) {
  SNS_CHECK(tuple.index.size() == num_modes() - 1);
  SNS_CHECK(tuple.time >= last_event_time_);
  SNS_CHECK(NextScheduledTime() >= tuple.time);  // Drain the schedule first.
  last_event_time_ = tuple.time;

  WindowDelta delta;
  delta.kind = EventKind::kArrival;
  delta.w = 0;
  delta.time = tuple.time;
  delta.tuple = tuple;
  if (tuple.value == 0.0) return delta;

  const ModeIndex cell = tuple.index.WithAppended(window_size_ - 1);
  window_.Add(cell, tuple.value);
  delta.cells.push_back({cell, tuple.value});

  schedule_.push(
      Scheduled{tuple.time + period_, next_seq_++, tuple, /*w=*/1});
  return delta;
}

Status ContinuousTensorWindow::IngestChecked(const Tuple& tuple,
                                             WindowDelta* delta) {
  if (tuple.index.size() != num_modes() - 1) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  for (int m = 0; m < tuple.index.size(); ++m) {
    if (tuple.index[m] < 0 || tuple.index[m] >= window_.dim(m)) {
      return Status::OutOfRange("tuple index out of range in mode " +
                                std::to_string(m));
    }
  }
  if (tuple.time < last_event_time_) {
    return Status::FailedPrecondition("tuples must be chronological");
  }
  if (NextScheduledTime() < tuple.time) {
    return Status::FailedPrecondition(
        "scheduled events before this tuple must be drained first");
  }
  WindowDelta out = Ingest(tuple);
  if (delta != nullptr) *delta = std::move(out);
  return Status::OK();
}

int64_t ContinuousTensorWindow::NextScheduledTime() const {
  return schedule_.empty() ? std::numeric_limits<int64_t>::max()
                           : schedule_.top().due;
}

WindowDelta ContinuousTensorWindow::PopScheduled() {
  SNS_CHECK(!schedule_.empty());
  Scheduled event = schedule_.top();
  schedule_.pop();
  SNS_CHECK(event.due >= last_event_time_);
  last_event_time_ = event.due;
  return ApplyScheduled(event);
}

WindowDelta ContinuousTensorWindow::ApplyScheduled(const Scheduled& event) {
  const Tuple& tuple = event.tuple;
  const int w = event.w;
  const double v = tuple.value;

  WindowDelta delta;
  delta.w = w;
  delta.time = event.due;
  delta.tuple = tuple;

  // S.2 / S.3: remove from slice W−w (0-based), the slice the value has
  // occupied for the past period.
  const ModeIndex from = tuple.index.WithAppended(window_size_ - w);
  window_.Add(from, -v);
  delta.cells.push_back({from, -v});

  if (w < window_size_) {
    delta.kind = EventKind::kSlide;
    const ModeIndex to = tuple.index.WithAppended(window_size_ - w - 1);
    window_.Add(to, v);
    delta.cells.push_back({to, v});
    schedule_.push(Scheduled{tuple.time + static_cast<int64_t>(w + 1) * period_,
                             next_seq_++, tuple, w + 1});
  } else {
    delta.kind = EventKind::kExpiry;
  }
  return delta;
}

}  // namespace sns
