#include "stream/continuous_window.h"

#include <limits>
#include <string>

#include "common/serial.h"

namespace sns {
namespace {

std::vector<int64_t> WindowDims(std::vector<int64_t> mode_dims,
                                int window_size) {
  mode_dims.push_back(window_size);
  return mode_dims;
}

}  // namespace

ContinuousTensorWindow::ContinuousTensorWindow(std::vector<int64_t> mode_dims,
                                               int window_size, int64_t period,
                                               int64_t expected_nnz)
    : window_(WindowDims(std::move(mode_dims), window_size), expected_nnz),
      window_size_(window_size),
      period_(period) {
  SNS_CHECK(window_size_ >= 1);
  SNS_CHECK(period_ >= 1);
}

WindowDelta ContinuousTensorWindow::Ingest(const Tuple& tuple) {
  SNS_CHECK(tuple.index.size() == num_modes() - 1);
  SNS_CHECK(tuple.time >= last_event_time_);
  SNS_CHECK(NextScheduledTime() >= tuple.time);  // Drain the schedule first.
  last_event_time_ = tuple.time;

  WindowDelta delta;
  delta.kind = EventKind::kArrival;
  delta.w = 0;
  delta.time = tuple.time;
  delta.tuple = tuple;
  if (tuple.value == 0.0) return delta;

  const ModeIndex cell = tuple.index.WithAppended(window_size_ - 1);
  window_.Add(cell, tuple.value);
  delta.cells.push_back({cell, tuple.value});

  schedule_.push(
      Scheduled{tuple.time + period_, next_seq_++, tuple, /*w=*/1});
  return delta;
}

Status ContinuousTensorWindow::IngestChecked(const Tuple& tuple,
                                             WindowDelta* delta) {
  if (tuple.index.size() != num_modes() - 1) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  for (int m = 0; m < tuple.index.size(); ++m) {
    if (tuple.index[m] < 0 || tuple.index[m] >= window_.dim(m)) {
      return Status::OutOfRange("tuple index out of range in mode " +
                                std::to_string(m));
    }
  }
  if (tuple.time < last_event_time_) {
    return Status::FailedPrecondition("tuples must be chronological");
  }
  if (NextScheduledTime() < tuple.time) {
    return Status::FailedPrecondition(
        "scheduled events before this tuple must be drained first");
  }
  WindowDelta out = Ingest(tuple);
  if (delta != nullptr) *delta = std::move(out);
  return Status::OK();
}

int64_t ContinuousTensorWindow::NextScheduledTime() const {
  return schedule_.empty() ? std::numeric_limits<int64_t>::max()
                           : schedule_.top().due;
}

WindowDelta ContinuousTensorWindow::PopScheduled() {
  SNS_CHECK(!schedule_.empty());
  Scheduled event = schedule_.top();
  schedule_.pop();
  SNS_CHECK(event.due >= last_event_time_);
  last_event_time_ = event.due;
  return ApplyScheduled(event);
}

void ContinuousTensorWindow::SerializeTo(serial::Writer& w) const {
  window_.SerializeTo(w);
  w.U64(next_seq_);
  w.I64(last_event_time_);
  // Drain a copy of the heap: entries emerge in the exact (due, seq) pop
  // order, which is also a canonical encoding — equal schedules always
  // serialize to equal bytes regardless of internal heap layout.
  auto copy = schedule_;
  w.U64(copy.size());
  while (!copy.empty()) {
    const Scheduled& s = copy.top();
    w.I64(s.due);
    w.U64(s.seq);
    w.I32(s.w);
    w.U32(static_cast<uint32_t>(s.tuple.index.size()));
    for (int m = 0; m < s.tuple.index.size(); ++m) w.I32(s.tuple.index[m]);
    w.F64(s.tuple.value);
    w.I64(s.tuple.time);
    copy.pop();
  }
}

Status ContinuousTensorWindow::RestoreFrom(serial::Reader& r) {
  SNS_RETURN_IF_ERROR(window_.RestoreFrom(r));
  SNS_RETURN_IF_ERROR(r.U64(&next_seq_));
  SNS_RETURN_IF_ERROR(r.I64(&last_event_time_));
  uint64_t pending = 0;
  SNS_RETURN_IF_ERROR(r.U64(&pending));
  const int arity = num_modes() - 1;
  for (uint64_t i = 0; i < pending; ++i) {
    Scheduled s;
    SNS_RETURN_IF_ERROR(r.I64(&s.due));
    SNS_RETURN_IF_ERROR(r.U64(&s.seq));
    SNS_RETURN_IF_ERROR(r.I32(&s.w));
    uint32_t stored_arity = 0;
    SNS_RETURN_IF_ERROR(r.U32(&stored_arity));
    if (static_cast<int>(stored_arity) != arity) {
      return Status::DataLoss("scheduled event " + std::to_string(i) +
                              " has arity " + std::to_string(stored_arity) +
                              ", window expects " + std::to_string(arity));
    }
    for (int m = 0; m < arity; ++m) {
      int32_t c = 0;
      SNS_RETURN_IF_ERROR(r.I32(&c));
      if (c < 0 || c >= window_.dim(m)) {
        return Status::DataLoss("scheduled event " + std::to_string(i) +
                                " index out of range in mode " +
                                std::to_string(m));
      }
      s.tuple.index.PushBack(c);
    }
    SNS_RETURN_IF_ERROR(r.F64(&s.tuple.value));
    SNS_RETURN_IF_ERROR(r.I64(&s.tuple.time));
    if (s.w < 1 || s.w > window_size_ || s.seq >= next_seq_ ||
        s.due < last_event_time_) {
      return Status::DataLoss("scheduled event " + std::to_string(i) +
                              " is inconsistent with the window clock");
    }
    schedule_.push(std::move(s));
  }
  return Status::OK();
}

WindowDelta ContinuousTensorWindow::ApplyScheduled(const Scheduled& event) {
  const Tuple& tuple = event.tuple;
  const int w = event.w;
  const double v = tuple.value;

  WindowDelta delta;
  delta.w = w;
  delta.time = event.due;
  delta.tuple = tuple;

  // S.2 / S.3: remove from slice W−w (0-based), the slice the value has
  // occupied for the past period.
  const ModeIndex from = tuple.index.WithAppended(window_size_ - w);
  window_.Add(from, -v);
  delta.cells.push_back({from, -v});

  if (w < window_size_) {
    delta.kind = EventKind::kSlide;
    const ModeIndex to = tuple.index.WithAppended(window_size_ - w - 1);
    window_.Add(to, v);
    delta.cells.push_back({to, v});
    schedule_.push(Scheduled{tuple.time + static_cast<int64_t>(w + 1) * period_,
                             next_seq_++, tuple, w + 1});
  } else {
    delta.kind = EventKind::kExpiry;
  }
  return delta;
}

}  // namespace sns
