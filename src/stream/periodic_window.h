// Conventional (discrete) tensor window used by the baselines.
//
// In the common tensor modeling method (§III), the window only changes at
// period boundaries t = kT: a new tensor unit aggregating the last period is
// appended, and the oldest unit is dropped once W units exist. Baseline
// algorithms (ALS / OnlineSCP / CP-stream / NeCPD) update their factor
// matrices exactly at these boundaries.

#ifndef SLICENSTITCH_STREAM_PERIODIC_WINDOW_H_
#define SLICENSTITCH_STREAM_PERIODIC_WINDOW_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "stream/event.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Sliding window of up to W tensor units, each the per-period aggregation
/// G_w of the stream (period (kT, (k+1)T] maps to unit k).
class PeriodicTensorWindow {
 public:
  /// mode_dims: sizes of the M−1 non-time modes.
  PeriodicTensorWindow(std::vector<int64_t> mode_dims, int window_size,
                       int64_t period);

  int window_size() const { return window_size_; }
  int64_t period() const { return period_; }
  const std::vector<int64_t>& mode_dims() const { return mode_dims_; }

  /// Adds a tuple; tuples must be fed in non-decreasing time order and
  /// belong to the current (not yet closed) period or later. Tuples beyond
  /// the current period implicitly close intermediate periods.
  void AddTuple(const Tuple& tuple);

  /// Closes periods so that all units ending at or before `time` exist
  /// (time should be a multiple of the period). After this call the window
  /// reflects D(time, W) of the conventional model.
  void CloseUpTo(int64_t time);

  /// Number of closed units currently in the window (≤ W).
  int num_units() const { return static_cast<int>(units_.size()); }

  /// Materializes the M-mode window tensor; the newest closed unit sits at
  /// time index W−1 (older units shifted toward 0; missing leading units are
  /// zero). O(nnz) per call.
  SparseTensor WindowTensor() const;

  /// Materializes the newest closed unit as an (M−1)-mode tensor.
  SparseTensor NewestUnit() const;

  /// End time of the most recently closed unit (kT), or 0 if none closed.
  int64_t LastClosedTime() const { return next_unit_start_; }

 private:
  using UnitMap = std::unordered_map<ModeIndex, double, ModeIndexHash>;

  void CloseOnePeriod();

  std::vector<int64_t> mode_dims_;
  int window_size_;
  int64_t period_;
  int64_t next_unit_start_ = 0;  // Start time of the accumulating unit.
  UnitMap accumulating_;
  std::deque<UnitMap> units_;  // Oldest first; size ≤ W.
};

}  // namespace sns

#endif  // SLICENSTITCH_STREAM_PERIODIC_WINDOW_H_
