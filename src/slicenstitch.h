// Umbrella header: the public API of the SliceNStitch library.
//
//   #include "slicenstitch.h"
//
// pulls in everything a downstream application typically needs:
//   - SnsService / StreamHandle — the multi-stream service facade: named
//     engine pool, batched span ingestion, typed queries (Reconstruct,
//     TopK, ComponentActivity, FactorRow, RunningFitness), EventSink
//     fan-out,
//   - ServiceOptions / BackpressurePolicy / Ticket — the sharded runtime:
//     worker-shard count, queue-depth limits, and the completion tokens of
//     IngestAsync / AdvanceToAsync,
//   - ContinuousCpdOptions / SnsVariant      — engine configuration,
//   - DataStream / Tuple                     — stream construction,
//   - KruskalModel                           — reading factor matrices,
//   - checkpoints + write-ahead journals     — durable streams and crash
//     recovery (durability/checkpoint.h, durability/journal.h),
//   - StreamHealth / RecoveryPolicy / failpoints — the self-healing layer:
//     per-stream quarantine + auto-recovery (api/stream_health.h) and
//     deterministic fault injection (common/failpoint.h),
//   - MetricsRegistry / ServiceMetricsSnapshot / JSON-lines export — the
//     telemetry layer: lock-free per-shard counters and latency histograms
//     with periodic export (src/telemetry/),
//   - synthetic generators + dataset presets + CSV loading,
//   - the anomaly-detection toolkit of §VI-G.
//
// Finer-grained headers (core/continuous_cpd.h for the raw engine, linalg/,
// tensor/, baselines/, experiments/) remain available for advanced use —
// e.g. running the paper's baselines or embedding the batch ALS solver
// directly.

#ifndef SLICENSTITCH_SLICENSTITCH_H_
#define SLICENSTITCH_SLICENSTITCH_H_

#include "api/service_options.h"
#include "api/sns_service.h"
#include "api/stream_event.h"
#include "api/stream_handle.h"
#include "api/stream_health.h"
#include "runtime/ticket.h"
#include "apps/anomaly_detection.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "core/options.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "durability/checkpoint.h"
#include "durability/journal.h"
#include "stream/data_stream.h"
#include "telemetry/json_exporter.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/scoped_timer.h"
#include "tensor/kruskal.h"

#endif  // SLICENSTITCH_SLICENSTITCH_H_
