// Umbrella header: the public API of the SliceNStitch library.
//
//   #include "slicenstitch.h"
//
// pulls in everything a downstream application typically needs:
//   - ContinuousCpd / ContinuousCpdOptions — the continuous CPD engine,
//   - DataStream / Tuple                   — stream construction,
//   - KruskalModel                         — reading the factor matrices,
//   - synthetic generators + dataset presets + CSV loading,
//   - the anomaly-detection toolkit of §VI-G.
//
// Finer-grained headers (linalg/, tensor/, baselines/, experiments/) remain
// available for advanced use — e.g. running the paper's baselines or
// embedding the batch ALS solver directly.

#ifndef SLICENSTITCH_SLICENSTITCH_H_
#define SLICENSTITCH_SLICENSTITCH_H_

#include "apps/anomaly_detection.h"
#include "common/random.h"
#include "common/status.h"
#include "core/continuous_cpd.h"
#include "core/options.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "stream/data_stream.h"
#include "tensor/kruskal.h"

#endif  // SLICENSTITCH_SLICENSTITCH_H_
