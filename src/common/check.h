// Lightweight assertion macros used on library-internal invariants.
//
// SNS_CHECK is always on (it guards logic errors that would otherwise corrupt
// state); SNS_DCHECK compiles to nothing in release builds and is used on hot
// paths. Neither is part of the public error-handling contract — recoverable
// conditions are reported through sns::Status instead (see common/status.h).

#ifndef SLICENSTITCH_COMMON_CHECK_H_
#define SLICENSTITCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sns::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SNS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace sns::internal

#define SNS_CHECK(expr)                                         \
  do {                                                          \
    if (!(expr)) {                                              \
      ::sns::internal::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define SNS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SNS_DCHECK(expr) SNS_CHECK(expr)
#endif

#endif  // SLICENSTITCH_COMMON_CHECK_H_
