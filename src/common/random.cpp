#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace sns {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  SNS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SNS_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Exponential(double rate) {
  SNS_DCHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  SNS_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double prod = UniformDouble();
    int64_t n = 0;
    while (prod > limit) {
      prod *= UniformDouble();
      ++n;
    }
    return n;
  }
  // PTRS transformed-rejection (Hörmann 1993) for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    double u = UniformDouble() - 0.5;
    double v = UniformDouble();
    double us = 0.5 - std::fabs(u);
    int64_t k = static_cast<int64_t>(
        std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= v_r) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    const double log_mean = std::log(mean);
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(static_cast<double>(k) + 1.0)) {
      return k;
    }
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SNS_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  SNS_DCHECK(total > 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against accumulated rounding.
}

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[static_cast<size_t>(i)] = state_[i];
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.state[static_cast<size_t>(i)];
  has_cached_normal_ = s.has_cached_normal;
  cached_normal_ = s.cached_normal;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextUint64(j + 1));
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace sns
