// Minimal delimited-text reader/writer used to load real dataset streams
// (when available) and to dump benchmark series for plotting. Handles plain
// (unquoted) CSV/TSV, which is what the SliceNStitch datasets use.

#ifndef SLICENSTITCH_COMMON_CSV_H_
#define SLICENSTITCH_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sns {

/// Splits one delimited line into fields (no quoting / escaping).
std::vector<std::string> SplitLine(std::string_view line, char delimiter);

/// Parses a string as int64/double; returns error on trailing garbage.
StatusOr<int64_t> ParseInt64(std::string_view text);
StatusOr<double> ParseDouble(std::string_view text);

/// Reads a whole delimited file into rows of fields. Skips empty lines. If
/// skip_header is true the first non-empty line is dropped.
StatusOr<std::vector<std::vector<std::string>>> ReadDelimitedFile(
    const std::string& path, char delimiter, bool skip_header);

/// Appends rows to a delimited file (creating it if needed).
Status WriteDelimitedFile(const std::string& path, char delimiter,
                          const std::vector<std::vector<std::string>>& rows);

}  // namespace sns

#endif  // SLICENSTITCH_COMMON_CSV_H_
