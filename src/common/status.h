// Status / StatusOr: exception-free error propagation for fallible APIs
// (configuration validation, file loading, dimension checks at API
// boundaries). Modeled on the RocksDB/Arrow idiom.

#ifndef SLICENSTITCH_COMMON_STATUS_H_
#define SLICENSTITCH_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace sns {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIOError,
  /// Stored data is unrecoverably corrupt or incomplete (checksum mismatch,
  /// truncated checkpoint, journal gap) — distinct from kIOError, which
  /// covers transient I/O failures worth retrying.
  kDataLoss,
  /// The operation's deadline expired before it could be admitted or
  /// completed. The operation was NOT applied; retrying with a fresh
  /// deadline is safe.
  kDeadlineExceeded,
  /// The target is temporarily out of service (e.g. a stream quarantined
  /// pending recovery). Retrying after a backoff is the expected response.
  kUnavailable,
};

/// Number of values in StatusCode, for exhaustive taxonomy iteration in
/// tests. Keep in sync with the last enumerator above.
inline constexpr int kStatusCodeCount =
    static_cast<int>(StatusCode::kUnavailable) + 1;

/// Canonical display name of a status code, e.g. "DeadlineExceeded".
/// SNS_CHECK-fails on values outside the enum.
const char* StatusCodeName(StatusCode code);

/// True for codes that signal a transient condition where retrying the
/// same operation can succeed: kUnavailable (quarantine in progress),
/// kResourceExhausted (backpressure), kDeadlineExceeded (the deadline was
/// the caller's, not the data's), and kIOError (transient I/O). Permanent
/// verdicts — validation errors, corruption, terminal stream failure —
/// are not retryable.
bool IsRetryable(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Cheap to copy in the OK case (empty message). Functions that can fail
/// return Status (or StatusOr<T>); callers must consult ok() before relying
/// on side effects.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: rank must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. value() aborts if not ok, so
/// callers either check ok() first or use value_or-style flow.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                  // NOLINT
    SNS_CHECK(!status_.ok());  // OK StatusOr must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SNS_CHECK(status_.ok());
    return *value_;
  }
  T& value() & {
    SNS_CHECK(status_.ok());
    return *value_;
  }
  T&& value() && {
    SNS_CHECK(status_.ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sns

/// Early-return helper: propagate a non-OK Status to the caller.
#define SNS_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::sns::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // SLICENSTITCH_COMMON_STATUS_H_
