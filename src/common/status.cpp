#include "common/status.h"

namespace sns {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  SNS_CHECK(false && "StatusCodeName: value outside the StatusCode enum");
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  // Exhaustive on purpose: a new StatusCode must make an explicit retryable
  // decision here (the missing case is a -Werror=switch build break) and in
  // the taxonomy test before it can ship.
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return false;
    case StatusCode::kResourceExhausted:
    case StatusCode::kIOError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
  }
  SNS_CHECK(false && "IsRetryable: value outside the StatusCode enum");
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sns
