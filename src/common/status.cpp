#include "common/status.h"

namespace sns {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  SNS_CHECK(false && "StatusCodeName: value outside the StatusCode enum");
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sns
