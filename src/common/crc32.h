// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte buffers.
//
// Guards every durability artifact: checkpoint payloads and journal records
// carry a CRC so restore can distinguish a clean prefix from a torn or
// corrupted write (src/durability/). Table-driven, one byte per step —
// durability runs on the cold path, so no slicing tricks are needed.

#ifndef SLICENSTITCH_COMMON_CRC32_H_
#define SLICENSTITCH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sns {

/// CRC-32 of `size` bytes at `data`, continuing from a previous result
/// (`crc` = the prior return value; 0 starts a fresh checksum). Matches the
/// standard IEEE/zlib definition: reflected, init and xorout 0xFFFFFFFF.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

}  // namespace sns

#endif  // SLICENSTITCH_COMMON_CRC32_H_
