// Deterministic pseudo-random number generation for the whole library.
//
// All stochastic components (θ-sampling in SNS-RND, synthetic stream
// generation, factor initialization, property tests) draw from sns::Rng so
// that a single seed reproduces an entire experiment. The core generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and dependency
// free.

#ifndef SLICENSTITCH_COMMON_RANDOM_H_
#define SLICENSTITCH_COMMON_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sns {

/// Complete serializable state of an Rng: the xoshiro256** engine words plus
/// the Box–Muller cache of Normal(). RestoreState(SaveState()) makes the
/// generator continue with the identical draw sequence — the property the
/// durability checkpoints rely on so restored streams sample the same θ
/// indices as the uninterrupted run.
struct RngState {
  std::array<uint64_t, 4> state{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  friend bool operator==(const RngState& a, const RngState& b) {
    return a.state == b.state &&
           a.has_cached_normal == b.has_cached_normal &&
           a.cached_normal == b.cached_normal;
  }
};

/// Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; create one Rng per thread or experiment. Satisfies the
/// UniformRandomBitGenerator concept so it can drive <random> distributions
/// and std::shuffle when needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire rejection to avoid
  /// modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS transformation for large means).
  int64_t Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples k distinct indices uniformly from [0, n) (Floyd's algorithm);
  /// if k >= n returns all of [0, n). Order of the result is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Snapshot of the complete generator state.
  RngState SaveState() const;

  /// Resumes from a snapshot: subsequent draws are bitwise identical to the
  /// generator the snapshot was taken from.
  void RestoreState(const RngState& s);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sns

#endif  // SLICENSTITCH_COMMON_RANDOM_H_
