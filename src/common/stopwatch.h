// Monotonic wall-clock stopwatch used by the benchmark harnesses to report
// per-update latencies and total runtimes.

#ifndef SLICENSTITCH_COMMON_STOPWATCH_H_
#define SLICENSTITCH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sns {

/// Measures elapsed time on the steady clock. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sns

#endif  // SLICENSTITCH_COMMON_STOPWATCH_H_
