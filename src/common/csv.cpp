#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

namespace sns {

std::vector<std::string> SplitLine(std::string_view line, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

StatusOr<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

StatusOr<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty double field");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

StatusOr<std::vector<std::vector<std::string>>> ReadDelimitedFile(
    const std::string& path, char delimiter, bool skip_header) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    rows.push_back(SplitLine(line, delimiter));
  }
  return rows;
}

Status WriteDelimitedFile(const std::string& path, char delimiter,
                          const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::app);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delimiter;
      out << row[i];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace sns
