#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace sns {
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SNS_HAVE_CPU_PROBE 1
#endif

CpuFeatures Probe() {
  CpuFeatures f;
#ifdef SNS_HAVE_CPU_PROBE
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

bool ForcedGenericByEnv() {
  const char* v = std::getenv("SNS_FORCE_GENERIC_KERNELS");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

KernelTier ComputeAutoTier() {
  if (ForcedGenericByEnv()) return KernelTier::kGeneric;
  if (KernelTierSupported(KernelTier::kAvx512)) return KernelTier::kAvx512;
  if (KernelTierSupported(KernelTier::kAvx2)) return KernelTier::kAvx2;
  return KernelTier::kGeneric;
}

KernelTier& CachedAutoTier() {
  static KernelTier tier = ComputeAutoTier();
  return tier;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return "generic";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool KernelTierCompiledIn(KernelTier tier) {
#ifdef SNS_HAVE_X86_CODELETS
  (void)tier;
  return true;
#else
  return tier == KernelTier::kGeneric;
#endif
}

bool KernelTierSupported(KernelTier tier) {
  if (!KernelTierCompiledIn(tier)) return false;
  const CpuFeatures& f = DetectCpuFeatures();
  switch (tier) {
    case KernelTier::kGeneric:
      return true;
    case KernelTier::kAvx2:
      return f.avx2 && f.fma;
    case KernelTier::kAvx512:
      return f.avx512f && f.avx2 && f.fma;
  }
  return false;
}

KernelTier ResolveKernelTier(bool force_generic) {
  if (force_generic) return KernelTier::kGeneric;
  return CachedAutoTier();
}

std::string CpuFeaturesSummary() {
  const CpuFeatures& f = DetectCpuFeatures();
  std::string out;
  auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  add(f.sse42, "sse4.2");
  add(f.avx, "avx");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  if (out.empty()) out = "baseline";
  out += " tier=";
  out += KernelTierName(ResolveKernelTier());
  return out;
}

namespace internal {
void RefreshKernelTierForTest() { CachedAutoTier() = ComputeAutoTier(); }
}  // namespace internal

}  // namespace sns
