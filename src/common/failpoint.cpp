#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

namespace sns {
namespace failpoint {
namespace {

enum class Trigger { kOff, kOnce, kEveryN, kAfterN };

struct Armed {
  Trigger trigger = Trigger::kOff;
  int64_t n = 0;           // Parameter of every:N / after:N.
  int64_t evaluations = 0; // Count since (re-)arming.
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed, std::less<>> points;
  bool env_parsed = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives statics.
  return *registry;
}

/// Parses "off" | "once" | "every:N" | "after:N" into an Armed record.
Status ParsePolicy(std::string_view spec, Armed* out) {
  if (spec == "off") {
    out->trigger = Trigger::kOff;
    return Status::OK();
  }
  if (spec == "once") {
    out->trigger = Trigger::kOnce;
    return Status::OK();
  }
  Trigger trigger;
  std::string_view digits;
  constexpr std::string_view kEvery = "every:";
  constexpr std::string_view kAfter = "after:";
  if (spec.substr(0, kEvery.size()) == kEvery) {
    trigger = Trigger::kEveryN;
    digits = spec.substr(kEvery.size());
  } else if (spec.substr(0, kAfter.size()) == kAfter) {
    trigger = Trigger::kAfterN;
    digits = spec.substr(kAfter.size());
  } else {
    return Status::InvalidArgument("unknown failpoint policy '" +
                                   std::string(spec) + "'");
  }
  if (digits.empty()) {
    return Status::InvalidArgument("failpoint policy '" + std::string(spec) +
                                   "' is missing its count");
  }
  int64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("failpoint policy '" + std::string(spec) +
                                     "' has a non-numeric count");
    }
    n = n * 10 + (c - '0');
  }
  if (trigger == Trigger::kEveryN && n < 1) {
    return Status::InvalidArgument("every:N needs N >= 1");
  }
  out->trigger = trigger;
  out->n = n;
  return Status::OK();
}

/// Parses the SNS_FAILPOINTS spec ("name=policy;name=policy", ';' or ','
/// separated) into the registry. Malformed entries are skipped — a typo in
/// the environment must not take the process down.
void ParseEnvLocked(Registry& registry) {
  registry.env_parsed = true;
  const char* env = std::getenv("SNS_FAILPOINTS");
  if (env == nullptr) return;
  std::string_view spec(env);
  while (!spec.empty()) {
    const size_t sep = spec.find_first_of(";,");
    std::string_view entry =
        sep == std::string_view::npos ? spec : spec.substr(0, sep);
    spec = sep == std::string_view::npos ? std::string_view()
                                         : spec.substr(sep + 1);
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    Armed armed;
    if (!ParsePolicy(entry.substr(eq + 1), &armed).ok()) continue;
    registry.points.insert_or_assign(std::string(entry.substr(0, eq)), armed);
  }
}

void PublishArmedCountLocked(const Registry& registry) {
  internal::g_armed.store(static_cast<int64_t>(registry.points.size()),
                          std::memory_order_release);
}

}  // namespace

namespace internal {

std::atomic<int64_t> g_armed{-1};  // -1: environment not parsed yet.

bool FireSlow(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.env_parsed) {
    ParseEnvLocked(registry);
    PublishArmedCountLocked(registry);
  }
  auto it = registry.points.find(std::string_view(name));
  if (it == registry.points.end()) return false;
  Armed& armed = it->second;
  ++armed.evaluations;
  switch (armed.trigger) {
    case Trigger::kOff:
      return false;
    case Trigger::kOnce:
      return armed.evaluations == 1;
    case Trigger::kEveryN:
      return armed.evaluations % armed.n == 0;
    case Trigger::kAfterN:
      return armed.evaluations > armed.n;
  }
  return false;
}

}  // namespace internal

Status Arm(const std::string& name, const std::string& policy) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must not be empty");
  }
  Armed armed;
  SNS_RETURN_IF_ERROR(ParsePolicy(policy, &armed));
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.env_parsed) ParseEnvLocked(registry);
  registry.points.insert_or_assign(name, armed);
  PublishArmedCountLocked(registry);
  return Status::OK();
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.env_parsed) ParseEnvLocked(registry);
  registry.points.erase(name);
  PublishArmedCountLocked(registry);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  registry.env_parsed = false;
  internal::g_armed.store(-1, std::memory_order_release);
}

int64_t Evaluations(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.evaluations;
}

Status InjectedFailure(const char* name) {
  return Status::IOError("injected failure at failpoint '" +
                         std::string(name) + "'");
}

}  // namespace failpoint
}  // namespace sns
