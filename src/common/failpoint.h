// Deterministic fault injection: named failpoints compiled into error
// paths that are impossible to reach on a healthy machine (disk-full,
// torn writes, wedged queues), so those paths become unit tests instead of
// kill -9 smoke scripts. Modeled on the RocksDB fail_point / Rust fail-rs
// idiom.
//
// A call site guards its injected failure with the SNS_FAILPOINT macro:
//
//   if (SNS_FAILPOINT("journal.append")) {
//     return Status::IOError("injected failure at failpoint 'journal.append'");
//   }
//
// The macro evaluates to false — one relaxed atomic load, no lock, no
// string compare — unless at least one failpoint is armed. Arming happens
// two ways:
//   - tests call failpoint::Arm("journal.append", "once"), and
//   - the SNS_FAILPOINTS environment variable carries a spec like
//     "journal.append=once;serial.file_sink_write=every:3", parsed lazily
//     on the first evaluation (so binaries under CI can inject faults with
//     no code changes).
//
// Trigger policies (evaluations are counted per failpoint, starting at 1):
//   off       never fires (armed but inert; keeps counters running)
//   once      fires on the first evaluation only
//   every:N   fires on evaluations N, 2N, 3N, ...
//   after:N   fires on every evaluation strictly after the N-th
//
// Failpoints only answer "fire here?"; the call site decides what failing
// means (an IOError, a short write, a full mailbox). Compiling with
// -DSNS_DISABLE_FAILPOINTS turns every SNS_FAILPOINT into a constant false
// and strips the subsystem from the hot path entirely.

#ifndef SLICENSTITCH_COMMON_FAILPOINT_H_
#define SLICENSTITCH_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sns {
namespace failpoint {

/// Arms (or re-arms) one failpoint with a policy spec: "off", "once",
/// "every:N", or "after:N" (N >= 1 for every, N >= 0 for after).
/// Re-arming resets the failpoint's evaluation counter.
Status Arm(const std::string& name, const std::string& policy);

/// Disarms one failpoint; later evaluations are the no-op fast path again.
void Disarm(const std::string& name);

/// Disarms everything (test teardown). Also forgets that SNS_FAILPOINTS
/// was parsed, so the next evaluation re-reads the environment.
void DisarmAll();

/// Times the named failpoint has been evaluated since it was (re-)armed;
/// 0 when unarmed. Test observability hook.
int64_t Evaluations(const std::string& name);

/// Canonical status for a fired failpoint, so injected and real failures
/// are distinguishable in logs: kIOError with the failpoint's name.
Status InjectedFailure(const char* name);

namespace internal {

/// Number of armed failpoints; -1 until SNS_FAILPOINTS has been parsed.
/// Exposed only for the macro's fast path.
extern std::atomic<int64_t> g_armed;

/// Slow path: parses the environment if needed, then consults the
/// registry. Returns whether the call site should fail.
bool FireSlow(const char* name);

}  // namespace internal

/// True when evaluation must leave the fast path: some failpoint is armed,
/// or the environment has not been inspected yet.
inline bool MaybeArmed() {
  return internal::g_armed.load(std::memory_order_acquire) != 0;
}

}  // namespace failpoint
}  // namespace sns

#if defined(SNS_DISABLE_FAILPOINTS)
#define SNS_FAILPOINT(name) (false)
#else
#define SNS_FAILPOINT(name)            \
  (::sns::failpoint::MaybeArmed() &&   \
   ::sns::failpoint::internal::FireSlow(name))
#endif

#endif  // SLICENSTITCH_COMMON_FAILPOINT_H_
