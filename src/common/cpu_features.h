// Runtime CPU feature probe and kernel-tier resolution.
//
// The rank-R kernel layer ships three implementation tiers of the same
// RankKernelTable contract (linalg/rank_dispatch.h): the portable generic
// kernels, AVX2+FMA codelets, and AVX-512 codelets (linalg/codelets/). The
// probe below runs cpuid once per process and picks the widest tier the
// host supports AND the build compiled in, so a single binary runs
// everywhere a baseline x86-64 build runs while using the full vector width
// where available. Non-x86 builds (or builds without the codelet TUs)
// always resolve to the generic tier.
//
// Overrides, checked in this order:
//   - ContinuousCpdOptions::force_generic_kernels pins one engine to the
//     generic tier (passed as `force_generic` below),
//   - the SNS_FORCE_GENERIC_KERNELS environment variable (set to anything
//     but "0") pins the whole process.

#ifndef SLICENSTITCH_COMMON_CPU_FEATURES_H_
#define SLICENSTITCH_COMMON_CPU_FEATURES_H_

#include <string>

namespace sns {

/// The x86 SIMD extensions the kernel tiers care about. All false on
/// non-x86 targets.
struct CpuFeatures {
  bool sse42 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
};

/// cpuid probe, run once per process and cached.
const CpuFeatures& DetectCpuFeatures();

/// Implementation tiers of the rank-R kernel layer, widest last.
enum class KernelTier {
  kGeneric,  // Portable __restrict kernels (always available).
  kAvx2,     // AVX2+FMA codelets (linalg/codelets/codelets_avx2.cpp).
  kAvx512,   // AVX-512F codelets (linalg/codelets/codelets_avx512.cpp).
};

/// Display name: "generic", "avx2", "avx512".
const char* KernelTierName(KernelTier tier);

/// True when the codelet TU for `tier` is linked into this build (the
/// generic tier always is).
bool KernelTierCompiledIn(KernelTier tier);

/// True when `tier` is compiled in AND the host CPU supports it.
bool KernelTierSupported(KernelTier tier);

/// The tier every auto-dispatched table resolves to: the widest supported
/// tier, unless pinned to generic by `force_generic` or the
/// SNS_FORCE_GENERIC_KERNELS environment variable. The environment lookup
/// is cached after the first call (see internal::RefreshKernelTierForTest).
KernelTier ResolveKernelTier(bool force_generic = false);

/// One-line provenance summary for benchmark JSON, e.g.
/// "sse4.2+avx+fma+avx2+avx512f tier=avx512".
std::string CpuFeaturesSummary();

namespace internal {
/// Re-reads SNS_FORCE_GENERIC_KERNELS and recomputes the cached auto tier.
/// Test hook only — production code resolves the tier once per process.
void RefreshKernelTierForTest();
}  // namespace internal

}  // namespace sns

#endif  // SLICENSTITCH_COMMON_CPU_FEATURES_H_
