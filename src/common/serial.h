// Byte-stream serialization primitives for the durability layer.
//
// Two small abstractions — ByteSink (write bytes) and ByteSource (read
// bytes) — with in-memory and FILE*-backed implementations, plus Writer /
// Reader helpers that encode primitives in fixed little-endian layout with a
// sticky error status. Checkpoints and journal records are byte strings
// built with Writer, checksummed whole (common/crc32.h), and framed by their
// container (durability/checkpoint.h, durability/journal.h); nothing here
// depends on the tensor or service layers.
//
// Encoding contract: all integers little-endian fixed width, doubles as the
// little-endian bytes of their IEEE-754 bit pattern, strings as u64 length +
// raw bytes. The layout is byte-for-byte deterministic — equal state always
// serializes to equal bytes, which is what lets the durability tests compare
// whole checkpoints bitwise.

#ifndef SLICENSTITCH_COMMON_SERIAL_H_
#define SLICENSTITCH_COMMON_SERIAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace sns {
namespace serial {

/// Destination of serialized bytes.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status Write(const void* data, size_t size) = 0;
};

/// Source of serialized bytes.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `size` bytes into `data`; returns the count actually read
  /// (0 = end of stream). Short reads before the end are allowed.
  virtual StatusOr<size_t> ReadSome(void* data, size_t size) = 0;

  /// Reads exactly `size` bytes or fails: kDataLoss on a premature end of
  /// stream, the underlying error otherwise.
  Status ReadExact(void* data, size_t size);
};

/// Sink accumulating into an owned std::string.
class StringSink final : public ByteSink {
 public:
  Status Write(const void* data, size_t size) override {
    data_.append(static_cast<const char*>(data), size);
    return Status::OK();
  }
  const std::string& data() const { return data_; }
  std::string TakeData() { return std::move(data_); }

 private:
  std::string data_;
};

/// Source over a borrowed byte range (must outlive the source).
class StringSource final : public ByteSource {
 public:
  explicit StringSource(std::string_view data) : data_(data) {}
  StatusOr<size_t> ReadSome(void* data, size_t size) override;
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Sink writing a file via stdio. Move-only; flushes and closes on
/// destruction (errors at that point are lost — call Close() to observe
/// them).
class FileSink final : public ByteSink {
 public:
  /// Opens (truncating) `path` for binary writing.
  static StatusOr<FileSink> Open(const std::string& path);

  FileSink(FileSink&& other) noexcept { *this = std::move(other); }
  FileSink& operator=(FileSink&& other) noexcept;
  ~FileSink() override;

  Status Write(const void* data, size_t size) override;

  /// Flushes stdio buffers to the OS; with `sync_to_disk` also fsyncs.
  Status Flush(bool sync_to_disk = false);

  /// Flushes and closes. Idempotent.
  Status Close();

 private:
  FileSink(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Source reading a file via stdio. Move-only.
class FileSource final : public ByteSource {
 public:
  static StatusOr<FileSource> Open(const std::string& path);

  FileSource(FileSource&& other) noexcept { *this = std::move(other); }
  FileSource& operator=(FileSource&& other) noexcept;
  ~FileSource() override;

  StatusOr<size_t> ReadSome(void* data, size_t size) override;

 private:
  FileSource(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Whole-file convenience forms (used by tests, tools, and the example).
StatusOr<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Little-endian primitive encoder over a ByteSink. The first write error
/// sticks; callers compose an entire record and check status() once.
class Writer {
 public:
  explicit Writer(ByteSink& sink) : sink_(&sink) {}

  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bytes(const void* data, size_t size);
  /// u64 length + raw bytes.
  void Str(std::string_view s);

  const Status& status() const { return status_; }

 private:
  ByteSink* sink_;
  Status status_;
};

/// Little-endian primitive decoder over a ByteSource. The first read error
/// sticks and every later accessor fails fast, so decode sequences need only
/// one status check per record.
class Reader {
 public:
  explicit Reader(ByteSource& source) : source_(&source) {}

  Status U8(uint8_t* v) { return Bytes(v, 1); }
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Bytes(void* data, size_t size);
  /// Reads a Writer::Str string; fails with kDataLoss when the encoded
  /// length exceeds `max_size` (corruption guard for unchecksummed input).
  Status Str(std::string* s, size_t max_size = kDefaultMaxStr);

  const Status& status() const { return status_; }

 private:
  static constexpr size_t kDefaultMaxStr = 1u << 20;

  ByteSource* source_;
  Status status_;
};

}  // namespace serial
}  // namespace sns

#endif  // SLICENSTITCH_COMMON_SERIAL_H_
